#include "fabric/fabric_spec.h"

#include <charconv>

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// A comma-separated segment belongs to the fabric header only when it is a
// plain key=value pair; the inner spec starts at the first segment with no
// '=' at all ("fig4b", a file path) or with a ':' before its first '='
// ("poisson:ports=256" — a nested generator spec).
bool StartsInnerSpec(const std::string& segment) {
  const auto eq = segment.find('=');
  if (eq == std::string::npos) return true;
  const auto colon = segment.find(':');
  return colon != std::string::npos && colon < eq;
}

}  // namespace

std::string FabricSpec::ToString() const {
  std::string out = "fabric:shards=" + std::to_string(shards) + ",partition=";
  out += partition == FabricPartition::kHash ? "hash" : "block";
  if (!inner.empty()) out += "," + inner;
  return out;
}

bool IsFabricSpec(const std::string& source) {
  return source.substr(0, source.find(':')) == "fabric";
}

bool ParsePartitionName(const std::string& name, FabricPartition& out) {
  if (name == "hash") {
    out = FabricPartition::kHash;
    return true;
  }
  if (name == "block") {
    out = FabricPartition::kBlock;
    return true;
  }
  return false;
}

bool ParseFabricSpec(const std::string& source, FabricSpec& spec,
                     std::string* error) {
  spec = FabricSpec{};
  if (!IsFabricSpec(source)) {
    return Fail(error, "not a fabric spec: \"" + source + "\"");
  }
  const auto colon = source.find(':');
  std::string rest =
      colon == std::string::npos ? "" : source.substr(colon + 1);
  bool saw_shards = false;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string segment = rest.substr(0, comma);
    if (StartsInnerSpec(segment)) {
      spec.inner = rest;  // Everything from here on, commas included.
      break;
    }
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    if (segment.empty()) continue;
    const auto eq = segment.find('=');
    const std::string key = segment.substr(0, eq);
    const std::string value = segment.substr(eq + 1);
    if (key == "shards") {
      int v = 0;
      const char* first = value.data();
      const char* last = first + value.size();
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec != std::errc() || ptr != last || v < 1) {
        return Fail(error,
                    "fabric: shards must be a positive integer, got \"" +
                        value + "\"");
      }
      spec.shards = v;
      saw_shards = true;
    } else if (key == "partition" || key == "policy") {
      // "policy" is an accepted alias: the partitioning policy. ToString()
      // always canonicalizes to "partition".
      if (!ParsePartitionName(value, spec.partition)) {
        return Fail(error, "fabric: unknown " + key + " \"" + value +
                               "\" (hash, block)");
      }
    } else {
      return Fail(error, "fabric: unknown key \"" + key +
                             "\" (shards, partition)");
    }
  }
  if (!saw_shards) {
    return Fail(error, "fabric: missing required key shards=K");
  }
  if (spec.inner.empty()) {
    return Fail(error,
                "fabric: missing inner instance spec after the fabric keys");
  }
  return true;
}

}  // namespace flowsched
