#include "fabric/fabric_runner.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "api/builtin_solvers.h"
#include "coflow/coflow_policies.h"
#include "core/online/simulator.h"
#include "exp/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace flowsched {
namespace {

// One pod's simulation, self-contained: fresh policy (derived seed), fresh
// context. Writes only into this shard's slot, so shards are trivially
// parallel and the merge order alone fixes the output.
struct ShardRun {
  Schedule schedule;  // Shard-local flow ids.
  Round rounds = 0;
  int peak_backlog = 0;
  double avg_port_utilization = 0.0;
  Round downtime_rounds = 0;
  bool truncated = false;
  std::string error;
  bool ran = false;
};

ShardRun SimulateShard(const Instance& shard_instance, int shard,
                       const FabricRunOptions& options,
                       const std::vector<ScenarioOp>* scenario_ops) {
  ShardRun run;
  if (shard_instance.num_flows() == 0) return run;
  const std::uint64_t seed = Rng::DeriveSeed(options.seed,
                                             static_cast<std::uint64_t>(shard));
  std::unique_ptr<SchedulingPolicy> policy =
      options.coflow_aware
          ? MakeCoflowPolicy(options.policy, seed, options.matching)
          : MakePolicy(options.policy, seed, options.matching);
  SimulationOptions sim;
  if (options.max_rounds > 0) sim.max_rounds = options.max_rounds;
  sim.validate = options.validate;
  sim.scenario_ops = scenario_ops;
  SimulationContext context;
  const SimulationResult r = Simulate(shard_instance, *policy, sim, &context);
  // A truncated scenario run carries no schedule to map (the fabric result
  // is discarded before the merge loop consumes it).
  if (!r.truncated) {
    run.schedule = internal::MapRealizedSchedule(shard_instance, r.schedule);
  }
  run.rounds = r.rounds;
  run.peak_backlog = r.peak_backlog;
  run.avg_port_utilization = r.avg_port_utilization;
  run.downtime_rounds = r.downtime_rounds;
  run.truncated = r.truncated;
  run.error = r.error;
  run.ran = true;
  return run;
}

}  // namespace

bool ProjectScenarioOps(const ScenarioScript& script,
                        const FabricAssignment& fa, int shard,
                        std::vector<ScenarioOp>* ops, std::string* error) {
  FS_CHECK_GE(shard, 0);
  FS_CHECK_LT(shard, fa.shards);
  ops->clear();
  const int num_hosts = static_cast<int>(fa.shard_of_host.size());
  const std::vector<PortId>& in_map = fa.shard_input_host[shard];
  const std::vector<PortId>& out_map = fa.shard_output_host[shard];
  // Every local port whose global host satisfies `affects` gets the op; the
  // within-round order (inputs ascending, then outputs) is a pure function
  // of the maps, so projections are deterministic across jobs values.
  const auto expand = [&](Round t, Capacity cap, const auto& affects) {
    for (std::size_t p = 0; p < in_map.size(); ++p) {
      if (in_map[p] >= 0 && affects(in_map[p])) {
        ops->push_back({t, /*input_side=*/true, static_cast<PortId>(p), cap});
      }
    }
    for (std::size_t q = 0; q < out_map.size(); ++q) {
      if (out_map[q] >= 0 && affects(out_map[q])) {
        ops->push_back({t, /*input_side=*/false, static_cast<PortId>(q), cap});
      }
    }
  };
  for (const ScenarioEvent& e : script.events()) {
    Capacity cap = 0;
    switch (e.kind) {
      case ScenarioEvent::Kind::kPortDown:
      case ScenarioEvent::Kind::kPodDown:
        cap = 0;
        break;
      case ScenarioEvent::Kind::kPortUp:
      case ScenarioEvent::Kind::kPodUp:
        cap = kScenarioRestore;
        break;
      case ScenarioEvent::Kind::kSetCapacity:
        cap = e.capacity;
        break;
      case ScenarioEvent::Kind::kMigrate:
        // Consumed before partitioning (ApplyScenarioMigrations); there is
        // no per-shard capacity op to project.
        continue;
    }
    const bool pod_event = e.kind == ScenarioEvent::Kind::kPodDown ||
                           e.kind == ScenarioEvent::Kind::kPodUp;
    if (pod_event) {
      // The script's pods must be the fabric's pods — a PODS header written
      // for another topology would silently hit the wrong hosts.
      if (script.pods() != fa.shards) {
        *error = "line " + std::to_string(e.line) + ": scenario declares " +
                 std::to_string(script.pods()) + " pods but the fabric has " +
                 std::to_string(fa.shards) + " shards";
        return false;
      }
      const int pod = e.target;
      expand(e.t, cap, [&](PortId g) { return fa.shard_of_host[g] == pod; });
    } else {
      if (e.target >= num_hosts) {
        *error = "line " + std::to_string(e.line) + ": host " +
                 std::to_string(e.target) + " out of range (fabric has " +
                 std::to_string(num_hosts) + " hosts)";
        return false;
      }
      expand(e.t, cap, [&](PortId g) { return g == e.target; });
    }
  }
  return true;
}

FabricResult RunFabric(const Instance& instance, const FabricAssignment& fa,
                       const FabricRunOptions& options) {
  FS_CHECK_EQ(static_cast<std::size_t>(instance.num_flows()),
              fa.shard_of_flow.size());
  const int shards = fa.shards;
  std::vector<ShardRun> runs(shards);

  FabricResult result;
  // Projection happens up front (cheap, serial) so a bad script surfaces
  // before any shard simulates.
  std::vector<std::vector<ScenarioOp>> shard_ops;
  const bool has_scenario =
      options.scenario != nullptr && !options.scenario->empty();
  if (has_scenario) {
    shard_ops.resize(shards);
    for (int s = 0; s < shards; ++s) {
      std::string perr;
      if (!ProjectScenarioOps(*options.scenario, fa, s, &shard_ops[s],
                              &perr)) {
        result.schedule = Schedule(instance.num_flows());
        result.truncated = true;
        result.error = "scenario: " + perr;
        result.shard_reports.resize(shards);
        return result;
      }
    }
  }

  const int jobs = std::clamp(options.jobs, 1, shards);
  if (jobs > 1) {
    ThreadPool pool(jobs);
    for (int s = 0; s < shards; ++s) {
      pool.Submit([&, s] {
        runs[s] = SimulateShard(fa.shard_instances[s], s, options,
                                has_scenario ? &shard_ops[s] : nullptr);
      });
    }
    pool.Wait();
  } else {
    for (int s = 0; s < shards; ++s) {
      runs[s] = SimulateShard(fa.shard_instances[s], s, options,
                              has_scenario ? &shard_ops[s] : nullptr);
    }
  }

  result.schedule = Schedule(instance.num_flows());
  result.shard_reports.resize(shards);
  int busy_shards = 0;
  for (int s = 0; s < shards; ++s) {
    const ShardRun& run = runs[s];
    FabricShardReport& report = result.shard_reports[s];
    report.shard = s;
    report.num_flows = fa.shard_instances[s].num_flows();
    report.demand = fa.shard_demand[s];
    report.rounds = run.rounds;
    report.peak_backlog = run.peak_backlog;
    report.downtime_rounds = run.downtime_rounds;
    result.rounds = std::max(result.rounds, run.rounds);
    result.peak_backlog = std::max(result.peak_backlog, run.peak_backlog);
    result.downtime_rounds =
        std::max(result.downtime_rounds, run.downtime_rounds);
    if (run.truncated && !result.truncated) {
      // First truncated shard in index order — deterministic for any jobs.
      result.truncated = true;
      result.error = "pod " + std::to_string(s) + ": " + run.error;
    }
    if (run.ran) {
      result.avg_port_utilization += run.avg_port_utilization;
      ++busy_shards;
    }
  }
  if (busy_shards > 0) result.avg_port_utilization /= busy_shards;
  if (result.truncated) return result;

  for (FlowId e = 0; e < instance.num_flows(); ++e) {
    const int s = fa.shard_of_flow[e];
    result.schedule.Assign(e, runs[s].schedule.round_of(fa.local_flow_id[e]));
  }
  return result;
}

}  // namespace flowsched
