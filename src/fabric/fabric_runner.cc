#include "fabric/fabric_runner.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/builtin_solvers.h"
#include "coflow/coflow_policies.h"
#include "core/online/simulator.h"
#include "exp/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace flowsched {
namespace {

// One pod's simulation, self-contained: fresh policy (derived seed), fresh
// context. Writes only into this shard's slot, so shards are trivially
// parallel and the merge order alone fixes the output.
struct ShardRun {
  Schedule schedule;  // Shard-local flow ids.
  Round rounds = 0;
  int peak_backlog = 0;
  double avg_port_utilization = 0.0;
  bool ran = false;
};

ShardRun SimulateShard(const Instance& shard_instance, int shard,
                       const FabricRunOptions& options) {
  ShardRun run;
  if (shard_instance.num_flows() == 0) return run;
  const std::uint64_t seed = Rng::DeriveSeed(options.seed,
                                             static_cast<std::uint64_t>(shard));
  std::unique_ptr<SchedulingPolicy> policy =
      options.coflow_aware ? MakeCoflowPolicy(options.policy, seed)
                           : MakePolicy(options.policy, seed);
  SimulationOptions sim;
  if (options.max_rounds > 0) sim.max_rounds = options.max_rounds;
  sim.validate = options.validate;
  SimulationContext context;
  const SimulationResult r = Simulate(shard_instance, *policy, sim, &context);
  run.schedule = internal::MapRealizedSchedule(shard_instance, r.schedule);
  run.rounds = r.rounds;
  run.peak_backlog = r.peak_backlog;
  run.avg_port_utilization = r.avg_port_utilization;
  run.ran = true;
  return run;
}

}  // namespace

FabricResult RunFabric(const Instance& instance, const FabricAssignment& fa,
                       const FabricRunOptions& options) {
  FS_CHECK_EQ(static_cast<std::size_t>(instance.num_flows()),
              fa.shard_of_flow.size());
  const int shards = fa.shards;
  std::vector<ShardRun> runs(shards);

  const int jobs = std::clamp(options.jobs, 1, shards);
  if (jobs > 1) {
    ThreadPool pool(jobs);
    for (int s = 0; s < shards; ++s) {
      pool.Submit([&, s] {
        runs[s] = SimulateShard(fa.shard_instances[s], s, options);
      });
    }
    pool.Wait();
  } else {
    for (int s = 0; s < shards; ++s) {
      runs[s] = SimulateShard(fa.shard_instances[s], s, options);
    }
  }

  FabricResult result;
  result.schedule = Schedule(instance.num_flows());
  result.shard_reports.resize(shards);
  int busy_shards = 0;
  for (int s = 0; s < shards; ++s) {
    const ShardRun& run = runs[s];
    FabricShardReport& report = result.shard_reports[s];
    report.shard = s;
    report.num_flows = fa.shard_instances[s].num_flows();
    report.demand = fa.shard_demand[s];
    report.rounds = run.rounds;
    report.peak_backlog = run.peak_backlog;
    result.rounds = std::max(result.rounds, run.rounds);
    result.peak_backlog = std::max(result.peak_backlog, run.peak_backlog);
    if (run.ran) {
      result.avg_port_utilization += run.avg_port_utilization;
      ++busy_shards;
    }
  }
  if (busy_shards > 0) result.avg_port_utilization /= busy_shards;

  for (FlowId e = 0; e < instance.num_flows(); ++e) {
    const int s = fa.shard_of_flow[e];
    result.schedule.Assign(e, runs[s].schedule.round_of(fa.local_flow_id[e]));
  }
  return result;
}

}  // namespace flowsched
