/// FabricRunner: simulates every pod of a FabricAssignment and merges the
/// per-shard results into one fabric-level schedule.
///
/// Determinism contract (same bar as the sweep engine, exp/): shard s runs
/// a freshly created policy seeded with Rng::DeriveSeed(options.seed, s) on
/// its own SimulationContext, results land in a per-shard slot, and the
/// merge walks shards in index order — so the merged schedule, metrics and
/// diagnostics are byte-identical whether the shards ran serially or on the
/// exp ThreadPool with any `jobs` value.
///
/// The merged schedule assigns every *global* flow the round its pod chose.
/// Pods share the round clock but not port capacity: an output port
/// replicated into f pods can carry f x its base capacity in one round, so
/// the merged schedule is feasible under CapacityAllowance::Factor(K) (see
/// fabric/fabric_partition.h for why that is the honest model). Coflow CCT
/// over the merged schedule is automatically the cross-shard CCT — a split
/// group's completion is the max over its member pods' last rounds.
#ifndef FLOWSCHED_FABRIC_FABRIC_RUNNER_H_
#define FLOWSCHED_FABRIC_FABRIC_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "fabric/fabric_partition.h"
#include "model/schedule.h"
#include "scenario/scenario.h"

namespace flowsched {

/// Per-run knobs for RunFabric.
struct FabricRunOptions {
  /// Policy name: a MakeCoflowPolicy name when coflow_aware, else a
  /// MakePolicy name (core/online/policy.h).
  std::string policy = "fifo";
  /// Selects the policy factory: coflow-aware policies rank the backlog by
  /// group, flow-level policies per flow.
  bool coflow_aware = false;
  /// Base seed; shard s simulates with Rng::DeriveSeed(seed, s).
  std::uint64_t seed = 1;
  /// Worker threads for shard simulation (clamped to [1, shards]). Results
  /// are byte-identical for any value; > 1 borrows the exp ThreadPool.
  int jobs = 1;
  /// Per-shard simulation horizon; 0 = simulator default. Callers should
  /// pre-check it against the *global* SafeHorizon (every shard's horizon
  /// is bounded by it).
  Round max_rounds = 0;
  /// Per-round selection audits (SimulationOptions::validate).
  bool validate = true;
  /// Matching-kernel knobs for the maxweight policies (warm-start on by
  /// default — bit-exact; approx_eps > 0 opts into the auction matcher).
  MatchingOptions matching;
  /// Optional fault-injection script (scenario/scenario.h), expressed in
  /// *global* host / pod coordinates. RunFabric projects each event onto
  /// every shard's local ports (ProjectScenarioOps below) — a host outage
  /// downs its owned input/output ports in its own pod *and* every replica
  /// egress port other pods materialized for it, so no pod keeps sending
  /// toward a dead host. Not owned; must outlive the run.
  const ScenarioScript* scenario = nullptr;
};

/// What one pod's simulation contributed (diagnostic granularity; the
/// fabric totals below are what reports consume).
struct FabricShardReport {
  int shard = 0;
  int num_flows = 0;
  Capacity demand = 0;
  Round rounds = 0;
  int peak_backlog = 0;
  Round downtime_rounds = 0;
};

/// The merged fabric run.
struct FabricResult {
  /// Global flow id -> round, merged across pods. Validates against the
  /// original instance under CapacityAllowance::Factor(shards).
  Schedule schedule;
  /// Fabric makespan driver: max rounds any pod simulated.
  Round rounds = 0;
  /// Max backlog any pod's policy ever saw.
  int peak_backlog = 0;
  /// Mean per-pod port utilization over pods that carried flows.
  double avg_port_utilization = 0.0;
  /// Max over pods of rounds that pod spent with >= 1 port down (pods share
  /// the round clock, so this is the fabric's wall-clock downtime).
  Round downtime_rounds = 0;
  /// True when any pod's run ended without draining (scenario strands flows
  /// on dead ports, or a scenario run hit max_rounds). `schedule` is then
  /// partial and must not be consumed; `error` says which pod and why.
  bool truncated = false;
  std::string error;
  /// Per-pod breakdown, indexed by shard.
  std::vector<FabricShardReport> shard_reports;
};

/// Projects the global-coordinate `script` onto shard `shard` of `fa` as
/// shard-local per-side capacity ops (consumed via
/// SimulationOptions::scenario_ops). PORT_* / SET_CAPACITY events on host h
/// hit every local port mapped to h — the owned input/output in h's own pod
/// and replica egress ports elsewhere. POD_* events expand to every host
/// the partitioner assigned to that pod; a `PODS k` header must match
/// fa.shards (a script written for a different topology is an error), and a
/// headerless script simply has no pod events to check. Returns false with
/// a line-tagged *error on out-of-range hosts/pods or a PODS mismatch.
bool ProjectScenarioOps(const ScenarioScript& script,
                        const FabricAssignment& fa, int shard,
                        std::vector<ScenarioOp>* ops, std::string* error);

/// Simulates every shard of `fa` (built from `instance`) and merges.
/// `instance` must be the instance `fa` was partitioned from.
FabricResult RunFabric(const Instance& instance, const FabricAssignment& fa,
                       const FabricRunOptions& options);

}  // namespace flowsched

#endif  // FLOWSCHED_FABRIC_FABRIC_RUNNER_H_
