/// FabricSpec: the textual description of a sharded (multi-switch) run.
///
/// The ROADMAP north-star is fabric-scale traffic, but the paper's model —
/// and every solver in the repo — is a single N x N switch. The fabric
/// layer bridges the two by *sharding*: a `fabric:` spec wraps any existing
/// instance source and asks for its ports to be partitioned across K
/// independently simulated switches (pods), whose per-shard results are
/// merged into one fabric-level report (fabric/fabric_runner.h).
///
/// Spec grammar (api/instance_source.h loads these like any other source):
///
///   fabric:shards=K[,partition=hash|block],<inner-spec>
///
/// ("policy=" is accepted as an alias for "partition=" — the partitioning
/// policy; ToString() canonicalizes to "partition".)
///
/// where <inner-spec> is a complete instance source — a generator spec
/// (`poisson:...`, `coflow:...`, `fig4b`) or a CSV trace path. The inner
/// source starts at the first comma-separated segment that is not a fabric
/// `key=value` pair, so inner keys never collide with fabric keys:
///
///   fabric:shards=4,partition=block,coflow:ports=256,load=1.0,rounds=200
///
/// `LoadInstance` on a fabric spec returns the *inner* instance unchanged
/// (global port ids), stamped with the full spec as its source — so
/// flow-level solvers run the same traffic on one big switch (the natural
/// baseline) while `fabric.*` solvers recover shards/partition from the
/// stamp and shard it. Sweeps vary K through the `{shards}` axis.
#ifndef FLOWSCHED_FABRIC_FABRIC_SPEC_H_
#define FLOWSCHED_FABRIC_FABRIC_SPEC_H_

#include <string>

namespace flowsched {

/// Port-to-shard assignment rule. Both are pure functions of (host index,
/// shard count) — no RNG state — so a mapping is reproducible from the spec
/// text alone.
enum class FabricPartition {
  /// Contiguous blocks: host g goes to shard g / ceil(H / K). Preserves the
  /// port locality of clustered workloads, so coflows whose members share a
  /// port neighbourhood tend to stay intact within one shard.
  kBlock,
  /// splitmix64 hash of the host index modulo K. Spreads load evenly but
  /// scatters port neighbourhoods, so wide coflows almost always split.
  kHash,
};

/// Parsed form of a `fabric:` spec.
struct FabricSpec {
  int shards = 1;
  FabricPartition partition = FabricPartition::kBlock;
  /// The wrapped instance source, verbatim (generator spec or file path).
  std::string inner;

  /// Canonical spec text ("fabric:shards=K,partition=...,<inner>").
  std::string ToString() const;
};

/// True when `source` names a fabric spec ("fabric" or "fabric:...").
bool IsFabricSpec(const std::string& source);

/// Maps a partitioner name ("hash", "block") to its enum. The single
/// vocabulary shared by spec parsing and the fabric.* solvers' `partition`
/// param. Returns false (out untouched) for unknown names.
bool ParsePartitionName(const std::string& name, FabricPartition& out);

/// Parses `source` into `spec`. Returns false and fills *error (if
/// non-null) on malformed input: unknown fabric keys (named in the error),
/// shards < 1, an unknown partition name, or a missing inner spec. The
/// inner spec is split off but not itself validated here — the instance
/// loader owns inner validation (api/instance_source.h).
bool ParseFabricSpec(const std::string& source, FabricSpec& spec,
                     std::string* error = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_FABRIC_FABRIC_SPEC_H_
