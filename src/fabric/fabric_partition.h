/// Deterministic sharding of a flow/coflow instance across fabric pods.
///
/// The fabric model: K independent switches (pods) share one round clock.
/// *Hosts* — the unified index behind input port g and output port g, the
/// same identification the model uses for src == dst flows — are assigned
/// to pods by the partitioner (fabric/fabric_spec.h). Every flow is
/// simulated in the pod that owns its **source** host: a pod owns its input
/// ports exclusively, while an output port whose host lives in another pod
/// is materialized locally as a *replica* egress port with the global
/// port's capacity (each pod has its own uplink toward remote hosts).
///
/// Two consequences, both deliberate and both surfaced as metrics rather
/// than hidden:
///   - A global output port touched by f pods can carry up to f x its base
///     capacity per round, so a merged fabric schedule validates under
///     CapacityAllowance::Factor(K) — sharding *is* resource augmentation,
///     expressed with the same first-class allowance the paper's theorems
///     use. `cross_shard_flows` counts the flows that used a replica.
///   - A coflow whose member sources land in different pods is *split*: no
///     single pod observes the whole group, and its fabric CCT is the max
///     over the member pods' completions (which the merged global schedule
///     yields automatically). `split_coflows` counts such groups; the block
///     partitioner keeps port-local coflows intact, the hash partitioner
///     scatters them.
#ifndef FLOWSCHED_FABRIC_FABRIC_PARTITION_H_
#define FLOWSCHED_FABRIC_FABRIC_PARTITION_H_

#include <vector>

#include "fabric/fabric_spec.h"
#include "model/instance.h"

namespace flowsched {

/// The materialized shard decomposition of one instance: per-pod
/// sub-instances with local port ids, plus the maps to carry per-shard
/// results back to global flow ids and the imbalance/split bookkeeping the
/// fabric reports surface.
struct FabricAssignment {
  int shards = 0;
  FabricPartition partition = FabricPartition::kBlock;

  /// Host (unified input/output index) -> owning shard.
  std::vector<int> shard_of_host;
  /// Global flow id -> shard that simulates it (the shard of its src host).
  std::vector<int> shard_of_flow;
  /// Global flow id -> flow id inside its shard's instance.
  std::vector<FlowId> local_flow_id;
  /// Per-shard sub-instances. Local inputs are the shard's owned hosts in
  /// ascending global order; local outputs are the owned hosts followed by
  /// the touched replica ports in ascending global order. Flows keep their
  /// global demand, release, and coflow tag. Shards with no flows carry an
  /// empty flow list (the runner skips them).
  std::vector<Instance> shard_instances;

  /// Per-shard local port id -> global host, both sides (the inverse of the
  /// local ranks above). Owned ports map to their global host; the replica
  /// tail of the output side maps to the replicated host; pad ports (an
  /// empty side filled with one unit port) map to -1. The scenario engine
  /// projects global host events through these (fabric_runner.h).
  std::vector<std::vector<PortId>> shard_input_host;
  std::vector<std::vector<PortId>> shard_output_host;

  /// Total demand assigned to each shard (the load-imbalance numerator).
  std::vector<Capacity> shard_demand;
  /// Flows whose destination host lives in a different shard than their
  /// source (simulated against a replica egress port).
  long long cross_shard_flows = 0;
  /// Tagged coflows whose members are simulated in more than one shard.
  int split_coflows = 0;
  /// Tagged coflows in the instance (split_coflows' denominator).
  int tagged_coflows = 0;

  /// max(shard demand) / mean(shard demand): 1.0 = perfectly balanced,
  /// K = everything on one shard. 0 when the instance has no demand.
  double LoadImbalance() const;
};

/// Shard of host g under `partition` with `shards` pods. Pure function —
/// the same (g, shards) pair maps identically on every platform.
int ShardOfHost(PortId host, int shards, FabricPartition partition,
                int num_hosts);

/// Decomposes `instance` into `shards` pods. Requires shards >= 1; the
/// instance must be valid (Instance::ValidationError). shards == 1 yields
/// one shard whose instance equals the input (modulo port identity).
FabricAssignment PartitionInstance(const Instance& instance, int shards,
                                   FabricPartition partition);

}  // namespace flowsched

#endif  // FLOWSCHED_FABRIC_FABRIC_PARTITION_H_
