#include "fabric/fabric_partition.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/rng.h"

namespace flowsched {
namespace {

// Fixed salt decorrelating the hash partitioner from every other DeriveSeed
// stream in the repo (workload seeds, sweep task seeds). Part of the
// on-disk determinism contract: changing it re-shards every hash fabric.
constexpr std::uint64_t kHashPartitionSalt = 0xfab51c5a17ULL;

}  // namespace

double FabricAssignment::LoadImbalance() const {
  Capacity total = 0;
  Capacity peak = 0;
  for (const Capacity d : shard_demand) {
    total += d;
    peak = std::max(peak, d);
  }
  if (total <= 0 || shards <= 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards);
  return static_cast<double>(peak) / mean;
}

int ShardOfHost(PortId host, int shards, FabricPartition partition,
                int num_hosts) {
  FS_CHECK_GE(shards, 1);
  if (shards == 1) return 0;
  if (partition == FabricPartition::kHash) {
    return static_cast<int>(
        Rng::DeriveSeed(kHashPartitionSalt, static_cast<std::uint64_t>(host)) %
        static_cast<std::uint64_t>(shards));
  }
  const int per_shard = (num_hosts + shards - 1) / shards;  // ceil
  return std::min(host / per_shard, shards - 1);
}

FabricAssignment PartitionInstance(const Instance& instance, int shards,
                                   FabricPartition partition) {
  FS_CHECK_GE(shards, 1);
  const SwitchSpec& sw = instance.sw();
  const int num_hosts = std::max(sw.num_inputs(), sw.num_outputs());

  FabricAssignment fa;
  fa.shards = shards;
  fa.partition = partition;
  fa.shard_of_host.resize(num_hosts);
  for (int g = 0; g < num_hosts; ++g) {
    fa.shard_of_host[g] = ShardOfHost(g, shards, partition, num_hosts);
  }

  // Local port ranks: hosts owned by a shard appear in ascending global
  // order on both sides, so local ids are the prefix ranks of ownership.
  std::vector<int> local_input(sw.num_inputs(), -1);
  std::vector<int> local_output(sw.num_outputs(), -1);
  std::vector<int> inputs_owned(shards, 0);
  std::vector<int> outputs_owned(shards, 0);
  for (int g = 0; g < sw.num_inputs(); ++g) {
    local_input[g] = inputs_owned[fa.shard_of_host[g]]++;
  }
  for (int g = 0; g < sw.num_outputs(); ++g) {
    local_output[g] = outputs_owned[fa.shard_of_host[g]]++;
  }

  // Pass 1: place each flow at its source's shard; collect the foreign
  // output ports every shard touches (its replica egress set).
  fa.shard_of_flow.resize(instance.num_flows());
  std::vector<std::vector<PortId>> replicas(shards);
  fa.shard_demand.assign(shards, 0);
  std::map<CoflowId, int> coflow_shard;  // Tag -> first shard, -2 = split.
  for (const Flow& e : instance.flows()) {
    const int s = fa.shard_of_host[e.src];
    fa.shard_of_flow[e.id] = s;
    fa.shard_demand[s] += e.demand;
    if (fa.shard_of_host[e.dst] != s) {
      ++fa.cross_shard_flows;
      replicas[s].push_back(e.dst);
    }
    if (e.coflow != kNoCoflow) {
      const auto [it, inserted] = coflow_shard.try_emplace(e.coflow, s);
      if (!inserted && it->second != s && it->second != -2) {
        it->second = -2;
        ++fa.split_coflows;
      }
    }
  }
  fa.tagged_coflows = static_cast<int>(coflow_shard.size());

  // Replica ids are appended after the owned outputs, in ascending global
  // order — a pure function of the touched set, independent of flow order.
  std::vector<std::vector<PortId>> replica_of_local(shards);
  std::vector<std::map<PortId, int>> replica_rank(shards);
  for (int s = 0; s < shards; ++s) {
    auto& r = replicas[s];
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    for (std::size_t k = 0; k < r.size(); ++k) {
      replica_rank[s][r[k]] = outputs_owned[s] + static_cast<int>(k);
    }
  }

  // Pass 2: assemble each shard's switch and flow list. Owned ports are all
  // present (a pod's switch is ~N/K-sized whether or not every port is
  // busy); capacities copy from the global spec, replicas included.
  std::vector<std::vector<Capacity>> in_caps(shards);
  std::vector<std::vector<Capacity>> out_caps(shards);
  for (int s = 0; s < shards; ++s) {
    in_caps[s].resize(inputs_owned[s]);
    out_caps[s].resize(outputs_owned[s] + replicas[s].size());
  }
  for (int g = 0; g < sw.num_inputs(); ++g) {
    in_caps[fa.shard_of_host[g]][local_input[g]] = sw.input_capacity(g);
  }
  for (int g = 0; g < sw.num_outputs(); ++g) {
    out_caps[fa.shard_of_host[g]][local_output[g]] = sw.output_capacity(g);
  }
  for (int s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < replicas[s].size(); ++k) {
      out_caps[s][outputs_owned[s] + k] = sw.output_capacity(replicas[s][k]);
    }
  }

  // Local -> global host maps (scenario projection): the exact inverse of
  // the local ranks, replica tail included.
  fa.shard_input_host.assign(shards, {});
  fa.shard_output_host.assign(shards, {});
  for (int s = 0; s < shards; ++s) {
    fa.shard_input_host[s].resize(in_caps[s].size());
    fa.shard_output_host[s].resize(out_caps[s].size());
  }
  for (int g = 0; g < sw.num_inputs(); ++g) {
    fa.shard_input_host[fa.shard_of_host[g]][local_input[g]] = g;
  }
  for (int g = 0; g < sw.num_outputs(); ++g) {
    fa.shard_output_host[fa.shard_of_host[g]][local_output[g]] = g;
  }
  for (int s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < replicas[s].size(); ++k) {
      fa.shard_output_host[s][outputs_owned[s] + k] = replicas[s][k];
    }
  }

  fa.shard_instances.reserve(shards);
  std::vector<int> shard_flows(shards, 0);
  for (const Flow& e : instance.flows()) ++shard_flows[fa.shard_of_flow[e.id]];
  for (int s = 0; s < shards; ++s) {
    // A pod that owns no port on one side (more shards than hosts, or a
    // lopsided switch) still needs a well-formed SwitchSpec; pad the empty
    // side with one unit port. Such pods carry no flows on that side, so
    // the pad never schedules anything.
    if (in_caps[s].empty()) {
      in_caps[s].push_back(1);
      fa.shard_input_host[s].push_back(-1);
    }
    if (out_caps[s].empty()) {
      out_caps[s].push_back(1);
      fa.shard_output_host[s].push_back(-1);
    }
    Instance shard(SwitchSpec(std::move(in_caps[s]), std::move(out_caps[s])),
                   {});
    shard.Reserve(shard_flows[s]);
    fa.shard_instances.push_back(std::move(shard));
  }

  fa.local_flow_id.resize(instance.num_flows());
  for (const Flow& e : instance.flows()) {
    const int s = fa.shard_of_flow[e.id];
    const PortId dst = fa.shard_of_host[e.dst] == s
                           ? local_output[e.dst]
                           : replica_rank[s].at(e.dst);
    fa.local_flow_id[e.id] = fa.shard_instances[s].AddFlow(
        local_input[e.src], dst, e.demand, e.release, e.coflow);
  }
  return fa;
}

}  // namespace flowsched
