// Adapters exposing sharded-fabric simulation as registered solvers:
// "fabric.<policy>" partitions the instance across K pods
// (fabric/fabric_partition.h), simulates each pod with <policy>, and merges
// (fabric/fabric_runner.h). Coflow-aware policy names (sebf, maxweight,
// fifo) take precedence over flow-level ones where the namespaces collide,
// so `fabric.fifo` is FIFO-of-coflows, mirroring how coflow traffic is the
// fabric's native workload; the remaining flow-level policies (srpt,
// maxcard, minrtime, random, hybrid) register alongside.
//
// Shard count and partitioner resolve from, in priority order: the
// `shards` / `partition` params, then the instance's `fabric:` source
// stamp (api/instance_source.h). A missing shard count is an error — a
// fabric run with an ambient default would silently benchmark the wrong
// topology.
#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_solvers.h"
#include "api/registry.h"
#include "api/scenario_support.h"
#include "coflow/coflow_metrics.h"
#include "coflow/coflow_policies.h"
#include "fabric/fabric_runner.h"
#include "fabric/fabric_spec.h"
#include "model/coflow.h"
#include "model/metrics.h"

namespace flowsched {
namespace internal {
namespace {

bool IsMatchingBased(const std::string& policy, bool coflow_aware) {
  if (coflow_aware) return policy == "maxweight";
  return policy == "maxcard" || policy == "minrtime" ||
         policy == "maxweight" || policy == "hybrid";
}

class FabricPolicySolver : public Solver {
 public:
  FabricPolicySolver(std::string policy, bool coflow_aware)
      : policy_(std::move(policy)),
        coflow_aware_(coflow_aware),
        name_("fabric." + policy_),
        description_(
            std::string("sharded fabric: partitions the instance across K "
                        "pods and simulates each with the ") +
            (coflow_aware_ ? "coflow-aware " : "flow-level ") + policy_ +
            " policy (merged metrics, cross-shard CCT, load imbalance)") {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"shards",
             "pod count K (required unless the instance came from a "
             "fabric: spec; overrides the spec when both are given)"},
            {"partition",
             "port partitioner: block or hash (default: the fabric: spec's "
             "choice, else block)"},
            {"jobs",
             "threads simulating pods in parallel (default 1; results are "
             "byte-identical for any value)"},
            ScenarioParamDoc(),
            {"validate",
             "0/1 (default 1): per-round selection audits inside each pod"},
            {"warmstart",
             "0/1 (default 1, maxweight only): reuse each pod's previous "
             "round of Hungarian work via the incremental matcher "
             "(bit-exact)"},
            {"approx",
             "eps > 0 (default 0 = exact, maxweight only): eps-approximate "
             "auction matcher inside each pod"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    std::vector<SolverKeyDoc> docs = {
        {"shards", "pod count the run used"},
        {"rounds_simulated", "fabric makespan: max rounds any pod ran"},
        {"avg_port_utilization", "mean pod port utilization"},
        {"peak_backlog", "largest backlog any pod's policy saw"},
        {"cross_shard_flows",
         "flows whose destination host lives in another pod (served "
         "via a replica egress port)"},
        {"split_coflows",
         "tagged coflows simulated in more than one pod (their CCT is "
         "the max over member pods)"},
        {"load_imbalance",
         "max pod demand / mean pod demand (1.0 = balanced)"},
        {"num_coflows", "groups (untagged flows count as singletons)"},
        {"num_tagged_coflows", "groups with a real coflow tag"},
        {"total_cct", "sum of per-group fabric completion times"},
        {"avg_cct", "mean fabric CCT"},
        {"p50_cct", "median fabric CCT"},
        {"p95_cct", "95th-percentile fabric CCT"},
        {"p99_cct", "99th-percentile fabric CCT"},
        {"max_cct", "slowest group's fabric CCT"},
        {"avg_slowdown", "mean CCT / single-switch isolation bound"},
        {"max_slowdown", "worst group slowdown vs isolation"}};
    AppendScenarioDiagnosticDocs(&docs);
    return docs;
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (IsMatchingBased(policy_, coflow_aware_) && instance.MaxDemand() > 1) {
      report.error = name_ + " is matching-based and requires unit demands";
      return report;
    }

    // Fabric topology: explicit params override the instance's fabric:
    // source stamp; without either, fail loudly.
    FabricSpec from_source;
    const bool stamped =
        IsFabricSpec(instance.source()) &&
        ParseFabricSpec(instance.source(), from_source, nullptr);
    std::string perr;
    const bool shards_given = options.params.count("shards") > 0;
    int shards = static_cast<int>(options.IntParamOr("shards", 0, &perr));
    if (shards_given && perr.empty() && shards < 1) {
      report.error = "parameter shards must be >= 1, got " +
                     std::to_string(shards);
      return report;
    }
    if (!shards_given && stamped) shards = from_source.shards;
    FabricPartition partition =
        stamped ? from_source.partition : FabricPartition::kBlock;
    const std::string partition_name = options.ParamOr("partition", "");
    if (!partition_name.empty() &&
        !ParsePartitionName(partition_name, partition)) {
      report.error = "parameter partition must be block or hash, got \"" +
                     partition_name + "\"";
      return report;
    }
    const int jobs = static_cast<int>(options.IntParamOr("jobs", 1, &perr));
    const bool validate = options.IntParamOr("validate", 1, &perr) != 0;
    MatchingOptions matching;
    matching.warmstart = options.IntParamOr("warmstart", 1, &perr) != 0;
    matching.approx_eps = options.DoubleParamOr("approx", 0.0, &perr);
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    if (matching.approx_eps < 0.0) {
      report.error = "approx must be >= 0";
      return report;
    }
    if (shards < 1) {
      report.error =
          "fabric solvers need a shard count: load a "
          "\"fabric:shards=K,...\" instance or pass shards=K "
          "(got " + std::to_string(shards) + ")";
      return report;
    }
    if (jobs < 1) {
      report.error = "parameter jobs must be >= 1";
      return report;
    }

    FabricRunOptions run_options;
    run_options.policy = policy_;
    run_options.coflow_aware = coflow_aware_;
    run_options.seed = options.seed;
    run_options.jobs = jobs;
    run_options.validate = validate;
    run_options.matching = matching;
    if (options.max_rounds > 0) {
      // Every pod's safe horizon is bounded by the global one (fewer
      // flows, same releases), so the global check covers all pods.
      if (options.max_rounds < instance.SafeHorizon()) {
        report.error = "max_rounds " + std::to_string(options.max_rounds) +
                       " is below the safe horizon " +
                       std::to_string(instance.SafeHorizon());
        return report;
      }
      run_options.max_rounds = options.max_rounds;
    }
    ScenarioScript script;
    bool has_scenario = false;
    if (!LoadScenarioOption(options, &script, &has_scenario, &report.error)) {
      return report;
    }
    if (has_scenario) run_options.scenario = &script;

    // MIGRATE rules re-home arrivals *before* partitioning — a migrated
    // flow lands in (and is simulated by) its destination's pod. Flow ids
    // are preserved, so the merged schedule still lines up with the
    // original instance for metrics. The remaining timed events project
    // into each pod as usual (fabric_runner.h).
    long long migrated_flows = 0;
    Instance migrated;
    const Instance* run_instance = &instance;
    if (has_scenario && script.has_migrations()) {
      migrated = ApplyScenarioMigrations(instance, script, &migrated_flows);
      run_instance = &migrated;
    }

    const FabricAssignment fa =
        PartitionInstance(*run_instance, shards, partition);
    const FabricResult r = RunFabric(*run_instance, fa, run_options);
    if (r.truncated) {
      report.error = r.error;
      return report;
    }

    report.ok = true;
    report.schedule = r.schedule;
    // Pods own their input ports but replicate remote egress, so the
    // merged schedule is feasible with K x output capacity — sharding as
    // resource augmentation (docs/architecture.md "The fabric layer").
    // MIGRATE additionally shifts load onto destination hosts while the
    // facade audits against the original ports, so the destinations'
    // capacity rides along as additive slack (scenario/scenario.h).
    report.allowance = shards == 1 ? CapacityAllowance::Exact()
                                   : CapacityAllowance::Factor(shards);
    if (has_scenario && script.has_migrations()) {
      report.allowance.additive =
          MigrationCapacityAllowance(script, instance.sw());
    }
    report.diagnostics["shards"] = shards;
    report.diagnostics["rounds_simulated"] = r.rounds;
    report.diagnostics["avg_port_utilization"] = r.avg_port_utilization;
    report.diagnostics["peak_backlog"] = r.peak_backlog;
    report.diagnostics["cross_shard_flows"] =
        static_cast<double>(fa.cross_shard_flows);
    report.diagnostics["split_coflows"] = fa.split_coflows;
    report.diagnostics["load_imbalance"] = fa.LoadImbalance();

    const CoflowSet coflows(instance);
    const CoflowMetrics cm =
        ComputeCoflowMetrics(instance, coflows, report.schedule);
    report.diagnostics["num_coflows"] = coflows.num_groups();
    report.diagnostics["num_tagged_coflows"] = coflows.num_tagged();
    report.diagnostics["total_cct"] = cm.total_cct;
    report.diagnostics["avg_cct"] = cm.avg_cct;
    report.diagnostics["p50_cct"] = cm.p50_cct;
    report.diagnostics["p95_cct"] = cm.p95_cct;
    report.diagnostics["p99_cct"] = cm.p99_cct;
    report.diagnostics["max_cct"] = cm.max_cct;
    report.diagnostics["avg_slowdown"] = cm.avg_slowdown;
    report.diagnostics["max_slowdown"] = cm.max_slowdown;
    if (has_scenario) {
      // Fault-free baseline: the same seeds with no overlay and no
      // migrations — it partitions the ORIGINAL instance, so the
      // surge/inflation deltas isolate the scenario's full effect
      // (including MIGRATE re-homing flows into other pods).
      FabricRunOptions base_options = run_options;
      base_options.scenario = nullptr;
      const FabricAssignment base_fa =
          script.has_migrations() ? PartitionInstance(instance, shards,
                                                      partition)
                                  : fa;
      const FabricResult base = RunFabric(instance, base_fa, base_options);
      const double faulty_response =
          ComputeMetrics(instance, report.schedule).total_response;
      const double base_response =
          ComputeMetrics(instance, base.schedule).total_response;
      AddScenarioDiagnostics(script, r.rounds, r.downtime_rounds,
                             r.peak_backlog, faulty_response,
                             base.peak_backlog, base_response,
                             migrated_flows, &report);
    }
    return report;
  }

 private:
  std::string policy_;
  bool coflow_aware_;
  std::string name_;
  std::string description_;
};

}  // namespace

void RegisterFabricSolvers(SolverRegistry& registry) {
  std::vector<std::pair<std::string, bool>> policies;
  for (const std::string& p : AllCoflowPolicyNames()) {
    policies.emplace_back(p, /*coflow_aware=*/true);
  }
  for (const std::string& p : AllPolicyNames()) {
    const bool taken =
        std::any_of(policies.begin(), policies.end(),
                    [&](const auto& entry) { return entry.first == p; });
    if (!taken) policies.emplace_back(p, /*coflow_aware=*/false);
  }
  for (const auto& [policy, coflow_aware] : policies) {
    auto factory = [policy, coflow_aware] {
      return std::make_unique<FabricPolicySolver>(policy, coflow_aware);
    };
    auto probe = factory();
    registry.Register(std::string(probe->name()),
                      std::string(probe->description()), std::move(factory));
  }
}

}  // namespace internal
}  // namespace flowsched
