// Text wire protocol of the flowsched_serve daemon (one command per line;
// full specification in docs/serve-protocol.md):
//
//   ARRIVE <id> <src> <dst> <size> [coflow]   queue a flow for this round
//   TICK                                      simulate one round
//   STATS                                     request a stats line now
//   FAULT <port>                              down host <port> (both sides)
//   RECOVER <port>                            restore host <port> to base
//   STOP                                      finish: final summary, exit
//
// Blank lines and lines starting with '#' are ignored. Tokens are
// whitespace-separated decimal integers. The daemon replies with MATCH /
// STATS / DONE / ERROR lines (serve/daemon.h).
#ifndef FLOWSCHED_SERVE_WIRE_PROTOCOL_H_
#define FLOWSCHED_SERVE_WIRE_PROTOCOL_H_

#include <string>

#include "model/flow.h"

namespace flowsched {

struct WireCommand {
  enum class Kind {
    kNone,  // Blank line or comment — nothing to do.
    kArrive,
    kTick,
    kStats,
    kFault,
    kRecover,
    kStop,
  };
  Kind kind = Kind::kNone;
  Flow flow;  // For kArrive: id/src/dst/demand/coflow (release unset).
  PortId port = 0;  // For kFault/kRecover: the host to down/restore.
};

// Parses one protocol line. Returns false (with *error set) on a malformed
// line — unknown verb, wrong arity, unparsable integer, size < 1.
bool ParseWireLine(const std::string& line, WireCommand* command,
                   std::string* error);

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_WIRE_PROTOCOL_H_
