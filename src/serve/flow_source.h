// Pull-based flow sources for the streaming scheduler service.
//
// A StreamingFlowSource hands the StreamingSimulator one round of arrivals
// at a time, so nothing on this path ever materializes the whole stream:
// the memory contract is that a source buffers at most a *bounded arrival
// window* — generator sources hold the next nonempty round they have drawn
// ahead to, the trace source holds a single lookahead row. Exhausted() and
// NextArrivalRound() may read or draw ahead within that window (which is
// why they are non-const); what they buffer is later emitted verbatim by
// ArrivalsInto().
//
// Determinism contract: driving the StreamingSimulator from a source over
// a finite stream yields results bit-identical to batch Simulate() on the
// materialized instance (locked by tests/serve/). Generator sources
// guarantee this by consuming the generator RNG round-by-round in exactly
// the batch order (workload/ Append*Round primitives).
#ifndef FLOWSCHED_SERVE_FLOW_SOURCE_H_
#define FLOWSCHED_SERVE_FLOW_SOURCE_H_

#include <string>
#include <vector>

#include "model/instance.h"

namespace flowsched {

class StreamingFlowSource {
 public:
  virtual ~StreamingFlowSource() = default;

  // The switch the stream runs on; fixed for the source's lifetime.
  virtual const SwitchSpec& sw() const = 0;

  // Appends every not-yet-emitted flow released at rounds <= t to *out
  // (ids are assigned downstream, releases are clamped to the round the
  // simulator admits them in). Called with strictly increasing t.
  virtual void ArrivalsInto(Round t, std::vector<Flow>* out) = 0;

  // True when no arrival remains at any round >= t. May scan or draw ahead
  // (bounded window) to answer.
  virtual bool Exhausted(Round t) = 0;

  // Earliest round >= t that carries an arrival; t when none is known.
  // Lets the simulator fast-forward idle gaps instead of spinning round by
  // round (the hoisted replacement for ReplayArrivals' internal search).
  virtual Round NextArrivalRound(Round t) = 0;

  // Sources that can fail mid-stream (trace parse errors, out-of-order
  // rows) report here; the simulator stops pulling when ok() turns false.
  virtual bool ok() const { return true; }
  virtual std::string error() const { return std::string(); }
};

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_FLOW_SOURCE_H_
