// Session core of the flowsched_serve daemon: everything except transport
// setup (stdin vs. socket, flag parsing) lives here so tests and the
// --smoke self-check can drive full sessions over string streams.
//
// A session writes line-oriented replies:
//   MATCH <round> <id>...   flows scheduled in a round (unless disabled)
//   STATS <json>            periodic (every stats_every rounds) and on the
//                           wire STATS command
//   ERROR <message>         malformed/rejected input line (line is ignored,
//                           the session continues)
//   DONE <json>             final summary on STOP / EOF / stream end
#ifndef FLOWSCHED_SERVE_DAEMON_H_
#define FLOWSCHED_SERVE_DAEMON_H_

#include <csignal>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/online/policy.h"
#include "scenario/scenario.h"
#include "serve/flow_source.h"
#include "serve/streaming_simulator.h"

namespace flowsched {

struct ServeOptions {
  std::string policy = "online.srpt";  // Any online.* / coflow.* policy.
  std::uint64_t seed = 1;              // For seeded policies (online.random).
  Round stats_every = 0;               // Periodic STATS cadence; 0 = off.
  bool emit_match = true;
  bool validate = true;
  Round max_rounds = -1;  // < 0: unbounded.
  // Fault-injection script applied to the session's switch (--scenario).
  const ScenarioScript* scenario = nullptr;
  // Cooperative shutdown flag (SIGINT/SIGTERM): pull sessions finish the
  // round in flight and emit DONE (StreamingOptions::stop).
  const volatile std::sig_atomic_t* stop = nullptr;
  // Matching-kernel knobs for the maxweight policies (warm-start Hungarian
  // on by default; approx_eps > 0 opts into the auction matcher). Streams
  // are exactly where warm starts pay off: one long-lived policy, small
  // per-round backlog deltas.
  MatchingOptions matching;
};

// Builds the policy behind a registry-style name: "online.<p>" maps to
// MakePolicy(p), "coflow.<p>" to MakeCoflowPolicy(p). Null + *error for
// anything else.
std::unique_ptr<SchedulingPolicy> MakeServePolicy(
    const std::string& name, std::string* error, std::uint64_t seed = 1,
    const MatchingOptions& matching = {});

// Wire-protocol session: reads commands from `in` until STOP or EOF,
// writes MATCH/STATS/ERROR lines and the final DONE summary to `out`.
// Returns the summary (summary.source_error is never set here; protocol
// errors are per-line ERROR replies).
StreamingSummary RunWireSession(const SwitchSpec& sw, std::istream& in,
                                std::ostream& out,
                                const ServeOptions& options);

// Pull session over a source (generator spec or trace): runs the stream to
// completion, writing MATCH/STATS lines and the final DONE summary.
StreamingSummary RunSourceSession(StreamingFlowSource& source,
                                  std::ostream& out,
                                  const ServeOptions& options);

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_DAEMON_H_
