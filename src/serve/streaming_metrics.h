// Windowed streaming metrics for the scheduler service.
//
// The batch path keeps a per-flow response vector and computes exact
// percentiles at the end; on an unbounded stream that vector is exactly
// the O(all flows) state the serve path exists to avoid. Instead this
// keeps, for response times and coflow completion times (CCTs):
//
//   * cumulative RunningStats (Welford: count/sum/mean/stddev/min/max) —
//     sums of small-integer round counts, so totals stay exact and
//     byte-comparable with the batch metrics;
//   * cumulative P² quantile markers for p50/p95/p99 (util/stats.h) —
//     O(1)-memory estimates, not compared bit-for-bit with batch;
//   * a tumbling window (reset at every stats emission) so periodic JSONL
//     lines show current behavior, not the all-time average.
//
// Everything here is O(1) memory regardless of stream length.
#ifndef FLOWSCHED_SERVE_STREAMING_METRICS_H_
#define FLOWSCHED_SERVE_STREAMING_METRICS_H_

#include <string>

#include "model/flow.h"
#include "util/stats.h"

namespace flowsched {

// One metric channel: cumulative Welford + P² + the current window.
class StreamingDistribution {
 public:
  void Add(double x);

  const RunningStats& total() const { return total_; }
  const RunningStats& window() const { return window_; }
  double p50() const { return p50_.Estimate(); }
  double p95() const { return p95_.Estimate(); }
  double p99() const { return p99_.Estimate(); }

  void ResetWindow() { window_ = RunningStats(); }

 private:
  RunningStats total_;
  RunningStats window_;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

class StreamingMetrics {
 public:
  // A flow picked in round t that was released at round r has response
  // t + 1 - r (model/metrics.h's rho).
  void RecordResponse(double response) { response_.Add(response); }
  // CCT of a drained coflow group (untagged flows are singleton groups
  // whose CCT equals their response, matching model/coflow.h's grouping).
  void RecordCct(double cct) { cct_.Add(cct); }

  const StreamingDistribution& response() const { return response_; }
  const StreamingDistribution& cct() const { return cct_; }

  // One JSONL stats object for round t (no trailing newline), then resets
  // the tumbling windows. `backlog` is the live backlog size after round
  // t. Schema documented in docs/serve-protocol.md.
  std::string StatsLine(Round t, std::size_t backlog);

 private:
  StreamingDistribution response_;
  StreamingDistribution cct_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_STREAMING_METRICS_H_
