// Concrete StreamingFlowSource adapters:
//
//   InstanceStreamSource   replays a materialized Instance (tests, smoke
//                          checks) — the streaming twin of the simulator's
//                          internal ReplayArrivals.
//   PoissonStreamSource    draws workload/poisson.h rounds on demand; with
//                          a negative horizon the stream never ends.
//   CoflowStreamSource     likewise for workload/coflow_gen.h.
//   TrafficStreamSource    likewise for traffic/traffic_gen.h (CDF-driven
//                          realistic workloads).
//   TraceStreamSource      reads instance-CSV rows line by line through
//                          model/trace_io.h's InstanceCsvReader; rows must
//                          be sorted by release (generator-written traces
//                          are), out-of-order rows are a stream error.
//
// Generator sources draw whole rounds in round order — the same RNG
// consumption as the batch generators — and buffer only the latest drawn,
// not-yet-emitted arrivals (at most one nonempty round ahead).
#ifndef FLOWSCHED_SERVE_STREAM_SOURCES_H_
#define FLOWSCHED_SERVE_STREAM_SOURCES_H_

#include <istream>
#include <vector>

#include "model/trace_io.h"
#include "serve/flow_source.h"
#include "traffic/traffic_gen.h"
#include "util/rng.h"
#include "workload/coflow_gen.h"
#include "workload/poisson.h"

namespace flowsched {

// Shared draw-ahead machinery of the generator-backed sources. The horizon
// is the number of rounds the generator runs for; negative means unbounded
// (rounds=inf specs). Unbounded streams require a positive arrival rate —
// otherwise the draw-ahead scan for the next nonempty round would never
// terminate; MakeStreamSource enforces that.
class RoundGeneratorSource : public StreamingFlowSource {
 public:
  const SwitchSpec& sw() const override { return sw_; }
  void ArrivalsInto(Round t, std::vector<Flow>* out) override;
  bool Exhausted(Round t) override;
  Round NextArrivalRound(Round t) override;

 protected:
  RoundGeneratorSource(SwitchSpec sw, Round horizon)
      : sw_(std::move(sw)), horizon_(horizon) {}

  // Appends round t's arrivals (release = t) to *out.
  virtual void DrawRound(Round t, std::vector<Flow>* out) = 0;

 private:
  bool DrawingDone() const { return horizon_ >= 0 && next_draw_ >= horizon_; }
  void DrawThrough(Round t);
  void DrawUntilNonEmpty();

  SwitchSpec sw_;
  Round horizon_;
  Round next_draw_ = 0;
  std::vector<Flow> buffer_;  // Drawn, unemitted; releases non-decreasing.
};

class PoissonStreamSource : public RoundGeneratorSource {
 public:
  // `horizon` < 0 streams forever; config.num_rounds is ignored.
  PoissonStreamSource(const PoissonConfig& config, Round horizon);

 protected:
  void DrawRound(Round t, std::vector<Flow>* out) override;

 private:
  PoissonConfig config_;
  Rng rng_;
};

class CoflowStreamSource : public RoundGeneratorSource {
 public:
  CoflowStreamSource(const CoflowGenConfig& config, Round horizon);

 protected:
  void DrawRound(Round t, std::vector<Flow>* out) override;

 private:
  CoflowGenConfig config_;
  Rng rng_;
  CoflowId next_coflow_ = 0;
};

class TrafficStreamSource : public RoundGeneratorSource {
 public:
  // `config` must pass GenerateTraffic's validation; config.num_rounds is
  // ignored (the horizon rules).
  TrafficStreamSource(const TrafficConfig& config, Round horizon);

 protected:
  void DrawRound(Round t, std::vector<Flow>* out) override;

 private:
  TrafficConfig config_;
  Rng rng_;
  CoflowId next_coflow_ = 0;
};

// Replays `instance` (borrowed; must outlive the source) in release order,
// stable by flow id — exactly the order batch simulation admits them.
class InstanceStreamSource : public StreamingFlowSource {
 public:
  explicit InstanceStreamSource(const Instance& instance);

  const SwitchSpec& sw() const override { return instance_->sw(); }
  void ArrivalsInto(Round t, std::vector<Flow>* out) override;
  bool Exhausted(Round /*t*/) override { return next_ >= order_.size(); }
  Round NextArrivalRound(Round t) override;

 private:
  const Instance* instance_;
  std::vector<FlowId> order_;    // Flow ids sorted by (release, id).
  std::vector<Round> releases_;  // Aligned with order_, non-decreasing.
  std::size_t next_ = 0;
};

// Streams instance-CSV rows from `in` (borrowed; must outlive the source)
// without materializing the file. Requires rows sorted by release; a
// malformed or out-of-order row flips ok() and ends the stream.
class TraceStreamSource : public StreamingFlowSource {
 public:
  explicit TraceStreamSource(std::istream& in);

  const SwitchSpec& sw() const override { return reader_.sw(); }
  void ArrivalsInto(Round t, std::vector<Flow>* out) override;
  bool Exhausted(Round /*t*/) override { return !have_lookahead_; }
  Round NextArrivalRound(Round t) override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

 private:
  void Pull();  // Advances the one-row lookahead.

  InstanceCsvReader reader_;
  Flow lookahead_;
  bool have_lookahead_ = false;
  std::string error_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_STREAM_SOURCES_H_
