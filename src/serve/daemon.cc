#include "serve/daemon.h"

#include <istream>
#include <ostream>

#include "coflow/coflow_policies.h"
#include "serve/wire_protocol.h"

namespace flowsched {

std::unique_ptr<SchedulingPolicy> MakeServePolicy(const std::string& name,
                                                  std::string* error,
                                                  std::uint64_t seed,
                                                  const MatchingOptions& matching) {
  const auto dot = name.find('.');
  const std::string family = name.substr(0, dot);
  const std::string policy =
      dot == std::string::npos ? std::string() : name.substr(dot + 1);
  if (family == "online" && !policy.empty()) {
    for (const std::string& known : AllPolicyNames()) {
      if (known == policy) return MakePolicy(policy, seed, matching);
    }
  } else if (family == "coflow" && !policy.empty()) {
    for (const std::string& known : AllCoflowPolicyNames()) {
      if (known == policy) return MakeCoflowPolicy(policy, seed, matching);
    }
  }
  if (error != nullptr) {
    std::string names;
    for (const std::string& p : AllPolicyNames()) names += " online." + p;
    for (const std::string& p : AllCoflowPolicyNames()) names += " coflow." + p;
    *error = "unknown policy \"" + name + "\"; available:" + names;
  }
  return nullptr;
}

StreamingSummary RunWireSession(const SwitchSpec& sw, std::istream& in,
                                std::ostream& out,
                                const ServeOptions& options) {
  std::string policy_error;
  const auto policy = MakeServePolicy(options.policy, &policy_error,
                                      options.seed, options.matching);
  if (policy == nullptr) {
    out << "ERROR " << policy_error << '\n';
    StreamingSummary summary;
    summary.source_error = true;
    summary.error = policy_error;
    return summary;
  }
  StreamingOptions sim_options;
  sim_options.max_rounds = options.max_rounds;
  sim_options.validate = options.validate;
  sim_options.stats_every = options.stats_every;
  sim_options.stats_out = nullptr;  // Wire stats lines carry a prefix.
  sim_options.match_out = options.emit_match ? &out : nullptr;
  sim_options.scenario = options.scenario;
  sim_options.stop = options.stop;
  StreamingSimulator sim(sw, *policy, sim_options);
  {
    // A scenario that cannot bind to this switch fails the session up
    // front (the summary carries the line-tagged error).
    const StreamingSummary probe = sim.Summarize();
    if (probe.source_error) {
      out << "ERROR " << probe.error << '\n';
      out << "DONE " << probe.ToJson() << '\n';
      out.flush();
      return probe;
    }
  }
  std::string line;
  std::string error;
  WireCommand command;
  bool stopped = false;
  // A signal mid-session exits the read loop (the handler is installed
  // without SA_RESTART, so the blocking read returns) and still emits the
  // final DONE summary below.
  while (!stopped && !(options.stop != nullptr && *options.stop != 0) &&
         std::getline(in, line)) {
    if (!ParseWireLine(line, &command, &error)) {
      out << "ERROR " << error << '\n';
      continue;
    }
    switch (command.kind) {
      case WireCommand::Kind::kNone:
        break;
      case WireCommand::Kind::kArrive:
        if (!sim.Inject(command.flow, &error)) {
          out << "ERROR " << error << '\n';
        }
        break;
      case WireCommand::Kind::kTick:
        if (options.max_rounds >= 0 && sim.round() >= options.max_rounds) {
          out << "ERROR round cap reached (max_rounds="
              << options.max_rounds << ")\n";
          break;
        }
        sim.Step();
        if (options.stats_every > 0 &&
            sim.round() % options.stats_every == 0) {
          out << "STATS " << sim.StatsLine() << '\n';
        }
        break;
      case WireCommand::Kind::kStats:
        out << "STATS " << sim.StatsLine() << '\n';
        break;
      case WireCommand::Kind::kFault:
        if (!sim.ForceFault(command.port, &error)) {
          out << "ERROR " << error << '\n';
        }
        break;
      case WireCommand::Kind::kRecover:
        if (!sim.ForceRecover(command.port, &error)) {
          out << "ERROR " << error << '\n';
        }
        break;
      case WireCommand::Kind::kStop:
        stopped = true;
        break;
    }
  }
  const StreamingSummary summary = sim.Summarize();
  out << "DONE " << summary.ToJson() << '\n';
  out.flush();
  return summary;
}

StreamingSummary RunSourceSession(StreamingFlowSource& source,
                                  std::ostream& out,
                                  const ServeOptions& options) {
  std::string policy_error;
  const auto policy = MakeServePolicy(options.policy, &policy_error,
                                      options.seed, options.matching);
  if (policy == nullptr) {
    out << "ERROR " << policy_error << '\n';
    StreamingSummary summary;
    summary.source_error = true;
    summary.error = policy_error;
    return summary;
  }
  StreamingOptions sim_options;
  sim_options.max_rounds = options.max_rounds;
  sim_options.validate = options.validate;
  sim_options.stats_every = options.stats_every;
  sim_options.stats_out = &out;
  sim_options.match_out = options.emit_match ? &out : nullptr;
  sim_options.scenario = options.scenario;
  sim_options.stop = options.stop;
  StreamingSimulator sim(source.sw(), *policy, sim_options);
  const StreamingSummary summary = sim.Run(source);
  out << "DONE " << summary.ToJson() << '\n';
  out.flush();
  return summary;
}

}  // namespace flowsched
