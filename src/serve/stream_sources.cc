#include "serve/stream_sources.h"

#include <algorithm>

namespace flowsched {

void RoundGeneratorSource::DrawThrough(Round t) {
  while (next_draw_ <= t && !DrawingDone()) {
    DrawRound(next_draw_, &buffer_);
    ++next_draw_;
  }
}

void RoundGeneratorSource::DrawUntilNonEmpty() {
  while (buffer_.empty() && !DrawingDone()) {
    DrawRound(next_draw_, &buffer_);
    ++next_draw_;
  }
}

void RoundGeneratorSource::ArrivalsInto(Round t, std::vector<Flow>* out) {
  DrawThrough(t);
  // The buffer may extend past t when Exhausted()/NextArrivalRound() drew
  // ahead; releases are non-decreasing, so the due arrivals are a prefix.
  std::size_t due = 0;
  while (due < buffer_.size() && buffer_[due].release <= t) ++due;
  out->insert(out->end(), buffer_.begin(), buffer_.begin() + due);
  buffer_.erase(buffer_.begin(), buffer_.begin() + due);
}

bool RoundGeneratorSource::Exhausted(Round /*t*/) {
  // Mirrors batch ReplayArrivals::Exhausted ("every flow emitted"): draw
  // forward past any empty tail so a stream whose last arrivals are long
  // gone reports done at the same round the batch loop breaks.
  DrawUntilNonEmpty();
  return buffer_.empty();
}

Round RoundGeneratorSource::NextArrivalRound(Round t) {
  DrawThrough(t);
  DrawUntilNonEmpty();
  return buffer_.empty() ? t : std::max(t, buffer_.front().release);
}

PoissonStreamSource::PoissonStreamSource(const PoissonConfig& config,
                                         Round horizon)
    : RoundGeneratorSource(
          SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                              config.port_capacity),
          horizon),
      config_(config),
      rng_(config.seed) {}

void PoissonStreamSource::DrawRound(Round t, std::vector<Flow>* out) {
  AppendPoissonRound(config_, t, rng_, out);
}

CoflowStreamSource::CoflowStreamSource(const CoflowGenConfig& config,
                                       Round horizon)
    : RoundGeneratorSource(
          SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                              config.port_capacity),
          horizon),
      config_(config),
      rng_(config.seed) {}

void CoflowStreamSource::DrawRound(Round t, std::vector<Flow>* out) {
  AppendCoflowRound(config_, t, rng_, &next_coflow_, out);
}

TrafficStreamSource::TrafficStreamSource(const TrafficConfig& config,
                                         Round horizon)
    : RoundGeneratorSource(
          SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                              config.port_capacity),
          horizon),
      config_(config),
      rng_(config.seed) {}

void TrafficStreamSource::DrawRound(Round t, std::vector<Flow>* out) {
  AppendTrafficRound(config_, t, rng_, &next_coflow_, out);
}

InstanceStreamSource::InstanceStreamSource(const Instance& instance)
    : instance_(&instance) {
  order_.reserve(instance.num_flows());
  for (const Flow& e : instance.flows()) order_.push_back(e.id);
  std::stable_sort(order_.begin(), order_.end(), [&](FlowId a, FlowId b) {
    return instance.flow(a).release < instance.flow(b).release;
  });
  releases_.reserve(order_.size());
  for (FlowId id : order_) releases_.push_back(instance.flow(id).release);
}

void InstanceStreamSource::ArrivalsInto(Round t, std::vector<Flow>* out) {
  while (next_ < order_.size() && releases_[next_] <= t) {
    out->push_back(instance_->flow(order_[next_]));
    ++next_;
  }
}

Round InstanceStreamSource::NextArrivalRound(Round t) {
  return next_ < order_.size() ? std::max(t, releases_[next_]) : t;
}

TraceStreamSource::TraceStreamSource(std::istream& in) : reader_(in) {
  if (!reader_.ok()) {
    error_ = reader_.error();
    return;
  }
  Pull();
}

void TraceStreamSource::Pull() {
  const Round prev_release = have_lookahead_ ? lookahead_.release : 0;
  Flow next;
  if (!reader_.NextFlow(&next)) {
    have_lookahead_ = false;
    if (!reader_.ok()) error_ = reader_.error();
    return;
  }
  if (next.release < prev_release) {
    have_lookahead_ = false;
    error_ = "line " + std::to_string(reader_.line()) +
             ": trace rows must be sorted by release for streaming (release " +
             std::to_string(next.release) + " after " +
             std::to_string(prev_release) + ")";
    return;
  }
  lookahead_ = next;
  have_lookahead_ = true;
}

void TraceStreamSource::ArrivalsInto(Round t, std::vector<Flow>* out) {
  while (have_lookahead_ && lookahead_.release <= t) {
    out->push_back(lookahead_);
    Pull();
  }
}

Round TraceStreamSource::NextArrivalRound(Round t) {
  return have_lookahead_ ? std::max(t, lookahead_.release) : t;
}

}  // namespace flowsched
