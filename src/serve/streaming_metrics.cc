#include "serve/streaming_metrics.h"

#include <cstdio>

namespace flowsched {
namespace {

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendField(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  AppendNumber(out, v);
}

void AppendDistribution(std::string& out, const char* prefix,
                        const StreamingDistribution& d) {
  std::string key(prefix);
  const std::size_t base = key.size();
  auto field = [&](const char* suffix, double v) {
    key.resize(base);
    key += suffix;
    AppendField(out, key.c_str(), v);
  };
  field("_count", static_cast<double>(d.total().count()));
  field("_mean", d.total().mean());
  field("_max", d.total().max());
  field("_p50", d.p50());
  field("_p95", d.p95());
  field("_p99", d.p99());
  field("_win_count", static_cast<double>(d.window().count()));
  field("_win_mean", d.window().mean());
  field("_win_max", d.window().max());
}

}  // namespace

void StreamingDistribution::Add(double x) {
  total_.Add(x);
  window_.Add(x);
  p50_.Add(x);
  p95_.Add(x);
  p99_.Add(x);
}

std::string StreamingMetrics::StatsLine(Round t, std::size_t backlog) {
  std::string out = "{\"round\":";
  AppendNumber(out, static_cast<double>(t));
  AppendField(out, "backlog", static_cast<double>(backlog));
  AppendDistribution(out, "resp", response_);
  AppendDistribution(out, "cct", cct_);
  out += '}';
  response_.ResetWindow();
  cct_.ResetWindow();
  return out;
}

}  // namespace flowsched
