#include "serve/streaming_simulator.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace flowsched {
namespace {

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendField(std::string& out, const char* key, double v) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
  AppendNumber(out, v);
}

void AppendBool(std::string& out, const char* key, bool v) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

}  // namespace

std::string StreamingSummary::ToJson() const {
  std::string out = "{";
  AppendField(out, "flows", static_cast<double>(flows));
  AppendField(out, "arrived", static_cast<double>(arrived));
  AppendField(out, "rounds", static_cast<double>(rounds));
  AppendField(out, "total_response", total_response);
  AppendField(out, "mean_response", mean_response);
  AppendField(out, "max_response", max_response);
  AppendField(out, "stddev_response", stddev_response);
  AppendField(out, "p50_response", p50_response);
  AppendField(out, "p95_response", p95_response);
  AppendField(out, "p99_response", p99_response);
  AppendField(out, "peak_backlog", peak_backlog);
  AppendField(out, "avg_port_utilization", avg_port_utilization);
  AppendField(out, "coflows", static_cast<double>(coflows));
  AppendField(out, "total_cct", total_cct);
  AppendField(out, "mean_cct", mean_cct);
  AppendField(out, "max_cct", max_cct);
  AppendField(out, "downtime_rounds", static_cast<double>(downtime_rounds));
  AppendField(out, "migrated_flows", static_cast<double>(migrated_flows));
  AppendBool(out, "truncated", truncated);
  AppendBool(out, "source_error", source_error);
  if (!error.empty()) {
    out += ",\"error\":\"";
    for (char c : error) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

StreamingSimulator::StreamingSimulator(const SwitchSpec& sw,
                                       SchedulingPolicy& policy,
                                       const StreamingOptions& options)
    : sw_(sw), policy_(policy), options_(options) {
  ctx_.Clear();
  std::string scen_error;
  if (options_.scenario != nullptr) {
    if (!scenario_.Bind(*options_.scenario, sw, &scen_error)) {
      source_error_ = true;
      error_ = "scenario: " + scen_error;
    }
  } else {
    // An empty binding keeps wire-mode FAULT/RECOVER available.
    scenario_.Bind(ScenarioScript(), sw, &scen_error);
  }
}

void StreamingSimulator::Admit(Flow f) {
  ++arrived_;
  arrived_demand_ += static_cast<double>(f.demand);
  if (f.coflow != kNoCoflow) {
    const auto [it, inserted] =
        groups_.try_emplace(f.coflow, GroupState{0, f.release});
    ++it->second.live;
    it->second.arrival = std::min(it->second.arrival, f.release);
  }
  ctx_.backlog.push_back(f);
}

void StreamingSimulator::RunRound() {
  scenario_.AdvanceTo(round_);
  ctx_.pending.clear();
  const bool mapped = scenario_.degraded();
  if (mapped) {
    // Mirror the batch loop: blocked flows stay backlogged and never reach
    // the policy; pending_map remembers each survivor's backlog slot.
    ctx_.pending_map.clear();
    for (std::size_t i = 0; i < ctx_.backlog.size(); ++i) {
      const Flow& f = ctx_.backlog[i];
      if (scenario_.IsBlocked(f.src, f.dst)) continue;
      ctx_.pending.push_back(
          PendingFlow{f.id, f.src, f.dst, f.demand, f.release, f.coflow});
      ctx_.pending_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const Flow& f : ctx_.backlog) {
      ctx_.pending.push_back(
          PendingFlow{f.id, f.src, f.dst, f.demand, f.release, f.coflow});
    }
  }
  peak_backlog_ =
      std::max(peak_backlog_, static_cast<int>(ctx_.backlog.size()));
  if (scenario_.AnyPortDown()) ++downtime_rounds_;
  round_blocked_ = ctx_.pending.empty();
  if (round_blocked_) {
    // Every backlogged flow touches a dead port: the round idles.
    ctx_.picked.clear();
    return;
  }
  const SwitchSpec& round_sw = mapped ? scenario_.view() : sw_;
  policy_.SelectFlowsInto(round_sw, round_, ctx_.pending, &ctx_.picked);
  if (options_.validate) {
    ValidatePolicySelection(round_sw, ctx_.pending, ctx_.picked, ctx_);
  }
  if (options_.match_out != nullptr && !ctx_.picked.empty()) {
    std::ostream& out = *options_.match_out;
    out << "MATCH " << round_;
    for (int i : ctx_.picked) {
      out << ' ' << ctx_.backlog[mapped ? ctx_.pending_map[i] : i].id;
    }
    out << '\n';
  }
  completed_untagged_.clear();
  drained_groups_.clear();
  ctx_.remove.assign(ctx_.backlog.size(), 0);
  for (int i : ctx_.picked) {
    const int bi = mapped ? ctx_.pending_map[i] : i;
    ctx_.remove[bi] = 1;
    const Flow& f = ctx_.backlog[bi];
    const auto response = static_cast<double>(round_ + 1 - f.release);
    metrics_.RecordResponse(response);
    ++completed_;
    if (wire_mode_) live_ids_.erase(f.id);
    if (f.coflow == kNoCoflow) {
      // Untagged flows are singleton groups (model/coflow.h), so their CCT
      // is their response.
      completed_untagged_.push_back(f.id);
      metrics_.RecordCct(response);
      ++coflows_completed_;
    } else {
      const auto it = groups_.find(f.coflow);
      FS_CHECK(it != groups_.end());
      if (--it->second.live == 0) {
        metrics_.RecordCct(
            static_cast<double>(round_ + 1 - it->second.arrival));
        drained_groups_.push_back(f.coflow);
        ++coflows_completed_;
        groups_.erase(it);
      }
    }
  }
  // Stable in-place compaction, exactly as the batch loop does it.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < ctx_.backlog.size(); ++i) {
    if (!ctx_.remove[i]) {
      if (kept != i) ctx_.backlog[kept] = ctx_.backlog[i];
      ++kept;
    }
  }
  ctx_.backlog.resize(kept);
  if (!completed_untagged_.empty() || !drained_groups_.empty()) {
    policy_.RetireFlows(completed_untagged_, drained_groups_);
  }
}

void StreamingSimulator::EmitPeriodicStats() {
  if (options_.stats_out == nullptr || options_.stats_every <= 0) return;
  if ((round_ + 1) % options_.stats_every != 0) return;
  *options_.stats_out << metrics_.StatsLine(round_, ctx_.backlog.size())
                      << '\n';
}

StreamingSummary StreamingSimulator::Run(StreamingFlowSource& source) {
  if (source_error_) return Summarize();  // Scenario bind failed in ctor.
  for (round_ = 0; options_.max_rounds < 0 || round_ < options_.max_rounds;
       ++round_) {
    // Cooperative shutdown: the round in flight always completes, so the
    // summary below is a consistent cut of the stream.
    if (options_.stop != nullptr && *options_.stop != 0) break;
    ctx_.arrivals.clear();
    source.ArrivalsInto(round_, &ctx_.arrivals);
    if (!source.ok()) {
      source_error_ = true;
      error_ = source.error();
      break;
    }
    for (Flow f : ctx_.arrivals) {
      if (f.demand != 1 && policy_.RequiresUnitDemands()) {
        source_error_ = true;
        error_ = "policy " + std::string(policy_.name()) +
                 " requires unit demands, got a flow with demand " +
                 std::to_string(f.demand);
        break;
      }
      f.release = round_;
      // Same remap point as the batch admit loop — identical arrival
      // sequence means identical migration coins (scenario/scenario.h).
      scenario_.RemapArrival(round_, &f.src, &f.dst);
      f.id = next_id_++;
      Admit(f);
    }
    if (source_error_) break;
    if (ctx_.backlog.empty()) {
      if (source.Exhausted(round_ + 1)) break;
      // Idle-gap fast-forward, hoisted behind the source interface so
      // sparse infinite streams do not spin round by round. Never skips
      // past the round cap — `rounds` must land exactly where a
      // walk-every-round loop would.
      Round next = source.NextArrivalRound(round_ + 1);
      if (options_.max_rounds >= 0) next = std::min(next, options_.max_rounds);
      if (next > round_ + 1) round_ = next - 1;  // ++round_ lands on `next`.
      continue;
    }
    RunRound();
    EmitPeriodicStats();
    if (round_blocked_ && source.Exhausted(round_ + 1) &&
        !scenario_.HasOpAfter(round_)) {
      // Stranded: every remaining flow sits on a dead port and no script
      // event can revive one. Truncate (batch Simulate breaks here too).
      error_ = "scenario leaves " + std::to_string(ctx_.backlog.size()) +
               " flows on dead ports with no recovery event after round " +
               std::to_string(round_);
      break;
    }
  }
  truncated_ = !ctx_.backlog.empty();
  return Summarize();
}

bool StreamingSimulator::Inject(const Flow& flow, std::string* error) {
  wire_mode_ = true;
  if (flow.src < 0 || flow.src >= sw_.num_inputs() || flow.dst < 0 ||
      flow.dst >= sw_.num_outputs()) {
    if (error != nullptr) *error = "flow ports out of range for the switch";
    return false;
  }
  if (flow.demand < 1 || flow.demand > sw_.Kappa(flow)) {
    if (error != nullptr) {
      *error = "flow demand must be in [1, min port capacity]";
    }
    return false;
  }
  if (flow.demand != 1 && policy_.RequiresUnitDemands()) {
    if (error != nullptr) {
      *error = "policy " + std::string(policy_.name()) +
               " requires unit demands";
    }
    return false;
  }
  if (!live_ids_.insert(flow.id).second) {
    if (error != nullptr) {
      *error = "flow id " + std::to_string(flow.id) +
               " is already live (ids must be unique among live flows)";
    }
    return false;
  }
  Flow f = flow;
  f.release = round_;
  scenario_.RemapArrival(round_, &f.src, &f.dst);
  Admit(f);
  return true;
}

void StreamingSimulator::Step() {
  if (!ctx_.backlog.empty()) RunRound();
  EmitPeriodicStats();
  ++round_;
}

bool StreamingSimulator::ForceFault(PortId h, std::string* error) {
  wire_mode_ = true;
  return scenario_.ForceHostDown(h, error);
}

bool StreamingSimulator::ForceRecover(PortId h, std::string* error) {
  wire_mode_ = true;
  return scenario_.ForceHostUp(h, error);
}

std::string StreamingSimulator::StatsLine() {
  return metrics_.StatsLine(round_, ctx_.backlog.size());
}

StreamingSummary StreamingSimulator::Summarize() const {
  StreamingSummary s;
  s.flows = completed_;
  s.arrived = arrived_;
  s.rounds = round_;
  const RunningStats& r = metrics_.response().total();
  s.total_response = r.sum();
  s.mean_response = r.mean();
  s.max_response = r.max();
  s.stddev_response = r.stddev();
  s.p50_response = metrics_.response().p50();
  s.p95_response = metrics_.response().p95();
  s.p99_response = metrics_.response().p99();
  s.peak_backlog = peak_backlog_;
  if (round_ > 0) {
    Capacity in_bw = 0;
    Capacity out_bw = 0;
    for (Capacity c : sw_.input_capacities()) in_bw += c;
    for (Capacity c : sw_.output_capacities()) out_bw += c;
    const auto rounds = static_cast<double>(round_);
    s.avg_port_utilization =
        0.5 * (arrived_demand_ / (static_cast<double>(in_bw) * rounds) +
               arrived_demand_ / (static_cast<double>(out_bw) * rounds));
  }
  s.coflows = coflows_completed_;
  const RunningStats& c = metrics_.cct().total();
  s.total_cct = c.sum();
  s.mean_cct = c.mean();
  s.max_cct = c.max();
  s.downtime_rounds = downtime_rounds_;
  s.migrated_flows = scenario_.migrated_flows();
  s.truncated = truncated_ || !ctx_.backlog.empty();
  s.source_error = source_error_;
  s.error = error_;
  return s;
}

}  // namespace flowsched
