// StreamingSimulator: the round loop of core/online/simulator.cc rebuilt
// for unbounded streams.
//
// Differences from batch Simulate():
//   * arrivals are pulled from a StreamingFlowSource (or injected by the
//     wire protocol) instead of replayed from a materialized Instance;
//   * completed flows retire immediately — their response is folded into
//     StreamingMetrics and their per-flow state (backlog slot, coflow
//     group slot via SchedulingPolicy::RetireFlows) is released, so
//     resident memory is O(live flows), not O(all flows);
//   * hitting the round cap truncates the run (summary.truncated) instead
//     of aborting — a daemon must not FS_CHECK-die on a long stream.
//
// Everything else mirrors the batch loop exactly — arrival admission
// order, id assignment, idle-gap fast-forward, termination round — so on
// a finite input the realized schedule and the exact aggregates (flows,
// rounds, total/max response, peak backlog, utilization, total CCT) are
// bit-identical to batch Simulate() (locked by tests/serve/).
//
// Coflow streaming caveat: a group is retired the moment its last live
// member completes. If a trace releases more members of the same tag
// *after* the group fully drained, the streaming run treats them as a new
// group while batch CoflowSet sees one — keep a coflow's members' releases
// ahead of its drain (true for the clustered generator, which releases
// whole coflows in one round).
#ifndef FLOWSCHED_SERVE_STREAMING_SIMULATOR_H_
#define FLOWSCHED_SERVE_STREAMING_SIMULATOR_H_

#include <csignal>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/online/simulation_context.h"
#include "core/online/simulator.h"
#include "scenario/scenario.h"
#include "serve/flow_source.h"
#include "serve/streaming_metrics.h"

namespace flowsched {

struct StreamingOptions {
  Round max_rounds = -1;  // < 0: run until the source exhausts and drains.
  bool validate = true;   // Audit every selection (see SimulationOptions).
  // Emit a JSONL stats line to *stats_out every stats_every rounds (the
  // tumbling-window cadence); 0 disables periodic emission.
  Round stats_every = 0;
  std::ostream* stats_out = nullptr;
  // When set, every round with selections emits "MATCH <t> <id>..." here.
  std::ostream* match_out = nullptr;
  // Fault-injection overlay, mirroring SimulationOptions::scenario: the
  // same script replays the identical realized schedule on both paths.
  const ScenarioScript* scenario = nullptr;
  // Cooperative shutdown: when set and *stop turns non-zero, Run() finishes
  // the round in flight, truncates, and returns — so a signal still ends
  // with a complete DONE summary (flowsched_serve installs the handler).
  const volatile std::sig_atomic_t* stop = nullptr;
};

struct StreamingSummary {
  long long flows = 0;      // Completed flows.
  long long arrived = 0;    // Admitted flows (== flows unless truncated).
  Round rounds = 0;         // Mirrors batch SimulationResult::rounds.
  double total_response = 0.0;  // Exact (integer-valued summands).
  double mean_response = 0.0;
  double max_response = 0.0;
  double stddev_response = 0.0;  // Welford estimate of the sample stddev.
  double p50_response = 0.0;     // P² estimates, not exact percentiles.
  double p95_response = 0.0;
  double p99_response = 0.0;
  int peak_backlog = 0;
  double avg_port_utilization = 0.0;
  long long coflows = 0;  // Drained groups, singletons included.
  double total_cct = 0.0;
  double mean_cct = 0.0;
  double max_cct = 0.0;
  // Simulated rounds with >= 1 port side down (scenario / FAULT sessions).
  long long downtime_rounds = 0;
  // Arrivals re-homed by MIGRATE rules (scenario sessions only).
  long long migrated_flows = 0;
  bool truncated = false;     // Hit max_rounds with flows still pending.
  bool source_error = false;  // The source failed mid-stream (see error).
  std::string error;

  // The summary as one JSON object line (no trailing newline); schema in
  // docs/serve-protocol.md.
  std::string ToJson() const;
};

class StreamingSimulator {
 public:
  StreamingSimulator(const SwitchSpec& sw, SchedulingPolicy& policy,
                     const StreamingOptions& options = {});

  // Pull mode: drives `source` until it exhausts and the backlog drains
  // (or max_rounds truncates). One-shot per simulator instance.
  StreamingSummary Run(StreamingFlowSource& source);

  // Wire mode: inject arrivals for the current round, then Step() once per
  // TICK. Injected flows keep their caller-chosen id (must be unique among
  // live flows) and are released at the current round.
  Round round() const { return round_; }
  bool Inject(const Flow& flow, std::string* error);
  void Step();
  std::size_t backlog_size() const { return ctx_.backlog.size(); }

  // Wire FAULT/RECOVER: immediately downs/restores host `h` on both port
  // sides. False with *error on an out-of-range host; never aborts. Flows
  // already backlogged on a downed host stay queued until it recovers.
  bool ForceFault(PortId h, std::string* error);
  bool ForceRecover(PortId h, std::string* error);

  // Current stats line (wire STATS command); resets the tumbling window.
  std::string StatsLine();
  // Summary of everything processed so far (wire STOP / EOF).
  StreamingSummary Summarize() const;

 private:
  void Admit(Flow f);       // Appends to backlog + group tracking.
  void RunRound();          // Policy -> validate -> emit -> retire.
  void EmitPeriodicStats();

  struct GroupState {
    long long live = 0;
    Round arrival = 0;
  };

  const SwitchSpec& sw_;
  SchedulingPolicy& policy_;
  StreamingOptions options_;
  SimulationContext ctx_;
  StreamingMetrics metrics_;
  // Always bound (to an empty script when options.scenario is null), so
  // wire FAULT/RECOVER works in any session.
  ScenarioRuntime scenario_;
  long long downtime_rounds_ = 0;
  bool round_blocked_ = false;  // Last RunRound saw a fully-blocked backlog.
  Round round_ = 0;
  FlowId next_id_ = 0;  // Pull-mode ids, dense in arrival order.
  long long arrived_ = 0;
  long long completed_ = 0;
  long long coflows_completed_ = 0;
  double arrived_demand_ = 0.0;
  int peak_backlog_ = 0;
  bool truncated_ = false;
  bool source_error_ = false;
  std::string error_;
  std::unordered_map<CoflowId, GroupState> groups_;  // Live tagged groups.
  std::unordered_set<FlowId> live_ids_;              // Wire mode only.
  bool wire_mode_ = false;
  std::vector<FlowId> completed_untagged_;  // Per-round retirement scratch.
  std::vector<CoflowId> drained_groups_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_SERVE_STREAMING_SIMULATOR_H_
