#include "serve/wire_protocol.h"

#include <charconv>
#include <vector>

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

void Tokenize(const std::string& line, std::vector<std::string>* tokens) {
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) tokens->push_back(line.substr(start, i - start));
  }
}

bool ParseInt64(const std::string& s, std::int64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

bool ParseWireLine(const std::string& line, WireCommand* command,
                   std::string* error) {
  command->kind = WireCommand::Kind::kNone;
  command->flow = Flow{};
  command->port = 0;
  std::vector<std::string> tokens;
  Tokenize(line, &tokens);
  if (tokens.empty() || tokens[0][0] == '#') return true;  // kNone.
  const std::string& verb = tokens[0];
  if (verb == "TICK" || verb == "STATS" || verb == "STOP") {
    if (tokens.size() != 1) {
      return Fail(error, verb + " takes no arguments");
    }
    command->kind = verb == "TICK"    ? WireCommand::Kind::kTick
                    : verb == "STATS" ? WireCommand::Kind::kStats
                                      : WireCommand::Kind::kStop;
    return true;
  }
  if (verb == "FAULT" || verb == "RECOVER") {
    if (tokens.size() != 2) {
      return Fail(error, verb + " wants: " + verb + " <port>");
    }
    std::int64_t port = 0;
    if (!ParseInt64(tokens[1], port)) {
      return Fail(error, verb + " port must be a decimal integer");
    }
    constexpr std::int64_t kMaxPort = 2147483647;  // PortId is int.
    if (port < 0 || port > kMaxPort) {
      return Fail(error, verb + " port must be in [0, 2^31)");
    }
    command->kind = verb == "FAULT" ? WireCommand::Kind::kFault
                                    : WireCommand::Kind::kRecover;
    command->port = static_cast<PortId>(port);
    return true;
  }
  if (verb == "ARRIVE") {
    if (tokens.size() != 5 && tokens.size() != 6) {
      return Fail(error,
                  "ARRIVE wants: ARRIVE <id> <src> <dst> <size> [coflow]");
    }
    std::int64_t id = 0, src = 0, dst = 0, size = 0, coflow = 0;
    if (!ParseInt64(tokens[1], id) || !ParseInt64(tokens[2], src) ||
        !ParseInt64(tokens[3], dst) || !ParseInt64(tokens[4], size) ||
        (tokens.size() == 6 && !ParseInt64(tokens[5], coflow))) {
      return Fail(error, "ARRIVE arguments must be decimal integers");
    }
    constexpr std::int64_t kMaxId = 2147483647;  // FlowId/CoflowId are int.
    if (id < 0 || id > kMaxId) {
      return Fail(error, "ARRIVE id must be in [0, 2^31)");
    }
    if (src < 0 || src > kMaxId || dst < 0 || dst > kMaxId) {
      return Fail(error, "ARRIVE ports must be in [0, 2^31)");
    }
    if (size < 1) return Fail(error, "ARRIVE size must be >= 1");
    if (tokens.size() == 6 && (coflow < 0 || coflow > kMaxId)) {
      return Fail(error, "ARRIVE coflow tag must be in [0, 2^31)");
    }
    command->kind = WireCommand::Kind::kArrive;
    command->flow.id = static_cast<FlowId>(id);
    command->flow.src = static_cast<PortId>(src);
    command->flow.dst = static_cast<PortId>(dst);
    command->flow.demand = size;
    command->flow.coflow =
        tokens.size() == 6 ? static_cast<CoflowId>(coflow) : kNoCoflow;
    return true;
  }
  return Fail(error, "unknown command \"" + verb +
                         "\" (want ARRIVE, TICK, STATS, FAULT, RECOVER, "
                         "or STOP)");
}

}  // namespace flowsched
