// Maximum-weight bipartite matching (not necessarily perfect).
//
// Used by the MinRTime, MaxWeight and Hybrid online heuristics (paper
// §5.2.1), which each round extract a maximum-weight matching from the
// backlog graph. Weights must be non-negative; leaving a vertex unmatched is
// always allowed (equivalently, the matching maximizes total weight, not
// cardinality).
//
// The solver class keeps the dense cost matrix and all Hungarian scratch
// alive across calls: per-round calls in the simulator hot loop touch the
// heap only while the backlog is still growing past its previous peak. The
// result is bit-identical to the historical one-shot implementation — the
// inner loops were restructured (flat matrix, inert-column sentinels) but
// every floating-point operation sequence that feeds a comparison is
// preserved, so the same matching comes back edge for edge.
#ifndef FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
#define FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

class MaxWeightMatcher {
 public:
  // Overwrites *out with edge indices of a maximum-weight matching of `g`
  // under the given per-edge weights (weight.size() == g.num_edges(), all
  // weights >= 0). Runs the O(n^3) Hungarian algorithm on a dense matrix
  // over the vertices that actually carry edges.
  void Solve(const BipartiteGraph& g, std::span<const double> weight,
             std::vector<int>* out);

 private:
  // Vertex compaction scratch.
  std::vector<int> left_index_;
  std::vector<int> right_index_;
  std::vector<int> left_ids_;
  std::vector<int> right_ids_;
  // Dense matrix over compacted vertices, row-major (rows <= cols).
  std::vector<double> cost_;
  std::vector<int> best_edge_;
  // Hungarian state (1-based over cols, index 0 is the virtual column).
  std::vector<double> u_;
  std::vector<double> v_;
  std::vector<double> minv_;
  std::vector<double> vv_;  // == v_ for open columns, -inf once used.
  std::vector<int> p_;
  std::vector<std::int64_t> way_;
  std::vector<int> used_cols_;
  std::vector<int> assignment_;
};

// One-shot convenience wrapper around MaxWeightMatcher.
std::vector<int> MaxWeightMatching(const BipartiteGraph& g,
                                   std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
