// Maximum-weight bipartite matching (not necessarily perfect).
//
// Used by the MinRTime and MaxWeight online heuristics (paper §5.2.1),
// which each round extract a maximum-weight matching from the backlog graph.
// Weights must be non-negative; leaving a vertex unmatched is always allowed
// (equivalently, the matching maximizes total weight, not cardinality).
#ifndef FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
#define FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

// Returns edge indices of a maximum-weight matching of `g` with the given
// per-edge weights (weight.size() == g.num_edges(), all weights >= 0).
// Runs the O(n^3) Hungarian algorithm on a dense padded matrix; for the
// switch sizes in this project (ports <= a few hundred) this is fast.
std::vector<int> MaxWeightMatching(const BipartiteGraph& g,
                                   std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
