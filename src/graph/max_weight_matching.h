// Maximum-weight bipartite matching (not necessarily perfect).
//
// Used by the MinRTime, MaxWeight and Hybrid online heuristics (paper
// §5.2.1), which each round extract a maximum-weight matching from the
// backlog graph. Weights must be non-negative; leaving a vertex unmatched is
// always allowed (equivalently, the matching maximizes total weight, not
// cardinality).
//
// The solver class keeps the dense cost matrix and all Hungarian scratch
// alive across calls: per-round calls in the simulator hot loop touch the
// heap only while the backlog is still growing past its previous peak. The
// result is bit-identical to the historical one-shot implementation — the
// inner loops were restructured (flat matrix, inert-column sentinels) but
// every floating-point operation sequence that feeds a comparison is
// preserved, so the same matching comes back edge for edge.
//
// The solve is decomposed into resumable phases (PrepareProblem / InitDuals
// / RunRows / EmitMatching) so the warm-start layer in
// graph/incremental_matching.h can snapshot the per-row Hungarian state and
// resume a solve at the first row a backlog delta invalidated. Solve() is
// exactly InitDuals + RunRows(1) + EmitMatching, so every path through the
// incremental layer computes the same operation sequence as a from-scratch
// call.
#ifndef FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
#define FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

// Snapshots of the Hungarian (u, v, p) state after each processed row,
// recorded by MaxWeightMatcher::RunRows and replayed by the warm-start
// layer. State after row i (1-based) lives in slot i-1. The state after row
// i is a pure function of matrix rows 1..i, so restoring slot k and running
// rows k+1..n replays the exact from-scratch operation sequence — this is
// what makes warm-started solves provably bit-identical.
struct HungarianCheckpoints {
  int n = 0;         // Rows of the problem the snapshots belong to.
  int m = 0;         // Columns.
  int recorded = 0;  // Slots 0..recorded-1 are valid.
  // Flat per-slot storage: u is (n+1) doubles, v is (m+1) doubles, p is
  // (m+1) ints per slot.
  std::vector<double> u;
  std::vector<double> v;
  std::vector<int> p;

  // Invalidates every slot and sizes storage for an n x m problem.
  void Reset(int rows, int cols) {
    n = rows;
    m = cols;
    recorded = 0;
    u.resize(static_cast<std::size_t>(rows) * (rows + 1));
    v.resize(static_cast<std::size_t>(rows) * (cols + 1));
    p.resize(static_cast<std::size_t>(rows) * (cols + 1));
  }
};

class MaxWeightMatcher {
 public:
  // Overwrites *out with edge indices of a maximum-weight matching of `g`
  // under the given per-edge weights (weight.size() == g.num_edges(), all
  // weights >= 0). Runs the O(n^3) Hungarian algorithm on a dense matrix
  // over the vertices that actually carry edges.
  void Solve(const BipartiteGraph& g, std::span<const double> weight,
             std::vector<int>* out);

 private:
  // The warm-start layer drives the phase entry points directly.
  friend class IncrementalMatcher;

  // Phase 1: vertex compaction + dense matrix build. Returns false when the
  // graph has no edges (nothing to solve; *out must just stay empty). Does
  // not touch the Hungarian state, so a caller that detects an unchanged
  // matrix afterwards can still EmitMatching() from the previous solve.
  bool PrepareProblem(const BipartiteGraph& g, std::span<const double> weight);
  // Phase 2: resets duals and matching for a from-scratch run.
  void InitDuals();
  // Phase 3: inserts rows first_row..rows_ (1-based). When `record` is
  // non-null, snapshots the (u, v, p) state after every processed row into
  // its slots (record->recorded advances to rows_); slots below
  // first_row-1 are left untouched, so a resumed run keeps the prefix
  // recorded by the earlier solve.
  void RunRows(int first_row, HungarianCheckpoints* record);
  // Restores the state snapshot taken after row `row` (1-based); the next
  // RunRows(row + 1, ...) continues exactly where that solve was.
  void RestoreCheckpoint(const HungarianCheckpoints& from, int row);
  // Phase 4: extracts the matching as edge indices into *out (appends; the
  // caller clears).
  void EmitMatching(std::span<const double> weight, std::vector<int>* out);

  // Vertex compaction scratch.
  std::vector<int> left_index_;
  std::vector<int> right_index_;
  std::vector<int> left_ids_;
  std::vector<int> right_ids_;
  // Dense matrix over compacted vertices, row-major (rows_ <= cols_).
  int rows_ = 0;
  int cols_ = 0;
  bool transpose_ = false;
  std::vector<double> cost_;
  std::vector<int> best_edge_;
  // Hungarian state (1-based over cols, index 0 is the virtual column).
  std::vector<double> u_;
  std::vector<double> v_;
  std::vector<double> minv_;
  std::vector<double> vv_;  // == v_ for open columns, -inf once used.
  std::vector<int> p_;
  std::vector<std::int64_t> way_;
  std::vector<int> used_cols_;
  std::vector<int> assignment_;
};

// One-shot convenience wrapper around MaxWeightMatcher.
std::vector<int> MaxWeightMatching(const BipartiteGraph& g,
                                   std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_MAX_WEIGHT_MATCHING_H_
