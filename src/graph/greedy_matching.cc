#include "graph/greedy_matching.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace flowsched {

std::vector<int> GreedyMatchingInOrder(const BipartiteGraph& g,
                                       std::span<const int> order) {
  std::vector<char> left_used(g.num_left(), 0);
  std::vector<char> right_used(g.num_right(), 0);
  std::vector<int> matching;
  for (int e : order) {
    FS_CHECK(e >= 0 && e < g.num_edges());
    const auto& edge = g.edge(e);
    if (!left_used[edge.u] && !right_used[edge.v]) {
      left_used[edge.u] = 1;
      right_used[edge.v] = 1;
      matching.push_back(e);
    }
  }
  return matching;
}

std::vector<int> GreedyMatchingByWeight(const BipartiteGraph& g,
                                        std::span<const double> weight) {
  FS_CHECK_EQ(static_cast<int>(weight.size()), g.num_edges());
  std::vector<int> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weight[a] > weight[b];
  });
  return GreedyMatchingInOrder(g, order);
}

}  // namespace flowsched
