// Hopcroft–Karp maximum-cardinality bipartite matching, O(E sqrt(V)).
//
// Used by the MaxCard online heuristic (paper §5.2.1) and as a subroutine in
// feasibility checks. The solver class keeps its BFS/DFS scratch alive so
// per-round calls in the simulator hot loop do not touch the heap; the free
// function remains for one-shot callers.
#ifndef FLOWSCHED_GRAPH_HOPCROFT_KARP_H_
#define FLOWSCHED_GRAPH_HOPCROFT_KARP_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

class HopcroftKarpSolver {
 public:
  // Overwrites *out with the edge indices of a maximum-cardinality matching.
  // Buffers persist across calls; a cold-start run returns exactly the same
  // matching as MaxCardinalityMatching().
  void Solve(const BipartiteGraph& g, std::vector<int>* out);

  // Warm-started variant: `seed_matching` (edge ids forming a matching of
  // `g`) initializes the search, typically cutting the number of augmenting
  // phases when the graph changed little since the seed was computed. The
  // result is still maximum but may be a *different* maximum matching than
  // the cold-start run — callers needing reproducible schedules must stick
  // to Solve().
  void SolveWarm(const BipartiteGraph& g, std::span<const int> seed_matching,
                 std::vector<int>* out);

 private:
  void Run(const BipartiteGraph& g, std::vector<int>* out);
  bool Bfs(const BipartiteGraph& g);
  bool Dfs(const BipartiteGraph& g, int u);

  std::vector<int> match_left_;   // Edge id matched at left vertex, or -1.
  std::vector<int> match_right_;
  std::vector<int> dist_;
  std::vector<int> queue_;  // Flat FIFO reused by Bfs.
};

// Returns the edge indices of a maximum-cardinality matching.
std::vector<int> MaxCardinalityMatching(const BipartiteGraph& g);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_HOPCROFT_KARP_H_
