// Hopcroft–Karp maximum-cardinality bipartite matching, O(E sqrt(V)).
//
// Used by the MaxCard online heuristic (paper §5.2.1) and as a subroutine in
// feasibility checks.
#ifndef FLOWSCHED_GRAPH_HOPCROFT_KARP_H_
#define FLOWSCHED_GRAPH_HOPCROFT_KARP_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

// Returns the edge indices of a maximum-cardinality matching.
std::vector<int> MaxCardinalityMatching(const BipartiteGraph& g);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_HOPCROFT_KARP_H_
