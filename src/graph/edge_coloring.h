// Constructive bipartite edge coloring (König's theorem).
//
// A bipartite multigraph with maximum degree D decomposes into exactly D
// matchings. This is the algorithmic heart of the paper's Birkhoff–von
// Neumann step (Theorem 1): the combined interval graph is decomposed into
// matchings that are then packed into (1+c)-augmented rounds.
//
// Two algorithms sit behind the same API:
//   kKoenig      alternating-path recoloring, O(V * E). The historical
//                default; kept as the reference implementation and the
//                fallback for sparse or irregular inputs.
//   kEulerSplit  recursive Euler partition over a D-regularized copy of the
//                graph, ~O(E log D) plus a Hopcroft–Karp perfect matching
//                per odd level. Much faster on the dense interval graphs
//                Theorem 1 produces; trades O(s*D) scratch memory (s = the
//                larger side) for speed, so very sparse graphs with one
//                high-degree vertex should stay on kKoenig.
// Both return a valid coloring with exactly max(MaxDegree, 1) colors; the
// *assignment* of edges to colors generally differs between algorithms, so
// reproducible pipelines must pick one and stick to it (the default is
// kKoenig, which keeps historical schedules bit-identical).
#ifndef FLOWSCHED_GRAPH_EDGE_COLORING_H_
#define FLOWSCHED_GRAPH_EDGE_COLORING_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

enum class EdgeColoringAlgorithm { kKoenig, kEulerSplit };

struct EdgeColoring {
  int num_colors = 0;
  std::vector<int> color_of_edge;  // In [0, num_colors).

  // Edge indices per color class (each class is a matching). `validate`
  // range-checks every stored color (FS_CHECK) before bucketing — the safe
  // default; hot loops that already trust their coloring (benchmarks,
  // ArtSchedulerOptions::validate == false) pass false to skip the audit.
  std::vector<std::vector<int>> ColorClasses(bool validate = true) const;
};

// Colors all edges of `g` with MaxDegree() colors.
EdgeColoring ColorBipartiteEdges(
    const BipartiteGraph& g,
    EdgeColoringAlgorithm algorithm = EdgeColoringAlgorithm::kKoenig);

// Validation helper for tests: every color class is a matching and every
// edge has a color in range.
bool IsValidEdgeColoring(const BipartiteGraph& g, const EdgeColoring& ec);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_EDGE_COLORING_H_
