// Constructive bipartite edge coloring (König's theorem).
//
// A bipartite multigraph with maximum degree D decomposes into exactly D
// matchings. This is the algorithmic heart of the paper's Birkhoff–von
// Neumann step (Theorem 1): the combined interval graph is decomposed into
// matchings that are then packed into (1+c)-augmented rounds.
#ifndef FLOWSCHED_GRAPH_EDGE_COLORING_H_
#define FLOWSCHED_GRAPH_EDGE_COLORING_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

struct EdgeColoring {
  int num_colors = 0;
  std::vector<int> color_of_edge;  // In [0, num_colors).

  // Edge indices per color class (each class is a matching).
  std::vector<std::vector<int>> ColorClasses() const;
};

// Colors all edges of `g` with MaxDegree() colors in O(V * E) via
// alternating-path recoloring.
EdgeColoring ColorBipartiteEdges(const BipartiteGraph& g);

// Validation helper for tests: every color class is a matching and every
// edge has a color in range.
bool IsValidEdgeColoring(const BipartiteGraph& g, const EdgeColoring& ec);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_EDGE_COLORING_H_
