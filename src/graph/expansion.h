// Port replication: b-matchings -> matchings (paper §3.2, general capacities).
//
// A port with capacity c is replaced by c unit-capacity replicas; each
// unit-demand flow edge is attached to one replica of its input port and one
// replica of its output port, chosen round-robin. Degrees then drop by a
// factor of ~c, and matchings of the replicated graph are capacity-feasible
// flow sets of the original switch.
#ifndef FLOWSCHED_GRAPH_EXPANSION_H_
#define FLOWSCHED_GRAPH_EXPANSION_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "model/instance.h"

namespace flowsched {

struct ReplicatedGraph {
  BipartiteGraph graph{0, 0};
  // Maps each replicated-graph edge back to the position in the flow list it
  // was built from (index into the `flow_ids` span handed to Replicate).
  std::vector<int> edge_to_input_index;
  // Replica -> original port.
  std::vector<PortId> left_port;
  std::vector<PortId> right_port;
};

// Builds the replicated unit-capacity multigraph for the given unit-demand
// flows. Requires demand == 1 for every listed flow. Flows may repeat
// (parallel requests become parallel edges spread across replicas).
ReplicatedGraph Replicate(const Instance& instance,
                          std::span<const FlowId> flow_ids);

// Buffer-reusing overload: rebuilds into *out, keeping its graph adjacency
// and mapping storage alive. Callers replicating every interval (Theorem 1)
// or every round reuse one ReplicatedGraph instead of reallocating.
void Replicate(const Instance& instance, std::span<const FlowId> flow_ids,
               ReplicatedGraph* out);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_EXPANSION_H_
