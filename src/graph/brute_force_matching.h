// Exponential-time exact matchers used as ground truth in property tests.
// Only call on tiny graphs (num_edges <= ~20).
#ifndef FLOWSCHED_GRAPH_BRUTE_FORCE_MATCHING_H_
#define FLOWSCHED_GRAPH_BRUTE_FORCE_MATCHING_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

// Maximum cardinality by exhaustive search over edge subsets.
int BruteForceMaxCardinality(const BipartiteGraph& g);

// Maximum total weight over all matchings.
double BruteForceMaxWeight(const BipartiteGraph& g,
                           std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_BRUTE_FORCE_MATCHING_H_
