// Warm-start wrapper around MaxWeightMatcher for round-by-round re-solves.
//
// The online/coflow maxweight policies solve a fresh max-weight matching on
// the backlog graph every round, but the backlog only changes by
// O(arrivals + departures) per round: most rounds the dense Hungarian
// problem is identical to the previous one, or differs only in a suffix of
// its rows. IncrementalMatcher exploits that while keeping schedules
// bit-exact (ROADMAP item 4's contract): it only ever takes shortcuts that
// provably reproduce the from-scratch operation sequence.
//
// Three paths, checked in order against the previous round's dense matrix:
//   1. Cache hit — the matrix is bitwise identical: the previous optimal
//      assignment is re-emitted without touching the Hungarian state.
//   2. Prefix resume — the first k rows are bitwise identical: the
//      Hungarian state after row k is a pure function of rows 1..k, so the
//      solver restores the per-row checkpoint recorded by the previous
//      solve and replays only rows k+1..n. The replay performs the exact
//      IEEE operation sequence of a from-scratch solve.
//   3. Full solve — anything else (dims changed, row 1 changed, no usable
//      history): plain InitDuals + RunRows(1).
// Warm-started duals in the classic sense (reusing final potentials as a
// starting point) are deliberately NOT used by default: per-round optima
// are almost never unique here, and different-but-optimal duals change the
// tie-break and therefore the emitted schedule. The checkpoint scheme is
// the strongest warm start that keeps byte-identical output.
//
// All scratch (previous matrix, checkpoints) lives in the object, so
// policies holding one across rounds keep the simulator's zero-allocation
// round contract once buffers reach their high-water mark.
#ifndef FLOWSCHED_GRAPH_INCREMENTAL_MATCHING_H_
#define FLOWSCHED_GRAPH_INCREMENTAL_MATCHING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

class IncrementalMatcher {
 public:
  struct Stats {
    std::int64_t solves = 0;          // Total Solve() calls.
    std::int64_t empty_graphs = 0;    // Calls with no edges (trivial).
    std::int64_t cache_hits = 0;      // Identical matrix, re-emitted.
    std::int64_t prefix_resumes = 0;  // Resumed from a row checkpoint.
    std::int64_t full_solves = 0;     // From-scratch Hungarian runs.
    std::int64_t reused_rows = 0;     // Rows skipped via checkpoints.
    std::int64_t total_rows = 0;      // Rows across all non-empty solves.
  };

  // Drop-in replacement for MaxWeightMatcher::Solve: overwrites *out with
  // edge indices of a maximum-weight matching, bit-identical to what a
  // from-scratch MaxWeightMatcher would return for the same call.
  void Solve(const BipartiteGraph& g, std::span<const double> weight,
             std::vector<int>* out);

  // Forgets all history; the next Solve runs from scratch. Stats persist.
  void Reset();

  const Stats& stats() const { return stats_; }

  // Test hooks: dual-certificate checks over the state of the last
  // non-empty solve. Feasibility: max over all cells of u_i + v_j - C(i,j)
  // (<= 0 up to rounding when the duals are feasible). Tightness: max
  // |u_i + v_j - C(i,j)| over matched cells (0 at optimality). Both return
  // 0 when there is no solved state.
  double MaxDualViolation() const;
  double MaxMatchedSlack() const;

 private:
  // 0-based index of the first row whose costs differ from the previous
  // matrix; rows_ when the matrices are bitwise identical.
  int FirstChangedRow() const;

  MaxWeightMatcher core_;
  HungarianCheckpoints checkpoints_;
  // True when checkpoints_ was recorded against the previous solve's
  // matrix (recording is skipped on workloads with no prefix stability;
  // restoring a stale snapshot would be unsound).
  bool checkpoints_fresh_ = false;
  // Evidence-driven recording: set when the last solve shared a row prefix
  // with its predecessor. Starts true so the first solve records.
  bool record_next_ = true;
  // Previous round's dense problem, for diffing.
  bool valid_ = false;
  int prev_rows_ = 0;
  int prev_cols_ = 0;
  std::vector<double> prev_cost_;
  Stats stats_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_INCREMENTAL_MATCHING_H_
