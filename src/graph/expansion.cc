#include "graph/expansion.h"

#include <numeric>

#include "util/check.h"

namespace flowsched {

void Replicate(const Instance& instance, std::span<const FlowId> flow_ids,
               ReplicatedGraph* out) {
  const SwitchSpec& sw = instance.sw();
  // Replica index ranges per port.
  std::vector<int> in_base(sw.num_inputs() + 1, 0);
  std::vector<int> out_base(sw.num_outputs() + 1, 0);
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    in_base[p + 1] = in_base[p] + static_cast<int>(sw.input_capacity(p));
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    out_base[q + 1] = out_base[q] + static_cast<int>(sw.output_capacity(q));
  }
  const int num_left = in_base[sw.num_inputs()];
  const int num_right = out_base[sw.num_outputs()];
  out->graph.Reset(num_left, num_right);
  out->graph.ReserveEdges(static_cast<int>(flow_ids.size()));
  out->left_port.resize(num_left);
  out->right_port.resize(num_right);
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    for (int r = in_base[p]; r < in_base[p + 1]; ++r) out->left_port[r] = p;
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    for (int r = out_base[q]; r < out_base[q + 1]; ++r) out->right_port[r] = q;
  }
  // Round-robin cursors per port, as in the paper's construction.
  std::vector<int> in_cursor(sw.num_inputs(), 0);
  std::vector<int> out_cursor(sw.num_outputs(), 0);
  out->edge_to_input_index.clear();
  out->edge_to_input_index.reserve(flow_ids.size());
  for (std::size_t i = 0; i < flow_ids.size(); ++i) {
    const Flow& e = instance.flow(flow_ids[i]);
    FS_CHECK_MSG(e.demand == 1,
                 "Replicate requires unit demands; flow " << e.id << " has "
                                                          << e.demand);
    const int cap_in = static_cast<int>(sw.input_capacity(e.src));
    const int cap_out = static_cast<int>(sw.output_capacity(e.dst));
    const int lu = in_base[e.src] + in_cursor[e.src];
    const int rv = out_base[e.dst] + out_cursor[e.dst];
    in_cursor[e.src] = (in_cursor[e.src] + 1) % cap_in;
    out_cursor[e.dst] = (out_cursor[e.dst] + 1) % cap_out;
    out->graph.AddEdge(lu, rv);
    out->edge_to_input_index.push_back(static_cast<int>(i));
  }
}

ReplicatedGraph Replicate(const Instance& instance,
                          std::span<const FlowId> flow_ids) {
  ReplicatedGraph out;
  Replicate(instance, flow_ids, &out);
  return out;
}

}  // namespace flowsched
