#include "graph/brute_force_matching.h"

#include <algorithm>

#include "util/check.h"

namespace flowsched {
namespace {

// Recursively decide edge `e` in/out, tracking used endpoints.
template <typename Score>
void Search(const BipartiteGraph& g, int e, std::vector<char>& left_used,
            std::vector<char>& right_used, double current, Score score,
            double& best) {
  best = std::max(best, current);
  if (e >= g.num_edges()) return;
  // Skip edge e.
  Search(g, e + 1, left_used, right_used, current, score, best);
  const auto& edge = g.edge(e);
  if (!left_used[edge.u] && !right_used[edge.v]) {
    left_used[edge.u] = 1;
    right_used[edge.v] = 1;
    Search(g, e + 1, left_used, right_used, current + score(e), score, best);
    left_used[edge.u] = 0;
    right_used[edge.v] = 0;
  }
}

}  // namespace

int BruteForceMaxCardinality(const BipartiteGraph& g) {
  FS_CHECK_LE(g.num_edges(), 24);
  std::vector<char> left_used(g.num_left(), 0);
  std::vector<char> right_used(g.num_right(), 0);
  double best = 0.0;
  Search(g, 0, left_used, right_used, 0.0, [](int) { return 1.0; }, best);
  return static_cast<int>(best);
}

double BruteForceMaxWeight(const BipartiteGraph& g,
                           std::span<const double> weight) {
  FS_CHECK_LE(g.num_edges(), 24);
  FS_CHECK_EQ(static_cast<int>(weight.size()), g.num_edges());
  std::vector<char> left_used(g.num_left(), 0);
  std::vector<char> right_used(g.num_right(), 0);
  double best = 0.0;
  Search(g, 0, left_used, right_used, 0.0,
         [&](int e) { return weight[e]; }, best);
  return best;
}

}  // namespace flowsched
