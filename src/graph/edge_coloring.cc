#include "graph/edge_coloring.h"

#include <algorithm>

#include "graph/hopcroft_karp.h"
#include "util/check.h"

namespace flowsched {
namespace {

// --- König path: alternating-path recoloring, O(V * E). -------------------

EdgeColoring ColorKoenig(const BipartiteGraph& g) {
  const int num_colors = std::max(g.MaxDegree(), 1);
  EdgeColoring ec;
  ec.num_colors = num_colors;
  ec.color_of_edge.assign(g.num_edges(), -1);
  // slot(side, vertex, c) = edge currently colored c at that vertex, or -1.
  std::vector<int> slot_left(static_cast<std::size_t>(g.num_left()) * num_colors, -1);
  std::vector<int> slot_right(static_cast<std::size_t>(g.num_right()) * num_colors, -1);
  auto left_slot = [&](int u, int c) -> int& {
    return slot_left[static_cast<std::size_t>(u) * num_colors + c];
  };
  auto right_slot = [&](int v, int c) -> int& {
    return slot_right[static_cast<std::size_t>(v) * num_colors + c];
  };
  auto first_free = [&](std::vector<int>& slots, int vertex) {
    for (int c = 0; c < num_colors; ++c) {
      if (slots[static_cast<std::size_t>(vertex) * num_colors + c] == -1) return c;
    }
    FS_CHECK_MSG(false, "vertex " << vertex << " has no free color");
    return -1;
  };

  std::vector<int> path;  // Reused buffer of edge ids on the alternating path.
  for (int e = 0; e < g.num_edges(); ++e) {
    const int u = g.edge(e).u;
    const int v = g.edge(e).v;
    const int a = first_free(slot_left, u);
    const int b = first_free(slot_right, v);
    if (a != b) {
      // Color a is free at u but used at v. Flip the maximal a/b alternating
      // path starting at v; it never reaches u (every left vertex on the
      // path is entered through an a-colored edge, and u has none), so after
      // the flip color a is free at both endpoints.
      path.clear();
      int vertex = v;
      bool on_right = true;
      int want = a;
      while (true) {
        const int next = on_right ? right_slot(vertex, want)
                                  : left_slot(vertex, want);
        if (next == -1) break;
        path.push_back(next);
        vertex = on_right ? g.edge(next).u : g.edge(next).v;
        on_right = !on_right;
        want = (want == a) ? b : a;
      }
      for (int pe : path) {
        const int c = ec.color_of_edge[pe];
        left_slot(g.edge(pe).u, c) = -1;
        right_slot(g.edge(pe).v, c) = -1;
      }
      for (int pe : path) {
        const int c = (ec.color_of_edge[pe] == a) ? b : a;
        ec.color_of_edge[pe] = c;
        left_slot(g.edge(pe).u, c) = pe;
        right_slot(g.edge(pe).v, c) = pe;
      }
    }
    FS_CHECK_EQ(left_slot(u, a), -1);
    FS_CHECK_EQ(right_slot(v, a), -1);
    ec.color_of_edge[e] = a;
    left_slot(u, a) = e;
    right_slot(v, a) = e;
  }
  return ec;
}

// --- Euler split: divide-and-conquer over a regularized copy. -------------
//
// The graph is first padded to a D-regular bipartite multigraph on s + s
// vertices (s = max side). A D-regular bipartite multigraph D-edge-colors
// by recursion on D:
//   D even  Euler partition: every component's Euler circuit has even
//           length (bipartite), so labelling its edges alternately splits
//           the graph into two (D/2)-regular halves, colored recursively
//           with disjoint palettes.
//   D odd   a D-regular bipartite multigraph has a perfect matching (Hall);
//           peel one with Hopcroft–Karp, give it its own color, and recurse
//           on the remaining (D-1)-regular graph.
// Colors assigned to padding edges are simply dropped at the end.

class EulerSplitColorer {
 public:
  explicit EulerSplitColorer(const BipartiteGraph& g)
      : real_edges_(g.num_edges()), s_(std::max(g.num_left(), g.num_right())) {}

  EdgeColoring Run(const BipartiteGraph& g) {
    const int d = std::max(g.MaxDegree(), 1);
    EdgeColoring ec;
    ec.num_colors = d;
    ec.color_of_edge.assign(real_edges_, -1);
    if (real_edges_ == 0) return ec;

    // Regularize: every left/right vertex gets degree exactly d by pairing
    // off deficits greedily (total deficit is equal on both sides).
    const std::size_t total = static_cast<std::size_t>(s_) * d;
    eu_.reserve(total);
    ev_.reserve(total);
    std::vector<int> deg_left(s_, 0);
    std::vector<int> deg_right(s_, 0);
    for (const auto& e : g.edges()) {
      eu_.push_back(e.u);
      ev_.push_back(e.v);
      ++deg_left[e.u];
      ++deg_right[e.v];
    }
    int li = 0;
    int ri = 0;
    while (true) {
      while (li < s_ && deg_left[li] == d) ++li;
      if (li == s_) break;
      while (deg_right[ri] == d) ++ri;
      eu_.push_back(li);
      ev_.push_back(ri);
      ++deg_left[li];
      ++deg_right[ri];
    }
    FS_CHECK_EQ(eu_.size(), total);
    color_.assign(total, -1);
    ids_.resize(total);
    for (std::size_t k = 0; k < total; ++k) ids_[k] = static_cast<int>(k);
    scratch_.resize(total);
    Color(0, static_cast<int>(total), d, 0);

    for (int e = 0; e < real_edges_; ++e) {
      ec.color_of_edge[e] = color_[e];
    }
    return ec;
  }

 private:
  // Below this degree the alternating-path colorer beats further splitting
  // (its per-edge cost scales with the degree, so it is cheap exactly where
  // the recursion bottoms out — and switching early prunes every deep peel).
  static constexpr int kKoenigCutover = 48;

  // Colors the d-regular sub-multigraph held in ids_[lo, hi) with palette
  // [base, base + d). Works in place on segments of ids_; all scratch is
  // reused across recursion levels.
  void Color(int lo, int hi, int d, int base) {
    if (d == 1) {
      for (int k = lo; k < hi; ++k) color_[ids_[k]] = base;
      return;
    }
    if (d <= kKoenigCutover) {
      BipartiteGraph sub(s_, s_);
      sub.ReserveEdges(hi - lo);
      for (int k = lo; k < hi; ++k) sub.AddEdge(eu_[ids_[k]], ev_[ids_[k]]);
      const EdgeColoring ec = ColorKoenig(sub);
      FS_CHECK_LE(ec.num_colors, d);
      for (int k = lo; k < hi; ++k) {
        color_[ids_[k]] = base + ec.color_of_edge[k - lo];
      }
      return;
    }
    if (d % 2 == 1) {
      PeelMatching(lo, hi, base);  // Compacts the matched ids out of the
      lo += s_;                    // front of the segment.
      Color(lo, hi, d - 1, base + 1);
      return;
    }
    const int mid = EulerPartition(lo, hi);
    Color(lo, mid, d / 2, base);
    Color(mid, hi, d / 2, base + d / 2);
  }

  // Builds left-side CSR adjacency for ids_[lo, hi) into adj_/adj_head_.
  void BuildLeftAdj(int lo, int hi) {
    adj_head_.assign(s_ + 1, 0);
    for (int k = lo; k < hi; ++k) ++adj_head_[eu_[ids_[k]] + 1];
    for (int x = 0; x < s_; ++x) adj_head_[x + 1] += adj_head_[x];
    adj_cursor_.assign(adj_head_.begin(), adj_head_.end() - 1);
    adj_.resize(hi - lo);
    for (int k = lo; k < hi; ++k) {
      adj_[adj_cursor_[eu_[ids_[k]]]++] = k;
    }
  }

  // Finds a perfect matching of the d-regular sub-multigraph ids_[lo, hi)
  // (greedy seed + Hopcroft-Karp augmentation over reused buffers), colors
  // it `base`, and swaps the matched ids into ids_[lo, lo + s_).
  void PeelMatching(int lo, int hi, int base) {
    BuildLeftAdj(lo, hi);
    match_left_.assign(s_, -1);   // Position k in ids_, or -1.
    match_right_.assign(s_, -1);
    int matched = 0;
    // Greedy pass: on regular graphs this already matches most vertices.
    for (int u = 0; u < s_; ++u) {
      for (int a = adj_head_[u]; a < adj_head_[u + 1]; ++a) {
        const int v = ev_[ids_[adj_[a]]];
        if (match_right_[v] == -1) {
          match_left_[u] = adj_[a];
          match_right_[v] = adj_[a];
          ++matched;
          break;
        }
      }
    }
    // Hopcroft-Karp phases finish the perfect matching.
    while (matched < s_) {
      dist_.assign(s_, -1);
      queue_.clear();
      for (int u = 0; u < s_; ++u) {
        if (match_left_[u] == -1) {
          dist_[u] = 0;
          queue_.push_back(u);
        }
      }
      bool found = false;
      for (std::size_t head = 0; head < queue_.size(); ++head) {
        const int u = queue_[head];
        for (int a = adj_head_[u]; a < adj_head_[u + 1]; ++a) {
          const int v = ev_[ids_[adj_[a]]];
          const int mk = match_right_[v];
          if (mk == -1) {
            found = true;
          } else {
            const int w = eu_[ids_[mk]];
            if (dist_[w] == -1) {
              dist_[w] = dist_[u] + 1;
              queue_.push_back(w);
            }
          }
        }
      }
      FS_CHECK_MSG(found,
                   "regular bipartite multigraph must have a perfect matching");
      for (int u = 0; u < s_; ++u) {
        if (match_left_[u] == -1 && Augment(u)) ++matched;
      }
    }
    // Color the matched edges (segment edges are uncolored before this, so
    // `color == base` marks exactly the matching during the partition).
    for (int u = 0; u < s_; ++u) {
      color_[ids_[match_left_[u]]] = base;
    }
    // Re-partition ids_[lo, hi): matched first, rest after.
    int w = lo;
    int x = hi - 1;
    while (w <= x) {
      if (color_[ids_[w]] == base) {
        ++w;
      } else if (color_[ids_[x]] != base) {
        --x;
      } else {
        std::swap(ids_[w], ids_[x]);
        ++w;
        --x;
      }
    }
    FS_CHECK_EQ(w - lo, s_);
  }

  bool Augment(int u) {
    for (int a = adj_head_[u]; a < adj_head_[u + 1]; ++a) {
      const int v = ev_[ids_[adj_[a]]];
      const int mk = match_right_[v];
      if (mk == -1 ||
          (dist_[eu_[ids_[mk]]] == dist_[u] + 1 && Augment(eu_[ids_[mk]]))) {
        match_left_[u] = adj_[a];
        match_right_[v] = adj_[a];
        return true;
      }
    }
    dist_[u] = -1;
    return false;
  }

  // Splits the even-regular sub-multigraph ids_[lo, hi) into two halves of
  // equal degree at every vertex by alternating edge labels along Euler
  // circuits, then reorders the segment to [half A | half B] and returns the
  // split point. Bipartite circuits have even length, so the alternation is
  // consistent and every vertex's incident edges split exactly in half.
  int EulerPartition(int lo, int hi) {
    const int nv = 2 * s_;  // Right vertices offset by s_.
    const int k = hi - lo;
    // CSR incidence over segment positions: each edge appears at both
    // endpoints.
    head_.assign(nv + 1, 0);
    for (int e = lo; e < hi; ++e) {
      ++head_[eu_[ids_[e]] + 1];
      ++head_[s_ + ev_[ids_[e]] + 1];
    }
    for (int x = 0; x < nv; ++x) head_[x + 1] += head_[x];
    cursor_.assign(head_.begin(), head_.end() - 1);
    incident_.resize(2 * k);
    for (int e = lo; e < hi; ++e) {
      incident_[cursor_[eu_[ids_[e]]]++] = e;
      incident_[cursor_[s_ + ev_[ids_[e]]]++] = e;
    }
    cursor_.assign(head_.begin(), head_.end() - 1);
    visited_.assign(k, 0);
    int na = 0;        // Half-A ids collect at scratch_[0..na).
    int nb = k;        // Half-B ids collect at scratch_[k-1..nb) downward.
    for (int start = lo; start < hi; ++start) {
      if (visited_[start - lo]) continue;
      // Walk a maximal trail; with all degrees even it closes into a
      // circuit, so the walk only stops when the current vertex has no
      // unused incident edge left.
      int at = eu_[ids_[start]];
      bool label = false;
      while (true) {
        int e = -1;
        while (cursor_[at] < head_[at + 1]) {
          const int cand = incident_[cursor_[at]];
          if (!visited_[cand - lo]) {
            e = cand;
            break;
          }
          ++cursor_[at];
        }
        if (e == -1) break;
        visited_[e - lo] = 1;
        if (label) {
          scratch_[--nb] = ids_[e];
        } else {
          scratch_[na++] = ids_[e];
        }
        label = !label;
        const int u = eu_[ids_[e]];
        at = (at == u) ? s_ + ev_[ids_[e]] : u;
      }
    }
    FS_CHECK_EQ(na, k / 2);
    FS_CHECK_EQ(nb, k / 2);
    for (int e = 0; e < k; ++e) ids_[lo + e] = scratch_[e];
    return lo + k / 2;
  }

  const int real_edges_;
  const int s_;
  std::vector<int> eu_;  // Working-edge endpoints (right side NOT offset).
  std::vector<int> ev_;
  std::vector<int> color_;
  std::vector<int> ids_;      // Permutation of working edges; recursion
  std::vector<int> scratch_;  // operates on segments of this array.
  std::vector<int> head_;
  std::vector<int> cursor_;
  std::vector<int> incident_;
  std::vector<char> visited_;
  // Peel scratch (positions into ids_).
  std::vector<int> adj_head_;
  std::vector<int> adj_cursor_;
  std::vector<int> adj_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;
  std::vector<int> queue_;
};

}  // namespace

std::vector<std::vector<int>> EdgeColoring::ColorClasses(bool validate) const {
  std::vector<std::vector<int>> classes(num_colors);
  for (int e = 0; e < static_cast<int>(color_of_edge.size()); ++e) {
    if (validate) {
      FS_CHECK(color_of_edge[e] >= 0 && color_of_edge[e] < num_colors);
    }
    classes[color_of_edge[e]].push_back(e);
  }
  return classes;
}

EdgeColoring ColorBipartiteEdges(const BipartiteGraph& g,
                                 EdgeColoringAlgorithm algorithm) {
  if (algorithm == EdgeColoringAlgorithm::kEulerSplit) {
    return EulerSplitColorer(g).Run(g);
  }
  return ColorKoenig(g);
}

bool IsValidEdgeColoring(const BipartiteGraph& g, const EdgeColoring& ec) {
  if (static_cast<int>(ec.color_of_edge.size()) != g.num_edges()) return false;
  for (int c : ec.color_of_edge) {
    if (c < 0 || c >= ec.num_colors) return false;
  }
  for (const auto& cls : ec.ColorClasses(/*validate=*/true)) {
    if (!IsMatching(g, cls)) return false;
  }
  return true;
}

}  // namespace flowsched
