#include "graph/edge_coloring.h"

#include <algorithm>

#include "util/check.h"

namespace flowsched {

std::vector<std::vector<int>> EdgeColoring::ColorClasses() const {
  std::vector<std::vector<int>> classes(num_colors);
  for (int e = 0; e < static_cast<int>(color_of_edge.size()); ++e) {
    FS_CHECK(color_of_edge[e] >= 0 && color_of_edge[e] < num_colors);
    classes[color_of_edge[e]].push_back(e);
  }
  return classes;
}

EdgeColoring ColorBipartiteEdges(const BipartiteGraph& g) {
  const int num_colors = std::max(g.MaxDegree(), 1);
  EdgeColoring ec;
  ec.num_colors = num_colors;
  ec.color_of_edge.assign(g.num_edges(), -1);
  // slot(side, vertex, c) = edge currently colored c at that vertex, or -1.
  std::vector<int> slot_left(static_cast<std::size_t>(g.num_left()) * num_colors, -1);
  std::vector<int> slot_right(static_cast<std::size_t>(g.num_right()) * num_colors, -1);
  auto left_slot = [&](int u, int c) -> int& {
    return slot_left[static_cast<std::size_t>(u) * num_colors + c];
  };
  auto right_slot = [&](int v, int c) -> int& {
    return slot_right[static_cast<std::size_t>(v) * num_colors + c];
  };
  auto first_free = [&](std::vector<int>& slots, int vertex) {
    for (int c = 0; c < num_colors; ++c) {
      if (slots[static_cast<std::size_t>(vertex) * num_colors + c] == -1) return c;
    }
    FS_CHECK_MSG(false, "vertex " << vertex << " has no free color");
    return -1;
  };

  std::vector<int> path;  // Reused buffer of edge ids on the alternating path.
  for (int e = 0; e < g.num_edges(); ++e) {
    const int u = g.edge(e).u;
    const int v = g.edge(e).v;
    const int a = first_free(slot_left, u);
    const int b = first_free(slot_right, v);
    if (a != b) {
      // Color a is free at u but used at v. Flip the maximal a/b alternating
      // path starting at v; it never reaches u (every left vertex on the
      // path is entered through an a-colored edge, and u has none), so after
      // the flip color a is free at both endpoints.
      path.clear();
      int vertex = v;
      bool on_right = true;
      int want = a;
      while (true) {
        const int next = on_right ? right_slot(vertex, want)
                                  : left_slot(vertex, want);
        if (next == -1) break;
        path.push_back(next);
        vertex = on_right ? g.edge(next).u : g.edge(next).v;
        on_right = !on_right;
        want = (want == a) ? b : a;
      }
      for (int pe : path) {
        const int c = ec.color_of_edge[pe];
        left_slot(g.edge(pe).u, c) = -1;
        right_slot(g.edge(pe).v, c) = -1;
      }
      for (int pe : path) {
        const int c = (ec.color_of_edge[pe] == a) ? b : a;
        ec.color_of_edge[pe] = c;
        left_slot(g.edge(pe).u, c) = pe;
        right_slot(g.edge(pe).v, c) = pe;
      }
    }
    FS_CHECK_EQ(left_slot(u, a), -1);
    FS_CHECK_EQ(right_slot(v, a), -1);
    ec.color_of_edge[e] = a;
    left_slot(u, a) = e;
    right_slot(v, a) = e;
  }
  return ec;
}

bool IsValidEdgeColoring(const BipartiteGraph& g, const EdgeColoring& ec) {
  if (static_cast<int>(ec.color_of_edge.size()) != g.num_edges()) return false;
  for (int c : ec.color_of_edge) {
    if (c < 0 || c >= ec.num_colors) return false;
  }
  for (const auto& cls : ec.ColorClasses()) {
    if (!IsMatching(g, cls)) return false;
  }
  return true;
}

}  // namespace flowsched
