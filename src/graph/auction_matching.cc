#include "graph/auction_matching.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace flowsched {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

void AuctionMatcher::BuildAdjacency(const BipartiteGraph& g,
                                    std::span<const double> weight) {
  // Counting sort of edges by left vertex: persons_ comes out in ascending
  // raw id order and each person's edge list preserves input edge order,
  // which pins the deterministic bid/tie-break sequence.
  degree_.assign(g.num_left(), 0);
  for (const auto& e : g.edges()) ++degree_[e.u];
  persons_.clear();
  adj_start_.clear();
  int total = 0;
  for (int u = 0; u < g.num_left(); ++u) {
    if (degree_[u] == 0) continue;
    persons_.push_back(u);
    adj_start_.push_back(total);
    total += degree_[u];
    degree_[u] = static_cast<int>(persons_.size()) - 1;  // u -> person slot.
  }
  adj_start_.push_back(total);
  adj_obj_.resize(total);
  adj_edge_.resize(total);
  adj_w_.resize(total);
  // Fill cursors, then dedup in place: parallel (u, v) edges can never both
  // be matched, so keep only the best — strictly greater weight replaces,
  // the first edge wins ties (same rule as the dense matrix build).
  dedup_stamp_.assign(g.num_right(), -1);
  dedup_pos_.assign(g.num_right(), 0);
  std::vector<int>& fill = queue_;  // Reuse scratch; rebuilt by RunAuction.
  fill.assign(persons_.size(), 0);
  for (int e = 0; e < g.num_edges(); ++e) {
    FS_CHECK_GE(weight[e], 0.0);
    const auto& edge = g.edge(e);
    const int slot = degree_[edge.u];
    const int base = adj_start_[slot];
    if (dedup_stamp_[edge.v] == slot) {
      const int pos = dedup_pos_[edge.v];
      if (weight[e] > adj_w_[pos]) {
        adj_w_[pos] = weight[e];
        adj_edge_[pos] = e;
      }
      continue;
    }
    const int pos = base + fill[slot]++;
    dedup_stamp_[edge.v] = slot;
    dedup_pos_[edge.v] = pos;
    adj_obj_[pos] = edge.v;
    adj_edge_[pos] = e;
    adj_w_[pos] = weight[e];
  }
  // Compact the per-person ranges after dedup.
  int write = 0;
  for (std::size_t s = 0; s < persons_.size(); ++s) {
    const int base = adj_start_[s];
    const int kept = fill[s];
    if (write != base) {
      std::copy(adj_obj_.begin() + base, adj_obj_.begin() + base + kept,
                adj_obj_.begin() + write);
      std::copy(adj_edge_.begin() + base, adj_edge_.begin() + base + kept,
                adj_edge_.begin() + write);
      std::copy(adj_w_.begin() + base, adj_w_.begin() + base + kept,
                adj_w_.begin() + write);
    }
    adj_start_[s] = write;
    write += kept;
  }
  adj_start_[persons_.size()] = write;
  adj_obj_.resize(write);
  adj_edge_.resize(write);
  adj_w_.resize(write);
}

void AuctionMatcher::RunAuction(double eps, std::int64_t max_bids) {
  const int np = static_cast<int>(persons_.size());
  matched_obj_.assign(np, -1);
  matched_edge_.assign(np, -1);
  std::fill(owner_.begin(), owner_.end(), -1);
  queue_.resize(np);
  for (int s = 0; s < np; ++s) queue_[s] = s;
  head_ = 0;
  std::int64_t bids = 0;
  while (head_ < queue_.size()) {
    const int s = queue_[head_++];
    // Best and second-best net value over this person's objects; first
    // argmax wins ties (strict > to replace), for determinism.
    double v1 = kNegInf;
    double v2 = kNegInf;
    int best_k = -1;
    for (int k = adj_start_[s]; k < adj_start_[s + 1]; ++k) {
      const double val = adj_w_[k] - price_[adj_obj_[k]];
      if (val > v1) {
        v2 = v1;
        v1 = val;
        best_k = k;
      } else if (val > v2) {
        v2 = val;
      }
    }
    // Staying unmatched is worth 0; prices only rise within a run, so a
    // person priced out now stays priced out — drop them for good.
    if (best_k < 0 || v1 < 0.0) continue;
    // Bid: raise the winner's price to the point of indifference with the
    // runner-up (the implicit zero-value "stay unmatched" option counts as
    // a runner-up), plus eps. Guarantees the price rises by >= eps, which
    // bounds the run by (max weight / eps) bids per object.
    const int obj = adj_obj_[best_k];
    price_[obj] = adj_w_[best_k] - std::max(v2, 0.0) + eps;
    const int prev = owner_[obj];
    if (prev >= 0) {
      matched_obj_[prev] = -1;
      matched_edge_[prev] = -1;
      queue_.push_back(prev);
    }
    owner_[obj] = s;
    matched_obj_[s] = obj;
    matched_edge_[s] = adj_edge_[best_k];
    ++bids;
    FS_CHECK_LE(bids, max_bids);
  }
  stats_.bids += bids;
}

double AuctionMatcher::ComputeCertificateBound() const {
  // Weak LP duality: any (pi, p) >= 0 with pi_i + p_j >= w_ij bounds OPT
  // from above by sum(pi) + sum(p). pi_i := max(0, max_j (w_ij - p_j)) is
  // feasible by construction.
  double bound = 0.0;
  for (std::size_t s = 0; s < persons_.size(); ++s) {
    double v1 = 0.0;
    for (int k = adj_start_[s]; k < adj_start_[s + 1]; ++k) {
      v1 = std::max(v1, adj_w_[k] - price_[adj_obj_[k]]);
    }
    bound += v1;
  }
  // Only objects adjacent to some person can carry weight in the primal;
  // still sum every positive price — zeroing of unmatched objects below
  // keeps stray prices from accumulating round over round.
  for (double p : price_) bound += p;
  return bound;
}

void AuctionMatcher::Solve(const BipartiteGraph& g,
                           std::span<const double> weight, double eps,
                           std::vector<int>* out) {
  FS_CHECK_EQ(static_cast<int>(weight.size()), g.num_edges());
  FS_CHECK_GT(eps, 0.0);
  out->clear();
  ++stats_.solves;
  last_bound_ = 0.0;
  last_weight_ = 0.0;
  if (g.num_edges() == 0) return;
  BuildAdjacency(g, weight);
  // Prices persist across solves keyed by raw right-vertex id; a changed
  // switch shape invalidates them.
  if (static_cast<int>(price_.size()) != g.num_right()) {
    price_.assign(g.num_right(), 0.0);
  }
  if (static_cast<int>(owner_.size()) != g.num_right()) {
    owner_.assign(g.num_right(), -1);
  }
  // An object with no edges this round cannot be matched; a stale price on
  // it would only inflate the certificate. BuildAdjacency left
  // dedup_stamp_[v] >= 0 exactly for the adjacent objects.
  for (int v = 0; v < g.num_right(); ++v) {
    if (dedup_stamp_[v] < 0) price_[v] = 0.0;
  }
  double max_w = 0.0;
  for (double w : adj_w_) max_w = std::max(max_w, w);
  // Every bid raises one price by >= eps and no price exceeds max_w + eps,
  // so any run terminates within |objects|·(max_w/eps + 1) bids; the cap
  // only trips on a logic error, not on slow instances.
  const std::int64_t max_bids =
      64 + static_cast<std::int64_t>(
               std::min(1e15, static_cast<double>(g.num_right()) *
                                  (max_w / eps + 2.0)));

  // Backoff: while a cold streak is active, skip the doomed warm attempt
  // and go straight to a cold run, which certifies unconditionally.
  const bool forced_cold = cold_streak_ > 0;
  if (forced_cold) {
    --cold_streak_;
    ++stats_.forced_colds;
    std::fill(price_.begin(), price_.end(), 0.0);
  }
  const int np = static_cast<int>(persons_.size());
  for (int attempt = 0; attempt < 2; ++attempt) {
    RunAuction(eps, max_bids);
    // Hygiene before the certificate: an object left unmatched at a
    // positive price attracted no bids, so cutting it to zero changes no
    // one's assignment — and the certificate below is computed against the
    // cut price vector (any non-negative prices induce a feasible dual),
    // so warm-start leftovers don't inflate the bound.
    for (int v = 0; v < g.num_right(); ++v) {
      if (owner_[v] < 0) price_[v] = 0.0;
    }
    double achieved = 0.0;
    for (int s = 0; s < np; ++s) {
      if (matched_edge_[s] >= 0) achieved += weight[matched_edge_[s]];
    }
    last_weight_ = achieved;
    last_bound_ = ComputeCertificateBound();
    // Cold runs satisfy gap <= n·eps unconditionally (eps-complementary
    // slackness + all unmatched objects at price 0). A warm start can void
    // it — stale positive prices on objects nobody wants anymore — in
    // which case we pay for one cold re-run and keep the guarantee.
    const double tolerance =
        static_cast<double>(np) * eps + 1e-9 * (1.0 + max_w);
    if (last_bound_ - last_weight_ <= tolerance) {
      // A warm attempt that certifies means prices are tracking the
      // workload again: lift the backoff.
      if (attempt == 0 && !forced_cold) warm_penalty_ = 1;
      break;
    }
    FS_CHECK_EQ(attempt, 0);  // The cold run always certifies.
    ++stats_.cold_restarts;
    warm_penalty_ = std::min(warm_penalty_ * 2, 64);
    cold_streak_ = warm_penalty_;
    std::fill(price_.begin(), price_.end(), 0.0);
  }
  for (int s = 0; s < np; ++s) {
    if (matched_edge_[s] >= 0) out->push_back(matched_edge_[s]);
  }
}

void AuctionMatcher::Reset() {
  price_.clear();
  owner_.clear();
  cold_streak_ = 0;
  warm_penalty_ = 1;
}

}  // namespace flowsched
