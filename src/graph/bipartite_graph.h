// Bipartite multigraph and matching helpers.
//
// Left vertices model input ports (or their replicas), right vertices model
// output ports. Parallel edges are allowed — interval graphs in Theorem 1's
// Birkhoff–von Neumann step are genuine multigraphs.
#ifndef FLOWSCHED_GRAPH_BIPARTITE_GRAPH_H_
#define FLOWSCHED_GRAPH_BIPARTITE_GRAPH_H_

#include <span>
#include <vector>

namespace flowsched {

class BipartiteGraph {
 public:
  struct Edge {
    int u = 0;  // Left endpoint.
    int v = 0;  // Right endpoint.
  };

  BipartiteGraph(int num_left, int num_right);

  // Re-initializes to an edgeless graph with the given dimensions while
  // keeping previously allocated edge and adjacency storage. Hot loops that
  // rebuild a graph of (roughly) the same shape every round use this to
  // avoid re-allocating the per-vertex adjacency vectors.
  void Reset(int num_left, int num_right);

  // Pre-sizes the edge list (adjacency lists grow on demand).
  void ReserveEdges(int n) { edges_.reserve(n); }

  // Adds an edge and returns its index. Parallel edges allowed.
  int AddEdge(int u, int v);

  int num_left() const { return num_left_; }
  int num_right() const { return num_right_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Incident edge indices.
  const std::vector<int>& left_adj(int u) const { return left_adj_[u]; }
  const std::vector<int>& right_adj(int v) const { return right_adj_[v]; }

  int LeftDegree(int u) const { return static_cast<int>(left_adj_[u].size()); }
  int RightDegree(int v) const { return static_cast<int>(right_adj_[v].size()); }

  // Maximum degree over all vertices (0 for edgeless graphs).
  int MaxDegree() const;

 private:
  int num_left_;
  int num_right_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> left_adj_;
  std::vector<std::vector<int>> right_adj_;
};

// True iff `edge_ids` are distinct edges of `g` sharing no endpoint.
bool IsMatching(const BipartiteGraph& g, std::span<const int> edge_ids);

// Sum of weights over the edge set.
double MatchingWeight(std::span<const int> edge_ids,
                      std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_BIPARTITE_GRAPH_H_
