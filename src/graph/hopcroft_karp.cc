#include "graph/hopcroft_karp.h"

#include <limits>
#include <queue>

namespace flowsched {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// Standard Hopcroft–Karp over vertex adjacency; parallel edges are harmless
// (only one copy can ever be matched).
class HopcroftKarp {
 public:
  explicit HopcroftKarp(const BipartiteGraph& g)
      : g_(g),
        match_left_(g.num_left(), -1),   // Edge id matched at left vertex.
        match_right_(g.num_right(), -1),
        dist_(g.num_left(), kInf) {}

  std::vector<int> Run() {
    while (Bfs()) {
      for (int u = 0; u < g_.num_left(); ++u) {
        if (match_left_[u] == -1) Dfs(u);
      }
    }
    std::vector<int> edges;
    for (int u = 0; u < g_.num_left(); ++u) {
      if (match_left_[u] != -1) edges.push_back(match_left_[u]);
    }
    return edges;
  }

 private:
  // Layers free left vertices; returns true if an augmenting path exists.
  bool Bfs() {
    std::queue<int> q;
    for (int u = 0; u < g_.num_left(); ++u) {
      if (match_left_[u] == -1) {
        dist_[u] = 0;
        q.push(u);
      } else {
        dist_[u] = kInf;
      }
    }
    bool found = false;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int e : g_.left_adj(u)) {
        const int v = g_.edge(e).v;
        const int me = match_right_[v];
        if (me == -1) {
          found = true;
        } else {
          const int w = g_.edge(me).u;
          if (dist_[w] == kInf) {
            dist_[w] = dist_[u] + 1;
            q.push(w);
          }
        }
      }
    }
    return found;
  }

  bool Dfs(int u) {
    for (int e : g_.left_adj(u)) {
      const int v = g_.edge(e).v;
      const int me = match_right_[v];
      if (me == -1 ||
          (dist_[g_.edge(me).u] == dist_[u] + 1 && Dfs(g_.edge(me).u))) {
        match_left_[u] = e;
        match_right_[v] = e;
        return true;
      }
    }
    dist_[u] = kInf;
    return false;
  }

  const BipartiteGraph& g_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;
};

}  // namespace

std::vector<int> MaxCardinalityMatching(const BipartiteGraph& g) {
  return HopcroftKarp(g).Run();
}

}  // namespace flowsched
