#include "graph/hopcroft_karp.h"

#include <limits>

#include "util/check.h"

namespace flowsched {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

}  // namespace

void HopcroftKarpSolver::Solve(const BipartiteGraph& g, std::vector<int>* out) {
  match_left_.assign(g.num_left(), -1);
  match_right_.assign(g.num_right(), -1);
  Run(g, out);
}

void HopcroftKarpSolver::SolveWarm(const BipartiteGraph& g,
                                   std::span<const int> seed_matching,
                                   std::vector<int>* out) {
  match_left_.assign(g.num_left(), -1);
  match_right_.assign(g.num_right(), -1);
  for (int e : seed_matching) {
    FS_CHECK(e >= 0 && e < g.num_edges());
    const int u = g.edge(e).u;
    const int v = g.edge(e).v;
    FS_CHECK_MSG(match_left_[u] == -1 && match_right_[v] == -1,
                 "warm-start seed is not a matching");
    match_left_[u] = e;
    match_right_[v] = e;
  }
  Run(g, out);
}

void HopcroftKarpSolver::Run(const BipartiteGraph& g, std::vector<int>* out) {
  dist_.assign(g.num_left(), kInf);
  while (Bfs(g)) {
    for (int u = 0; u < g.num_left(); ++u) {
      if (match_left_[u] == -1) Dfs(g, u);
    }
  }
  out->clear();
  for (int u = 0; u < g.num_left(); ++u) {
    if (match_left_[u] != -1) out->push_back(match_left_[u]);
  }
}

// Layers free left vertices; returns true if an augmenting path exists.
bool HopcroftKarpSolver::Bfs(const BipartiteGraph& g) {
  queue_.clear();
  for (int u = 0; u < g.num_left(); ++u) {
    if (match_left_[u] == -1) {
      dist_[u] = 0;
      queue_.push_back(u);
    } else {
      dist_[u] = kInf;
    }
  }
  bool found = false;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const int u = queue_[head];
    for (int e : g.left_adj(u)) {
      const int v = g.edge(e).v;
      const int me = match_right_[v];
      if (me == -1) {
        found = true;
      } else {
        const int w = g.edge(me).u;
        if (dist_[w] == kInf) {
          dist_[w] = dist_[u] + 1;
          queue_.push_back(w);
        }
      }
    }
  }
  return found;
}

bool HopcroftKarpSolver::Dfs(const BipartiteGraph& g, int u) {
  for (int e : g.left_adj(u)) {
    const int v = g.edge(e).v;
    const int me = match_right_[v];
    if (me == -1 ||
        (dist_[g.edge(me).u] == dist_[u] + 1 && Dfs(g, g.edge(me).u))) {
      match_left_[u] = e;
      match_right_[v] = e;
      return true;
    }
  }
  dist_[u] = kInf;
  return false;
}

std::vector<int> MaxCardinalityMatching(const BipartiteGraph& g) {
  HopcroftKarpSolver solver;
  std::vector<int> edges;
  solver.Solve(g, &edges);
  return edges;
}

}  // namespace flowsched
