#include "graph/incremental_matching.h"

#include <cmath>
#include <cstring>

namespace flowsched {

int IncrementalMatcher::FirstChangedRow() const {
  const int n = core_.rows_;
  const int m = core_.cols_;
  // Bitwise row compare: conservative (a -0.0 vs +0.0 flip reads as a
  // change and merely costs a resume), never unsound.
  for (int r = 0; r < n; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * m;
    if (std::memcmp(core_.cost_.data() + off, prev_cost_.data() + off,
                    sizeof(double) * m) != 0) {
      return r;
    }
  }
  return n;
}

void IncrementalMatcher::Solve(const BipartiteGraph& g,
                               std::span<const double> weight,
                               std::vector<int>* out) {
  out->clear();
  ++stats_.solves;
  // Zero-copy history: PrepareProblem overwrites the whole cost matrix, so
  // handing it last round's buffer and keeping the freshly built one as
  // prev_cost_ costs a pointer swap instead of a per-round memcpy.
  std::swap(prev_cost_, core_.cost_);
  if (!core_.PrepareProblem(g, weight)) {
    // No edges: nothing to match, and no state worth diffing against.
    ++stats_.empty_graphs;
    valid_ = false;
    return;
  }
  const int n = core_.rows_;
  const int m = core_.cols_;
  stats_.total_rows += n;

  const bool same_dims = valid_ && n == prev_rows_ && m == prev_cols_;
  const int first_changed = same_dims ? FirstChangedRow() : 0;
  const bool shares_prefix = same_dims && first_changed >= 1;
  if (same_dims && first_changed == n) {
    // Identical problem: the previous assignment is still optimal and the
    // emitted edges are recomputed from the current best_edge_ map, so
    // edge-index remapping across rounds is handled for free. Checkpoint
    // freshness carries over — the matrix they describe is this one.
    ++stats_.cache_hits;
    stats_.reused_rows += n;
    core_.EmitMatching(weight, out);
  } else if (shares_prefix && checkpoints_fresh_ &&
             checkpoints_.recorded >= first_changed) {
    // Rows 1..first_changed (1-based) are unchanged: restore the state
    // snapshot taken right after that prefix and replay only the suffix.
    ++stats_.prefix_resumes;
    stats_.reused_rows += first_changed;
    core_.RestoreCheckpoint(checkpoints_, first_changed);
    core_.RunRows(first_changed + 1, &checkpoints_);
    core_.EmitMatching(weight, out);
  } else {
    ++stats_.full_solves;
    // Recording snapshots costs a memcpy per row, which is pure loss on
    // workloads whose matrices never share a prefix round over round (the
    // online maxweight weights shift globally every round, so row 1
    // usually changes). Record only when there is evidence of prefix
    // stability: this round shares one with the previous round, or the
    // previous round did.
    if (record_next_ || shares_prefix) {
      checkpoints_.Reset(n, m);
      core_.InitDuals();
      core_.RunRows(1, &checkpoints_);
      checkpoints_fresh_ = true;
    } else {
      core_.InitDuals();
      core_.RunRows(1, nullptr);
      checkpoints_fresh_ = false;
    }
    core_.EmitMatching(weight, out);
  }
  record_next_ = shares_prefix;

  prev_rows_ = n;
  prev_cols_ = m;
  valid_ = true;
}

void IncrementalMatcher::Reset() {
  valid_ = false;
  prev_rows_ = 0;
  prev_cols_ = 0;
  checkpoints_.recorded = 0;
  checkpoints_fresh_ = false;
  record_next_ = true;
}

double IncrementalMatcher::MaxDualViolation() const {
  if (!valid_) return 0.0;
  const int n = prev_rows_;
  const int m = prev_cols_;
  double worst = 0.0;
  for (int i = 1; i <= n; ++i) {
    const double* row = core_.cost_.data() + static_cast<std::size_t>(i - 1) * m;
    for (int j = 1; j <= m; ++j) {
      const double slack = core_.u_[i] + core_.v_[j] - row[j - 1];
      if (slack > worst) worst = slack;
    }
  }
  return worst;
}

double IncrementalMatcher::MaxMatchedSlack() const {
  if (!valid_) return 0.0;
  const int m = prev_cols_;
  double worst = 0.0;
  for (int j = 1; j <= m; ++j) {
    const int i = core_.p_[j];
    if (i == 0) continue;
    const double c =
        core_.cost_[static_cast<std::size_t>(i - 1) * m + (j - 1)];
    const double slack = std::fabs(core_.u_[i] + core_.v_[j] - c);
    if (slack > worst) worst = slack;
  }
  return worst;
}

}  // namespace flowsched
