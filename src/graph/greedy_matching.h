// Greedy maximal matchings — cheap baselines and policy building blocks.
#ifndef FLOWSCHED_GRAPH_GREEDY_MATCHING_H_
#define FLOWSCHED_GRAPH_GREEDY_MATCHING_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

// Scans edges in the given order and keeps each edge whose endpoints are
// still free. `order` holds edge indices; pass all edges for FIFO-by-id.
std::vector<int> GreedyMatchingInOrder(const BipartiteGraph& g,
                                       std::span<const int> order);

// Greedy by non-increasing weight (ties by edge index). 1/2-approximation
// to maximum weight.
std::vector<int> GreedyMatchingByWeight(const BipartiteGraph& g,
                                        std::span<const double> weight);

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_GREEDY_MATCHING_H_
