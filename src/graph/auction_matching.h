// ε-approximate maximum-weight bipartite matching via Bertsekas' forward
// auction, with prices persisted across rounds.
//
// This is the opt-in approximate path behind `approx=eps` on the maxweight
// solvers (ROADMAP item 4: approximations must be opt-in and quantified).
// Unlike the Hungarian solver it works directly on the sparse backlog graph
// — no dense matrix — and it warm-starts from the previous round's object
// prices, which is where the speedup comes from: after a small backlog
// delta, prices are already near-equilibrium and most persons win their
// first bid.
//
// Guarantee: the returned matching's weight is >= OPT - (#matched)·ε, and
// in particular >= OPT - n·ε for n participating left vertices. The bound
// is enforced, not assumed: every solve computes the LP dual certificate
//   OPT <= Σ_i max(0, max_j (w_ij - p_j)) + Σ_j p_j
// and if a warm start ever leaves a gap above n·ε the solver resets all
// prices and re-runs cold, where the classic ε-complementary-slackness
// argument makes the bound unconditional.
//
// Workloads whose prices churn every round would pay warm + cold on every
// solve, so failed warm attempts trigger an exponential backoff: the solver
// goes straight to a (single, always-certified) cold run for a growing
// streak of solves, re-probing warm occasionally in case the workload has
// settled. Friendly workloads keep the warm path; hostile ones degrade to
// pure cold solves plus a ~1% probing tax instead of a 2x penalty.
//
// Determinism: the auction uses no randomness — persons bid in ascending
// vertex order from a FIFO queue and ties pick the first argmax — so
// results are reproducible run to run (the policy seed does not enter).
#ifndef FLOWSCHED_GRAPH_AUCTION_MATCHING_H_
#define FLOWSCHED_GRAPH_AUCTION_MATCHING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace flowsched {

class AuctionMatcher {
 public:
  struct Stats {
    std::int64_t solves = 0;
    std::int64_t bids = 0;           // Price raises across all solves.
    std::int64_t cold_restarts = 0;  // Certificate-triggered re-runs.
    std::int64_t forced_colds = 0;   // Solves started cold by the backoff.
  };

  // Overwrites *out with edge indices of a matching whose total weight is
  // within num_matched·eps of optimal. Requires eps > 0 and all weights
  // >= 0. Prices persist across calls (reset automatically when the right
  // vertex count changes, or explicitly via Reset()).
  void Solve(const BipartiteGraph& g, std::span<const double> weight,
             double eps, std::vector<int>* out);

  // Drops all persisted prices; the next solve starts cold. Stats persist.
  void Reset();

  const Stats& stats() const { return stats_; }
  // Certificate of the last solve: dual upper bound, achieved matched
  // weight, and their gap (gap <= n·eps is the enforced guarantee).
  double last_bound() const { return last_bound_; }
  double last_weight() const { return last_weight_; }
  double last_gap() const { return last_bound_ - last_weight_; }

 private:
  void BuildAdjacency(const BipartiteGraph& g, std::span<const double> weight);
  void RunAuction(double eps, std::int64_t max_bids);
  double ComputeCertificateBound() const;

  // Deduped CSR adjacency over persons (left vertices with edges).
  std::vector<int> persons_;     // Raw left ids, ascending.
  std::vector<int> adj_start_;   // persons_.size() + 1 offsets.
  std::vector<int> adj_obj_;     // Raw right ids.
  std::vector<int> adj_edge_;    // Edge index backing each (person, obj).
  std::vector<double> adj_w_;
  std::vector<int> degree_;      // Per raw left id, then prefix sums.
  std::vector<int> dedup_stamp_;  // Per raw right id: last person marker.
  std::vector<int> dedup_pos_;    // Per raw right id: slot in person's list.
  // Auction state. price_ is the only piece that survives across solves.
  std::vector<double> price_;        // Per raw right id.
  std::vector<int> owner_;           // Per raw right id: person slot or -1.
  std::vector<int> matched_obj_;     // Per person slot: raw right id or -1.
  std::vector<int> matched_edge_;    // Per person slot: edge index or -1.
  std::vector<int> queue_;           // FIFO of person slots; head_ index.
  std::size_t head_ = 0;
  // Warm-start backoff: after a certificate failure the next warm_penalty_
  // solves start cold (single certified run); the penalty doubles on each
  // failed probe and snaps back to 1 when a warm attempt certifies.
  int cold_streak_ = 0;
  int warm_penalty_ = 1;

  Stats stats_;
  double last_bound_ = 0.0;
  double last_weight_ = 0.0;
};

}  // namespace flowsched

#endif  // FLOWSCHED_GRAPH_AUCTION_MATCHING_H_
