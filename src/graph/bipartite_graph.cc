#include "graph/bipartite_graph.h"

#include <algorithm>

#include "util/check.h"

namespace flowsched {

BipartiteGraph::BipartiteGraph(int num_left, int num_right)
    : num_left_(num_left),
      num_right_(num_right),
      left_adj_(num_left),
      right_adj_(num_right) {
  FS_CHECK_GE(num_left, 0);
  FS_CHECK_GE(num_right, 0);
}

void BipartiteGraph::Reset(int num_left, int num_right) {
  FS_CHECK_GE(num_left, 0);
  FS_CHECK_GE(num_right, 0);
  num_left_ = num_left;
  num_right_ = num_right;
  edges_.clear();
  // resize() only reallocates when growing; shrinking keeps the vector of
  // vectors (and clear() keeps each inner capacity), so steady-state rounds
  // touch no heap at all.
  if (static_cast<int>(left_adj_.size()) < num_left) left_adj_.resize(num_left);
  if (static_cast<int>(right_adj_.size()) < num_right) {
    right_adj_.resize(num_right);
  }
  // Clear every stored list, including ones beyond the (possibly shrunk)
  // vertex count, so no stale adjacency survives a dimension change.
  for (auto& adj : left_adj_) adj.clear();
  for (auto& adj : right_adj_) adj.clear();
}

int BipartiteGraph::AddEdge(int u, int v) {
  FS_CHECK(u >= 0 && u < num_left_);
  FS_CHECK(v >= 0 && v < num_right_);
  const int e = num_edges();
  edges_.push_back(Edge{u, v});
  left_adj_[u].push_back(e);
  right_adj_[v].push_back(e);
  return e;
}

int BipartiteGraph::MaxDegree() const {
  int d = 0;
  for (const auto& adj : left_adj_) d = std::max(d, static_cast<int>(adj.size()));
  for (const auto& adj : right_adj_) d = std::max(d, static_cast<int>(adj.size()));
  return d;
}

bool IsMatching(const BipartiteGraph& g, std::span<const int> edge_ids) {
  std::vector<char> left_used(g.num_left(), 0);
  std::vector<char> right_used(g.num_right(), 0);
  std::vector<char> edge_used(g.num_edges(), 0);
  for (int e : edge_ids) {
    if (e < 0 || e >= g.num_edges() || edge_used[e]) return false;
    edge_used[e] = 1;
    const auto& edge = g.edge(e);
    if (left_used[edge.u] || right_used[edge.v]) return false;
    left_used[edge.u] = 1;
    right_used[edge.v] = 1;
  }
  return true;
}

double MatchingWeight(std::span<const int> edge_ids,
                      std::span<const double> weight) {
  double total = 0.0;
  for (int e : edge_ids) total += weight[e];
  return total;
}

}  // namespace flowsched
