#include "graph/max_weight_matching.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace flowsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hungarian algorithm (potentials + shortest augmenting path), minimizing
// cost over a dense n x m matrix with n <= m. Returns assignment[row] = col.
// Classic formulation from cp-algorithms; handles arbitrary real costs.
std::vector<int> HungarianMinCost(const std::vector<std::vector<double>>& a) {
  const int n = static_cast<int>(a.size());
  const int m = n == 0 ? 0 : static_cast<int>(a[0].size());
  FS_CHECK_LE(n, m);
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0);    // p[j] = row matched to column j (1-based).
  std::vector<int> way(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = a[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      FS_CHECK_GE(j1, 0);
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p[j] != 0) assignment[p[j] - 1] = j - 1;
  }
  return assignment;
}

}  // namespace

std::vector<int> MaxWeightMatching(const BipartiteGraph& g,
                                   std::span<const double> weight) {
  FS_CHECK_EQ(static_cast<int>(weight.size()), g.num_edges());
  if (g.num_edges() == 0) return {};
  // Only left/right vertices that actually carry edges participate; compact
  // them so the dense matrix stays as small as the backlog, not the switch.
  std::vector<int> left_ids;
  std::vector<int> right_ids;
  std::vector<int> left_index(g.num_left(), -1);
  std::vector<int> right_index(g.num_right(), -1);
  for (const auto& e : g.edges()) {
    if (left_index[e.u] == -1) {
      left_index[e.u] = static_cast<int>(left_ids.size());
      left_ids.push_back(e.u);
    }
    if (right_index[e.v] == -1) {
      right_index[e.v] = static_cast<int>(right_ids.size());
      right_ids.push_back(e.v);
    }
  }
  const int nl = static_cast<int>(left_ids.size());
  const int nr = static_cast<int>(right_ids.size());
  // Keep, per (u, v) cell, the best (max-weight) edge; parallel edges can
  // never both be matched. Cells without an edge cost 0 == "leave unmatched".
  const bool transpose = nl > nr;
  const int rows = transpose ? nr : nl;
  const int cols = transpose ? nl : nr;
  std::vector<std::vector<double>> cost(rows, std::vector<double>(cols, 0.0));
  std::vector<std::vector<int>> best_edge(rows, std::vector<int>(cols, -1));
  for (int e = 0; e < g.num_edges(); ++e) {
    FS_CHECK_GE(weight[e], 0.0);
    int r = left_index[g.edge(e).u];
    int c = right_index[g.edge(e).v];
    if (transpose) std::swap(r, c);
    if (best_edge[r][c] == -1 || weight[e] > -cost[r][c]) {
      cost[r][c] = -weight[e];
      best_edge[r][c] = e;
    }
  }
  const std::vector<int> assignment = HungarianMinCost(cost);
  std::vector<int> matching;
  for (int r = 0; r < rows; ++r) {
    const int c = assignment[r];
    // Zero-weight cells are "unmatched" pads; only keep real positive picks
    // plus real zero-weight edges (harmless either way, so require an edge).
    if (c >= 0 && best_edge[r][c] != -1 && weight[best_edge[r][c]] >= 0.0 &&
        cost[r][c] < 0.0) {
      matching.push_back(best_edge[r][c]);
    }
  }
  return matching;
}

}  // namespace flowsched
