#include "graph/max_weight_matching.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "util/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define FLOWSCHED_MWM_X86 1
#include <immintrin.h>
#endif

namespace flowsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The fused Hungarian row scan + delta search over all m columns:
//   minv[j] = min(minv[j] - delta, arow[j] - ui - vv[j])
// recording way[j] = j0 where the fresh candidate wins, and returning
// (best, j1) = the minimum updated minv and the FIRST column attaining it.
//
// `delta` folds the previous iteration's uniform "minv -= delta" update
// into this scan (one subtraction either way — identical value, one fewer
// memory pass). Used columns carry vv[j] = -inf, which drives their
// candidate to +inf so they can never win a comparison; their minv is
// already pinned to +inf, and +inf - delta stays +inf, so they also never
// win the delta search. Every element sees the same IEEE operations in the
// same order as the classic formulation, and the first-column tie-break of
// the sequential strict-< scan is reproduced exactly, so the returned pair
// — and therefore the final matching — is identical on every code path.
struct ScanResult {
  double best;
  int j1;  // 0-based column, -1 when every entry is +inf.
};

ScanResult ScanRowScalar(const double* arow, double ui, const double* vv,
                         double* minv, std::int64_t* way, int m, double delta,
                         std::int64_t j0) {
  double best = kInf;
  int j1 = -1;
  for (int j = 0; j < m; ++j) {
    const double mv = minv[j] - delta;
    const double cur = arow[j] - ui - vv[j];
    const bool better = cur < mv;
    const double nm = better ? cur : mv;
    minv[j] = nm;
    way[j] = better ? j0 : way[j];
    if (nm < best) {
      best = nm;
      j1 = j;
    }
  }
  return {best, j1};
}

#if FLOWSCHED_MWM_X86

__attribute__((target("avx2"))) ScanResult ScanRowAvx2(
    const double* arow, double ui, const double* vv, double* minv,
    std::int64_t* way, int m, double delta, std::int64_t j0) {
  const __m256d delta_b = _mm256_set1_pd(delta);
  const __m256d ui_b = _mm256_set1_pd(ui);
  const __m256i j0_b = _mm256_set1_epi64x(j0);
  __m256d run_min = _mm256_set1_pd(kInf);
  __m256i run_idx = _mm256_set1_epi64x(-1);
  __m256i jvec = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i four = _mm256_set1_epi64x(4);
  int j = 0;
  if (delta == 0.0) {
    // Tie-heavy instances produce many zero deltas; x - (+/-0.0) differs
    // from x at most in the sign of a zero, which no comparison can see, so
    // minv only changes where a candidate wins — skip the stores (and the
    // way load) whenever the win mask is empty.
    for (; j + 4 <= m; j += 4) {
      const __m256d mv = _mm256_loadu_pd(minv + j);
      const __m256d cur = _mm256_sub_pd(
          _mm256_sub_pd(_mm256_loadu_pd(arow + j), ui_b),
          _mm256_loadu_pd(vv + j));
      const __m256d better = _mm256_cmp_pd(cur, mv, _CMP_LT_OQ);
      __m256d nm = mv;
      if (_mm256_movemask_pd(better) != 0) {
        nm = _mm256_blendv_pd(mv, cur, better);
        _mm256_storeu_pd(minv + j, nm);
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(way + j));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(way + j),
            _mm256_blendv_epi8(wv, j0_b, _mm256_castpd_si256(better)));
      }
      const __m256d lt = _mm256_cmp_pd(nm, run_min, _CMP_LT_OQ);
      run_min = _mm256_blendv_pd(run_min, nm, lt);
      run_idx = _mm256_blendv_epi8(run_idx, jvec, _mm256_castpd_si256(lt));
      jvec = _mm256_add_epi64(jvec, four);
    }
  }
  for (; j + 4 <= m; j += 4) {
    const __m256d mv =
        _mm256_sub_pd(_mm256_loadu_pd(minv + j), delta_b);
    const __m256d cur = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_loadu_pd(arow + j), ui_b),
        _mm256_loadu_pd(vv + j));
    const __m256d better = _mm256_cmp_pd(cur, mv, _CMP_LT_OQ);
    const __m256d nm = _mm256_blendv_pd(mv, cur, better);
    _mm256_storeu_pd(minv + j, nm);
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(way + j));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(way + j),
        _mm256_blendv_epi8(wv, j0_b, _mm256_castpd_si256(better)));
    // Per-lane strict-< argmin: each lane keeps the first index (within its
    // stride-4 subsequence) attaining its running minimum.
    const __m256d lt = _mm256_cmp_pd(nm, run_min, _CMP_LT_OQ);
    run_min = _mm256_blendv_pd(run_min, nm, lt);
    run_idx = _mm256_blendv_epi8(run_idx, jvec, _mm256_castpd_si256(lt));
    jvec = _mm256_add_epi64(jvec, four);
  }
  // Lane combine: strictly smaller value wins; equal values keep the
  // smaller column — together this reproduces the sequential first-argmin.
  alignas(32) double lane_min[4];
  alignas(32) std::int64_t lane_idx[4];
  _mm256_store_pd(lane_min, run_min);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), run_idx);
  double best = kInf;
  std::int64_t j1 = -1;
  for (int lane = 0; lane < 4; ++lane) {
    if (lane_idx[lane] < 0) continue;  // Lane never saw a finite value.
    if (lane_min[lane] < best ||
        (lane_min[lane] == best && lane_idx[lane] < j1)) {
      best = lane_min[lane];
      j1 = lane_idx[lane];
    }
  }
  // Tail columns come after every vectorized column, so strict < keeps the
  // earlier winner on ties.
  for (; j < m; ++j) {
    const double mv = minv[j] - delta;
    const double cur = arow[j] - ui - vv[j];
    const bool better = cur < mv;
    const double nm = better ? cur : mv;
    minv[j] = nm;
    way[j] = better ? j0 : way[j];
    if (nm < best) {
      best = nm;
      j1 = j;
    }
  }
  return {best, static_cast<int>(j1)};
}

__attribute__((target("avx512f"))) ScanResult ScanRowAvx512(
    const double* arow, double ui, const double* vv, double* minv,
    std::int64_t* way, int m, double delta, std::int64_t j0) {
  const __m512d delta_b = _mm512_set1_pd(delta);
  const __m512d ui_b = _mm512_set1_pd(ui);
  const __m512i j0_b = _mm512_set1_epi64(j0);
  __m512d run_min = _mm512_set1_pd(kInf);
  __m512i run_idx = _mm512_set1_epi64(-1);
  __m512i jvec = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i eight = _mm512_set1_epi64(8);
  int j = 0;
  if (delta == 0.0) {
    // See the AVX2 path: zero deltas leave minv bitwise unchanged (up to
    // invisible zero signs) except where a candidate wins, so stores and
    // the way load are masked out entirely on empty win masks.
    for (; j + 8 <= m; j += 8) {
      const __m512d mv = _mm512_loadu_pd(minv + j);
      const __m512d cur = _mm512_sub_pd(
          _mm512_sub_pd(_mm512_loadu_pd(arow + j), ui_b),
          _mm512_loadu_pd(vv + j));
      const __mmask8 better = _mm512_cmp_pd_mask(cur, mv, _CMP_LT_OQ);
      __m512d nm = mv;
      if (better != 0) {
        nm = _mm512_mask_blend_pd(better, mv, cur);
        _mm512_storeu_pd(minv + j, nm);
        _mm512_mask_storeu_epi64(way + j, better, j0_b);
      }
      const __mmask8 lt = _mm512_cmp_pd_mask(nm, run_min, _CMP_LT_OQ);
      run_min = _mm512_mask_blend_pd(lt, run_min, nm);
      run_idx = _mm512_mask_blend_epi64(lt, run_idx, jvec);
      jvec = _mm512_add_epi64(jvec, eight);
    }
  }
  for (; j + 8 <= m; j += 8) {
    const __m512d mv = _mm512_sub_pd(_mm512_loadu_pd(minv + j), delta_b);
    const __m512d cur = _mm512_sub_pd(
        _mm512_sub_pd(_mm512_loadu_pd(arow + j), ui_b),
        _mm512_loadu_pd(vv + j));
    const __mmask8 better = _mm512_cmp_pd_mask(cur, mv, _CMP_LT_OQ);
    const __m512d nm = _mm512_mask_blend_pd(better, mv, cur);
    _mm512_storeu_pd(minv + j, nm);
    const __m512i wv = _mm512_loadu_si512(way + j);
    _mm512_storeu_si512(way + j, _mm512_mask_blend_epi64(better, wv, j0_b));
    const __mmask8 lt = _mm512_cmp_pd_mask(nm, run_min, _CMP_LT_OQ);
    run_min = _mm512_mask_blend_pd(lt, run_min, nm);
    run_idx = _mm512_mask_blend_epi64(lt, run_idx, jvec);
    jvec = _mm512_add_epi64(jvec, eight);
  }
  alignas(64) double lane_min[8];
  alignas(64) std::int64_t lane_idx[8];
  _mm512_store_pd(lane_min, run_min);
  _mm512_store_si512(lane_idx, run_idx);
  double best = kInf;
  std::int64_t j1 = -1;
  for (int lane = 0; lane < 8; ++lane) {
    if (lane_idx[lane] < 0) continue;  // Lane never saw a finite value.
    if (lane_min[lane] < best ||
        (lane_min[lane] == best && lane_idx[lane] < j1)) {
      best = lane_min[lane];
      j1 = lane_idx[lane];
    }
  }
  for (; j < m; ++j) {
    const double mv = minv[j] - delta;
    const double cur = arow[j] - ui - vv[j];
    const bool better = cur < mv;
    const double nm = better ? cur : mv;
    minv[j] = nm;
    way[j] = better ? j0 : way[j];
    if (nm < best) {
      best = nm;
      j1 = j;
    }
  }
  return {best, static_cast<int>(j1)};
}

#endif  // FLOWSCHED_MWM_X86

using ScanRowFn = ScanResult (*)(const double*, double, const double*,
                                 double*, std::int64_t*, int, double,
                                 std::int64_t);

ScanRowFn ResolveScanRow() {
#if FLOWSCHED_MWM_X86
  if (__builtin_cpu_supports("avx512f")) return ScanRowAvx512;
  if (__builtin_cpu_supports("avx2")) return ScanRowAvx2;
#endif
  return ScanRowScalar;
}

}  // namespace

bool MaxWeightMatcher::PrepareProblem(const BipartiteGraph& g,
                                      std::span<const double> weight) {
  FS_CHECK_EQ(static_cast<int>(weight.size()), g.num_edges());
  if (g.num_edges() == 0) return false;

  // Only left/right vertices that actually carry edges participate; compact
  // them so the dense matrix stays as small as the backlog, not the switch.
  left_index_.assign(g.num_left(), -1);
  right_index_.assign(g.num_right(), -1);
  left_ids_.clear();
  right_ids_.clear();
  for (const auto& e : g.edges()) {
    if (left_index_[e.u] == -1) {
      left_index_[e.u] = static_cast<int>(left_ids_.size());
      left_ids_.push_back(e.u);
    }
    if (right_index_[e.v] == -1) {
      right_index_[e.v] = static_cast<int>(right_ids_.size());
      right_ids_.push_back(e.v);
    }
  }
  const int nl = static_cast<int>(left_ids_.size());
  const int nr = static_cast<int>(right_ids_.size());
  // Keep, per (u, v) cell, the best (max-weight) edge; parallel edges can
  // never both be matched. Cells without an edge cost 0 == "leave unmatched".
  transpose_ = nl > nr;
  rows_ = transpose_ ? nr : nl;
  cols_ = transpose_ ? nl : nr;
  cost_.assign(static_cast<std::size_t>(rows_) * cols_, 0.0);
  best_edge_.assign(static_cast<std::size_t>(rows_) * cols_, -1);
  for (int e = 0; e < g.num_edges(); ++e) {
    FS_CHECK_GE(weight[e], 0.0);
    int r = left_index_[g.edge(e).u];
    int c = right_index_[g.edge(e).v];
    if (transpose_) std::swap(r, c);
    const std::size_t rc = static_cast<std::size_t>(r) * cols_ + c;
    if (best_edge_[rc] == -1 || weight[e] > -cost_[rc]) {
      cost_[rc] = -weight[e];
      best_edge_[rc] = e;
    }
  }
  return true;
}

void MaxWeightMatcher::InitDuals() {
  const int n = rows_;
  const int m = cols_;
  u_.assign(n + 1, 0.0);
  v_.assign(m + 1, 0.0);
  vv_.assign(m + 1, 0.0);  // == v_ while a column is open, -inf once used.
  p_.assign(m + 1, 0);     // p_[j] = row matched to column j (1-based).
  way_.assign(m + 1, 0);
  minv_.resize(m + 1);
}

void MaxWeightMatcher::RestoreCheckpoint(const HungarianCheckpoints& from,
                                         int row) {
  FS_CHECK_EQ(from.n, rows_);
  FS_CHECK_EQ(from.m, cols_);
  FS_CHECK_GE(row, 1);
  FS_CHECK_LE(row, from.recorded);
  const int n = rows_;
  const int m = cols_;
  const std::size_t slot = static_cast<std::size_t>(row - 1);
  const double* cu = from.u.data() + slot * (n + 1);
  const double* cv = from.v.data() + slot * (m + 1);
  const int* cp = from.p.data() + slot * (m + 1);
  u_.assign(cu, cu + n + 1);
  v_.assign(cv, cv + m + 1);
  // Between row insertions every column is open, so the masked copy of the
  // potentials is just the potentials (vv_[0] is never read).
  vv_.assign(cv, cv + m + 1);
  p_.assign(cp, cp + m + 1);
  // way_ and minv_ are write-before-read within each row; reset them the
  // same way InitDuals does so resumed state matches a fresh run exactly.
  way_.assign(m + 1, 0);
  minv_.resize(m + 1);
}

void MaxWeightMatcher::RunRows(int first_row, HungarianCheckpoints* record) {
  // Hungarian algorithm (potentials + shortest augmenting path), minimizing
  // cost over the dense rows x cols matrix with rows <= cols. Classic
  // cp-algorithms formulation restructured for streaming over flat reused
  // arrays; the restructure is value-preserving (see ScanRowScalar and the
  // masked-potential scheme), so the matching comes back identical to the
  // historical implementation edge for edge.
  static const ScanRowFn scan_row = ResolveScanRow();
  const int n = rows_;
  const int m = cols_;
  if (record != nullptr) {
    FS_CHECK_EQ(record->n, n);
    FS_CHECK_EQ(record->m, m);
  }
  for (int i = first_row; i <= n; ++i) {
    p_[0] = i;
    int j0 = 0;
    for (int j = 1; j <= m; ++j) minv_[j] = kInf;
    used_cols_.clear();
    double delta = 0.0;  // Folded into the next row scan.
    do {
      used_cols_.push_back(j0);
      if (j0 >= 1) vv_[j0] = -kInf;
      minv_[j0] = kInf;
      const int i0 = p_[j0];
      const double* arow =
          cost_.data() + static_cast<std::size_t>(i0 - 1) * m;
      const ScanResult scan =
          scan_row(arow, u_[i0], vv_.data() + 1, minv_.data() + 1,
                   way_.data() + 1, m, delta, j0);
      const int j1 = scan.j1 + 1;  // Back to 1-based columns.
      FS_CHECK_GE(scan.j1, 0);
      if (scan.best != 0.0) {  // +/- 0 updates cannot change any comparison.
        for (int j : used_cols_) {
          u_[p_[j]] += scan.best;
          v_[j] -= scan.best;
        }
      }
      delta = scan.best;
      j0 = j1;
    } while (p_[j0] != 0);
    for (int j : used_cols_) {
      if (j >= 1) vv_[j] = v_[j];  // Re-open the column for the next row.
    }
    do {
      const int j1 = static_cast<int>(way_[j0]);
      p_[j0] = p_[j1];
      j0 = j1;
    } while (j0 != 0);
    if (record != nullptr) {
      // The state after row i is a pure function of matrix rows 1..i;
      // snapshot it so a later solve whose matrix first differs at some row
      // k > i can resume here instead of re-running the unchanged prefix.
      const std::size_t slot = static_cast<std::size_t>(i - 1);
      std::copy(u_.begin(), u_.end(), record->u.begin() + slot * (n + 1));
      std::copy(v_.begin(), v_.end(), record->v.begin() + slot * (m + 1));
      std::copy(p_.begin(), p_.end(), record->p.begin() + slot * (m + 1));
      record->recorded = i;
    }
  }
}

void MaxWeightMatcher::EmitMatching(std::span<const double> weight,
                                    std::vector<int>* out) {
  const int n = rows_;
  const int m = cols_;
  assignment_.assign(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p_[j] != 0) assignment_[p_[j] - 1] = j - 1;
  }
  for (int r = 0; r < n; ++r) {
    const int c = assignment_[r];
    if (c < 0) continue;
    // Zero-weight cells are "unmatched" pads; only keep real positive picks
    // plus real zero-weight edges (harmless either way, so require an edge).
    const std::size_t rc = static_cast<std::size_t>(r) * m + c;
    if (best_edge_[rc] != -1 && weight[best_edge_[rc]] >= 0.0 &&
        cost_[rc] < 0.0) {
      out->push_back(best_edge_[rc]);
    }
  }
}

void MaxWeightMatcher::Solve(const BipartiteGraph& g,
                             std::span<const double> weight,
                             std::vector<int>* out) {
  out->clear();
  if (!PrepareProblem(g, weight)) return;
  InitDuals();
  RunRows(1, nullptr);
  EmitMatching(weight, out);
}

std::vector<int> MaxWeightMatching(const BipartiteGraph& g,
                                   std::span<const double> weight) {
  MaxWeightMatcher matcher;
  std::vector<int> matching;
  matcher.Solve(g, weight, &matching);
  return matching;
}

}  // namespace flowsched
