// Internal: shared `scenario=` parameter plumbing for the online./coflow./
// fabric. solver adapters — param loading, the common doc rows, and the
// robustness diagnostics computed against the fault-free baseline run.
#ifndef FLOWSCHED_API_SCENARIO_SUPPORT_H_
#define FLOWSCHED_API_SCENARIO_SUPPORT_H_

#include <string>
#include <vector>

#include "api/solver.h"
#include "scenario/scenario.h"

namespace flowsched {
namespace internal {

// Loads the "scenario" param: a file path or "inline:<script>" with ';' as
// the line separator. Absent/empty param: *loaded stays false, returns
// true. Parse failures return false with a line-tagged *error.
bool LoadScenarioOption(const SolveOptions& options, ScenarioScript* script,
                        bool* loaded, std::string* error);

// The shared ParamDocs row for the "scenario" key.
SolverKeyDoc ScenarioParamDoc();

// Appends the robustness diagnostic doc rows emitted by scenario runs.
void AppendScenarioDiagnosticDocs(std::vector<SolverKeyDoc>* docs);

// Emits the robustness diagnostics: the scenario run (rounds, downtime,
// peak backlog, total response, MIGRATE re-homings) against its fault-free
// baseline.
void AddScenarioDiagnostics(const ScenarioScript& script, Round rounds,
                            Round downtime_rounds, int peak_backlog,
                            double total_response, int base_peak_backlog,
                            double base_total_response,
                            long long migrated_flows, SolveReport* report);

}  // namespace internal
}  // namespace flowsched

#endif  // FLOWSCHED_API_SCENARIO_SUPPORT_H_
