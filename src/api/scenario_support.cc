#include "api/scenario_support.h"

namespace flowsched {
namespace internal {

bool LoadScenarioOption(const SolveOptions& options, ScenarioScript* script,
                        bool* loaded, std::string* error) {
  const std::string value = options.ParamOr("scenario", "");
  if (value.empty()) return true;
  std::string parse_error;
  if (!LoadScenarioParam(value, script, &parse_error)) {
    *error = "scenario: " + parse_error;
    return false;
  }
  *loaded = true;
  return true;
}

SolverKeyDoc ScenarioParamDoc() {
  return {"scenario",
          "fault-injection script: a file path or inline:<script> with ';' "
          "as the line separator (grammar in docs/scenarios.md); the run "
          "replays under timed port/pod outages and adds robustness "
          "diagnostics vs the fault-free run"};
}

void AppendScenarioDiagnosticDocs(std::vector<SolverKeyDoc>* docs) {
  docs->push_back({"scenario_events",
                   "timed events in the bound scenario script"});
  docs->push_back({"downtime_rounds",
                   "simulated rounds with >= 1 port side down"});
  docs->push_back({"backlog_surge",
                   "scenario peak backlog minus the fault-free run's"});
  docs->push_back({"recovery_drain_rounds",
                   "rounds simulated after the last scenario event "
                   "(post-recovery drain time)"});
  docs->push_back({"response_inflation",
                   "scenario total response / fault-free total response"});
  docs->push_back({"migrated_flows",
                   "arrivals re-homed by MIGRATE rules (0 for scripts "
                   "without MIGRATE; nothing is ever dropped)"});
}

void AddScenarioDiagnostics(const ScenarioScript& script, Round rounds,
                            Round downtime_rounds, int peak_backlog,
                            double total_response, int base_peak_backlog,
                            double base_total_response,
                            long long migrated_flows, SolveReport* report) {
  report->diagnostics["scenario_events"] =
      static_cast<double>(script.events().size());
  report->diagnostics["downtime_rounds"] =
      static_cast<double>(downtime_rounds);
  report->diagnostics["backlog_surge"] =
      static_cast<double>(peak_backlog - base_peak_backlog);
  const Round last = script.last_event_round();
  report->diagnostics["recovery_drain_rounds"] =
      static_cast<double>(rounds > last ? rounds - last : 0);
  report->diagnostics["response_inflation"] =
      base_total_response > 0.0 ? total_response / base_total_response : 1.0;
  report->diagnostics["migrated_flows"] =
      static_cast<double>(migrated_flows);
}

}  // namespace internal
}  // namespace flowsched
