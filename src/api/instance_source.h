// Turns a --instance argument into an Instance: either a CSV trace path
// (model/trace_io.h format) or an inline generator spec.
//
// Generator specs: "<name>" or "<name>:key=value,key=value,...".
//   poisson   ports, cap, load (arrivals = load*ports), rounds, dmax, seed
//   coflow    ports, cap, load, rounds, width (max), minwidth, skew, dmax,
//             seed — clustered Poisson coflows (workload/coflow_gen.h);
//             load is per-port flow load, translated into a coflow rate via
//             the width distribution's mean
//   shuffle   ports, wave, waves, period        (workload ShuffleWaves)
//   incast    ports, fanin, release             (single hotspot on the last
//                                                output port)
//   fig4a     phase, total                      (Lemma 5.1 lower-bound
//                                                instance, wlog choice baked)
//   fig4b     -                                 (Lemma 5.2 instance)
// Anything that is not a known generator name is treated as a file path:
// coflow traces (trace_io.h Facebook-convention header) are detected by
// their header row, everything else parses as an instance CSV.
#ifndef FLOWSCHED_API_INSTANCE_SOURCE_H_
#define FLOWSCHED_API_INSTANCE_SOURCE_H_

#include <optional>
#include <string>

#include "model/instance.h"

namespace flowsched {

// Loads from a generator spec or a CSV file; nullopt + *error on failure
// (unknown generator key, malformed value, unreadable/unparsable file).
std::optional<Instance> LoadInstance(const std::string& source,
                                     std::string* error = nullptr);

// True when `source` names a generator (vs. a file path).
bool IsGeneratorSpec(const std::string& source);

}  // namespace flowsched

#endif  // FLOWSCHED_API_INSTANCE_SOURCE_H_
