// Turns a --instance argument into an Instance: either a CSV trace path
// (model/trace_io.h format) or an inline generator spec.
//
// Generator specs: "<name>" or "<name>:key=value,key=value,...".
//   poisson   ports, cap, load (arrivals = load*ports), rounds, dmax, seed
//   coflow    ports, cap, load, rounds, width (max), minwidth, skew, dmax,
//             seed — clustered Poisson coflows (workload/coflow_gen.h);
//             load is per-port flow load, translated into a coflow rate via
//             the width distribution's mean
//   shuffle   ports, wave, waves, period        (workload ShuffleWaves)
//   incast    ports, fanin, release             (single hotspot on the last
//                                                output port)
//   fig4a     phase, total                      (Lemma 5.1 lower-bound
//                                                instance, wlog choice baked)
//   fig4b     -                                 (Lemma 5.2 instance)
//   fabric    shards, partition — wraps any other source
//             ("fabric:shards=4,partition=block,<inner-spec>",
//             fabric/fabric_spec.h): loads the *inner* instance unchanged
//             and stamps it with the fabric spec so fabric.* solvers
//             recover the shard topology while flow-level solvers run the
//             same traffic on one big switch
// Anything that is not a known generator name is treated as a file path:
// coflow traces (trace_io.h Facebook-convention header) are detected by
// their header row, everything else parses as an instance CSV.
//
// Every loaded instance is stamped with its source text
// (Instance::source()).
#ifndef FLOWSCHED_API_INSTANCE_SOURCE_H_
#define FLOWSCHED_API_INSTANCE_SOURCE_H_

#include <optional>
#include <string>

#include "model/instance.h"

namespace flowsched {

// Loads from a generator spec or a CSV file; nullopt + *error on failure
// (unknown generator key, malformed value, unreadable/unparsable file).
std::optional<Instance> LoadInstance(const std::string& source,
                                     std::string* error = nullptr);

// True when `source` names a generator (vs. a file path).
bool IsGeneratorSpec(const std::string& source);

// Validates `source` as far as possible WITHOUT generating anything:
// generator specs (fabric wrappers included, recursively) are parsed and
// every key checked against the generator's accepted set, with the
// offending key named in *error; an unknown generator NAME on a
// generator-shaped source ("name:key=value,..." with a pathless name) is
// rejected too. Genuine file paths return true — existence and content
// are load-time concerns. Sweep expansion calls this so a typo'd template
// fails the whole campaign up front instead of per task, after report
// files were already opened (exp/sweep_spec.h).
bool ValidateInstanceSpec(const std::string& source,
                          std::string* error = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_API_INSTANCE_SOURCE_H_
