#include "api/instance_source.h"

#include <fstream>
#include <sstream>

#include "api/spec_parser.h"
#include "api/traffic_spec.h"
#include "fabric/fabric_spec.h"
#include "model/trace_io.h"
#include "traffic/traffic_gen.h"
#include "workload/adversarial.h"
#include "workload/coflow_gen.h"
#include "workload/patterns.h"
#include "workload/poisson.h"

namespace flowsched {
namespace {

using api_spec::Spec;
using api_spec::SpecReader;
using api_spec::SplitSpec;

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// Reads (and thereby key-checks) one generator spec; materializes the
// instance only when `generate` is set, so spec validation is free of
// generation cost. Both paths share every key read — the accepted-key set
// cannot drift between validation and loading.
std::optional<Instance> Generate(const Spec& spec, std::string* error,
                                 bool generate) {
  SpecReader r(spec);
  std::optional<Instance> result;
  if (spec.generator == "poisson") {
    PoissonConfig cfg;
    cfg.num_inputs = cfg.num_outputs = static_cast<int>(r.GetInt("ports", 16));
    cfg.port_capacity = r.GetInt("cap", 1);
    cfg.mean_arrivals_per_round = r.Get("load", 1.0) * cfg.num_inputs;
    cfg.num_rounds = static_cast<int>(r.GetInt("rounds", 10));
    cfg.max_demand = r.GetInt("dmax", 1);
    cfg.seed = static_cast<std::uint64_t>(r.GetInt("seed", 1));
    if (generate && r.ok()) result = GeneratePoisson(cfg);
  } else if (spec.generator == "coflow") {
    CoflowGenConfig cfg;
    cfg.num_inputs = cfg.num_outputs = static_cast<int>(r.GetInt("ports", 16));
    cfg.port_capacity = r.GetInt("cap", 1);
    cfg.num_rounds = static_cast<int>(r.GetInt("rounds", 10));
    cfg.min_width = static_cast<int>(r.GetInt("minwidth", 1));
    cfg.max_width = static_cast<int>(r.GetInt("width", 8));
    cfg.width_skew = r.Get("skew", 1.0);
    cfg.max_demand = r.GetInt("dmax", 1);
    cfg.seed = static_cast<std::uint64_t>(r.GetInt("seed", 1));
    // `load` is the per-port flow load (poisson semantics); the coflow rate
    // follows from the width distribution's mean.
    const double load = r.Get("load", 1.0);
    if (generate && r.ok()) {
      cfg.mean_coflows_per_round =
          load * cfg.num_inputs / MeanCoflowWidth(cfg);
      result = GenerateCoflows(cfg);
    }
  } else if (spec.generator == "cdf") {
    // Realistic traffic: empirical flow sizes from a builtin datacenter
    // CDF (dist=websearch|fbhdp|alistorage) or an HPCC-format file=,
    // segmented into unit demands (traffic/traffic_gen.h). The CDF is
    // parsed even when only validating, so bad files fail fast.
    TrafficConfig cfg;
    std::string traffic_error;
    const bool traffic_ok =
        api_spec::ReadTrafficSpec(r, &cfg, &traffic_error);
    cfg.num_rounds = static_cast<int>(r.GetInt("rounds", 10));
    if (!traffic_ok) {
      r.CheckUnknown();
      Fail(error, r.ok() ? traffic_error
                         : traffic_error + "; " + r.error());
      return std::nullopt;
    }
    if (cfg.num_rounds < 1) {
      Fail(error, "rounds must be >= 1, got " +
                      std::to_string(cfg.num_rounds));
      return std::nullopt;
    }
    if (generate && r.ok()) result = GenerateTraffic(cfg);
  } else if (spec.generator == "shuffle") {
    const int ports = static_cast<int>(r.GetInt("ports", 16));
    const int wave = static_cast<int>(r.GetInt("wave", 4));
    const int waves = static_cast<int>(r.GetInt("waves", 3));
    const int period = static_cast<int>(r.GetInt("period", 4));
    if (generate && r.ok()) result = ShuffleWaves(ports, wave, waves, period);
  } else if (spec.generator == "incast") {
    const int ports = static_cast<int>(r.GetInt("ports", 16));
    const int fanin = static_cast<int>(r.GetInt("fanin", ports - 1));
    const auto release = static_cast<Round>(r.GetInt("release", 0));
    if (generate && r.ok()) {
      Instance instance(SwitchSpec::Uniform(ports, ports, 1), {});
      AddIncast(instance, /*sink=*/ports - 1, fanin, release);
      result = std::move(instance);
    }
  } else if (spec.generator == "fig4a") {
    const int phase = static_cast<int>(r.GetInt("phase", 6));
    const int total = static_cast<int>(r.GetInt("total", 30));
    if (generate && r.ok()) result = Fig4aInstance(phase, total);
  } else if (spec.generator == "fig4b") {
    if (generate) result = Fig4bInstance();
  } else {
    Fail(error, "unknown generator \"" + spec.generator + "\"");
    return std::nullopt;
  }
  r.CheckUnknown();
  if (!r.ok()) {
    Fail(error, r.error());
    return std::nullopt;
  }
  if (!generate) return std::nullopt;
  if (auto verr = result->ValidationError()) {
    Fail(error, "generated instance invalid: " + *verr);
    return std::nullopt;
  }
  return result;
}

}  // namespace

bool IsGeneratorSpec(const std::string& source) {
  const std::string name = source.substr(0, source.find(':'));
  return name == "poisson" || name == "coflow" || name == "cdf" ||
         name == "shuffle" || name == "incast" || name == "fig4a" ||
         name == "fig4b" || name == "fabric";
}

bool ValidateInstanceSpec(const std::string& source, std::string* error) {
  if (IsFabricSpec(source)) {
    FabricSpec fabric;
    if (!ParseFabricSpec(source, fabric, error)) return false;
    return ValidateInstanceSpec(fabric.inner, error);
  }
  if (!IsGeneratorSpec(source)) {
    // A source shaped like a generator spec — "name:key=value,..." with a
    // pathless name — that names no known generator is almost certainly a
    // typo'd generator name ("possion:ports=8"), not a file. Reject it now
    // with the name called out; genuine file paths (no '=' after the
    // colon, or path characters in the name) still defer to load time.
    const auto colon = source.find(':');
    if (colon != std::string::npos && colon > 0 &&
        source.find('=', colon) != std::string::npos) {
      const std::string name = source.substr(0, colon);
      if (name.find('/') == std::string::npos &&
          name.find('\\') == std::string::npos &&
          name.find('.') == std::string::npos) {
        return Fail(error, "unknown generator \"" + name +
                               "\" (and \"" + source +
                               "\" does not look like a file path)");
      }
    }
    return true;  // File paths check at load.
  }
  Spec spec;
  if (!SplitSpec(source, spec, error)) return false;
  std::string gen_error;
  Generate(spec, &gen_error, /*generate=*/false);
  if (!gen_error.empty()) return Fail(error, gen_error);
  return true;
}

std::optional<Instance> LoadInstance(const std::string& source,
                                     std::string* error) {
  if (IsFabricSpec(source)) {
    FabricSpec fabric;
    if (!ParseFabricSpec(source, fabric, error)) return std::nullopt;
    auto inner = LoadInstance(fabric.inner, error);
    if (!inner.has_value()) return std::nullopt;
    // The inner instance rides through unchanged (global port ids); the
    // stamp is what carries the topology to fabric.* solvers.
    inner->set_source(source);
    return inner;
  }
  if (IsGeneratorSpec(source)) {
    Spec spec;
    if (!SplitSpec(source, spec, error)) return std::nullopt;
    auto instance = Generate(spec, error, /*generate=*/true);
    if (instance.has_value()) instance->set_source(source);
    return instance;
  }
  std::ifstream in(source);
  if (!in) {
    Fail(error, "cannot open \"" + source +
                    "\" (not a file, and not a known generator spec)");
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  std::string parse_error;
  auto instance = LooksLikeCoflowTrace(content)
                      ? ReadCoflowTraceCsv(content, &parse_error)
                      : ReadInstanceCsv(content, &parse_error);
  if (!instance.has_value()) {
    Fail(error, source + ": " + parse_error);
    return std::nullopt;
  }
  instance->set_source(source);
  return instance;
}

}  // namespace flowsched
