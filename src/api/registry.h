// Name-based solver lookup, mirroring MakePolicy for the whole system.
//
// The global registry is pre-populated with every built-in scheduler:
//   art.theorem1   offline (1+c, O(log n)/c) total-response approximation
//   art.exact      branch-and-bound optimal total response (tiny instances)
//   mrt.theorem3   optimal max response with +(2*dmax - 1) capacity
//   mrt.exact      exact optimal max response (tiny instances)
//   mrt.deadline   Remark 4.2 deadline-constrained scheduling
//   online.<p>     round-by-round simulation of every AllPolicyNames()
//                  policy p (maxcard, minrtime, maxweight, fifo, ...)
//   coflow.<p>     round-by-round simulation of every coflow-aware policy
//                  (sebf, maxweight, fifo) with CCT diagnostics
//   fabric.<p>     sharded multi-switch simulation of policy p across K
//                  pods (src/fabric/); coflow-aware names win collisions
//
// New backends register here and instantly work in every driver
// (flowsched_cli, sweeps, examples) with zero driver changes.
#ifndef FLOWSCHED_API_REGISTRY_H_
#define FLOWSCHED_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/solver.h"

namespace flowsched {

/// Creates a fresh Solver instance (solvers are stateful per solve; every
/// task/run creates its own).
using SolverFactory = std::function<std::unique_ptr<Solver>()>;

/// Name -> solver-factory map; the lookup surface behind every driver.
class SolverRegistry {
 public:
  /// The process-wide registry with all built-in solvers registered.
  static SolverRegistry& Global();

  /// A registry without built-ins (tests, embedders composing their own).
  SolverRegistry() = default;

  /// Replaces any existing entry with the same name.
  void Register(std::string name, std::string description,
                SolverFactory factory);

  /// True when `name` is registered.
  bool Contains(std::string_view name) const;
  /// All registered names, sorted.
  std::vector<std::string> Names() const;
  /// Registered names matching a '*'-wildcard pattern ("online.*",
  /// "*.exact", "mrt.theorem3"), sorted. Sweep specs use this to name
  /// solver families without enumerating them. A pattern without '*' is an
  /// exact lookup.
  std::vector<std::string> NamesMatching(std::string_view pattern) const;
  /// One-line description for `name`; empty when unregistered.
  std::string Description(std::string_view name) const;

  /// Returns nullptr and fills *error (if non-null) for unknown names.
  std::unique_ptr<Solver> Create(std::string_view name,
                                 std::string* error = nullptr) const;

  /// One-shot convenience: Create + Solve. Unknown names come back as a
  /// failed report, so batch drivers need no separate error path.
  SolveReport Solve(std::string_view name, const Instance& instance,
                    const SolveOptions& options = {}) const;

 private:
  struct Entry {
    std::string description;
    SolverFactory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Registers every built-in solver (called once by Global(); exposed for
/// tests and embedders building custom registries).
void RegisterBuiltinSolvers(SolverRegistry& registry);

}  // namespace flowsched

#endif  // FLOWSCHED_API_REGISTRY_H_
