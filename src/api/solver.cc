#include "api/solver.h"

#include <algorithm>
#include <charconv>

#include "util/stopwatch.h"

namespace flowsched {
namespace {

bool AppendParseError(std::string* error, const std::string& key,
                      const std::string& value) {
  if (error != nullptr) {
    if (!error->empty()) *error += "; ";
    *error += "parameter " + key + ": unparsable value \"" + value + "\"";
  }
  return false;
}

}  // namespace

std::string SolveOptions::ParamOr(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::int64_t SolveOptions::IntParamOr(const std::string& key,
                                      std::int64_t fallback,
                                      std::string* error) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  std::int64_t v = 0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) {
    AppendParseError(error, key, it->second);
    return fallback;
  }
  return v;
}

double SolveOptions::DoubleParamOr(const std::string& key, double fallback,
                                   std::string* error) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == it->second.c_str()) {
    AppendParseError(error, key, it->second);
    return fallback;
  }
  return v;
}

std::vector<std::string> Solver::ParamKeys() const {
  std::vector<std::string> keys;
  for (const SolverKeyDoc& p : ParamDocs()) keys.push_back(p.key);
  return keys;
}

double SolveReport::ApproxRatio() const {
  if (!ok || !lower_bound.has_value() || *lower_bound <= 0.0) return 0.0;
  return objective / *lower_bound;
}

SolveReport Solver::Solve(const Instance& instance,
                          const SolveOptions& options) {
  SolveReport report;
  report.solver = std::string(name());
  if (auto err = instance.ValidationError()) {
    report.error = "invalid instance: " + *err;
    return report;
  }
  const auto known = ParamKeys();
  for (const auto& [key, value] : options.params) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      report.error = "unknown parameter \"" + key + "\" for solver " +
                     report.solver;
      if (!known.empty()) {
        report.error += " (accepts:";
        for (const auto& k : known) report.error += " " + k;
        report.error += ")";
      }
      return report;
    }
  }

  if (instance.num_flows() == 0) {
    // Trivial by definition; spares every adapter an empty-input edge case.
    report.ok = true;
    report.schedule = Schedule(0);
    report.objective_name = "total_response";
    report.metrics = ComputeMetrics(instance, report.schedule);
    return report;
  }

  Stopwatch timer;
  report = SolveImpl(instance, options);
  report.solver = std::string(name());
  report.wall_seconds = timer.ElapsedSeconds();
  if (options.time_limit_seconds > 0.0 &&
      report.wall_seconds > options.time_limit_seconds) {
    report.diagnostics["time_limit_exceeded"] = 1.0;
  }
  if (!report.ok) {
    if (report.error.empty()) report.error = "solver failed";
    return report;
  }
  if (auto err = report.schedule.ValidationError(instance, report.allowance)) {
    report.ok = false;
    report.error = "schedule invalid under reported allowance: " + *err;
    return report;
  }
  report.metrics = ComputeMetrics(instance, report.schedule);
  report.objective = report.objective_name == "max_response"
                         ? report.metrics.max_response
                         : report.metrics.total_response;
  return report;
}

}  // namespace flowsched
