#include "api/stream_source.h"

#include <fstream>
#include <utility>

#include "api/instance_source.h"
#include "api/spec_parser.h"
#include "api/traffic_spec.h"
#include "serve/stream_sources.h"
#include "workload/coflow_gen.h"
#include "workload/poisson.h"

namespace flowsched {
namespace {

using api_spec::Spec;
using api_spec::SpecReader;
using api_spec::SplitSpec;

void Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

// Owns the file stream a TraceStreamSource reads from; everything else
// forwards.
class FileTraceSource : public StreamingFlowSource {
 public:
  explicit FileTraceSource(const std::string& path)
      : in_(path), trace_(in_) {}

  const SwitchSpec& sw() const override { return trace_.sw(); }
  void ArrivalsInto(Round t, std::vector<Flow>* out) override {
    trace_.ArrivalsInto(t, out);
  }
  bool Exhausted(Round t) override { return trace_.Exhausted(t); }
  Round NextArrivalRound(Round t) override {
    return trace_.NextArrivalRound(t);
  }
  bool ok() const override { return trace_.ok(); }
  std::string error() const override { return trace_.error(); }

 private:
  std::ifstream in_;
  TraceStreamSource trace_;
};

// Pulls the `rounds` key out before SpecReader sees it, so `rounds=inf`
// parses (GetInt would reject "inf"). Returns the horizon: -1 unbounded.
Round TakeHorizon(Spec& spec, long long fallback) {
  const auto it = spec.kv.find("rounds");
  if (it == spec.kv.end()) return static_cast<Round>(fallback);
  if (it->second == "inf") {
    spec.kv.erase(it);
    return -1;
  }
  return 0;  // Leave for SpecReader (validates the integer).
}

}  // namespace

std::unique_ptr<StreamingFlowSource> MakeStreamSource(
    const std::string& source, std::string* error) {
  if (!IsGeneratorSpec(source)) {
    std::ifstream probe(source);
    if (!probe) {
      Fail(error, "cannot open \"" + source +
                      "\" (not a file, and not a streamable generator spec)");
      return nullptr;
    }
    probe.close();
    auto trace = std::make_unique<FileTraceSource>(source);
    if (!trace->ok()) {
      Fail(error, source + ": " + trace->error());
      return nullptr;
    }
    return trace;
  }
  Spec spec;
  if (!SplitSpec(source, spec, error)) return nullptr;
  if (spec.generator != "poisson" && spec.generator != "coflow" &&
      spec.generator != "cdf") {
    Fail(error, "generator \"" + spec.generator +
                    "\" is batch-only; load it with LoadInstance and replay "
                    "through InstanceStreamSource");
    return nullptr;
  }
  const Round taken = TakeHorizon(spec, /*fallback=*/10);
  SpecReader r(spec);
  std::unique_ptr<StreamingFlowSource> result;
  if (spec.generator == "poisson") {
    PoissonConfig cfg;
    cfg.num_inputs = cfg.num_outputs = static_cast<int>(r.GetInt("ports", 16));
    cfg.port_capacity = r.GetInt("cap", 1);
    const double load = r.Get("load", 1.0);
    cfg.mean_arrivals_per_round = load * cfg.num_inputs;
    const Round horizon =
        taken != 0 ? taken : static_cast<Round>(r.GetInt("rounds", 10));
    cfg.num_rounds = 1;  // Unused on the streaming path.
    cfg.max_demand = r.GetInt("dmax", 1);
    cfg.seed = static_cast<std::uint64_t>(r.GetInt("seed", 1));
    r.CheckUnknown();
    if (r.ok() && horizon < 0 && load <= 0.0) {
      Fail(error, "rounds=inf needs load > 0");
      return nullptr;
    }
    if (r.ok() && cfg.num_inputs > 0 && cfg.port_capacity >= 1 &&
        load >= 0.0 && cfg.max_demand >= 1) {
      result = std::make_unique<PoissonStreamSource>(cfg, horizon);
    } else if (r.ok()) {
      Fail(error, "spec values out of range (need ports>0, cap>=1, "
                  "load>=0, dmax>=1)");
      return nullptr;
    }
  } else if (spec.generator == "coflow") {
    CoflowGenConfig cfg;
    cfg.num_inputs = cfg.num_outputs = static_cast<int>(r.GetInt("ports", 16));
    cfg.port_capacity = r.GetInt("cap", 1);
    const Round horizon =
        taken != 0 ? taken : static_cast<Round>(r.GetInt("rounds", 10));
    cfg.num_rounds = 1;  // Unused on the streaming path.
    cfg.min_width = static_cast<int>(r.GetInt("minwidth", 1));
    cfg.max_width = static_cast<int>(r.GetInt("width", 8));
    cfg.width_skew = r.Get("skew", 1.0);
    cfg.max_demand = r.GetInt("dmax", 1);
    cfg.seed = static_cast<std::uint64_t>(r.GetInt("seed", 1));
    const double load = r.Get("load", 1.0);
    r.CheckUnknown();
    if (r.ok() && horizon < 0 && load <= 0.0) {
      Fail(error, "rounds=inf needs load > 0");
      return nullptr;
    }
    if (r.ok() && cfg.num_inputs > 0 && cfg.port_capacity >= 1 &&
        load >= 0.0 && cfg.max_demand >= 1 && cfg.min_width >= 1 &&
        cfg.max_width >= cfg.min_width && cfg.width_skew > 0.0 &&
        cfg.width_skew <= 1.0) {
      cfg.mean_coflows_per_round =
          load * cfg.num_inputs / MeanCoflowWidth(cfg);
      result = std::make_unique<CoflowStreamSource>(cfg, horizon);
    } else if (r.ok()) {
      Fail(error, "spec values out of range (need ports>0, cap>=1, "
                  "load>=0, dmax>=1, 1<=minwidth<=width, 0<skew<=1)");
      return nullptr;
    }
  } else {
    // cdf: shares key reading with the batch loader (api/traffic_spec.h),
    // so the two paths draw byte-identical finite workloads.
    TrafficConfig cfg;
    std::string traffic_error;
    const bool traffic_ok = api_spec::ReadTrafficSpec(r, &cfg, &traffic_error);
    const Round horizon =
        taken != 0 ? taken : static_cast<Round>(r.GetInt("rounds", 10));
    r.CheckUnknown();
    if (!traffic_ok) {
      Fail(error, r.ok() ? traffic_error
                         : traffic_error + "; " + r.error());
      return nullptr;
    }
    if (r.ok() && horizon < 0 && cfg.load <= 0.0) {
      Fail(error, "rounds=inf needs load > 0");
      return nullptr;
    }
    if (r.ok()) {
      cfg.num_rounds = 1;  // Unused on the streaming path.
      result = std::make_unique<TrafficStreamSource>(cfg, horizon);
    }
  }
  if (!r.ok()) {
    Fail(error, r.error());
    return nullptr;
  }
  return result;
}

}  // namespace flowsched
