// Streaming counterpart of api/instance_source.h: turns a --spec / --trace
// argument into a pull-based StreamingFlowSource without materializing the
// stream.
//
// Supported sources:
//   poisson / coflow generator specs with the same keys LoadInstance
//     accepts, plus `rounds=inf` for an unbounded stream (which then
//     requires load > 0, or the end-of-stream scan would never terminate);
//   instance-CSV file paths — streamed row by row (rows must be sorted by
//     release; generator-written traces are).
//
// The remaining generators (shuffle, incast, fig4a/b, fabric wrappers) and
// coflow traces are batch-shaped — load them with LoadInstance and replay
// through InstanceStreamSource instead; this factory rejects them with an
// error saying so.
#ifndef FLOWSCHED_API_STREAM_SOURCE_H_
#define FLOWSCHED_API_STREAM_SOURCE_H_

#include <memory>
#include <string>

#include "serve/flow_source.h"

namespace flowsched {

// Null + *error on failure (unknown generator, bad key, unreadable file,
// malformed trace header). The returned source owns any backing file
// stream.
std::unique_ptr<StreamingFlowSource> MakeStreamSource(
    const std::string& source, std::string* error = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_API_STREAM_SOURCE_H_
