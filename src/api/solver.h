// The unified solver facade: every scheduler in the repo — the offline
// approximation theorems, the exact branch-and-bound solvers, the deadline
// variant, and the online policy simulations — is exposed as a `Solver`
// with one entry point, `Solve(Instance, SolveOptions) -> SolveReport`.
//
// The typed per-algorithm APIs (core/art_scheduler.h, core/mrt_scheduler.h,
// core/exact.h, core/online/simulator.h) remain the primitives; this layer
// adapts their bespoke option/result structs into a common shape so drivers
// (CLI, sweeps, batch runners) can treat "a scheduler" as a value. Solvers
// are obtained by name from the SolverRegistry (api/registry.h).
#ifndef FLOWSCHED_API_SOLVER_H_
#define FLOWSCHED_API_SOLVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/instance.h"
#include "model/metrics.h"
#include "model/schedule.h"

namespace flowsched {

/// Knobs shared by every solver, plus a string-keyed map for solver-specific
/// parameters (each solver documents its keys via Solver::ParamDocs; the
/// generated reference is docs/solvers.md). Keys not accepted by the target
/// solver are an error, not silently ignored — Solve() fails the report so
/// typos surface.
struct SolveOptions {
  // Advisory wall-clock budget; 0 = unlimited. Solvers that cannot stop
  // mid-run still record overruns in diagnostics["time_limit_exceeded"].
  double time_limit_seconds = 0.0;
  // Round horizon for online simulation; 0 = solver default. Offline
  // solvers derive their own horizons and ignore it.
  Round max_rounds = 0;
  std::uint64_t seed = 1;  // Randomized policies (online.random, online.hybrid).
  int verbosity = 0;       // 0 = silent; >= 1 solvers may narrate to stderr.
  std::map<std::string, std::string> params;

  /// Typed parameter accessors. Return `fallback` when the key is absent;
  /// append to *error (if non-null) when the value does not parse.
  std::string ParamOr(const std::string& key, const std::string& fallback) const;
  std::int64_t IntParamOr(const std::string& key, std::int64_t fallback,
                          std::string* error = nullptr) const;
  double DoubleParamOr(const std::string& key, double fallback,
                       std::string* error = nullptr) const;
};

/// The common result core. Solver-specific extras (LP internals, rounding
/// audits, simulation counters) travel in `diagnostics` so generic drivers
/// can still print them.
struct SolveReport {
  bool ok = false;     // When false `error` explains and only `solver`,
  std::string error;   // `wall_seconds` and `diagnostics` are meaningful.
  std::string solver;  // Registered name, e.g. "mrt.theorem3".

  Schedule schedule;        // Every flow assigned (when ok).
  ScheduleMetrics metrics;  // ComputeMetrics(instance, schedule).
  // Allowance under which `schedule` validates: Exact() for online/exact
  // solvers, the theorem's augmentation for the offline approximations.
  CapacityAllowance allowance;

  // The solver's primary objective over `schedule` and, when the algorithm
  // proves one, a lower bound on that objective for ANY schedule of the
  // instance (LP(0) for art.*, rho* for mrt.theorem3, the optimum itself
  // for exact solvers).
  std::string objective_name;  // "total_response" or "max_response".
  double objective = 0.0;
  std::optional<double> lower_bound;

  double wall_seconds = 0.0;
  std::map<std::string, double> diagnostics;  // Ordered => stable output.

  /// objective / lower_bound when both are meaningful; 0 when not.
  double ApproxRatio() const;
};

/// One documented solver key: a SolveOptions::params key or a diagnostics
/// key, with a one-line contract. The docs generator (`flowsched_cli
/// --describe-solvers`) renders these into docs/solvers.md, so the key list
/// a solver declares IS its public parameter surface.
struct SolverKeyDoc {
  std::string key;
  std::string doc;
};

class Solver {
 public:
  virtual ~Solver() = default;

  /// Registered name, e.g. "mrt.theorem3".
  virtual std::string_view name() const = 0;
  /// One-line summary shown by --list and the generated solver reference.
  virtual std::string_view description() const = 0;
  /// Keys accepted in SolveOptions::params with one-line docs (empty =
  /// none). Solve() rejects any key not listed here.
  virtual std::vector<SolverKeyDoc> ParamDocs() const { return {}; }
  /// Diagnostics keys the solver may emit in SolveReport::diagnostics,
  /// with one-line docs. Advisory (a run may omit keys, e.g. opt-in
  /// counters), but every emitted key should be declared.
  virtual std::vector<SolverKeyDoc> DiagnosticDocs() const { return {}; }
  /// The keys of ParamDocs() — the validation set Solve() enforces.
  std::vector<std::string> ParamKeys() const;

  /// Validates the instance and parameter keys, times SolveImpl, computes
  /// metrics for the returned schedule, and validates it against the
  /// reported allowance. Never throws; failures come back as ok == false.
  SolveReport Solve(const Instance& instance, const SolveOptions& options = {});

 protected:
  /// Fills schedule / allowance / objective_name / lower_bound /
  /// diagnostics (and error on failure). `metrics`, `objective`, `solver`
  /// and `wall_seconds` are filled by Solve().
  virtual SolveReport SolveImpl(const Instance& instance,
                                const SolveOptions& options) = 0;
};

}  // namespace flowsched

#endif  // FLOWSCHED_API_SOLVER_H_
