// Adapters exposing every online policy (core/online/) as a registered
// solver: "online.<policy>" replays the instance through the round-based
// simulator with MakePolicy(<policy>). The facade covers fixed instances;
// adaptive adversaries (workload/adversarial.h) drive the simulator
// directly, since they generate flows in reaction to the policy.
#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_solvers.h"
#include "api/registry.h"
#include "api/scenario_support.h"
#include "core/online/simulator.h"

namespace flowsched {
namespace internal {
namespace {

// Policies built on BuildBacklogGraph (bipartite matchings of the backlog);
// those FS_CHECK-abort on non-unit demands, so the adapter rejects such
// instances with a recoverable error instead.
bool IsMatchingBased(const std::string& policy) {
  return policy == "maxcard" || policy == "minrtime" ||
         policy == "maxweight" || policy == "hybrid";
}

class OnlinePolicySolver : public Solver {
 public:
  explicit OnlinePolicySolver(std::string policy)
      : policy_(std::move(policy)), name_("online." + policy_) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override {
    return "round-by-round simulation of the online policy (paper §5.2.1)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"record_backlog",
             "0/1 (default 0): keep per-round backlog sizes; the maximum "
             "surfaces as diagnostics max_backlog"},
            ScenarioParamDoc(),
            {"validate",
             "0/1 (default 1): audit every policy selection for duplicates "
             "and port overloads (benchmarks turn this off)"},
            {"warmstart",
             "0/1 (default 1, maxweight only): reuse the previous round's "
             "Hungarian work via the incremental matcher; bit-exact, so the "
             "schedule is identical either way"},
            {"approx",
             "eps > 0 (default 0 = exact, maxweight only): eps-approximate "
             "auction matcher; each round's matched weight is within "
             "backlog*eps of optimal, schedules may differ"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    std::vector<SolverKeyDoc> docs = {
        {"rounds_simulated", "rounds until the backlog drained"},
        {"avg_port_utilization",
         "scheduled demand / available bandwidth over the run (1.0 = "
         "every port saturated every round)"},
        {"peak_backlog", "largest backlog at any policy round"},
        {"max_backlog",
         "largest recorded backlog (only with record_backlog=1)"},
        {"matcher_cache_hits",
         "rounds whose matching problem was identical to the previous "
         "round's (maxweight with warmstart=1)"},
        {"matcher_prefix_resumes",
         "rounds resumed from a per-row Hungarian checkpoint"},
        {"matcher_full_solves", "rounds solved from scratch"},
        {"matcher_reused_rows",
         "Hungarian row insertions skipped via cache hits and resumes"},
        {"matcher_total_rows", "total Hungarian rows across all rounds"},
        {"auction_bids", "price raises across all rounds (approx>0)"},
        {"auction_cold_restarts",
         "warm starts whose certificate failed and were re-run cold"}};
    AppendScenarioDiagnosticDocs(&docs);
    return docs;
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (IsMatchingBased(policy_) && instance.MaxDemand() > 1) {
      report.error = "policy " + policy_ +
                     " is matching-based and requires unit demands";
      return report;
    }
    SimulationOptions sim;
    if (options.max_rounds > 0) {
      // The simulator FS_CHECK-aborts when flows are still pending at its
      // horizon; refuse horizons that cannot drain any instance.
      if (options.max_rounds < instance.SafeHorizon()) {
        report.error = "max_rounds " + std::to_string(options.max_rounds) +
                       " is below the safe horizon " +
                       std::to_string(instance.SafeHorizon());
        return report;
      }
      sim.max_rounds = options.max_rounds;
    }
    std::string perr;
    sim.record_backlog = options.IntParamOr("record_backlog", 0, &perr) != 0;
    sim.validate = options.IntParamOr("validate", 1, &perr) != 0;
    MatchingOptions matching;
    matching.warmstart = options.IntParamOr("warmstart", 1, &perr) != 0;
    matching.approx_eps = options.DoubleParamOr("approx", 0.0, &perr);
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    if (matching.approx_eps < 0.0) {
      report.error = "approx must be >= 0";
      return report;
    }
    ScenarioScript script;
    bool has_scenario = false;
    if (!LoadScenarioOption(options, &script, &has_scenario, &report.error)) {
      return report;
    }
    if (has_scenario) sim.scenario = &script;
    auto policy = MakePolicy(policy_, options.seed, matching);
    const SimulationResult r = Simulate(instance, *policy, sim);
    if (r.truncated) {
      report.error = r.error;
      return report;
    }
    report.schedule = MapRealizedSchedule(instance, r.schedule);

    report.ok = true;
    // MIGRATE re-homes arrivals onto other hosts, but the facade audits
    // the schedule against the *original* instance's ports — grant the
    // destinations' capacity as additive slack (scenario/scenario.h).
    report.allowance =
        has_scenario && script.has_migrations()
            ? CapacityAllowance::Additive(
                  MigrationCapacityAllowance(script, instance.sw()))
            : CapacityAllowance::Exact();
    report.diagnostics["rounds_simulated"] = r.rounds;
    report.diagnostics["avg_port_utilization"] = r.avg_port_utilization;
    report.diagnostics["peak_backlog"] = r.peak_backlog;
    const PolicyMatchingStats ms = policy->matching_stats();
    if (ms.matcher_solves > 0) {
      report.diagnostics["matcher_cache_hits"] = ms.matcher_cache_hits;
      report.diagnostics["matcher_prefix_resumes"] = ms.matcher_prefix_resumes;
      report.diagnostics["matcher_full_solves"] = ms.matcher_full_solves;
      report.diagnostics["matcher_reused_rows"] = ms.matcher_reused_rows;
      report.diagnostics["matcher_total_rows"] = ms.matcher_total_rows;
    }
    if (ms.auction_bids > 0) {
      report.diagnostics["auction_bids"] = ms.auction_bids;
      report.diagnostics["auction_cold_restarts"] = ms.auction_cold_restarts;
    }
    if (sim.record_backlog && !r.backlog_trace.empty()) {
      report.diagnostics["max_backlog"] =
          *std::max_element(r.backlog_trace.begin(), r.backlog_trace.end());
    }
    if (has_scenario) {
      // The fault-free baseline (same policy, same seed) anchors the
      // robustness diagnostics.
      SimulationOptions base_sim = sim;
      base_sim.scenario = nullptr;
      base_sim.record_backlog = false;
      auto base_policy = MakePolicy(policy_, options.seed, matching);
      const SimulationResult base = Simulate(instance, *base_policy, base_sim);
      AddScenarioDiagnostics(script, r.rounds, r.downtime_rounds,
                             r.peak_backlog, r.metrics.total_response,
                             base.peak_backlog, base.metrics.total_response,
                             r.migrated_flows, &report);
    }
    return report;
  }

 private:
  std::string policy_;
  std::string name_;
};

}  // namespace

Schedule MapRealizedSchedule(const Instance& instance,
                             const Schedule& realized) {
  std::vector<FlowId> order(instance.num_flows());
  for (FlowId e = 0; e < instance.num_flows(); ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](FlowId a, FlowId b) {
    return instance.flow(a).release < instance.flow(b).release;
  });
  Schedule schedule(instance.num_flows());
  for (int k = 0; k < instance.num_flows(); ++k) {
    schedule.Assign(order[k], realized.round_of(k));
  }
  return schedule;
}

void RegisterOnlineSolvers(SolverRegistry& registry) {
  for (const std::string& policy : AllPolicyNames()) {
    auto factory = [policy] {
      return std::make_unique<OnlinePolicySolver>(policy);
    };
    auto probe = factory();
    registry.Register(std::string(probe->name()),
                      std::string(probe->description()), std::move(factory));
  }
}

}  // namespace internal
}  // namespace flowsched
