// Shared parsing helpers for "<generator>:key=value,..." source specs,
// used by both the batch loader (api/instance_source.cc) and the streaming
// source factory (api/stream_source.cc) so the spec dialect cannot drift
// between the two paths. Internal to src/api/.
#ifndef FLOWSCHED_API_SPEC_PARSER_H_
#define FLOWSCHED_API_SPEC_PARSER_H_

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace flowsched {
namespace api_spec {

struct Spec {
  std::string generator;
  std::map<std::string, std::string> kv;
};

inline bool SplitSpec(const std::string& source, Spec& spec,
                      std::string* error) {
  const auto colon = source.find(':');
  spec.generator = source.substr(0, colon);
  if (colon == std::string::npos) return true;
  std::stringstream rest(source.substr(colon + 1));
  std::string pair;
  while (std::getline(rest, pair, ',')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "generator spec: expected key=value, got \"" + pair + "\"";
      }
      return false;
    }
    spec.kv[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return true;
}

// Reads spec values with defaults; collects unknown-key / parse errors.
class SpecReader {
 public:
  explicit SpecReader(const Spec& spec) : spec_(spec) {}

  double Get(const std::string& key, double fallback) {
    used_.push_back(key);
    const auto it = spec_.kv.find(key);
    if (it == spec_.kv.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == it->second.c_str()) {
      Error(key + ": unparsable value \"" + it->second + "\"");
      return fallback;
    }
    return v;
  }

  long long GetInt(const std::string& key, long long fallback) {
    used_.push_back(key);
    const auto it = spec_.kv.find(key);
    if (it == spec_.kv.end()) return fallback;
    long long v = 0;
    const char* first = it->second.data();
    const char* last = first + it->second.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last) {
      Error(key + ": unparsable value \"" + it->second + "\"");
      return fallback;
    }
    return v;
  }

  std::string GetString(const std::string& key, const std::string& fallback) {
    used_.push_back(key);
    const auto it = spec_.kv.find(key);
    return it == spec_.kv.end() ? fallback : it->second;
  }

  // Call after all Get*(): flags keys the generator does not understand.
  void CheckUnknown() {
    for (const auto& [key, value] : spec_.kv) {
      if (std::find(used_.begin(), used_.end(), key) == used_.end()) {
        Error("unknown key \"" + key + "\" for generator " + spec_.generator);
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void Error(const std::string& msg) {
    if (!error_.empty()) error_ += "; ";
    error_ += msg;
  }

  const Spec& spec_;
  std::vector<std::string> used_;
  std::string error_;
};

}  // namespace api_spec
}  // namespace flowsched

#endif  // FLOWSCHED_API_SPEC_PARSER_H_
