#include "api/registry.h"

#include <utility>

#include "api/builtin_solvers.h"

namespace flowsched {

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltinSolvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::Register(std::string name, std::string description,
                              SolverFactory factory) {
  entries_[std::move(name)] = Entry{std::move(description),
                                    std::move(factory)};
}

bool SolverRegistry::Contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted.
}

namespace {

// Greedy '*' glob: '*' matches any (possibly empty) substring. Iterative
// backtracking form — no other metacharacters are supported.
bool GlobMatch(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

std::vector<std::string> SolverRegistry::NamesMatching(
    std::string_view pattern) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (GlobMatch(pattern, name)) names.push_back(name);
  }
  return names;  // std::map iterates sorted.
}

std::string SolverRegistry::Description(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string() : it->second.description;
}

std::unique_ptr<Solver> SolverRegistry::Create(std::string_view name,
                                               std::string* error) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    if (error != nullptr) {
      *error = "unknown solver \"" + std::string(name) + "\"; registered:";
      for (const auto& n : Names()) *error += " " + n;
    }
    return nullptr;
  }
  return it->second.factory();
}

SolveReport SolverRegistry::Solve(std::string_view name,
                                  const Instance& instance,
                                  const SolveOptions& options) const {
  std::string error;
  auto solver = Create(name, &error);
  if (solver == nullptr) {
    SolveReport report;
    report.solver = std::string(name);
    report.error = error;
    return report;
  }
  return solver->Solve(instance, options);
}

void RegisterBuiltinSolvers(SolverRegistry& registry) {
  internal::RegisterOfflineSolvers(registry);
  internal::RegisterOnlineSolvers(registry);
  internal::RegisterCoflowSolvers(registry);
  internal::RegisterFabricSolvers(registry);
}

}  // namespace flowsched
