#include "api/traffic_spec.h"

#include "traffic/builtin_cdfs.h"
#include "traffic/size_cdf.h"

namespace flowsched {
namespace api_spec {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool ReadTrafficSpec(SpecReader& r, TrafficConfig* config,
                     std::string* error) {
  config->num_inputs = config->num_outputs =
      static_cast<int>(r.GetInt("ports", 16));
  config->port_capacity = r.GetInt("cap", 1);
  config->load = r.Get("load", 0.9);
  config->unit = r.Get("unit", 0.0);
  config->min_width = static_cast<int>(r.GetInt("minwidth", 1));
  config->max_width = static_cast<int>(r.GetInt("width", 0));
  config->width_skew = r.Get("skew", 1.0);
  config->seed = static_cast<std::uint64_t>(r.GetInt("seed", 1));

  const std::string dist = r.GetString("dist", "");
  const std::string file = r.GetString("file", "");
  if (!dist.empty() && !file.empty()) {
    return Fail(error, "cdf: give dist= or file=, not both");
  }
  std::string cdf_error;
  if (!file.empty()) {
    if (!SizeCdf::ParseFile(file, &config->cdf, &cdf_error)) {
      return Fail(error, cdf_error);
    }
  } else {
    const std::string name = dist.empty() ? "websearch" : dist;
    const char* text = BuiltinCdfText(name);
    if (text == nullptr) {
      std::string names;
      for (const std::string& n : BuiltinCdfNames()) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      return Fail(error, "unknown dist \"" + name + "\" (builtins: " + names +
                             "; or pass file=<path>)");
    }
    // Builtins are sync-tested against the checked-in files; a parse
    // failure here is a build defect, but report it rather than abort.
    if (!SizeCdf::ParseText(text, &config->cdf, &cdf_error)) {
      return Fail(error, "builtin CDF " + name + ": " + cdf_error);
    }
  }

  if (config->num_inputs <= 0 || config->port_capacity < 1 ||
      config->load < 0.0 || config->unit < 0.0 || config->min_width < 1 ||
      config->max_width < 0 ||
      (config->max_width > 0 &&
       (config->max_width < config->min_width || config->width_skew <= 0.0 ||
        config->width_skew > 1.0))) {
    return Fail(error,
                "spec values out of range (need ports>0, cap>=1, load>=0, "
                "unit>=0, width=0 for untagged or width>=minwidth>=1 with "
                "0<skew<=1)");
  }
  return true;
}

}  // namespace api_spec
}  // namespace flowsched
