// Internal: registration hooks for the built-in solver adapters, split by
// family (api/offline_solvers.cc, api/online_solvers.cc). Use
// RegisterBuiltinSolvers (api/registry.h) from application code.
#ifndef FLOWSCHED_API_BUILTIN_SOLVERS_H_
#define FLOWSCHED_API_BUILTIN_SOLVERS_H_

namespace flowsched {

class SolverRegistry;

namespace internal {

// art.theorem1, art.exact, mrt.theorem3, mrt.exact, mrt.deadline.
void RegisterOfflineSolvers(SolverRegistry& registry);

// online.<policy> for every AllPolicyNames() entry.
void RegisterOnlineSolvers(SolverRegistry& registry);

}  // namespace internal
}  // namespace flowsched

#endif  // FLOWSCHED_API_BUILTIN_SOLVERS_H_
