// Internal: registration hooks for the built-in solver adapters, split by
// family (api/offline_solvers.cc, api/online_solvers.cc,
// coflow/coflow_solvers.cc, fabric/fabric_solvers.cc). Use
// RegisterBuiltinSolvers (api/registry.h) from application code.
#ifndef FLOWSCHED_API_BUILTIN_SOLVERS_H_
#define FLOWSCHED_API_BUILTIN_SOLVERS_H_

#include "model/instance.h"
#include "model/schedule.h"

namespace flowsched {

class SolverRegistry;

namespace internal {

// art.theorem1, art.exact, mrt.theorem3, mrt.exact, mrt.deadline.
void RegisterOfflineSolvers(SolverRegistry& registry);

// online.<policy> for every AllPolicyNames() entry.
void RegisterOnlineSolvers(SolverRegistry& registry);

// coflow.<policy> for every AllCoflowPolicyNames() entry.
void RegisterCoflowSolvers(SolverRegistry& registry);

// fabric.<policy> sharded-fabric adapters (fabric/fabric_solvers.cc):
// coflow-aware policy names first, then the remaining flow-level ones.
void RegisterFabricSolvers(SolverRegistry& registry);

// Shared by the online and coflow adapters: the simulator numbers realized
// flows in arrival order (stable sort of the instance by release); this
// maps a realized-order schedule back onto the instance's flow ids.
Schedule MapRealizedSchedule(const Instance& instance,
                             const Schedule& realized);

}  // namespace internal
}  // namespace flowsched

#endif  // FLOWSCHED_API_BUILTIN_SOLVERS_H_
