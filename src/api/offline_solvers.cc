// Adapters exposing the offline schedulers (Theorems 1 and 3, the exact
// branch-and-bound solvers, and the Remark 4.2 deadline variant) through the
// Solver facade. Each adapter translates the algorithm's typed result struct
// into a SolveReport; the typed APIs stay the primitives.
#include <memory>
#include <string>
#include <vector>

#include "api/builtin_solvers.h"
#include "api/registry.h"
#include "core/art_scheduler.h"
#include "core/exact.h"
#include "core/mrt_scheduler.h"

namespace flowsched {
namespace internal {
namespace {

// Default cap on instance size for the exponential-time exact solvers
// (core/exact.h: "use only for <= ~20 flows"); overridable via `max_flows`
// up to the bitmask representation's hard limit (core/exact.cc
// kMaxExactFlows, which FS_CHECK-aborts past 30).
constexpr int kDefaultExactMaxFlows = 20;
constexpr int kHardExactMaxFlows = 30;

bool CheckExactSize(const Instance& instance, const SolveOptions& options,
                    SolveReport& report) {
  std::string perr;
  const auto max_flows =
      options.IntParamOr("max_flows", kDefaultExactMaxFlows, &perr);
  if (!perr.empty()) {
    report.error = perr;
    return false;
  }
  if (instance.num_flows() > kHardExactMaxFlows) {
    report.error = "instance has " + std::to_string(instance.num_flows()) +
                   " flows; the exact solvers support at most " +
                   std::to_string(kHardExactMaxFlows);
    return false;
  }
  if (instance.num_flows() > max_flows) {
    report.error = "instance has " + std::to_string(instance.num_flows()) +
                   " flows; exact solvers are exponential (raise max_flows=" +
                   std::to_string(max_flows) + " to force, hard cap " +
                   std::to_string(kHardExactMaxFlows) + ")";
    return false;
  }
  return true;
}

// Splits "3,7;9" (commas or semicolons) into rounds; one per flow.
bool ParseDeadlineList(const std::string& spec, int num_flows,
                       std::vector<Round>& deadlines, std::string& error) {
  deadlines.clear();
  std::string token;
  auto flush = [&] {
    if (token.empty()) return true;
    try {
      deadlines.push_back(std::stoi(token));
    } catch (...) {
      error = "deadlines: unparsable entry \"" + token + "\"";
      return false;
    }
    token.clear();
    return true;
  };
  for (char c : spec) {
    if (c == ',' || c == ';') {
      if (!flush()) return false;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      token += c;
    }
  }
  if (!flush()) return false;
  if (static_cast<int>(deadlines.size()) != num_flows) {
    error = "deadlines: got " + std::to_string(deadlines.size()) +
            " entries for " + std::to_string(num_flows) + " flows";
    return false;
  }
  return true;
}

class ArtTheorem1Solver : public Solver {
 public:
  std::string_view name() const override { return "art.theorem1"; }
  std::string_view description() const override {
    return "offline (1+c, O(log n)/c) total-response approximation "
           "(Theorem 1)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"c",
             "approximation knob >= 1 (default 2): (1+c) augmentation for "
             "O(log n)/c stretch"},
            {"interval_length",
             "geometric interval override (default 0 = derive from c)"},
            {"coloring",
             "edge-coloring kernel: koenig (default) or euler (faster on "
             "dense multigraphs, D >~ 250)"},
            {"validate",
             "0/1 (default 1): re-check the coloring decomposition"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    return {{"c", "the c actually used"},
            {"interval_length", "rounds per geometric interval"},
            {"max_colors", "largest palette any interval needed"},
            {"max_extra_delay", "worst per-flow delay added by rounding"},
            {"rounding_iterations", "iterative-rounding passes"},
            {"forced_fixes", "variables fixed by feasibility pressure"},
            {"max_window_overload", "worst window overload before repair"},
            {"pseudo_cost", "rounded pseudo-schedule cost"},
            {"horizon", "LP horizon in rounds"}};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (instance.MaxDemand() > 1) {
      report.error = "art.theorem1 requires unit demands (Theorem 1)";
      return report;
    }
    std::string perr;
    ArtSchedulerOptions opts;
    opts.c = static_cast<int>(options.IntParamOr("c", opts.c, &perr));
    opts.interval_length = static_cast<int>(
        options.IntParamOr("interval_length", opts.interval_length, &perr));
    opts.validate = options.IntParamOr("validate", 1, &perr) != 0;
    const std::string coloring = options.ParamOr("coloring", "koenig");
    if (coloring == "euler") {
      opts.coloring = EdgeColoringAlgorithm::kEulerSplit;
    } else if (coloring != "koenig") {
      report.error = "parameter coloring must be koenig or euler";
      return report;
    }
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    if (opts.c < 1) {
      report.error = "parameter c must be >= 1";
      return report;
    }
    const ArtSchedulerResult r = ScheduleArtWithAugmentation(instance, opts);
    report.ok = true;
    report.schedule = r.schedule;
    report.allowance = r.allowance;
    report.lower_bound = r.rounding_report.lp0_objective;
    report.diagnostics["c"] = opts.c;
    report.diagnostics["interval_length"] = r.interval_length;
    report.diagnostics["max_colors"] = r.max_colors;
    report.diagnostics["max_extra_delay"] = r.max_extra_delay;
    report.diagnostics["rounding_iterations"] = r.rounding_report.iterations;
    report.diagnostics["forced_fixes"] = r.rounding_report.forced_fixes;
    report.diagnostics["max_window_overload"] =
        static_cast<double>(r.rounding_report.max_window_overload);
    report.diagnostics["pseudo_cost"] = r.rounding_report.pseudo_cost;
    report.diagnostics["horizon"] = r.rounding_report.horizon;
    return report;
  }
};

class ArtExactSolver : public Solver {
 public:
  std::string_view name() const override { return "art.exact"; }
  std::string_view description() const override {
    return "optimal total response by branch and bound (tiny instances)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"max_flows",
             "instance-size guard (default 20, hard cap 30): the search is "
             "exponential in flows"}};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (!CheckExactSize(instance, options, report)) return report;
    const ExactArtResult r = ExactMinTotalResponse(instance);
    report.ok = true;
    report.schedule = r.schedule;
    report.allowance = CapacityAllowance::Exact();
    report.lower_bound = r.total_response;  // Proven optimum.
    return report;
  }
};

class MrtTheorem3Solver : public Solver {
 public:
  std::string_view name() const override { return "mrt.theorem3"; }
  std::string_view description() const override {
    return "optimal max response with +(2*dmax-1) capacity (Theorem 3)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"rho_upper_hint",
             "upper bound seeding the binary search over rho (default: "
             "heuristic schedule's max response)"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    return {{"rho_lp", "LP-optimal max response (the proven lower bound)"},
            {"binary_search_probes", "feasibility LPs solved"},
            {"heuristic_upper_bound", "FIFO-greedy upper bound used"},
            {"max_violation", "worst capacity violation before rounding"},
            {"violation_bound", "Theorem 3's 2*dmax-1 violation bound"},
            {"lp_solves", "total LP solves"},
            {"relaxed_rows", "constraint rows relaxed during rounding"},
            {"hard_drops", "rows dropped outright"}};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "max_response";
    std::string perr;
    MrtSchedulerOptions opts;
    opts.rho_upper_hint = static_cast<Round>(
        options.IntParamOr("rho_upper_hint", opts.rho_upper_hint, &perr));
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    const MrtSchedulerResult r = MinimizeMaxResponse(instance, opts);
    report.ok = true;
    report.schedule = r.schedule;
    report.allowance = r.allowance;
    report.lower_bound = static_cast<double>(r.rho_lp);
    report.diagnostics["rho_lp"] = static_cast<double>(r.rho_lp);
    report.diagnostics["binary_search_probes"] = r.binary_search_probes;
    report.diagnostics["heuristic_upper_bound"] = r.heuristic_upper_bound;
    report.diagnostics["max_violation"] =
        static_cast<double>(r.rounding_report.max_violation);
    report.diagnostics["violation_bound"] =
        static_cast<double>(r.rounding_report.bound);
    report.diagnostics["lp_solves"] = r.rounding_report.lp_solves;
    report.diagnostics["relaxed_rows"] = r.rounding_report.relaxed_rows;
    report.diagnostics["hard_drops"] = r.rounding_report.hard_drops;
    return report;
  }
};

class MrtExactSolver : public Solver {
 public:
  std::string_view name() const override { return "mrt.exact"; }
  std::string_view description() const override {
    return "optimal max response by exhaustive search (tiny instances)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"max_flows",
             "instance-size guard (default 20, hard cap 30)"},
            {"rho_limit",
             "largest max response to consider (default: the instance's "
             "safe horizon)"}};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "max_response";
    if (!CheckExactSize(instance, options, report)) return report;
    std::string perr;
    const Round rho_limit = static_cast<Round>(
        options.IntParamOr("rho_limit", instance.SafeHorizon(), &perr));
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    const auto rho = ExactMinMaxResponse(instance, rho_limit);
    if (!rho.has_value()) {
      report.error = "no schedule with max response <= " +
                     std::to_string(rho_limit) + " (rho_limit)";
      return report;
    }
    auto schedule = ExactMrtFeasible(instance, *rho);
    if (!schedule.has_value()) {
      report.error = "internal: rho* found but no witness schedule";
      return report;
    }
    report.ok = true;
    report.schedule = *std::move(schedule);
    report.allowance = CapacityAllowance::Exact();
    report.lower_bound = static_cast<double>(*rho);  // Proven optimum.
    return report;
  }
};

class MrtDeadlineSolver : public Solver {
 public:
  std::string_view name() const override { return "mrt.deadline"; }
  std::string_view description() const override {
    return "deadline-constrained scheduling with +(2*dmax-1) capacity "
           "(Remark 4.2)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"deadlines",
             "comma- or semicolon-joined absolute deadline rounds, one per "
             "flow (default: the FIFO-greedy schedule's rounds)"},
            {"deadline_slack",
             "uniform deadline = release + slack (ignored when deadlines "
             "is set)"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    return {{"max_violation", "worst capacity violation before rounding"},
            {"violation_bound", "Remark 4.2's violation bound"},
            {"lp_solves", "total LP solves"},
            {"hard_drops", "constraint rows dropped outright"}};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "max_response";
    std::vector<Round> deadlines;
    std::string perr;
    const auto slack = options.IntParamOr("deadline_slack", -1, &perr);
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    if (const std::string spec = options.ParamOr("deadlines", "");
        !spec.empty()) {
      if (!ParseDeadlineList(spec, instance.num_flows(), deadlines,
                             report.error)) {
        return report;
      }
    } else if (slack >= 0) {
      for (const Flow& e : instance.flows()) {
        deadlines.push_back(e.release + static_cast<Round>(slack));
      }
    } else {
      // Default: deadlines realized by the FIFO-greedy heuristic — always
      // feasible, so the solver demonstrates the machinery out of the box.
      const Schedule fifo = FifoGreedySchedule(instance);
      for (const Flow& e : instance.flows()) {
        deadlines.push_back(fifo.round_of(e.id));
      }
    }
    const auto r = ScheduleWithDeadlines(instance, deadlines);
    if (!r.has_value()) {
      report.error =
          "infeasible: no schedule (even with augmentation) meets the "
          "deadlines";
      return report;
    }
    report.ok = true;
    report.schedule = r->schedule;
    report.allowance = r->allowance;
    report.diagnostics["max_violation"] =
        static_cast<double>(r->rounding_report.max_violation);
    report.diagnostics["violation_bound"] =
        static_cast<double>(r->rounding_report.bound);
    report.diagnostics["lp_solves"] = r->rounding_report.lp_solves;
    report.diagnostics["hard_drops"] = r->rounding_report.hard_drops;
    return report;
  }
};

}  // namespace

void RegisterOfflineSolvers(SolverRegistry& registry) {
  auto add = [&registry](auto make) {
    auto probe = make();
    registry.Register(std::string(probe->name()),
                      std::string(probe->description()), std::move(make));
  };
  add([] { return std::make_unique<ArtTheorem1Solver>(); });
  add([] { return std::make_unique<ArtExactSolver>(); });
  add([] { return std::make_unique<MrtTheorem3Solver>(); });
  add([] { return std::make_unique<MrtExactSolver>(); });
  add([] { return std::make_unique<MrtDeadlineSolver>(); });
}

}  // namespace internal
}  // namespace flowsched
