// Shared `cdf:` spec reading for the batch loader (api/instance_source.cc)
// and the streaming factory (api/stream_source.cc), so the realistic-traffic
// dialect cannot drift between the two paths. Internal to src/api/.
#ifndef FLOWSCHED_API_TRAFFIC_SPEC_H_
#define FLOWSCHED_API_TRAFFIC_SPEC_H_

#include <string>

#include "api/spec_parser.h"
#include "traffic/traffic_gen.h"

namespace flowsched {
namespace api_spec {

// Reads every `cdf:` key except "rounds" (batch wants an integer, streaming
// also accepts "inf" — each caller reads it on its own terms) into *config,
// resolving the size distribution from `dist=` (a builtin name, default
// websearch) or `file=` (an HPCC-format CDF file). The CDF parses even on
// validation-only passes, so a bad file or name fails before any run.
// Returns false with *error set on a bad distribution or out-of-range
// values; key-level errors (unparsable values, unknown keys) accumulate in
// the reader as usual and remain the caller's to check.
bool ReadTrafficSpec(SpecReader& r, TrafficConfig* config,
                     std::string* error);

}  // namespace api_spec
}  // namespace flowsched

#endif  // FLOWSCHED_API_TRAFFIC_SPEC_H_
