#include "workload/rtt.h"

#include <algorithm>
#include <array>

#include "util/check.h"

namespace flowsched {

bool RttInstance::Valid() const {
  if (static_cast<int>(available.size()) != num_teachers) return false;
  if (static_cast<int>(classes.size()) != num_teachers) return false;
  for (int i = 0; i < num_teachers; ++i) {
    if (available[i].size() < 2 || available[i].size() > 3) return false;
    if (classes[i].size() != available[i].size()) return false;
    for (int h : available[i]) {
      if (h < 0 || h > 2) return false;
    }
    if (!std::is_sorted(available[i].begin(), available[i].end())) return false;
    if (std::adjacent_find(available[i].begin(), available[i].end()) !=
        available[i].end()) {
      return false;
    }
    for (int j : classes[i]) {
      if (j < 0 || j >= num_classes) return false;
    }
    auto sorted = classes[i];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return false;
    }
  }
  return true;
}

namespace {

// DFS over teachers; for teacher i try every injection of classes[i] into
// available[i] (a permutation, since the sizes match).
bool RttDfs(const RttInstance& rtt, int teacher,
            std::vector<std::array<char, 3>>& class_hour_used) {
  if (teacher == rtt.num_teachers) return true;
  std::vector<int> hours = rtt.available[teacher];
  std::sort(hours.begin(), hours.end());
  do {
    bool ok = true;
    for (std::size_t k = 0; k < hours.size(); ++k) {
      if (class_hour_used[rtt.classes[teacher][k]][hours[k]]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (std::size_t k = 0; k < hours.size(); ++k) {
      class_hour_used[rtt.classes[teacher][k]][hours[k]] = 1;
    }
    if (RttDfs(rtt, teacher + 1, class_hour_used)) return true;
    for (std::size_t k = 0; k < hours.size(); ++k) {
      class_hour_used[rtt.classes[teacher][k]][hours[k]] = 0;
    }
  } while (std::next_permutation(hours.begin(), hours.end()));
  return false;
}

}  // namespace

bool RttFeasible(const RttInstance& rtt) {
  FS_CHECK(rtt.Valid());
  FS_CHECK_LE(rtt.num_teachers, 12);
  std::vector<std::array<char, 3>> used(rtt.num_classes, {0, 0, 0});
  return RttDfs(rtt, 0, used);
}

RttInstance RandomRtt(int num_teachers, int num_classes, Rng& rng) {
  FS_CHECK_GE(num_classes, 3);
  RttInstance rtt;
  rtt.num_teachers = num_teachers;
  rtt.num_classes = num_classes;
  rtt.available.resize(num_teachers);
  rtt.classes.resize(num_teachers);
  for (int i = 0; i < num_teachers; ++i) {
    const int k = rng.UniformInt(2, 3);
    std::vector<int> hours = {0, 1, 2};
    while (static_cast<int>(hours.size()) > k) {
      hours.erase(hours.begin() + rng.UniformInt(0, static_cast<int>(hours.size()) - 1));
    }
    rtt.available[i] = hours;
    std::vector<int> pool(num_classes);
    for (int j = 0; j < num_classes; ++j) pool[j] = j;
    for (int pick = 0; pick < k; ++pick) {
      const int idx = rng.UniformInt(pick, num_classes - 1);
      std::swap(pool[pick], pool[idx]);
      rtt.classes[i].push_back(pool[pick]);
    }
  }
  FS_CHECK(rtt.Valid());
  return rtt;
}

RttReduction ReduceRttToFsMrt(const RttInstance& rtt) {
  FS_CHECK(rtt.Valid());
  RttReduction out;
  // Port layout. Inputs: teachers [0, m), then 3 blocker inputs per class,
  // then 3 blocker inputs per gadget teacher. Outputs: classes [0, m'),
  // then one gadget output q*_i per teacher with T_i in {{0,2},{0,1}}.
  const int m = rtt.num_teachers;
  const int mp = rtt.num_classes;
  std::vector<int> gadget_of_teacher(m, -1);
  int num_gadgets = 0;
  for (int i = 0; i < m; ++i) {
    const auto& ti = rtt.available[i];
    if (ti == std::vector<int>{0, 2} || ti == std::vector<int>{0, 1}) {
      gadget_of_teacher[i] = num_gadgets++;
    }
  }
  const int num_inputs = m + 3 * mp + 3 * num_gadgets;
  const int num_outputs = mp + num_gadgets;
  Instance instance(SwitchSpec::Uniform(num_inputs, num_outputs, 1), {});

  // Steps 1-2: teaching flows, released at min(T_i).
  out.teaching_flow.resize(m);
  for (int i = 0; i < m; ++i) {
    const Round release = rtt.available[i].front();
    for (int j : rtt.classes[i]) {
      out.teaching_flow[i].push_back(instance.AddFlow(i, j, 1, release));
    }
  }
  // Step 3: three blockers into every class output, released at round 3;
  // with rho = 3 they must occupy rounds {3,4,5}, so teaching at q_j can
  // only happen in rounds {0,1,2}.
  for (int j = 0; j < mp; ++j) {
    for (int b = 0; b < 3; ++b) {
      instance.AddFlow(m + 3 * j + b, j, 1, 3);
    }
  }
  // Steps 4-5: gadgets pinning teacher i's port in the hour outside T_i.
  for (int i = 0; i < m; ++i) {
    const int g = gadget_of_teacher[i];
    if (g == -1) continue;
    const PortId q_star = mp + g;
    const PortId blocker_base = m + 3 * mp + 3 * g;
    const bool skips_hour1 = rtt.available[i] == std::vector<int>{0, 2};
    // T_i = {0,2}: pin p_i at round 1. T_i = {0,1}: pin p_i at round 2.
    const Round pin_release = skips_hour1 ? 1 : 2;
    instance.AddFlow(i, q_star, 1, pin_release);
    for (int b = 0; b < 3; ++b) {
      instance.AddFlow(blocker_base + b, q_star, 1, pin_release + 1);
    }
  }
  FS_CHECK(!instance.ValidationError().has_value());
  out.instance = std::move(instance);
  return out;
}

}  // namespace flowsched
