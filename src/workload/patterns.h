// Structured datacenter traffic patterns (the workloads the paper's
// introduction motivates: shuffles, incasts, permutation traffic).
#ifndef FLOWSCHED_WORKLOAD_PATTERNS_H_
#define FLOWSCHED_WORKLOAD_PATTERNS_H_

#include <cstdint>

#include "model/instance.h"
#include "util/rng.h"

namespace flowsched {

// Incast: `fan_in` distinct inputs all send one unit flow to output `sink`
// at round `release`. Classic TCP-incast traffic at a storage/aggregation
// node; the sink port is the bottleneck.
void AddIncast(Instance& instance, PortId sink, int fan_in, Round release);

// MapReduce-style shuffle: every mapper in [0, mappers) sends one unit flow
// to every reducer in [0, reducers) at round `release`.
void AddShuffle(Instance& instance, int mappers, int reducers, Round release);

// Random permutation traffic: one flow per input to a distinct output.
void AddPermutation(Instance& instance, Round release, Rng& rng);

// A staged example: waves of shuffles at a fixed period. Returns the
// resulting instance over an m x m unit-capacity switch.
Instance ShuffleWaves(int num_ports, int wave_size, int num_waves, int period);

// The paper's §6 open-problem instances: a sequence of request graphs
// G_0..G_{T-1} such that for every port v and every round interval I, the
// total degree of v over I is at most |I| + 1. Construction: one random
// perfect matching per round (degree exactly |I|) plus `extra_edges` edges
// of one additional random matching scattered across random rounds (each
// port gains at most +1 over the whole timeline). The open question: can
// all requests always be served with O(1) max response and *no* capacity
// augmentation? Flows are released at their round, unit demands/capacities.
Instance OpenProblemInstance(int num_ports, int num_rounds, int extra_edges,
                             Rng& rng);

// Audit helper for tests: max over ports and round-intervals of
// (requested degree in the interval) - |interval|. OpenProblemInstance
// guarantees <= 1.
int MaxIntervalDegreeExcess(const Instance& instance);

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_PATTERNS_H_
