// Random coflow workloads: clustered Poisson arrivals of grouped flows.
//
// Coflows arrive per round as a Poisson process (the group-level analogue
// of workload/poisson.h); each coflow draws a width (number of member
// flows) from a truncated-geometric distribution — skew < 1 biases toward
// narrow coflows with a heavy tail of wide ones, matching the shape of the
// Facebook trace — and releases all members in its arrival round
// (clustered), each with uniform random ports, tagged with a fresh coflow
// id.
#ifndef FLOWSCHED_WORKLOAD_COFLOW_GEN_H_
#define FLOWSCHED_WORKLOAD_COFLOW_GEN_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "util/rng.h"

namespace flowsched {

struct CoflowGenConfig {
  int num_inputs = 16;
  int num_outputs = 16;
  Capacity port_capacity = 1;
  double mean_coflows_per_round = 1.0;
  int num_rounds = 10;
  // Width w is drawn from [min_width, max_width] with
  // P(w) proportional to width_skew^(w - min_width); width_skew = 1 is
  // uniform, smaller values skew narrow.
  int min_width = 1;
  int max_width = 8;
  double width_skew = 1.0;
  // Demands are uniform on [1, min(max_demand, port_capacity)].
  Capacity max_demand = 1;
  std::uint64_t seed = 1;
};

// Generates a random coflow instance; deterministic in `config.seed`.
// Flows appear in release order, grouped by coflow, coflow ids dense from 0.
Instance GenerateCoflows(const CoflowGenConfig& config);

// Appends round t's coflow arrivals to *out (release = t, coflow tags
// allocated from *next_coflow, ids left at 0), drawing from `rng` exactly
// as GenerateCoflows does for one round — the sharing point with the
// streaming source (src/serve/), which replays the identical instance on
// finite runs. `config.num_rounds` is ignored; pacing belongs to the
// caller. Precondition: config already validated.
void AppendCoflowRound(const CoflowGenConfig& config, Round t, Rng& rng,
                       CoflowId* next_coflow, std::vector<Flow>* out);

// Expected coflow width under `config`'s distribution. Drivers use this to
// translate a per-port flow load into mean_coflows_per_round:
// rate = load * ports / MeanCoflowWidth(config).
double MeanCoflowWidth(const CoflowGenConfig& config);

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_COFLOW_GEN_H_
