// Adversarial constructions behind the online lower bounds (paper §5.1,
// Figure 4).
//
// Both proofs argue "wlog" about which flows an online policy leaves
// pending; realizing them against an arbitrary policy requires an *adaptive*
// adversary that inspects the backlog. ArrivalProcess is the interface the
// simulator polls each round.
#ifndef FLOWSCHED_WORKLOAD_ADVERSARIAL_H_
#define FLOWSCHED_WORKLOAD_ADVERSARIAL_H_

#include <span>
#include <vector>

#include "model/instance.h"

namespace flowsched {

// Round-by-round arrival source. `pending` holds flows already released but
// not yet scheduled by the policy (the backlog the adversary may inspect).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Flows released at round t (their `release` is overwritten with t by the
  // simulator; ids are assigned on arrival).
  virtual std::vector<Flow> Arrivals(Round t,
                                     std::span<const Flow> pending) = 0;
  // Out-parameter overload used by the simulator hot loop: appends round-t
  // arrivals to *out (which the caller has cleared). The default adapts
  // Arrivals(); processes on hot paths override this to stay
  // allocation-free.
  virtual void ArrivalsInto(Round t, std::span<const Flow> pending,
                            std::vector<Flow>* out);
  // True when no arrivals will occur at or after round t (the simulator then
  // only drains the backlog).
  virtual bool Exhausted(Round t) const = 0;
  // Earliest round >= t at which flows may be released. The simulator uses
  // this to fast-forward idle gaps while the backlog is empty. The default
  // returns t ("maybe right now"), which is the only safe answer for
  // adaptive adversaries that must be polled every round; replayed traces
  // know their release order and skip ahead.
  virtual Round NextArrivalRound(Round t) const { return t; }
};

// Lemma 5.1 / Figure 4(a): unbounded average-response competitive ratio.
// Switch: 2 inputs {p1=0 (paper port 1), p4=1 (paper port 4)},
//         2 outputs {q2=0 (paper port 2), q3=1 (paper port 3)}.
// Rounds [0, T): release (p1,q2) and (p1,q3) each round — they conflict at
// p1, so any policy accumulates T backlogged flows. At round T the adversary
// commits to the output side with the larger backlog (wlog q3 in the paper)
// and streams (p4, q3) once per round for rounds [T, M).
class ArtLowerBoundAdversary : public ArrivalProcess {
 public:
  ArtLowerBoundAdversary(int phase_rounds, int total_rounds);

  std::vector<Flow> Arrivals(Round t, std::span<const Flow> pending) override;
  bool Exhausted(Round t) const override;

  static SwitchSpec Switch() { return SwitchSpec::Uniform(2, 2, 1); }

  // The offline optimum schedules (p1, q_committed) on arrival during the
  // first phase, drains the other backlog in parallel with the stream, and
  // serves every stream flow on arrival.
  double OfflineTotalResponse() const;
  int num_flows() const { return 2 * phase_rounds_ + (total_rounds_ - phase_rounds_); }

 private:
  int phase_rounds_;  // T.
  int total_rounds_;  // M.
  int committed_output_ = -1;
};

// Lemma 5.2 / Figure 4(b): no online algorithm beats 3/2 for max response.
// Switch: 3 inputs {p1=0, p4=1, p7=2}, 4 outputs {q2=0, q3=1, q5=2, q6=3}.
// Round 0 releases (p1,q2), (p1,q3), (p4,q5), (p4,q6); round 1 releases two
// flows from p7 aimed at the outputs the policy left uncovered.
class MrtLowerBoundAdversary : public ArrivalProcess {
 public:
  std::vector<Flow> Arrivals(Round t, std::span<const Flow> pending) override;
  bool Exhausted(Round t) const override { return t >= 2; }

  static SwitchSpec Switch() { return SwitchSpec::Uniform(3, 4, 1); }

  // The realized instance (known after round 1) always admits max response 2.
  static constexpr int kOfflineMaxResponse = 2;
};

// The fixed (non-adaptive) variants used by unit tests: the canonical
// instances from Figure 4 with the paper's "wlog" choice baked in.
Instance Fig4aInstance(int phase_rounds, int total_rounds);
Instance Fig4bInstance();

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_ADVERSARIAL_H_
