#include "workload/poisson.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace flowsched {

void AppendPoissonRound(const PoissonConfig& config, Round t, Rng& rng,
                        std::vector<Flow>* out) {
  const int arrivals = rng.Poisson(config.mean_arrivals_per_round);
  for (int k = 0; k < arrivals; ++k) {
    Flow e;
    e.src = rng.UniformInt(0, config.num_inputs - 1);
    e.dst = rng.UniformInt(0, config.num_outputs - 1);
    if (config.max_demand > 1) {
      const Capacity kappa = std::min(config.port_capacity, config.max_demand);
      e.demand = rng.UniformInt(1, static_cast<int>(kappa));
    }
    e.release = t;
    out->push_back(e);
  }
}

Instance GeneratePoisson(const PoissonConfig& config) {
  FS_CHECK_GT(config.num_inputs, 0);
  FS_CHECK_GT(config.num_outputs, 0);
  FS_CHECK_GE(config.mean_arrivals_per_round, 0.0);
  FS_CHECK_GT(config.num_rounds, 0);
  FS_CHECK_GE(config.max_demand, 1);
  Rng rng(config.seed);
  Instance instance(SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                                        config.port_capacity),
                    {});
  std::vector<Flow> round;
  for (Round t = 0; t < config.num_rounds; ++t) {
    round.clear();
    AppendPoissonRound(config, t, rng, &round);
    for (const Flow& e : round) {
      instance.AddFlow(e.src, e.dst, e.demand, e.release);
    }
  }
  FS_CHECK(!instance.ValidationError().has_value());
  return instance;
}

}  // namespace flowsched
