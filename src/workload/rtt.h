// Restricted Timetable (RTT) and the Theorem 2 reduction to FS-MRT.
//
// RTT (Even, Itai, Shamir 1976; paper Definition 4.1, 0-based here):
// hours H = {0,1,2}; teacher i is available during hours T_i (|T_i| >= 2)
// and must teach each class in g(i) (|g(i)| = |T_i|) for one hour, at most
// one class per hour, while each class is taught by at most one teacher per
// hour. Deciding feasibility is NP-hard, and the paper reduces it to
// "is there a schedule with maximum response time 3?", establishing that
// FS-MRT cannot be approximated below 4/3 unless P = NP.
#ifndef FLOWSCHED_WORKLOAD_RTT_H_
#define FLOWSCHED_WORKLOAD_RTT_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "util/rng.h"

namespace flowsched {

struct RttInstance {
  int num_teachers = 0;
  int num_classes = 0;
  std::vector<std::vector<int>> available;  // T_i, sorted subsets of {0,1,2}.
  std::vector<std::vector<int>> classes;    // g(i), |classes[i]| == |available[i]|.

  // Structural sanity (sizes, ranges, |T_i| >= 2).
  bool Valid() const;
};

// Exhaustive feasibility check (teachers' hour-assignments are permutations;
// at most 6 per teacher). Only for small instances.
bool RttFeasible(const RttInstance& rtt);

// Random instance: each teacher draws |T_i| in {2,3}, its hours, and |T_i|
// distinct classes.
RttInstance RandomRtt(int num_teachers, int num_classes, Rng& rng);

// The Theorem 2 construction. The returned FS-MRT instance admits a schedule
// with maximum response time 3 iff `rtt` is feasible. Also returns (via the
// struct) which flows encode teaching assignments.
struct RttReduction {
  Instance instance;
  // teaching_flow[i][k] = flow id of (teacher i -> classes[i][k]).
  std::vector<std::vector<FlowId>> teaching_flow;
  static constexpr Round kMaxResponse = 3;
};
RttReduction ReduceRttToFsMrt(const RttInstance& rtt);

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_RTT_H_
