#include "workload/patterns.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace flowsched {

void AddIncast(Instance& instance, PortId sink, int fan_in, Round release) {
  FS_CHECK_LE(fan_in, instance.sw().num_inputs());
  FS_CHECK(sink >= 0 && sink < instance.sw().num_outputs());
  for (int i = 0; i < fan_in; ++i) {
    instance.AddFlow(i, sink, 1, release);
  }
}

void AddShuffle(Instance& instance, int mappers, int reducers, Round release) {
  FS_CHECK_LE(mappers, instance.sw().num_inputs());
  FS_CHECK_LE(reducers, instance.sw().num_outputs());
  for (int i = 0; i < mappers; ++i) {
    for (int j = 0; j < reducers; ++j) {
      instance.AddFlow(i, j, 1, release);
    }
  }
}

void AddPermutation(Instance& instance, Round release, Rng& rng) {
  const int m = instance.sw().num_inputs();
  const int mp = instance.sw().num_outputs();
  const int k = std::min(m, mp);
  std::vector<PortId> outs(mp);
  std::iota(outs.begin(), outs.end(), 0);
  // Fisher-Yates prefix shuffle.
  for (int i = 0; i < k; ++i) {
    const int j = rng.UniformInt(i, mp - 1);
    std::swap(outs[i], outs[j]);
  }
  for (int i = 0; i < k; ++i) {
    instance.AddFlow(i, outs[i], 1, release);
  }
}

Instance ShuffleWaves(int num_ports, int wave_size, int num_waves, int period) {
  FS_CHECK_LE(wave_size, num_ports);
  FS_CHECK_GE(period, 1);
  Instance instance(SwitchSpec::Uniform(num_ports, num_ports, 1), {});
  for (int w = 0; w < num_waves; ++w) {
    AddShuffle(instance, wave_size, wave_size, w * period);
  }
  return instance;
}

Instance OpenProblemInstance(int num_ports, int num_rounds, int extra_edges,
                             Rng& rng) {
  FS_CHECK_GE(num_ports, 1);
  FS_CHECK_GE(num_rounds, 1);
  FS_CHECK_LE(extra_edges, num_ports);
  Instance instance(SwitchSpec::Uniform(num_ports, num_ports, 1), {});
  for (Round t = 0; t < num_rounds; ++t) {
    AddPermutation(instance, t, rng);
  }
  // One extra matching, its edges scattered over random rounds: any port's
  // degree over an interval I is |I| (the per-round matchings) plus at most
  // one extra edge, total <= |I| + 1.
  std::vector<PortId> outs(num_ports);
  std::iota(outs.begin(), outs.end(), 0);
  for (int i = 0; i < extra_edges; ++i) {
    const int j = rng.UniformInt(i, num_ports - 1);
    std::swap(outs[i], outs[j]);
    instance.AddFlow(i, outs[i], 1, rng.UniformInt(0, num_rounds - 1));
  }
  return instance;
}

int MaxIntervalDegreeExcess(const Instance& instance) {
  const Round horizon = instance.MaxRelease() + 1;
  const SwitchSpec& sw = instance.sw();
  std::vector<std::vector<int>> in_deg(sw.num_inputs(),
                                       std::vector<int>(horizon, 0));
  std::vector<std::vector<int>> out_deg(sw.num_outputs(),
                                        std::vector<int>(horizon, 0));
  for (const Flow& e : instance.flows()) {
    ++in_deg[e.src][e.release];
    ++out_deg[e.dst][e.release];
  }
  // Max over intervals of (degree - length) == max subarray of (deg[t] - 1).
  int worst = 0;
  auto scan = [&](const std::vector<int>& deg) {
    int run = 0;
    for (int d : deg) {
      run = std::max(0, run + d - 1);
      worst = std::max(worst, run);
    }
  };
  for (const auto& deg : in_deg) scan(deg);
  for (const auto& deg : out_deg) scan(deg);
  return worst;
}

}  // namespace flowsched
