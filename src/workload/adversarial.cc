#include "workload/adversarial.h"

#include "util/check.h"

namespace flowsched {

void ArrivalProcess::ArrivalsInto(Round t, std::span<const Flow> pending,
                                  std::vector<Flow>* out) {
  const std::vector<Flow> arrived = Arrivals(t, pending);
  out->insert(out->end(), arrived.begin(), arrived.end());
}

ArtLowerBoundAdversary::ArtLowerBoundAdversary(int phase_rounds,
                                               int total_rounds)
    : phase_rounds_(phase_rounds), total_rounds_(total_rounds) {
  FS_CHECK_GE(phase_rounds, 1);
  FS_CHECK_GT(total_rounds, phase_rounds);
}

std::vector<Flow> ArtLowerBoundAdversary::Arrivals(
    Round t, std::span<const Flow> pending) {
  std::vector<Flow> arrivals;
  if (t < phase_rounds_) {
    // Two conflicting flows at input 0 per round.
    arrivals.push_back(Flow{0, 0, 0, 1, t});
    arrivals.push_back(Flow{0, 0, 1, 1, t});
    return arrivals;
  }
  if (t >= total_rounds_) return arrivals;
  if (committed_output_ == -1) {
    // Commit to the output side with the larger backlog (the proof's
    // "wlog port 3"). At least T flows are pending: input 0 admits only one
    // flow per round, so at least half target one output.
    int count[2] = {0, 0};
    for (const Flow& e : pending) {
      if (e.src == 0) ++count[e.dst];
    }
    committed_output_ = count[1] >= count[0] ? 1 : 0;
  }
  arrivals.push_back(Flow{0, 1, committed_output_, 1, t});
  return arrivals;
}

bool ArtLowerBoundAdversary::Exhausted(Round t) const {
  return t >= total_rounds_;
}

double ArtLowerBoundAdversary::OfflineTotalResponse() const {
  // The offline schedule: during [0, T) run the committed-output flow on
  // arrival (response 1); during [T, 2T) drain the other-output backlog
  // (response T + 1 each) in parallel with the stream, which is served on
  // arrival (response 1). This is an upper bound on OPT, which suffices for
  // competitive-ratio *lower* bounds.
  const double t_rounds = phase_rounds_;
  const double stream = total_rounds_ - phase_rounds_;
  return t_rounds * 1.0 + t_rounds * (t_rounds + 1.0) + stream * 1.0;
}

std::vector<Flow> MrtLowerBoundAdversary::Arrivals(
    Round t, std::span<const Flow> pending) {
  std::vector<Flow> arrivals;
  if (t == 0) {
    arrivals.push_back(Flow{0, 0, 0, 1, 0});
    arrivals.push_back(Flow{0, 0, 1, 1, 0});
    arrivals.push_back(Flow{0, 1, 2, 1, 0});
    arrivals.push_back(Flow{0, 1, 3, 1, 0});
    return arrivals;
  }
  if (t == 1) {
    // Target the outputs of flows the policy left pending (one per input;
    // if the policy idled, both remain and either choice works).
    PortId x = 0;
    PortId y = 2;
    for (const Flow& e : pending) {
      if (e.src == 0) x = e.dst;
      if (e.src == 1) y = e.dst;
    }
    arrivals.push_back(Flow{0, 2, x, 1, 1});
    arrivals.push_back(Flow{0, 2, y, 1, 1});
  }
  return arrivals;
}

Instance Fig4aInstance(int phase_rounds, int total_rounds) {
  FS_CHECK_GE(phase_rounds, 1);
  FS_CHECK_GT(total_rounds, phase_rounds);
  Instance instance(ArtLowerBoundAdversary::Switch(), {});
  for (Round t = 0; t < phase_rounds; ++t) {
    instance.AddFlow(0, 0, 1, t);
    instance.AddFlow(0, 1, 1, t);
  }
  for (Round t = phase_rounds; t < total_rounds; ++t) {
    instance.AddFlow(1, 1, 1, t);  // The "wlog" committed stream.
  }
  return instance;
}

Instance Fig4bInstance() {
  Instance instance(MrtLowerBoundAdversary::Switch(), {});
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(0, 1, 1, 0);
  instance.AddFlow(1, 2, 1, 0);
  instance.AddFlow(1, 3, 1, 0);
  instance.AddFlow(2, 1, 1, 1);  // Paper's (7,3).
  instance.AddFlow(2, 2, 1, 1);  // Paper's (7,5).
  return instance;
}

}  // namespace flowsched
