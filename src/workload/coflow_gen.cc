#include "workload/coflow_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace flowsched {
namespace {

void ValidateConfig(const CoflowGenConfig& config) {
  FS_CHECK_GT(config.num_inputs, 0);
  FS_CHECK_GT(config.num_outputs, 0);
  FS_CHECK_GE(config.port_capacity, 1);
  FS_CHECK_GE(config.mean_coflows_per_round, 0.0);
  FS_CHECK_GT(config.num_rounds, 0);
  FS_CHECK_GE(config.min_width, 1);
  FS_CHECK_GE(config.max_width, config.min_width);
  // skew in (0, 1]: 1 is uniform, smaller skews narrow (TruncatedGeometric
  // requires a ratio strictly below 1, so uniform gets its own draw path).
  FS_CHECK(config.width_skew > 0.0 && config.width_skew <= 1.0);
  FS_CHECK_GE(config.max_demand, 1);
}

}  // namespace

double MeanCoflowWidth(const CoflowGenConfig& config) {
  ValidateConfig(config);
  const int span = config.max_width - config.min_width + 1;
  double weight_sum = 0.0;
  double mean = 0.0;
  double weight = 1.0;
  for (int k = 0; k < span; ++k) {
    weight_sum += weight;
    mean += weight * (config.min_width + k);
    weight *= config.width_skew;
  }
  return mean / weight_sum;
}

void AppendCoflowRound(const CoflowGenConfig& config, Round t, Rng& rng,
                       CoflowId* next_coflow, std::vector<Flow>* out) {
  const int span = config.max_width - config.min_width + 1;
  const auto demand_cap =
      static_cast<int>(std::min(config.max_demand, config.port_capacity));
  const int arrivals = rng.Poisson(config.mean_coflows_per_round);
  for (int c = 0; c < arrivals; ++c) {
    const int width =
        config.width_skew >= 1.0
            ? rng.UniformInt(config.min_width, config.max_width)
            : config.min_width - 1 +
                  rng.TruncatedGeometric(config.width_skew, span);
    const CoflowId coflow = (*next_coflow)++;
    for (int k = 0; k < width; ++k) {
      Flow e;
      e.src = rng.UniformInt(0, config.num_inputs - 1);
      e.dst = rng.UniformInt(0, config.num_outputs - 1);
      e.demand = demand_cap > 1 ? rng.UniformInt(1, demand_cap) : 1;
      e.release = t;
      e.coflow = coflow;
      out->push_back(e);
    }
  }
}

Instance GenerateCoflows(const CoflowGenConfig& config) {
  ValidateConfig(config);
  Rng rng(config.seed);
  Instance instance(SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                                        config.port_capacity),
                    {});
  CoflowId next_coflow = 0;
  std::vector<Flow> round;
  for (Round t = 0; t < config.num_rounds; ++t) {
    round.clear();
    AppendCoflowRound(config, t, rng, &next_coflow, &round);
    for (const Flow& e : round) {
      instance.AddFlow(e.src, e.dst, e.demand, e.release, e.coflow);
    }
  }
  FS_CHECK(!instance.ValidationError().has_value());
  return instance;
}

}  // namespace flowsched
