// Random workloads following the paper's methodology (§5.2.1):
// for each round t in [0, T), draw Poisson(M) flows; each flow picks an
// input and an output port uniformly at random.
#ifndef FLOWSCHED_WORKLOAD_POISSON_H_
#define FLOWSCHED_WORKLOAD_POISSON_H_

#include <cstdint>

#include "model/instance.h"

namespace flowsched {

struct PoissonConfig {
  int num_inputs = 150;
  int num_outputs = 150;
  Capacity port_capacity = 1;
  double mean_arrivals_per_round = 150.0;  // The paper's M.
  int num_rounds = 10;                     // The paper's T.
  // Demands are uniform on [1, max_demand] (1 = the paper's unit flows),
  // clamped to kappa_e.
  Capacity max_demand = 1;
  std::uint64_t seed = 1;
};

// Generates a random instance; deterministic in `config.seed`.
Instance GeneratePoisson(const PoissonConfig& config);

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_POISSON_H_
