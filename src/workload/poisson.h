// Random workloads following the paper's methodology (§5.2.1):
// for each round t in [0, T), draw Poisson(M) flows; each flow picks an
// input and an output port uniformly at random.
#ifndef FLOWSCHED_WORKLOAD_POISSON_H_
#define FLOWSCHED_WORKLOAD_POISSON_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "util/rng.h"

namespace flowsched {

struct PoissonConfig {
  int num_inputs = 150;
  int num_outputs = 150;
  Capacity port_capacity = 1;
  double mean_arrivals_per_round = 150.0;  // The paper's M.
  int num_rounds = 10;                     // The paper's T.
  // Demands are uniform on [1, max_demand] (1 = the paper's unit flows),
  // clamped to kappa_e.
  Capacity max_demand = 1;
  std::uint64_t seed = 1;
};

// Generates a random instance; deterministic in `config.seed`.
Instance GeneratePoisson(const PoissonConfig& config);

// Appends round t's arrivals to *out (release = t, ids left at 0 — callers
// number flows), drawing from `rng` exactly as GeneratePoisson does for one
// round. This is the sharing point between the batch generator and the
// streaming source (src/serve/): both consume the same RNG stream, so a
// finite streaming run replays the identical instance. `config.num_rounds`
// is ignored — pacing belongs to the caller. Precondition: config already
// validated (GeneratePoisson's checks); this runs once per round in the
// steady-state loop and re-checks nothing.
void AppendPoissonRound(const PoissonConfig& config, Round t, Rng& rng,
                        std::vector<Flow>* out);

}  // namespace flowsched

#endif  // FLOWSCHED_WORKLOAD_POISSON_H_
