#include "campaign/campaign_spec.h"

#include <cctype>
#include <set>

#include "util/json.h"

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// Campaign and grid names become path components of the run directories;
// anything outside this set (slashes above all) would let a spec write
// outside the output root.
bool IsSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

bool CheckNames(const CampaignSpec& spec, std::string* error) {
  if (!IsSafeName(spec.name)) {
    return Fail(error, "campaign name \"" + spec.name +
                           "\" must be non-empty [A-Za-z0-9._-]");
  }
  if (spec.grids.empty()) return Fail(error, "campaign has no grids");
  std::set<std::string> seen;
  for (const SweepSpec& grid : spec.grids) {
    if (!IsSafeName(grid.name)) {
      return Fail(error, "grid name \"" + grid.name +
                             "\" must be non-empty [A-Za-z0-9._-]");
    }
    if (!seen.insert(grid.name).second) {
      return Fail(error, "duplicate grid name \"" + grid.name +
                             "\" (grid names key the run directories)");
    }
  }
  return true;
}

// ---- key=value front end -------------------------------------------------
// Campaign keys before the first [grid]; every section after is one sweep
// spec, parsed by accumulating its lines and handing them to ParseSweepSpec
// (so the grid grammar is exactly the sweep-file grammar).

bool ParseTextCampaign(const std::string& text, CampaignSpec& spec,
                       std::string* error) {
  std::vector<std::string> grid_texts;
  bool in_grid = false;
  int line_no = 0;
  std::string line;
  for (char c : text + "\n") {
    if (c != '\n') {
      line += c;
      continue;
    }
    ++line_no;
    std::string trimmed = line;
    line.clear();
    const auto hash = trimmed.find('#');
    if (hash != std::string::npos) trimmed.resize(hash);
    const auto b = trimmed.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = trimmed.find_last_not_of(" \t\r");
    trimmed = trimmed.substr(b, e - b + 1);
    if (trimmed == "[grid]") {
      in_grid = true;
      grid_texts.emplace_back();
      continue;
    }
    if (in_grid) {
      grid_texts.back() += trimmed + "\n";
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "line " + std::to_string(line_no) +
                             ": expected key=value or [grid], got \"" +
                             trimmed + "\"");
    }
    const std::string key = trimmed.substr(0, eq);
    const std::string value = trimmed.substr(eq + 1);
    if (key == "name") {
      spec.name = value;
    } else if (key == "title") {
      spec.title = value;
    } else if (key == "out_root") {
      spec.out_root = value;
    } else {
      return Fail(error, "line " + std::to_string(line_no) +
                             ": unknown campaign key \"" + key +
                             "\" (grid keys go after a [grid] line)");
    }
  }
  for (std::size_t i = 0; i < grid_texts.size(); ++i) {
    SweepSpec grid;
    std::string gerr;
    if (!ParseSweepSpec(grid_texts[i], grid, &gerr)) {
      return Fail(error, "grid " + std::to_string(i + 1) + ": " + gerr);
    }
    spec.grids.push_back(std::move(grid));
  }
  return CheckNames(spec, error);
}

// ---- JSON front end ------------------------------------------------------
// The document parses with util/json; each grid object converts member by
// member into the key=value grammar ApplySweepSpecKey speaks (arrays join
// with the key's list separator, params expand to repeated param=k=v),
// mirroring the sweep JSON front end.

bool ApplyJsonGridMember(SweepSpec& grid, const std::string& key,
                         const JsonValue& value, std::string* error) {
  if (key == "params") {
    if (value.type != JsonValue::Type::kObject) {
      return Fail(error, "params: expected an object");
    }
    for (const auto& [pkey, pval] : value.members) {
      const std::string text = pval.type == JsonValue::Type::kString
                                   ? pval.string_value
                                   : pval.raw;
      if (!ApplySweepSpecKey(grid, "param", pkey + "=" + text, error)) {
        return false;
      }
    }
    return true;
  }
  if (value.type == JsonValue::Type::kArray) {
    const char sep = (key == "instances" || key == "instance") ? ';'
                     : key == "scenarios"                      ? '|'
                                                               : ',';
    std::string joined;
    for (std::size_t i = 0; i < value.items.size(); ++i) {
      const JsonValue& item = value.items[i];
      if (i > 0) joined += sep;
      joined += item.type == JsonValue::Type::kString ? item.string_value
                                                      : item.raw;
    }
    return ApplySweepSpecKey(grid, key, joined, error);
  }
  const std::string text = value.type == JsonValue::Type::kString
                               ? value.string_value
                               : value.raw;
  return ApplySweepSpecKey(grid, key, text, error);
}

bool ParseJsonCampaign(const std::string& text, CampaignSpec& spec,
                       std::string* error) {
  JsonValue doc;
  if (!ParseJson(text, doc, error)) return false;
  if (doc.type != JsonValue::Type::kObject) {
    return Fail(error, "campaign json: expected an object");
  }
  for (const auto& [key, value] : doc.members) {
    if (key == "name") {
      spec.name = value.string_value;
    } else if (key == "title") {
      spec.title = value.string_value;
    } else if (key == "out_root") {
      spec.out_root = value.string_value;
    } else if (key == "grids") {
      if (value.type != JsonValue::Type::kArray) {
        return Fail(error, "grids: expected an array of grid objects");
      }
      for (std::size_t i = 0; i < value.items.size(); ++i) {
        const JsonValue& grid_obj = value.items[i];
        if (grid_obj.type != JsonValue::Type::kObject) {
          return Fail(error, "grids[" + std::to_string(i) +
                                 "]: expected an object");
        }
        SweepSpec grid;
        for (const auto& [gkey, gval] : grid_obj.members) {
          std::string gerr;
          if (!ApplyJsonGridMember(grid, gkey, gval, &gerr)) {
            return Fail(error,
                        "grids[" + std::to_string(i) + "]: " + gerr);
          }
        }
        spec.grids.push_back(std::move(grid));
      }
    } else {
      return Fail(error, "unknown campaign key \"" + key + "\"");
    }
  }
  return CheckNames(spec, error);
}

}  // namespace

bool ParseCampaignSpec(const std::string& text, CampaignSpec& spec,
                       std::string* error) {
  spec = CampaignSpec{};
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return Fail(error, "empty campaign spec");
  return text[first] == '{' ? ParseJsonCampaign(text, spec, error)
                            : ParseTextCampaign(text, spec, error);
}

std::string CampaignOutRoot(const CampaignSpec& spec) {
  return spec.out_root.empty() ? "campaign_runs/" + spec.name : spec.out_root;
}

}  // namespace flowsched
