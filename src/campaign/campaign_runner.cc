#include "campaign/campaign_runner.h"

#include <chrono>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>

#include "api/instance_source.h"
#include "api/solver.h"
#include "exp/thread_pool.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace flowsched {
namespace {

namespace fs = std::filesystem;

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// Write-to-.tmp + rename: the destination either holds the complete record
// or does not exist; a kill between the two files leaves outcome.json
// without meta.json, which resume treats as "never ran".
bool WriteFileAtomic(const std::string& path, const std::string& content,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Fail(error, "cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) return Fail(error, "short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Fail(error, "rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return true;
}

std::int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string MetaJson(const CampaignSpec& spec, const CampaignGrid& grid,
                     int task_index, const std::string& task_id,
                     const std::string& hash_hex, const Provenance& prov,
                     std::int64_t start_ms, std::int64_t end_ms,
                     double wall_seconds, const TaskOutcome& outcome) {
  const SweepTask& task = grid.plan.tasks[task_index];
  const SweepCell& cell = grid.plan.cells[task.cell];
  std::ostringstream out;
  out << "{\n";
  out << "  " << JsonStr("campaign", spec.name) << ",\n";
  out << "  " << JsonStr("grid", grid.spec.name) << ",\n";
  out << "  " << JsonStr("task_id", task_id) << ",\n";
  out << "  \"task_index\": " << task.index << ",\n";
  out << "  \"cell_index\": " << task.cell << ",\n";
  out << "  " << JsonStr("solver", cell.solver) << ",\n";
  out << "  " << JsonStr("instance", task.instance_spec) << ",\n";
  if (cell.scenario) {
    out << "  " << JsonStr("scenario", *cell.scenario) << ",\n";
  }
  out << "  \"instance_seed\": " << task.instance_seed << ",\n";
  out << "  \"trial\": " << task.trial << ",\n";
  out << "  \"solver_seed\": " << task.solver_seed << ",\n";
  out << "  " << JsonStr("spec_hash", hash_hex) << ",\n";
  WriteProvenanceJson(out, prov, 2);
  out << ",\n";
  out << "  \"start_unix_ms\": " << start_ms << ",\n";
  out << "  \"end_unix_ms\": " << end_ms << ",\n";
  out << "  \"wall_seconds\": " << JsonNum(wall_seconds) << ",\n";
  out << "  \"exit_code\": " << (outcome.ok ? 0 : 1) << ",\n";
  out << "  " << JsonStr("status", outcome.ok ? "ok" : "failed");
  if (!outcome.ok) {
    out << ",\n  " << JsonStr("error", outcome.error);
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace

std::string CampaignTaskDir(const std::string& out_root,
                            const std::string& task_id) {
  return out_root + "/runs/" + task_id;
}

bool CampaignTaskUpToDate(const std::string& dir,
                          const std::string& expected_hash_hex,
                          const Provenance& prov) {
  std::string text;
  if (!ReadFile(dir + "/meta.json", text)) return false;
  JsonValue meta;
  if (!ParseJson(text, meta, nullptr)) return false;
  if (meta.GetString("status") != "ok") return false;
  if (meta.GetString("spec_hash") != expected_hash_hex) return false;
  const JsonValue* p = meta.Find("provenance");
  if (p == nullptr) return false;
  if (p->GetString("git_sha") != prov.git_sha) return false;
  if (p->GetString("compiler_flags") != prov.compiler_flags) return false;
  std::error_code ec;
  return fs::exists(dir + "/outcome.json", ec) && !ec;
}

bool ReadTaskOutcome(const std::string& dir, TaskOutcome& outcome,
                     std::string* error) {
  outcome = TaskOutcome{};
  std::string text;
  const std::string path = dir + "/outcome.json";
  if (!ReadFile(path, text)) {
    return Fail(error, "cannot read " + path);
  }
  JsonValue doc;
  std::string jerr;
  if (!ParseJson(text, doc, &jerr)) {
    return Fail(error, path + ": " + jerr);
  }
  outcome.ok = doc.GetBool("ok");
  if (!outcome.ok) {
    outcome.error = doc.GetString("error", "unknown failure");
    return true;
  }
  outcome.total_response = doc.GetNumber("total_response");
  outcome.avg_response = doc.GetNumber("avg_response");
  outcome.p50_response = doc.GetNumber("p50_response");
  outcome.p95_response = doc.GetNumber("p95_response");
  outcome.p99_response = doc.GetNumber("p99_response");
  outcome.max_response = doc.GetNumber("max_response");
  outcome.stddev_response = doc.GetNumber("stddev_response");
  outcome.makespan = doc.GetInt("makespan");
  outcome.num_flows = doc.GetInt("num_flows");
  outcome.rounds = doc.GetInt("rounds");
  outcome.peak_backlog = doc.GetInt("peak_backlog");
  outcome.num_coflows = doc.GetInt("num_coflows");
  outcome.avg_cct = doc.GetNumber("avg_cct");
  outcome.p95_cct = doc.GetNumber("p95_cct");
  outcome.max_cct = doc.GetNumber("max_cct");
  outcome.avg_slowdown = doc.GetNumber("avg_slowdown");
  outcome.shards = doc.GetInt("shards");
  outcome.load_imbalance = doc.GetNumber("load_imbalance");
  outcome.cross_shard_flows = doc.GetInt("cross_shard_flows");
  outcome.split_coflows = doc.GetInt("split_coflows");
  // WriteTaskJsonLine only emits the robustness block for scenario runs;
  // its presence is the has_scenario bit.
  if (doc.Find("downtime_rounds") != nullptr) {
    outcome.has_scenario = true;
    outcome.scenario_events = doc.GetInt("scenario_events");
    outcome.downtime_rounds = doc.GetInt("downtime_rounds");
    outcome.backlog_surge = doc.GetNumber("backlog_surge");
    outcome.recovery_drain_rounds = doc.GetInt("recovery_drain_rounds");
    outcome.response_inflation = doc.GetNumber("response_inflation");
  }
  outcome.wall_seconds = doc.GetNumber("wall_seconds");
  outcome.rounds_per_sec = doc.GetNumber("rounds_per_sec");
  return true;
}

bool RunCampaign(const CampaignSpec& spec, const CampaignPlan& plan,
                 const std::string& out_root,
                 const CampaignRunOptions& options,
                 CampaignRunSummary& summary, std::string* error) {
  summary = CampaignRunSummary{};
  summary.total = plan.total_tasks;
  const SolverRegistry& registry = options.registry != nullptr
                                       ? *options.registry
                                       : SolverRegistry::Global();
  const Provenance prov = CollectProvenance();
  Stopwatch campaign_timer;

  std::error_code ec;
  fs::create_directories(out_root + "/runs", ec);
  if (ec) {
    return Fail(error,
                "cannot create " + out_root + "/runs: " + ec.message());
  }

  const int jobs = options.jobs < 1 ? 1 : options.jobs;
  ThreadPool pool(jobs);
  std::mutex log_mu;            // Serializes progress lines + counters.
  std::atomic<bool> stop{false};  // --fail-fast latch.
  int done = 0;

  summary.statuses.resize(plan.grids.size());
  // Grids run in order; tasks within a grid run concurrently. Campaigns
  // are few-large-grids, so cross-grid overlap buys little and per-grid
  // instance lifetime stays simple.
  for (std::size_t g = 0; g < plan.grids.size(); ++g) {
    const CampaignGrid& grid = plan.grids[g];
    auto& statuses = summary.statuses[g];
    statuses.assign(grid.plan.tasks.size(), CampaignTaskStatus::kPending);

    // Resume pass: decide per task before materializing anything.
    for (std::size_t t = 0; t < grid.plan.tasks.size(); ++t) {
      if (options.resume &&
          CampaignTaskUpToDate(
              CampaignTaskDir(out_root, grid.task_ids[t]),
              HashHex(grid.task_hashes[t]), prov)) {
        statuses[t] = CampaignTaskStatus::kSkipped;
        ++summary.skipped;
      }
    }

    // Materialize only the instances the remaining tasks reference.
    const std::size_t num_instances = grid.plan.unique_instances.size();
    std::vector<char> needed(num_instances, 0);
    for (std::size_t t = 0; t < grid.plan.tasks.size(); ++t) {
      if (statuses[t] == CampaignTaskStatus::kPending) {
        needed[grid.plan.tasks[t].instance_slot] = 1;
      }
    }
    std::vector<std::optional<Instance>> instances(num_instances);
    std::vector<std::string> instance_errors(num_instances);
    for (std::size_t i = 0; i < num_instances; ++i) {
      if (!needed[i]) continue;
      pool.Submit([&, i] {
        instances[i] =
            LoadInstance(grid.plan.unique_instances[i], &instance_errors[i]);
      });
    }
    pool.Wait();

    for (std::size_t t = 0; t < grid.plan.tasks.size(); ++t) {
      if (statuses[t] != CampaignTaskStatus::kPending) continue;
      pool.Submit([&, g, t] {
        const CampaignGrid& grid = plan.grids[g];
        const SweepTask& task = grid.plan.tasks[t];
        const SweepCell& cell = grid.plan.cells[task.cell];
        auto& status = summary.statuses[g][t];
        if (stop.load(std::memory_order_relaxed)) {
          status = CampaignTaskStatus::kNotRun;
          return;
        }
        const std::string dir =
            CampaignTaskDir(out_root, grid.task_ids[t]);
        std::error_code dir_ec;
        fs::create_directories(dir, dir_ec);

        const std::int64_t start_ms = UnixMillisNow();
        Stopwatch task_timer;
        TaskOutcome outcome;
        const auto& instance = instances[task.instance_slot];
        if (dir_ec) {
          outcome.ok = false;
          outcome.error = "cannot create " + dir + ": " + dir_ec.message();
        } else if (!instance.has_value()) {
          outcome.ok = false;
          outcome.error = "instance: " + instance_errors[task.instance_slot];
        } else {
          SolveOptions solve;
          solve.seed = task.solver_seed;
          solve.max_rounds = static_cast<Round>(grid.spec.max_rounds);
          solve.params = grid.spec.params;
          if (cell.scenario && *cell.scenario != "none") {
            solve.params["scenario"] = *cell.scenario;
          }
          outcome = OutcomeFromSolveReport(
              registry.Solve(cell.solver, *instance, solve));
        }
        const double wall = task_timer.ElapsedSeconds();
        const std::int64_t end_ms = UnixMillisNow();

        // Durable record: outcome first, meta last (the commit marker).
        std::string write_error;
        bool wrote = true;
        if (!dir_ec) {
          std::ostringstream oj;
          WriteTaskJsonLine(oj, cell, task, outcome);
          wrote = WriteFileAtomic(dir + "/outcome.json", oj.str(),
                                  &write_error) &&
                  WriteFileAtomic(
                      dir + "/meta.json",
                      MetaJson(spec, grid, static_cast<int>(t),
                               grid.task_ids[t], HashHex(grid.task_hashes[t]),
                               prov, start_ms, end_ms, wall, outcome),
                      &write_error);
        }
        if (!wrote) {
          outcome.ok = false;
          outcome.error = write_error;
        }
        status = outcome.ok ? CampaignTaskStatus::kOk
                            : CampaignTaskStatus::kFailed;
        if (!outcome.ok && options.fail_fast) {
          stop.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(log_mu);
        ++done;
        ++summary.ran;
        outcome.ok ? ++summary.ok : ++summary.failed;
        if (options.log != nullptr) {
          *options.log << "[" << (summary.ran + summary.skipped) << "/"
                       << summary.total << "] "
                       << (outcome.ok ? "ok    " : "FAIL  ")
                       << grid.task_ids[t];
          char wall_buf[32];
          std::snprintf(wall_buf, sizeof(wall_buf), " (%.2fs)", wall);
          *options.log << wall_buf;
          if (!outcome.ok) *options.log << "  " << outcome.error;
          *options.log << std::endl;
        }
      });
    }
    pool.Wait();
    if (stop.load(std::memory_order_relaxed)) break;
  }

  // Count what fail-fast left behind (including whole unreached grids).
  for (std::size_t g = 0; g < plan.grids.size(); ++g) {
    auto& statuses = summary.statuses[g];
    statuses.resize(plan.grids[g].plan.tasks.size(),
                    CampaignTaskStatus::kPending);
    for (auto& s : statuses) {
      if (s == CampaignTaskStatus::kPending ||
          s == CampaignTaskStatus::kNotRun) {
        s = CampaignTaskStatus::kNotRun;
        ++summary.not_run;
      }
    }
  }
  summary.wall_seconds = campaign_timer.ElapsedSeconds();
  return true;
}

}  // namespace flowsched
