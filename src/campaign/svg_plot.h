// Minimal inline-SVG chart writer for the campaign HTML report
// (campaign/html_report.h). Self-contained by design: the report's
// acceptance contract is "zero external dependencies", so charts are SVG
// elements embedded straight into the page — no JS plotting library, no
// image files, no fonts beyond the browser defaults.
//
// Output is byte-deterministic for identical inputs (fixed %.6g number
// formatting, fixed palette, no timestamps/randomness): campaign reports
// are byte-compared across resumed and uninterrupted runs in CI.
#ifndef FLOWSCHED_CAMPAIGN_SVG_PLOT_H_
#define FLOWSCHED_CAMPAIGN_SVG_PLOT_H_

#include <ostream>
#include <string>
#include <vector>

namespace flowsched {

struct SvgSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  // 95% CI half-widths per point (empty = no error bars).
  std::vector<double> ci;
};

struct SvgPlotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 640;
  int height = 360;
};

// Writes one <svg> element: axes with ~5 ticks each, light grid lines,
// one polyline + point markers + optional CI whiskers per series, and a
// legend. Series with no points are skipped; an all-empty chart renders
// the frame with a "no data" note instead of failing.
void WriteSvgLinePlot(std::ostream& out, const std::vector<SvgSeries>& series,
                      const SvgPlotOptions& options);

// The categorical palette used for series strokes, exposed so tables can
// color-key rows consistently with the charts.
const std::vector<std::string>& SvgPalette();

}  // namespace flowsched

#endif  // FLOWSCHED_CAMPAIGN_SVG_PLOT_H_
