#include "campaign/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flowsched {
namespace {

// Fixed formatting => byte-stable reports.
std::string Num(double v) {
  if (std::abs(v) < 1e-12) v = 0.0;  // Avoid "-0".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// "Nice" tick step: 1/2/5 * 10^k covering `span` in ~`target` steps.
double NiceStep(double span, int target) {
  if (span <= 0.0) return 1.0;
  const double raw = span / target;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double nice = 10.0;
  if (norm <= 1.0) nice = 1.0;
  else if (norm <= 2.0) nice = 2.0;
  else if (norm <= 5.0) nice = 5.0;
  return nice * mag;
}

}  // namespace

const std::vector<std::string>& SvgPalette() {
  // 8 distinguishable hues on white; repeats after 8 series.
  static const std::vector<std::string> kPalette = {
      "#2563eb", "#dc2626", "#059669", "#d97706",
      "#7c3aed", "#0891b2", "#be185d", "#4d7c0f"};
  return kPalette;
}

void WriteSvgLinePlot(std::ostream& out, const std::vector<SvgSeries>& series,
                      const SvgPlotOptions& options) {
  const int W = options.width;
  const int H = options.height;
  // Margins: left for y tick labels, bottom for x labels, top for the
  // title, right for breathing room; legend renders below the plot.
  const double ml = 64, mr = 16, mt = 28, mb = 44;
  const double pw = W - ml - mr;  // Plot area.
  const double ph = H - mt - mb;

  // Data ranges across all non-empty series (CI whiskers included so they
  // never clip).
  bool any = false;
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  for (const SvgSeries& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double ci = i < s.ci.size() ? s.ci[i] : 0.0;
      if (!any) {
        x_min = x_max = s.x[i];
        y_min = s.y[i] - ci;
        y_max = s.y[i] + ci;
        any = true;
      } else {
        x_min = std::min(x_min, s.x[i]);
        x_max = std::max(x_max, s.x[i]);
        y_min = std::min(y_min, s.y[i] - ci);
        y_max = std::max(y_max, s.y[i] + ci);
      }
    }
  }
  if (any) {
    if (x_max == x_min) {
      x_min -= 0.5;
      x_max += 0.5;
    }
    if (y_max == y_min) {
      y_min -= (y_min == 0.0 ? 1.0 : std::abs(y_min) * 0.1);
      y_max += (y_max == 0.0 ? 1.0 : std::abs(y_max) * 0.1);
    }
    // Anchor response/CCT charts at zero when the data is non-negative:
    // magnitudes compare honestly across panels.
    if (y_min > 0.0 && y_min < 0.5 * y_max) y_min = 0.0;
  }

  const int legend_rows =
      static_cast<int>((series.size() + 2) / 3);  // 3 entries per row.
  const int total_h = H + (any ? legend_rows * 18 + 6 : 0);
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W
      << "\" height=\"" << total_h << "\" viewBox=\"0 0 " << W << " "
      << total_h << "\" role=\"img\">\n";
  out << "<rect width=\"" << W << "\" height=\"" << total_h
      << "\" fill=\"#ffffff\"/>\n";
  out << "<text x=\"" << Num(ml + pw / 2) << "\" y=\"18\" fill=\"#111827\" "
         "font-size=\"14\" font-family=\"sans-serif\" text-anchor=\"middle\" "
         "font-weight=\"bold\">"
      << options.title << "</text>\n";

  if (!any) {
    out << "<text x=\"" << Num(ml + pw / 2) << "\" y=\"" << Num(mt + ph / 2)
        << "\" fill=\"#6b7280\" font-size=\"13\" font-family=\"sans-serif\" "
           "text-anchor=\"middle\">no data</text>\n";
    out << "</svg>\n";
    return;
  }

  auto sx = [&](double x) { return ml + (x - x_min) / (x_max - x_min) * pw; };
  auto sy = [&](double y) {
    return mt + ph - (y - y_min) / (y_max - y_min) * ph;
  };

  // Grid + ticks.
  const double x_step = NiceStep(x_max - x_min, 5);
  const double y_step = NiceStep(y_max - y_min, 5);
  for (double ty = std::ceil(y_min / y_step) * y_step; ty <= y_max + 1e-9;
       ty += y_step) {
    out << "<line x1=\"" << Num(ml) << "\" y1=\"" << Num(sy(ty)) << "\" x2=\""
        << Num(ml + pw) << "\" y2=\"" << Num(sy(ty))
        << "\" stroke=\"#e5e7eb\" stroke-width=\"1\"/>\n";
    out << "<text x=\"" << Num(ml - 6) << "\" y=\"" << Num(sy(ty) + 4)
        << "\" fill=\"#374151\" font-size=\"11\" font-family=\"sans-serif\" "
           "text-anchor=\"end\">"
        << Num(ty) << "</text>\n";
  }
  for (double tx = std::ceil(x_min / x_step) * x_step; tx <= x_max + 1e-9;
       tx += x_step) {
    out << "<line x1=\"" << Num(sx(tx)) << "\" y1=\"" << Num(mt) << "\" x2=\""
        << Num(sx(tx)) << "\" y2=\"" << Num(mt + ph)
        << "\" stroke=\"#f3f4f6\" stroke-width=\"1\"/>\n";
    out << "<text x=\"" << Num(sx(tx)) << "\" y=\"" << Num(mt + ph + 16)
        << "\" fill=\"#374151\" font-size=\"11\" font-family=\"sans-serif\" "
           "text-anchor=\"middle\">"
        << Num(tx) << "</text>\n";
  }
  // Axes frame + labels.
  out << "<rect x=\"" << Num(ml) << "\" y=\"" << Num(mt) << "\" width=\""
      << Num(pw) << "\" height=\"" << Num(ph)
      << "\" fill=\"none\" stroke=\"#9ca3af\" stroke-width=\"1\"/>\n";
  out << "<text x=\"" << Num(ml + pw / 2) << "\" y=\"" << Num(H - 8)
      << "\" fill=\"#111827\" font-size=\"12\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\">"
      << options.x_label << "</text>\n";
  out << "<text x=\"14\" y=\"" << Num(mt + ph / 2)
      << "\" fill=\"#111827\" font-size=\"12\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\" transform=\"rotate(-90 14 "
      << Num(mt + ph / 2) << ")\">" << options.y_label << "</text>\n";

  // Series.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const SvgSeries& s = series[si];
    const std::string& color = SvgPalette()[si % SvgPalette().size()];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    if (n == 0) continue;
    // CI whiskers beneath the line.
    for (std::size_t i = 0; i < n; ++i) {
      const double ci = i < s.ci.size() ? s.ci[i] : 0.0;
      if (ci <= 0.0) continue;
      const double cx = sx(s.x[i]);
      out << "<line x1=\"" << Num(cx) << "\" y1=\"" << Num(sy(s.y[i] - ci))
          << "\" x2=\"" << Num(cx) << "\" y2=\"" << Num(sy(s.y[i] + ci))
          << "\" stroke=\"" << color
          << "\" stroke-width=\"1\" opacity=\"0.55\"/>\n";
      for (const double yv : {s.y[i] - ci, s.y[i] + ci}) {
        out << "<line x1=\"" << Num(cx - 3) << "\" y1=\"" << Num(sy(yv))
            << "\" x2=\"" << Num(cx + 3) << "\" y2=\"" << Num(sy(yv))
            << "\" stroke=\"" << color
            << "\" stroke-width=\"1\" opacity=\"0.55\"/>\n";
      }
    }
    if (n > 1) {
      out << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.8\" points=\"";
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) out << " ";
        out << Num(sx(s.x[i])) << "," << Num(sy(s.y[i]));
      }
      out << "\"/>\n";
    }
    for (std::size_t i = 0; i < n; ++i) {
      out << "<circle cx=\"" << Num(sx(s.x[i])) << "\" cy=\""
          << Num(sy(s.y[i])) << "\" r=\"2.8\" fill=\"" << color << "\"/>\n";
    }
  }

  // Legend: rows of up to 3 entries below the plot.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const std::string& color = SvgPalette()[si % SvgPalette().size()];
    const double lx = ml + static_cast<double>(si % 3) * (pw / 3);
    const double ly = H + 12 + static_cast<double>(si / 3) * 18;
    out << "<line x1=\"" << Num(lx) << "\" y1=\"" << Num(ly - 4) << "\" x2=\""
        << Num(lx + 18) << "\" y2=\"" << Num(ly - 4) << "\" stroke=\"" << color
        << "\" stroke-width=\"2\"/>\n";
    out << "<text x=\"" << Num(lx + 24) << "\" y=\"" << Num(ly)
        << "\" fill=\"#111827\" font-size=\"11\" "
           "font-family=\"sans-serif\">"
        << series[si].label << "</text>\n";
  }
  out << "</svg>\n";
}

}  // namespace flowsched
