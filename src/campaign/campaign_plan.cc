#include "campaign/campaign_plan.h"

#include <cstdio>

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// %.15g: enough digits to round-trip the axis values the parser produced;
// matches the sweep expander's own axis formatting so equal specs hash
// equal regardless of source format.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

template <typename T>
void AppendList(std::string& out, const char* key,
                const std::vector<T>& values) {
  out += key;
  out += '=';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    if constexpr (std::is_same_v<T, double>) {
      out += Num(values[i]);
    } else if constexpr (std::is_same_v<T, std::string>) {
      out += values[i];
    } else {
      out += std::to_string(values[i]);
    }
  }
  out += '\n';
}

}  // namespace

std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV offset basis.
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

std::string HashHex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string CanonicalSweepSpecText(const SweepSpec& spec) {
  std::string out;
  out += "name=" + spec.name + "\n";
  AppendList(out, "solvers", spec.solvers);
  // Instances join with ';' like the source grammar (they contain commas).
  out += "instances=";
  for (std::size_t i = 0; i < spec.instances.size(); ++i) {
    if (i > 0) out += ';';
    out += spec.instances[i];
  }
  out += '\n';
  AppendList(out, "loads", spec.loads);
  AppendList(out, "ports", spec.ports);
  AppendList(out, "rounds", spec.rounds);
  AppendList(out, "shards", spec.shards);
  AppendList(out, "dists", spec.dists);
  AppendList(out, "seeds", spec.seeds);
  out += "scenarios=";
  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    if (i > 0) out += '|';
    out += spec.scenarios[i];
  }
  out += '\n';
  out += "trials=" + std::to_string(spec.trials) + "\n";
  out += "base_seed=" + std::to_string(spec.base_seed) + "\n";
  out += "max_rounds=" + std::to_string(spec.max_rounds) + "\n";
  for (const auto& [key, value] : spec.params) {  // std::map: sorted.
    out += "param=" + key + "=" + value + "\n";
  }
  return out;
}

std::string CampaignTaskId(const SweepSpec& grid_spec, const SweepPlan& plan,
                           int task_index) {
  const SweepTask& task = plan.tasks[task_index];
  const SweepCell& cell = plan.cells[task.cell];
  char idx[16];
  std::snprintf(idx, sizeof(idx), "%04d", task_index);
  return grid_spec.name + "-" + idx + "-" + cell.solver;
}

bool ExpandCampaign(const CampaignSpec& spec, const SolverRegistry& registry,
                    CampaignPlan& plan, std::string* error) {
  plan = CampaignPlan{};
  if (spec.grids.empty()) return Fail(error, "campaign has no grids");
  for (const SweepSpec& grid_spec : spec.grids) {
    CampaignGrid grid;
    grid.spec = grid_spec;
    std::string gerr;
    if (!ExpandSweep(grid_spec, registry, grid.plan, &gerr)) {
      return Fail(error, "grid \"" + grid_spec.name + "\": " + gerr);
    }
    grid.grid_hash = Fnv1a64(CanonicalSweepSpecText(grid_spec));
    const std::size_t num_tasks = grid.plan.tasks.size();
    grid.task_ids.reserve(num_tasks);
    grid.task_hashes.reserve(num_tasks);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      const SweepTask& task = grid.plan.tasks[t];
      const SweepCell& cell = grid.plan.cells[task.cell];
      grid.task_ids.push_back(
          CampaignTaskId(grid_spec, grid.plan, static_cast<int>(t)));
      // Grid hash first: any grid reshape renumbers tasks, so every task
      // of an edited grid must re-run even if its own coordinates happen
      // to read the same.
      std::string identity = HashHex(grid.grid_hash);
      identity += '\0';
      identity += cell.solver;
      identity += '\0';
      identity += task.instance_spec;
      identity += '\0';
      identity += cell.scenario ? *cell.scenario : std::string("none");
      identity += '\0';
      identity += std::to_string(task.instance_seed);
      identity += '\0';
      identity += std::to_string(task.trial);
      identity += '\0';
      identity += std::to_string(task.solver_seed);
      grid.task_hashes.push_back(Fnv1a64(identity));
    }
    plan.total_tasks += static_cast<int>(num_tasks);
    plan.grids.push_back(std::move(grid));
  }
  return true;
}

void WriteTaskListText(std::ostream& out, const SweepPlan& plan,
                       const std::vector<std::string>* ids) {
  for (const SweepTask& task : plan.tasks) {
    const SweepCell& cell = plan.cells[task.cell];
    out << "  ";
    if (ids != nullptr) {
      out << (*ids)[task.index] << "  ";
    } else {
      out << "task " << task.index << "  ";
    }
    out << cell.solver << "  " << task.instance_spec;
    out << "  seed=" << task.instance_seed << " trial=" << task.trial;
    if (cell.scenario && *cell.scenario != "none") {
      out << " scenario=" << *cell.scenario;
    }
    out << "\n";
  }
}

}  // namespace flowsched
