// CampaignRunner: executes a CampaignPlan durably — every task owns a
// directory under <out_root>/runs/<task_id>/ holding:
//
//   outcome.json   the task's result record (the WriteTaskJsonLine object:
//                  metrics, diagnostics, wall time — or ok=false + error)
//   meta.json      the commit marker: campaign/grid/task identity, spec
//                  hash, build provenance (git SHA, compiler, flags),
//                  start/end timestamps, wall time, exit code, status
//
// Write order is the crash contract: outcome.json first, then meta.json,
// each via write-to-.tmp + atomic rename. A task killed mid-run leaves no
// meta.json, so --resume re-runs it; a directory with a valid meta.json is
// complete by construction.
//
// Resume semantics (meta.json must ALL match, else the task re-runs):
//   - status == "ok" (failed tasks always retry)
//   - spec_hash == the plan's task hash (grid canonical text + task
//     coordinates; any grid edit invalidates its tasks)
//   - provenance git_sha and compiler_flags == the running binary's
//     (results from a different commit or build flags are not comparable)
//
// Execution runs on the exp/thread_pool.h work-stealing pool with bounded
// concurrency. Instances are materialized once per grid, and only the ones
// to-be-run tasks reference — a fully resumed grid loads nothing.
// --fail-fast stops scheduling after the first failure (running tasks
// finish; unstarted ones are left untouched for the next resume); the
// default keeps going so one broken cell cannot void a campaign.
#ifndef FLOWSCHED_CAMPAIGN_CAMPAIGN_RUNNER_H_
#define FLOWSCHED_CAMPAIGN_CAMPAIGN_RUNNER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign_plan.h"
#include "exp/experiment_runner.h"
#include "util/provenance.h"

namespace flowsched {

enum class CampaignTaskStatus {
  kPending,   // Not yet executed (plan state before running).
  kSkipped,   // Valid prior run found; directory reused.
  kOk,        // Ran this invocation, solver succeeded.
  kFailed,    // Ran this invocation, solver failed (or instance error).
  kNotRun,    // Left behind by --fail-fast.
};

struct CampaignRunOptions {
  int jobs = 1;               // Clamped to >= 1.
  bool resume = false;        // Skip tasks with valid meta.json.
  bool fail_fast = false;     // Stop scheduling after the first failure.
  const SolverRegistry* registry = nullptr;  // nullptr = global.
  std::ostream* log = nullptr;  // Per-task progress lines; nullptr = quiet.
};

struct CampaignRunSummary {
  int total = 0;
  int ran = 0;       // Executed this invocation (ok + failed).
  int ok = 0;
  int failed = 0;
  int skipped = 0;   // Reused via --resume.
  int not_run = 0;   // Abandoned by --fail-fast.
  double wall_seconds = 0.0;
  // Status per grid/task, parallel to plan.grids[g].plan.tasks.
  std::vector<std::vector<CampaignTaskStatus>> statuses;
};

// Runs the plan into `out_root`. Returns false + *error only for
// environment-level failures (cannot create directories / write files);
// per-task solver failures land in statuses/summary instead.
bool RunCampaign(const CampaignSpec& spec, const CampaignPlan& plan,
                 const std::string& out_root,
                 const CampaignRunOptions& options,
                 CampaignRunSummary& summary, std::string* error);

// The run directory for one task: <out_root>/runs/<task_id>.
std::string CampaignTaskDir(const std::string& out_root,
                            const std::string& task_id);

// True when `dir` holds a completed, matching run: meta.json parses with
// status "ok", spec_hash == expected_hash_hex, provenance git_sha and
// compiler_flags match `prov`, and outcome.json exists. Exposed for
// resume-invalidation tests.
bool CampaignTaskUpToDate(const std::string& dir,
                          const std::string& expected_hash_hex,
                          const Provenance& prov);

// Reads a task directory's outcome.json back into a TaskOutcome. Returns
// false + *error when the file is missing or malformed (collect treats
// that as a failed task).
bool ReadTaskOutcome(const std::string& dir, TaskOutcome& outcome,
                     std::string* error);

}  // namespace flowsched

#endif  // FLOWSCHED_CAMPAIGN_CAMPAIGN_RUNNER_H_
