// CampaignSpec: a durable, resumable experiment campaign — an output root
// plus a list of named sweep grids (exp/sweep_spec.h SweepSpec), each the
// unit the Aggregator reports on and the HTML report charts.
//
// A campaign is what a sweep is not: *durable*. flowsched_sweep runs one
// grid in one process and loses everything on a crash; flowsched_campaign
// gives every task its own directory under <out_root>/runs/ with a
// meta.json (spec hash, provenance, exit code) so a killed campaign
// resumes exactly where it stopped (campaign/campaign_runner.h) and a
// collect/report step can merge whatever has completed so far
// (campaign/campaign_report.h). The pattern follows the cascade bench
// runner (SNIPPETS.md 2/3): per-run meta.json, --resume, --dry-run,
// aggregate -> static report.
//
// Two source formats, like sweep specs:
//
// key=value with [grid] sections ('#' comments, blank lines ignored):
//
//   name=paper-figs
//   title=Paper figure reproductions
//   out_root=campaign_runs/paper-figs
//   [grid]
//   name=fig6-art
//   solvers=online.maxcard,online.minrtime,online.maxweight
//   instances=poisson:ports={ports},load={load},rounds={rounds},seed={seed}
//   ... any sweep spec key ...
//   [grid]
//   name=...
//
// JSON: one object with "name", optional "title"/"out_root", and "grids",
// an array of flat sweep-spec objects (the exact format
// ParseSweepSpec accepts):
//
//   {"name": "paper-figs",
//    "grids": [{"name": "fig6-art", "solvers": [...], ...}, ...]}
//
// Grid names become directory-name prefixes, so they are restricted to
// [A-Za-z0-9._-] and must be unique within the campaign; the campaign
// name is restricted the same way (it defaults the out_root).
#ifndef FLOWSCHED_CAMPAIGN_CAMPAIGN_SPEC_H_
#define FLOWSCHED_CAMPAIGN_CAMPAIGN_SPEC_H_

#include <string>
#include <vector>

#include "exp/sweep_spec.h"

namespace flowsched {

struct CampaignSpec {
  std::string name = "campaign";  // [A-Za-z0-9._-]+.
  std::string title;              // Report heading; defaults to `name`.
  std::string out_root;           // Defaults to "campaign_runs/<name>".
  std::vector<SweepSpec> grids;   // Each named, names unique.
};

// Parses a campaign from text: JSON when the first non-space character is
// '{', otherwise the [grid]-sectioned key=value format. Returns false and
// fills *error on malformed input, bad names, duplicate/missing grids.
// Expansion-time validation (solver globs, axis/placeholder matching)
// happens later in ExpandCampaign.
bool ParseCampaignSpec(const std::string& text, CampaignSpec& spec,
                       std::string* error);

// The output root actually used: spec.out_root, or its default.
std::string CampaignOutRoot(const CampaignSpec& spec);

}  // namespace flowsched

#endif  // FLOWSCHED_CAMPAIGN_CAMPAIGN_SPEC_H_
