#include "campaign/campaign_report.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "campaign/campaign_runner.h"
#include "campaign/svg_plot.h"
#include "exp/aggregator.h"
#include "util/json.h"
#include "util/provenance.h"

namespace flowsched {
namespace {

namespace fs = std::filesystem;

struct GridCollect {
  // Parallel to plan.tasks: outcome (ok=false for failed/missing) plus
  // whether an outcome.json was readable at all.
  std::vector<TaskOutcome> outcomes;
  std::vector<bool> present;
  int ok = 0;
  int failed = 0;
  int missing = 0;
};

// Reads every task outcome of one grid from disk, in task order.
void CollectGrid(const CampaignGrid& grid, const std::string& out_root,
                 GridCollect& gc) {
  const std::size_t n = grid.plan.tasks.size();
  gc.outcomes.resize(n);
  gc.present.assign(n, false);
  for (const SweepTask& task : grid.plan.tasks) {
    const std::string dir =
        CampaignTaskDir(out_root, grid.task_ids[task.index]);
    std::string err;
    TaskOutcome& o = gc.outcomes[task.index];
    if (ReadTaskOutcome(dir, o, &err)) {
      gc.present[task.index] = true;
      if (o.ok) {
        ++gc.ok;
      } else {
        ++gc.failed;
      }
    } else {
      o.ok = false;
      o.error = err;
      ++gc.missing;
    }
  }
}

bool OpenForWrite(std::ofstream& out, const fs::path& path,
                  std::string* error) {
  out.open(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot write " + path.string();
    return false;
  }
  return true;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// The grid's swept numeric axis: the first of load/rounds/ports/shards
// with more than one distinct value across cells, falling back to the
// first axis that is set at all, then to the cell index.
enum class XAxis { kLoad, kRounds, kPorts, kShards, kCellIndex };

const char* XAxisLabel(XAxis axis) {
  switch (axis) {
    case XAxis::kLoad: return "load";
    case XAxis::kRounds: return "rounds";
    case XAxis::kPorts: return "ports";
    case XAxis::kShards: return "shards";
    case XAxis::kCellIndex: return "cell";
  }
  return "cell";
}

double XValue(const SweepCell& cell, XAxis axis) {
  switch (axis) {
    case XAxis::kLoad:
      return cell.load ? *cell.load : 0.0;
    case XAxis::kRounds:
      return cell.rounds ? static_cast<double>(*cell.rounds) : 0.0;
    case XAxis::kPorts:
      return cell.ports ? static_cast<double>(*cell.ports) : 0.0;
    case XAxis::kShards:
      return cell.shards ? static_cast<double>(*cell.shards) : 0.0;
    case XAxis::kCellIndex:
      return static_cast<double>(cell.index);
  }
  return 0.0;
}

XAxis PickXAxis(const SweepPlan& plan) {
  const struct {
    XAxis axis;
    bool set;
  } axes[] = {
      {XAxis::kLoad, !plan.cells.empty() && plan.cells[0].load.has_value()},
      {XAxis::kRounds, !plan.cells.empty() && plan.cells[0].rounds.has_value()},
      {XAxis::kPorts, !plan.cells.empty() && plan.cells[0].ports.has_value()},
      {XAxis::kShards, !plan.cells.empty() && plan.cells[0].shards.has_value()},
  };
  for (const auto& a : axes) {
    if (!a.set) continue;
    double first = XValue(plan.cells[0], a.axis);
    for (const SweepCell& c : plan.cells) {
      if (XValue(c, a.axis) != first) return a.axis;
    }
  }
  for (const auto& a : axes) {
    if (a.set) return a.axis;
  }
  return XAxis::kCellIndex;
}

// Series identity within a chart: one line per solver × template ×
// scenario combination; the x axis varies within the series.
std::string SeriesLabel(const SweepCell& cell, bool many_templates,
                        int template_index) {
  std::string label = cell.solver;
  if (many_templates) label += " #" + std::to_string(template_index);
  if (cell.scenario && *cell.scenario != "none") {
    std::string sc = *cell.scenario;
    if (sc.size() > 24) sc = sc.substr(0, 21) + "...";
    label += " [" + sc + "]";
  }
  return label;
}

// Everything that identifies a comparison group for the speedup table:
// cells differing only in solver compare against the group's baseline
// (the grid's first expanded solver).
std::string GroupKey(const SweepCell& cell) {
  std::ostringstream key;
  key << cell.instance_family << '\0';
  if (cell.load) key << *cell.load;
  key << '\0';
  if (cell.ports) key << *cell.ports;
  key << '\0';
  if (cell.rounds) key << *cell.rounds;
  key << '\0';
  if (cell.shards) key << *cell.shards;
  key << '\0';
  if (cell.scenario) key << *cell.scenario;
  return key.str();
}

void WriteChart(std::ostream& out, const SweepPlan& plan,
                const std::vector<CellAggregate>& cells, XAxis axis,
                bool cct, const std::string& grid_name) {
  // Build series in first-appearance order for stable colors.
  std::vector<std::string> order;
  std::map<std::string, SvgSeries> series;
  std::map<std::string, int> template_index;
  for (const SweepCell& c : plan.cells) {
    if (template_index.find(c.instance_template) == template_index.end()) {
      const int idx = static_cast<int>(template_index.size());
      template_index[c.instance_template] = idx;
    }
  }
  const bool many_templates = template_index.size() > 1;
  for (const CellAggregate& agg : cells) {
    const SweepCell& c = plan.cells[agg.cell];
    if (agg.n == 0) continue;
    if (cct && agg.num_coflows == 0) continue;
    const std::string label =
        SeriesLabel(c, many_templates, template_index[c.instance_template]);
    auto it = series.find(label);
    if (it == series.end()) {
      order.push_back(label);
      it = series.emplace(label, SvgSeries{}).first;
      it->second.label = label;
    }
    const RunningStats& s = cct ? agg.avg_cct : agg.avg_response;
    it->second.x.push_back(XValue(c, axis));
    it->second.y.push_back(s.mean());
    it->second.ci.push_back(Ci95HalfWidth(s));
  }
  std::vector<SvgSeries> ordered;
  ordered.reserve(order.size());
  for (const std::string& label : order) ordered.push_back(series[label]);

  SvgPlotOptions opts;
  opts.title = grid_name + (cct ? ": avg CCT" : ": avg response");
  opts.x_label = XAxisLabel(axis);
  opts.y_label = cct ? "avg coflow completion time (rounds)"
                     : "avg response time (rounds)";
  WriteSvgLinePlot(out, ordered, opts);
}

void WriteGridTable(std::ostream& out, const SweepPlan& plan,
                    const std::vector<CellAggregate>& cells) {
  // Baseline per comparison group = the cell whose solver appears first in
  // the grid's expanded solver order (cells are enumerated solver-major,
  // so the first cell seen per group is the baseline).
  std::map<std::string, double> baseline;
  std::map<std::string, std::string> baseline_solver;
  for (const CellAggregate& agg : cells) {
    const SweepCell& c = plan.cells[agg.cell];
    const std::string key = GroupKey(c);
    if (agg.n > 0 && baseline.find(key) == baseline.end()) {
      baseline[key] = agg.avg_response.mean();
      baseline_solver[key] = c.solver;
    }
  }
  bool any_cct = false, any_scenario = false, any_shards = false;
  bool has_load = false, has_ports = false, has_rounds = false;
  for (const CellAggregate& agg : cells) {
    if (agg.num_coflows > 0) any_cct = true;
    if (agg.scenario_n > 0) any_scenario = true;
    if (agg.shards > 0) any_shards = true;
  }
  for (const SweepCell& c : plan.cells) {
    if (c.load) has_load = true;
    if (c.ports) has_ports = true;
    if (c.rounds) has_rounds = true;
  }

  out << "<table>\n<tr><th>solver</th><th>instance</th>";
  if (has_load) out << "<th>load</th>";
  if (has_ports) out << "<th>ports</th>";
  if (has_rounds) out << "<th>rounds</th>";
  if (any_shards) out << "<th>shards</th>";
  if (any_scenario) out << "<th>scenario</th>";
  out << "<th>n</th><th>avg response &plusmn;95% CI</th>"
         "<th>p95 response</th><th>speedup</th>";
  if (any_cct) out << "<th>avg CCT &plusmn;95% CI</th>";
  if (any_scenario) {
    out << "<th>downtime</th><th>backlog surge</th>"
           "<th>response inflation</th>";
  }
  out << "</tr>\n";
  for (const CellAggregate& agg : cells) {
    const SweepCell& c = plan.cells[agg.cell];
    out << "<tr><td>" << HtmlEscape(c.solver) << "</td><td class=\"mono\">"
        << HtmlEscape(c.instance_family) << "</td>";
    if (has_load) {
      out << "<td>" << (c.load ? FmtG(*c.load) : "") << "</td>";
    }
    if (has_ports) {
      out << "<td>" << (c.ports ? std::to_string(*c.ports) : "") << "</td>";
    }
    if (has_rounds) {
      out << "<td>" << (c.rounds ? std::to_string(*c.rounds) : "") << "</td>";
    }
    if (any_shards) {
      out << "<td>" << (c.shards ? std::to_string(*c.shards) : "") << "</td>";
    }
    if (any_scenario) {
      out << "<td class=\"mono\">"
          << HtmlEscape(c.scenario ? *c.scenario : "") << "</td>";
    }
    out << "<td>" << agg.n;
    if (agg.failures > 0) out << " (+" << agg.failures << " failed)";
    out << "</td>";
    if (agg.n == 0) {
      out << "<td colspan=\"2\" class=\"dim\">no data</td><td></td>";
      if (any_cct) out << "<td></td>";
      if (any_scenario) out << "<td></td><td></td><td></td>";
      out << "</tr>\n";
      continue;
    }
    out << "<td>" << FmtG(agg.avg_response.mean()) << " &plusmn; "
        << FmtG(Ci95HalfWidth(agg.avg_response)) << "</td>";
    out << "<td>" << FmtG(agg.p95_response.mean()) << "</td>";
    const std::string key = GroupKey(c);
    const auto base = baseline.find(key);
    if (base != baseline.end() && agg.avg_response.mean() > 0.0) {
      const double speedup = base->second / agg.avg_response.mean();
      out << "<td" << (c.solver == baseline_solver[key] ? " class=\"dim\"" : "")
          << ">" << FmtG(speedup) << "&times;</td>";
    } else {
      out << "<td></td>";
    }
    if (any_cct) {
      if (agg.num_coflows > 0) {
        out << "<td>" << FmtG(agg.avg_cct.mean()) << " &plusmn; "
            << FmtG(Ci95HalfWidth(agg.avg_cct)) << "</td>";
      } else {
        out << "<td></td>";
      }
    }
    if (any_scenario) {
      if (agg.scenario_n > 0) {
        out << "<td>" << FmtG(agg.downtime_rounds.mean()) << "</td><td>"
            << FmtG(agg.backlog_surge.mean()) << "</td><td>"
            << FmtG(agg.response_inflation.mean()) << "</td>";
      } else {
        out << "<td></td><td></td><td></td>";
      }
    }
    out << "</tr>\n";
  }
  out << "</table>\n";
}

}  // namespace

bool CollectCampaign(const CampaignSpec& spec, const CampaignPlan& plan,
                     const std::string& out_root,
                     CampaignCollectSummary& summary, std::string* error) {
  summary = CampaignCollectSummary{};
  std::error_code ec;
  const fs::path agg_dir = fs::path(out_root) / "aggregate";
  fs::create_directories(agg_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + agg_dir.string() + ": " + ec.message();
    }
    return false;
  }
  for (const CampaignGrid& grid : plan.grids) {
    GridCollect gc;
    CollectGrid(grid, out_root, gc);
    summary.total += static_cast<int>(grid.plan.tasks.size());
    summary.ok += gc.ok;
    summary.failed += gc.failed;
    summary.missing += gc.missing;
    for (const SweepTask& task : grid.plan.tasks) {
      if (!gc.present[task.index]) {
        summary.missing_tasks.push_back(grid.task_ids[task.index]);
      } else if (!gc.outcomes[task.index].ok) {
        summary.failed_tasks.push_back(grid.task_ids[task.index]);
      }
    }

    Aggregator agg(grid.plan);
    for (const SweepTask& task : grid.plan.tasks) {
      // Missing tasks are absent, not failed-at-solve: feeding them would
      // count phantom failures into the cell statistics.
      if (!gc.present[task.index]) continue;
      agg.Add(task, gc.outcomes[task.index]);
    }
    std::ofstream json_out, csv_out;
    if (!OpenForWrite(json_out, agg_dir / (grid.spec.name + ".json"), error) ||
        !OpenForWrite(csv_out, agg_dir / (grid.spec.name + ".csv"), error)) {
      return false;
    }
    agg.WriteJson(json_out, grid.spec, /*jobs=*/0, /*wall_seconds=*/0.0,
                  /*include_timing=*/false);
    agg.WriteCsv(csv_out, /*include_timing=*/false);
  }
  return true;
}

bool WriteCampaignReport(const CampaignSpec& spec, const CampaignPlan& plan,
                         const std::string& out_root, std::string* error) {
  std::error_code ec;
  const fs::path report_dir = fs::path(out_root) / "report";
  fs::create_directories(report_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + report_dir.string() + ": " + ec.message();
    }
    return false;
  }
  std::ofstream out;
  if (!OpenForWrite(out, report_dir / "index.html", error)) return false;

  const Provenance prov = CollectProvenance();
  const std::string title = spec.title.empty() ? spec.name : spec.title;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>"
      << HtmlEscape(title)
      << "</title>\n<style>\n"
         "body{font-family:sans-serif;margin:24px auto;max-width:1100px;"
         "color:#111827;}\n"
         "h1{font-size:22px;} h2{font-size:17px;margin-top:32px;"
         "border-bottom:1px solid #e5e7eb;padding-bottom:4px;}\n"
         "table{border-collapse:collapse;font-size:12px;margin:12px 0;}\n"
         "th,td{border:1px solid #d1d5db;padding:3px 8px;text-align:right;}\n"
         "th{background:#f3f4f6;} td:first-child,th:first-child"
         "{text-align:left;}\n"
         ".mono{font-family:monospace;font-size:11px;text-align:left;}\n"
         ".dim{color:#6b7280;}\n"
         ".prov{font-size:12px;color:#374151;background:#f9fafb;"
         "border:1px solid #e5e7eb;padding:8px 12px;border-radius:4px;}\n"
         ".charts{display:flex;flex-wrap:wrap;gap:16px;}\n"
         "</style>\n</head>\n<body>\n";
  out << "<h1>" << HtmlEscape(title) << "</h1>\n";
  out << "<p class=\"prov\">campaign <b>" << HtmlEscape(spec.name)
      << "</b> &middot; commit <b>" << HtmlEscape(prov.git_sha)
      << "</b> &middot; " << HtmlEscape(prov.compiler) << " &middot; "
      << HtmlEscape(prov.build_type) << "<br>flags: <span class=\"mono\">"
      << HtmlEscape(prov.compiler_flags) << "</span></p>\n";

  // Campaign-level completion summary (recomputed from disk, like collect).
  int total = 0, ok = 0, failed = 0, missing = 0;
  std::vector<std::string> bad_tasks;
  std::vector<GridCollect> collects(plan.grids.size());
  for (std::size_t g = 0; g < plan.grids.size(); ++g) {
    const CampaignGrid& grid = plan.grids[g];
    CollectGrid(grid, out_root, collects[g]);
    total += static_cast<int>(grid.plan.tasks.size());
    ok += collects[g].ok;
    failed += collects[g].failed;
    missing += collects[g].missing;
    for (const SweepTask& task : grid.plan.tasks) {
      if (!collects[g].present[task.index]) {
        bad_tasks.push_back(grid.task_ids[task.index] + " (missing)");
      } else if (!collects[g].outcomes[task.index].ok) {
        bad_tasks.push_back(grid.task_ids[task.index] + " (failed)");
      }
    }
  }
  out << "<p>" << total << " tasks: <b>" << ok << " ok</b>";
  if (failed > 0) out << ", <b>" << failed << " failed</b>";
  if (missing > 0) out << ", <b>" << missing << " missing</b>";
  out << ".</p>\n";

  for (std::size_t g = 0; g < plan.grids.size(); ++g) {
    const CampaignGrid& grid = plan.grids[g];
    const GridCollect& gc = collects[g];
    Aggregator agg(grid.plan);
    for (const SweepTask& task : grid.plan.tasks) {
      if (!gc.present[task.index]) continue;
      agg.Add(task, gc.outcomes[task.index]);
    }
    out << "<h2>" << HtmlEscape(grid.spec.name) << "</h2>\n";
    out << "<p class=\"dim\">" << grid.plan.cells.size() << " cells &middot; "
        << grid.plan.tasks.size() << " tasks &middot; spec hash "
        << HashHex(grid.grid_hash) << "</p>\n";

    const XAxis axis = PickXAxis(grid.plan);
    bool any_cct = false;
    for (const CellAggregate& c : agg.cells()) {
      if (c.num_coflows > 0) any_cct = true;
    }
    out << "<div class=\"charts\">\n";
    WriteChart(out, grid.plan, agg.cells(), axis, /*cct=*/false,
               grid.spec.name);
    if (any_cct) {
      WriteChart(out, grid.plan, agg.cells(), axis, /*cct=*/true,
                 grid.spec.name);
    }
    out << "</div>\n";
    WriteGridTable(out, grid.plan, agg.cells());
  }

  if (!bad_tasks.empty()) {
    out << "<h2>Incomplete tasks</h2>\n<ul>\n";
    for (const std::string& t : bad_tasks) {
      out << "<li class=\"mono\">" << HtmlEscape(t) << "</li>\n";
    }
    out << "</ul>\n";
  }
  out << "</body>\n</html>\n";
  return true;
}

}  // namespace flowsched
