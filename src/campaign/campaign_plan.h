// CampaignPlan: the deterministic expansion of a CampaignSpec — every grid
// expanded through ExpandSweep (exp/sweep_spec.h), every task given a
// stable directory-safe id and a spec hash.
//
// Task identity is the resume contract (campaign/campaign_runner.h): a
// finished run directory is reused if and only if its recorded spec hash
// AND build provenance (git SHA, compiler flags) match the current plan.
// The hash folds the grid's canonical serialization with the task's own
// coordinates, so *any* change to the grid — a new axis value, a reordered
// solver list, a different base_seed — invalidates all of its tasks:
// task indices shift with grid shape, and a stale directory must never be
// mistaken for the new task that now owns its id.
#ifndef FLOWSCHED_CAMPAIGN_CAMPAIGN_PLAN_H_
#define FLOWSCHED_CAMPAIGN_CAMPAIGN_PLAN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/campaign_spec.h"
#include "exp/sweep_spec.h"

namespace flowsched {

struct CampaignGrid {
  SweepSpec spec;
  SweepPlan plan;
  std::uint64_t grid_hash = 0;          // FNV-1a over the canonical spec.
  std::vector<std::string> task_ids;    // Indexed by SweepTask::index.
  std::vector<std::uint64_t> task_hashes;
};

struct CampaignPlan {
  std::vector<CampaignGrid> grids;
  int total_tasks = 0;
};

// Expands every grid against `registry`; false + *error names the failing
// grid on invalid specs (unknown solvers, axis mismatches, bad templates).
bool ExpandCampaign(const CampaignSpec& spec, const SolverRegistry& registry,
                    CampaignPlan& plan, std::string* error);

// Canonical fixed-order serialization of a sweep spec — the hashing
// input. Stable across parse formats (key=value, JSON, CLI flags).
std::string CanonicalSweepSpecText(const SweepSpec& spec);

// 64-bit FNV-1a, the repo-local content hash for resume checks.
std::uint64_t Fnv1a64(const std::string& text);

// "<grid>-NNNN-<solver>", e.g. "fig6-0007-online.maxweight": readable,
// unique within the campaign (grid names are unique and indices padded),
// and safe as a directory name (solver names are [a-z.]+).
std::string CampaignTaskId(const SweepSpec& grid_spec, const SweepPlan& plan,
                           int task_index);

// 16 lowercase hex digits; meta.json's "spec_hash" format.
std::string HashHex(std::uint64_t hash);

// Prints one line per task — id (when `ids` is non-null), solver, fully
// substituted instance spec, seed/trial, scenario — the shared --dry-run
// body of flowsched_campaign and flowsched_sweep.
void WriteTaskListText(std::ostream& out, const SweepPlan& plan,
                       const std::vector<std::string>* ids);

}  // namespace flowsched

#endif  // FLOWSCHED_CAMPAIGN_CAMPAIGN_PLAN_H_
