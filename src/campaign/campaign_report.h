// Collect + report for campaign runs (campaign/campaign_runner.h).
//
// Collect merges whatever the runs/ tree holds: every task's outcome.json
// is read back from disk — never taken from in-process memory — and fed to
// the exp/aggregator.h Aggregator in task order. Reading from disk is what
// makes a resumed campaign's report byte-identical to an uninterrupted
// one: both paths see the same %.9g-serialized numbers, so there is no
// "fresh doubles vs JSON readback" divergence to chase. Aggregates land in
// <out_root>/aggregate/<grid>.json and .csv with include_timing=false
// (wall-clock fields are schedule-dependent and would break the byte
// comparison).
//
// Report renders <out_root>/report/index.html: a self-contained static
// page (inline CSS, inline SVG via campaign/svg_plot.h, zero external
// dependencies, no timestamps) with per-grid response-vs-axis and
// CCT-vs-axis curves carrying 95% CI whiskers, speedup tables against the
// grid's first solver, robustness columns for scenario cells, and the
// failed/missing task list.
#ifndef FLOWSCHED_CAMPAIGN_CAMPAIGN_REPORT_H_
#define FLOWSCHED_CAMPAIGN_CAMPAIGN_REPORT_H_

#include <string>
#include <vector>

#include "campaign/campaign_plan.h"
#include "campaign/campaign_spec.h"

namespace flowsched {

struct CampaignCollectSummary {
  int total = 0;
  int ok = 0;
  int failed = 0;        // outcome.json present with ok=false.
  int missing = 0;       // No readable outcome.json (never ran / crashed).
  std::vector<std::string> failed_tasks;   // Task ids, plan order.
  std::vector<std::string> missing_tasks;
};

// Reads every task outcome under <out_root>/runs/ and writes
// aggregate/<grid>.json and aggregate/<grid>.csv per grid. Partial
// campaigns collect fine — missing tasks are counted, not fatal. Returns
// false + *error only on filesystem failures.
bool CollectCampaign(const CampaignSpec& spec, const CampaignPlan& plan,
                     const std::string& out_root,
                     CampaignCollectSummary& summary, std::string* error);

// Writes <out_root>/report/index.html from the same disk readback.
// Byte-deterministic for identical runs/ contents. Returns false + *error
// on filesystem failures.
bool WriteCampaignReport(const CampaignSpec& spec, const CampaignPlan& plan,
                         const std::string& out_root, std::string* error);

}  // namespace flowsched

#endif  // FLOWSCHED_CAMPAIGN_CAMPAIGN_REPORT_H_
