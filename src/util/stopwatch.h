// Wall-clock stopwatch for coarse timings in benches and reports.
#ifndef FLOWSCHED_UTIL_STOPWATCH_H_
#define FLOWSCHED_UTIL_STOPWATCH_H_

#include <chrono>

namespace flowsched {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_STOPWATCH_H_
