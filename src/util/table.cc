#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace flowsched {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  FS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace flowsched
