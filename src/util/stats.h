// Small descriptive-statistics helpers used by metrics and benches.
#ifndef FLOWSCHED_UTIL_STATS_H_
#define FLOWSCHED_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace flowsched {

// Accumulates a stream of values; O(1) memory.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator.
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile of a sample (nearest-rank). `p` in [0, 100].
double Percentile(std::span<const double> values, double p);

double Mean(std::span<const double> values);
double Max(std::span<const double> values);

// Histogram with unit-width integer buckets [0, max_value]; values above
// max_value are clamped into the last bucket.
std::vector<std::size_t> IntHistogram(std::span<const double> values,
                                      std::size_t max_value);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_STATS_H_
