// Small descriptive-statistics helpers used by metrics and benches.
#ifndef FLOWSCHED_UTIL_STATS_H_
#define FLOWSCHED_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace flowsched {

// Accumulates a stream of values; O(1) memory.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator.
  double min_ = 0.0;
  double max_ = 0.0;
};

// Streaming quantile estimate via the P-square algorithm (Jain & Chlamtac
// 1985): five markers, O(1) memory and O(1) per observation — the piece
// that lets the streaming service report p50/p95/p99 response times over
// unbounded flow streams without per-flow vectors. Exact for the first
// five observations; afterwards an estimate whose error shrinks with the
// sample (typically well under 1% of the value range for smooth
// distributions).
class P2Quantile {
 public:
  // `quantile` in (0, 1), e.g. 0.99 for p99.
  explicit P2Quantile(double quantile);

  void Add(double x);
  // Current estimate; exact (nearest-rank over what arrived) below five
  // observations, 0 before any.
  double Estimate() const;
  std::size_t count() const { return count_; }

 private:
  double quantile_;
  std::size_t count_ = 0;
  double q_[5];       // Marker heights.
  double n_[5];       // Marker positions (1-based observation ranks).
  double desired_[5];  // Desired marker positions.
};

// Exact percentile of a sample (nearest-rank). `p` in [0, 100].
double Percentile(std::span<const double> values, double p);

double Mean(std::span<const double> values);
double Max(std::span<const double> values);

// Histogram with unit-width integer buckets [0, max_value]; values above
// max_value are clamped into the last bucket.
std::vector<std::size_t> IntHistogram(std::span<const double> values,
                                      std::size_t max_value);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_STATS_H_
