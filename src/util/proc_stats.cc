#include "util/proc_stats.h"

#include <cstdio>
#include <cstring>

namespace flowsched {

long long PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  long long kb = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace flowsched
