// Deterministic random number generation for workloads and tests.
//
// A thin, explicitly-seeded wrapper around xoshiro256** plus the
// distributions the simulator needs (uniform ints/reals, Poisson).
// Every generator is constructed from a 64-bit seed, so experiments are
// reproducible across platforms (unlike std:: distributions, whose output
// is implementation-defined; we implement the distributions ourselves).
//
// Threading contract (audited for the sweep engine, PR 3): an Rng is
// mutable state and is NOT thread-safe — never share one across threads.
// Parallel code derives one independent stream per unit of work instead,
// either via Fork(stream_id) or, when only a seed (not a generator) is
// needed, via the stateless DeriveSeed(seed, stream_id). Both are pure
// functions of (construction seed, stream_id) — they ignore how much the
// parent has been consumed — so per-task streams are identical no matter
// which thread runs the task or in what order tasks are scheduled.
#ifndef FLOWSCHED_UTIL_RNG_H_
#define FLOWSCHED_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace flowsched {

// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform on [0, 2^64).
  std::uint64_t NextU64();

  // Uniform on [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  std::uint64_t UniformU64(std::uint64_t n);

  // Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Uniform real on [0, 1).
  double UniformReal();

  // Poisson with mean `mean` >= 0. Knuth's method for small means,
  // PTRS-style normal-approximation rejection fallback for large means.
  int Poisson(double mean);

  // Geometric-like bounded integer in [1, cap]: value v with
  // P(v) proportional to ratio^(v-1). Used by demand distributions.
  int TruncatedGeometric(double ratio, int cap);

  // Derives an independent stream (e.g. one per trial).
  Rng Fork(std::uint64_t stream_id) const;

  // Stateless counterpart of Fork(): splitmix64-mixes (seed, stream_id)
  // into a decorrelated child seed. Chain calls to mix in multiple
  // coordinates, e.g. DeriveSeed(DeriveSeed(base, cell), trial) — the
  // sweep engine seeds every task this way so results are byte-identical
  // regardless of thread count or schedule.
  static std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_RNG_H_
