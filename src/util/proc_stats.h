// Process memory accounting for the benches and the streaming service:
// peak resident set size (the kernel's high-water mark) read from
// /proc/self/status, with an opt-in reset so per-cell measurements don't
// inherit an earlier cell's peak.
#ifndef FLOWSCHED_UTIL_PROC_STATS_H_
#define FLOWSCHED_UTIL_PROC_STATS_H_

namespace flowsched {

// VmHWM from /proc/self/status in KiB; -1 when unavailable (non-Linux).
long long PeakRssKb();

// Resets the kernel's peak-RSS watermark to the current RSS by writing "5"
// to /proc/self/clear_refs (Linux >= 4.0). Returns false when unsupported;
// callers then get monotone per-process peaks from PeakRssKb() instead of
// per-interval ones.
bool ResetPeakRss();

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_PROC_STATS_H_
