// Minimal JSON emission helpers shared by the report writers
// (flowsched_bench, the sweep Aggregator, provenance blocks).
//
// Not a serialization framework: the report writers keep explicit control
// over field order and layout (stable output is what makes BENCH_*.json and
// SWEEP_*.json diffable), these helpers only make the escaping and number
// formatting uniform across them.
#ifndef FLOWSCHED_UTIL_JSON_H_
#define FLOWSCHED_UTIL_JSON_H_

#include <string>

namespace flowsched {

// Escapes `"` `\` and control characters for use inside a JSON string.
std::string JsonEscape(const std::string& s);

// Shortest round-trippable-enough representation (%.9g): stable across
// runs, compact, and precise to ~9 significant digits — the convention
// BENCH_*.json established.
std::string JsonNum(double v);

// `"key": "escaped"` fragment (no trailing comma).
std::string JsonStr(const std::string& key, const std::string& value);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_JSON_H_
