// Minimal JSON emission helpers shared by the report writers
// (flowsched_bench, the sweep Aggregator, provenance blocks).
//
// Not a serialization framework: the report writers keep explicit control
// over field order and layout (stable output is what makes BENCH_*.json and
// SWEEP_*.json diffable), these helpers only make the escaping and number
// formatting uniform across them.
#ifndef FLOWSCHED_UTIL_JSON_H_
#define FLOWSCHED_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flowsched {

// Escapes `"` `\` and control characters for use inside a JSON string.
std::string JsonEscape(const std::string& s);

// Shortest round-trippable-enough representation (%.9g): stable across
// runs, compact, and precise to ~9 significant digits — the convention
// BENCH_*.json established.
std::string JsonNum(double v);

// `"key": "escaped"` fragment (no trailing comma).
std::string JsonStr(const std::string& key, const std::string& value);

// A parsed JSON document. The campaign subsystem reads back its own
// meta.json / outcome.json records (resume checks, collect/report), so
// unlike the write-side helpers above this is a full recursive parser —
// still deliberately small: no streaming, documents are at most a few KB.
//
// Numbers keep their source text (`raw`) besides the parsed double so
// 64-bit integers (seeds, hashes) survive round-trips exactly.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string raw;           // Numbers: exact source text.
  std::string string_value;  // Strings: unescaped content.
  std::vector<JsonValue> items;                            // Arrays.
  std::vector<std::pair<std::string, JsonValue>> members;  // Objects, in
                                                           // source order.

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed accessors with defaults (wrong type => default).
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  double GetNumber(const std::string& key, double def = 0.0) const;
  long long GetInt(const std::string& key, long long def = 0) const;
  std::uint64_t GetU64(const std::string& key, std::uint64_t def = 0) const;
  bool GetBool(const std::string& key, bool def = false) const;
};

// Parses one JSON value (object, array, or scalar) covering the whole
// input. Returns false and fills *error (with an offset) on malformed
// input or trailing data.
bool ParseJson(const std::string& text, JsonValue& out, std::string* error);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_JSON_H_
