#include "util/stopwatch.h"

// Header-only; this translation unit exists so the build graph stays uniform.
