// Invariant-checking macros (Core Guidelines I.6/I.8 style contracts).
//
// FS_CHECK   - always-on invariant; aborts with a message on violation.
// FS_DCHECK  - debug-only invariant (compiled out in NDEBUG builds).
// FS_CHECK_* - comparison helpers that print both operands.
//
// These are used for programming errors, not for recoverable conditions;
// recoverable failures are reported through status-bearing return values.
#ifndef FLOWSCHED_UTIL_CHECK_H_
#define FLOWSCHED_UTIL_CHECK_H_

#include <sstream>
#include <string>
#include <string_view>

namespace flowsched {

// Aborts the process after printing `msg` with source location context.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

namespace detail {

// Builds the "lhs vs rhs" message for comparison checks.
template <typename A, typename B>
std::string FormatComparison(const A& a, const B& b, const char* op) {
  std::ostringstream os;
  os << "(" << a << " " << op << " " << b << ")";
  return os.str();
}

}  // namespace detail
}  // namespace flowsched

#define FS_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::flowsched::CheckFailed(__FILE__, __LINE__, #cond, "");        \
    }                                                                 \
  } while (false)

#define FS_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream fs_check_os;                                 \
      fs_check_os << msg;                                             \
      ::flowsched::CheckFailed(__FILE__, __LINE__, #cond,             \
                               fs_check_os.str());                    \
    }                                                                 \
  } while (false)

#define FS_CHECK_OP(a, b, op)                                            \
  do {                                                                   \
    if (!((a)op(b))) {                                                   \
      ::flowsched::CheckFailed(                                          \
          __FILE__, __LINE__, #a " " #op " " #b,                         \
          ::flowsched::detail::FormatComparison((a), (b), #op));         \
    }                                                                    \
  } while (false)

#define FS_CHECK_EQ(a, b) FS_CHECK_OP(a, b, ==)
#define FS_CHECK_NE(a, b) FS_CHECK_OP(a, b, !=)
#define FS_CHECK_LE(a, b) FS_CHECK_OP(a, b, <=)
#define FS_CHECK_LT(a, b) FS_CHECK_OP(a, b, <)
#define FS_CHECK_GE(a, b) FS_CHECK_OP(a, b, >=)
#define FS_CHECK_GT(a, b) FS_CHECK_OP(a, b, >)

#ifdef NDEBUG
#define FS_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define FS_DCHECK(cond) FS_CHECK(cond)
#endif

#endif  // FLOWSCHED_UTIL_CHECK_H_
