#include "util/rng.h"

#include <cmath>

namespace flowsched {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t n) {
  FS_CHECK_GT(n, 0u);
  // Rejection sampling on the top of the range to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

int Rng::UniformInt(int lo, int hi) {
  FS_CHECK_LE(lo, hi);
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(UniformU64(span));
}

double Rng::UniformReal() {
  // 53 random bits into [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int Rng::Poisson(double mean) {
  FS_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double threshold = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformReal();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction, rejected below 0.
  // Accurate enough for workload generation at the means we use (<= 1000);
  // the simulator only needs the right first two moments.
  for (;;) {
    const double u1 = UniformReal();
    const double u2 = UniformReal();
    const double z =
        std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(2.0 * M_PI * u2);
    const double v = mean + std::sqrt(mean) * z;
    if (v >= 0.0) return static_cast<int>(std::floor(v + 0.5));
  }
}

int Rng::TruncatedGeometric(double ratio, int cap) {
  FS_CHECK_GT(cap, 0);
  FS_CHECK(ratio > 0.0 && ratio < 1.0);
  // Normalizing constant of ratio^(v-1), v in [1, cap].
  const double total = (1.0 - std::pow(ratio, cap)) / (1.0 - ratio);
  double u = UniformReal() * total;
  double mass = 1.0;
  for (int v = 1; v < cap; ++v) {
    if (u < mass) return v;
    u -= mass;
    mass *= ratio;
  }
  return cap;
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  return Rng(DeriveSeed(seed_, stream_id));
}

std::uint64_t Rng::DeriveSeed(std::uint64_t seed, std::uint64_t stream_id) {
  // Mix the base seed with the stream id through splitmix to decorrelate.
  // (Kept byte-compatible with the original Fork() derivation.)
  std::uint64_t x = seed ^ (0xA02BDBF7BB3C0A7ULL * (stream_id + 1));
  return SplitMix64(x);
}

}  // namespace flowsched
