#include "util/env.h"

#include <cstdlib>

namespace flowsched {

std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

int GetEnvIntOr(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(parsed);
}

BenchScale GetBenchScale() {
  const std::string v = GetEnvOr("FLOWSCHED_BENCH_SCALE", "default");
  if (v == "quick") return BenchScale::kQuick;
  if (v == "full") return BenchScale::kFull;
  return BenchScale::kDefault;
}

}  // namespace flowsched
