#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace flowsched {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonStr(const std::string& key, const std::string& value) {
  return "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kString ? v->string_value : def;
}

double JsonValue::GetNumber(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number_value : def;
}

long long JsonValue::GetInt(const std::string& key, long long def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->type != Type::kNumber) return def;
  return std::strtoll(v->raw.c_str(), nullptr, 10);
}

std::uint64_t JsonValue::GetU64(const std::string& key,
                                std::uint64_t def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->type != Type::kNumber) return def;
  return std::strtoull(v->raw.c_str(), nullptr, 10);
}

bool JsonValue::GetBool(const std::string& key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kBool ? v->bool_value : def;
}

namespace {

// Recursive-descent parser over the whole input. Positions are byte
// offsets; errors name them so a malformed meta.json is debuggable.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out, std::string* error) {
    if (!Value(out, error, 0)) return false;
    SkipWs();
    if (pos_ < text_.size()) {
      return Fail(error, "trailing data");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(std::string* error, const std::string& msg) {
    if (error != nullptr) {
      *error = "json offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String(std::string& out, std::string* error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail(error, "expected '\"'");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail(error, "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': case '\\': case '/': c = esc; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail(error, "truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail(error, "bad \\u escape digit");
            }
            // UTF-8 encode (no surrogate-pair handling — our own writers
            // only \u-escape control characters).
            if (code < 0x80) {
              c = static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              c = static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              c = static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail(error, std::string("unsupported escape \\") + esc);
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool Value(JsonValue& out, std::string* error, int depth) {
    if (depth > kMaxDepth) return Fail(error, "nesting too deep");
    out = JsonValue{};
    SkipWs();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = JsonValue::Type::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!String(key, error)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail(error, "expected ':' after \"" + key + "\"");
        }
        ++pos_;
        JsonValue member;
        if (!Value(member, error, depth + 1)) return false;
        out.members.emplace_back(std::move(key), std::move(member));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail(error, "expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = JsonValue::Type::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!Value(item, error, depth + 1)) return false;
        out.items.push_back(std::move(item));
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail(error, "expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return String(out.string_value, error);
    }
    if (Literal("true")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = true;
      return true;
    }
    if (Literal("false")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = false;
      return true;
    }
    if (Literal("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    // Number: keep the exact source text alongside the parsed double.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return Fail(error, "expected a JSON value");
    out.type = JsonValue::Type::kNumber;
    out.raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number_value = std::strtod(out.raw.c_str(), &end);
    if (end != out.raw.c_str() + out.raw.size()) {
      pos_ = start;
      return Fail(error, "malformed number \"" + out.raw + "\"");
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue& out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

}  // namespace flowsched
