#include "util/json.h"

#include <cstdio>

namespace flowsched {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonStr(const std::string& key, const std::string& value) {
  return "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
}

}  // namespace flowsched
