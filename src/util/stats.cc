#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace flowsched {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

double Percentile(std::span<const double> values, double p) {
  FS_CHECK(!values.empty());
  FS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  // Nearest-rank definition: smallest value with >= p% of mass at or below.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double Max(std::span<const double> values) {
  FS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

std::vector<std::size_t> IntHistogram(std::span<const double> values,
                                      std::size_t max_value) {
  std::vector<std::size_t> buckets(max_value + 1, 0);
  for (double v : values) {
    auto b = v <= 0 ? std::size_t{0} : static_cast<std::size_t>(v);
    ++buckets[std::min(b, max_value)];
  }
  return buckets;
}

}  // namespace flowsched
