#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace flowsched {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  FS_CHECK(quantile > 0.0 && quantile < 1.0);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    std::sort(q_, q_ + count_);
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * quantile_;
      desired_[2] = 1.0 + 4.0 * quantile_;
      desired_[3] = 3.0 + 2.0 * quantile_;
      desired_[4] = 5.0;
    }
    return;
  }
  ++count_;
  // Cell k: index of the marker interval x falls into; extremes clamp.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = std::max(q_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  const double inc[5] = {0.0, quantile_ / 2.0, quantile_,
                         (1.0 + quantile_) / 2.0, 1.0};
  for (int i = 0; i < 5; ++i) desired_[i] += inc[i];
  // Adjust the three interior markers toward their desired positions,
  // parabolically when that keeps the heights monotone, linearly otherwise.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = n_[i + 1];
      const double nm = n_[i - 1];
      const double ni = n_[i];
      double qp =
          q_[i] + s / (np - nm) *
                      ((ni - nm + s) * (q_[i + 1] - q_[i]) / (np - ni) +
                       (np - ni - s) * (q_[i] - q_[i - 1]) / (ni - nm));
      if (qp <= q_[i - 1] || qp >= q_[i + 1]) {
        // Linear fallback preserves monotonicity.
        const int j = i + static_cast<int>(s);
        qp = q_[i] + s * (q_[j] - q_[i]) / (n_[j] - ni);
      }
      q_[i] = qp;
      n_[i] += s;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Nearest-rank over the sorted prefix.
    const auto rank = static_cast<std::size_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    return q_[rank == 0 ? 0 : rank - 1];
  }
  return q_[2];
}

double Percentile(std::span<const double> values, double p) {
  FS_CHECK(!values.empty());
  FS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  // Nearest-rank definition: smallest value with >= p% of mass at or below.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double Max(std::span<const double> values) {
  FS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

std::vector<std::size_t> IntHistogram(std::span<const double> values,
                                      std::size_t max_value) {
  std::vector<std::size_t> buckets(max_value + 1, 0);
  for (double v : values) {
    auto b = v <= 0 ? std::size_t{0} : static_cast<std::size_t>(v);
    ++buckets[std::min(b, max_value)];
  }
  return buckets;
}

}  // namespace flowsched
