// Aligned plain-text tables for bench / example output.
//
// Collects rows of strings, then renders with per-column widths. Numeric
// helpers format with fixed precision so series line up visually.
#ifndef FLOWSCHED_UTIL_TABLE_H_
#define FLOWSCHED_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace flowsched {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: variadic row of strings/numbers.
  template <typename... Ts>
  void Row(const Ts&... vals) {
    std::vector<std::string> row;
    row.reserve(sizeof...(vals));
    (row.push_back(Format(vals)), ...);
    AddRow(std::move(row));
  }

  void Print(std::ostream& out) const;

  static std::string Format(const std::string& s) { return s; }
  static std::string Format(const char* s) { return s; }
  static std::string Format(double v);
  static std::string Format(int v) { return std::to_string(v); }
  static std::string Format(long v) { return std::to_string(v); }
  static std::string Format(long long v) { return std::to_string(v); }
  static std::string Format(unsigned long v) { return std::to_string(v); }
  static std::string Format(unsigned long long v) { return std::to_string(v); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_TABLE_H_
