// Build and host provenance embedded into benchmark / sweep reports so
// BENCH_*.json and SWEEP_*.json artifacts are comparable across machines:
// the same numbers mean nothing without knowing which commit, compiler,
// flags, and box produced them.
//
// The git SHA and compiler flags are captured at CMake configure time
// (see the set_source_files_properties block in CMakeLists.txt) and baked
// into this translation unit only, so touching the SHA never rebuilds the
// world. Hostname and thread count are read at run time.
#ifndef FLOWSCHED_UTIL_PROVENANCE_H_
#define FLOWSCHED_UTIL_PROVENANCE_H_

#include <ostream>
#include <string>

namespace flowsched {

struct Provenance {
  std::string git_sha;         // `git describe --always --dirty`, configure-time.
  std::string compiler;        // e.g. "g++ 13.2.0" (from __VERSION__).
  std::string compiler_flags;  // CMAKE_CXX_FLAGS + per-config flags.
  std::string build_type;      // "Release", "Debug", ...
  std::string hostname;
  int hardware_threads = 0;    // std::thread::hardware_concurrency().
};

Provenance CollectProvenance();

// Emits `"provenance": { ... }` (no trailing comma/newline) indented by
// `indent` spaces — spliceable into any report writer.
void WriteProvenanceJson(std::ostream& out, const Provenance& p, int indent);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_PROVENANCE_H_
