#include "util/provenance.h"

#include <cstdlib>
#include <thread>

#include "util/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#ifndef FLOWSCHED_GIT_SHA
#define FLOWSCHED_GIT_SHA "unknown"
#endif
#ifndef FLOWSCHED_CXX_FLAGS
#define FLOWSCHED_CXX_FLAGS ""
#endif
#ifndef FLOWSCHED_BUILD_TYPE
#ifdef NDEBUG
#define FLOWSCHED_BUILD_TYPE "Release"
#else
#define FLOWSCHED_BUILD_TYPE "Debug"
#endif
#endif

namespace flowsched {
namespace {

std::string Hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

}  // namespace

Provenance CollectProvenance() {
  Provenance p;
  p.git_sha = FLOWSCHED_GIT_SHA;
#if defined(__clang__)
  p.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  p.compiler = std::string("g++ ") + __VERSION__;
#else
  p.compiler = "unknown";
#endif
  p.compiler_flags = FLOWSCHED_CXX_FLAGS;
  p.build_type = FLOWSCHED_BUILD_TYPE;
  p.hostname = Hostname();
  p.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return p;
}

void WriteProvenanceJson(std::ostream& out, const Provenance& p, int indent) {
  const std::string pad(indent, ' ');
  const std::string in(indent + 2, ' ');
  out << pad << "\"provenance\": {\n";
  out << in << JsonStr("git_sha", p.git_sha) << ",\n";
  out << in << JsonStr("compiler", p.compiler) << ",\n";
  out << in << JsonStr("compiler_flags", p.compiler_flags) << ",\n";
  out << in << JsonStr("build_type", p.build_type) << ",\n";
  out << in << JsonStr("hostname", p.hostname) << ",\n";
  out << in << "\"hardware_threads\": " << p.hardware_threads << "\n";
  out << pad << "}";
}

}  // namespace flowsched
