// Environment-variable knobs for bench scaling and verbosity.
//
// Benches must terminate quickly when run unattended, yet allow paper-scale
// runs on demand; FLOWSCHED_BENCH_SCALE={quick,default,full} selects the
// sweep sizes, documented per bench.
#ifndef FLOWSCHED_UTIL_ENV_H_
#define FLOWSCHED_UTIL_ENV_H_

#include <string>

namespace flowsched {

enum class BenchScale { kQuick, kDefault, kFull };

// Reads FLOWSCHED_BENCH_SCALE; unknown/absent values map to kDefault.
BenchScale GetBenchScale();

// Returns the environment variable value or `fallback` when unset.
std::string GetEnvOr(const char* name, const std::string& fallback);
int GetEnvIntOr(const char* name, int fallback);

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_ENV_H_
