// Minimal CSV writing/reading used by trace IO and bench outputs.
//
// The dialect is deliberately simple: comma separator, quotes around fields
// containing commas/quotes/newlines, '\n' record terminator. This is enough
// for our own round-trips and for importing into plotting tools.
#ifndef FLOWSCHED_UTIL_CSV_H_
#define FLOWSCHED_UTIL_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace flowsched {

// Escapes one field for emission into a CSV row: returns the field quoted
// (embedded quotes doubled) when it contains a comma, quote, newline,
// carriage return, or semicolon, unchanged otherwise. Semicolons force
// quoting because several of our own values use ';' as an internal
// separator (instance-spec lists, inline scenario scripts) and common
// spreadsheet importers treat bare ';' as a delimiter; report CSV columns
// must not shear on them. Shared by CsvWriter and the hand-rolled report
// writers (exp/aggregator.cc).
std::string CsvEscapeField(std::string_view field);

// Streams rows to an std::ostream. Not thread-safe.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

  // Convenience for heterogeneous rows.
  template <typename... Ts>
  void Row(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(ToField(vals)), ...);
    WriteRow(fields);
  }

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(const char* s) { return s; }
  static std::string ToField(std::string_view s) { return std::string(s); }
  static std::string ToField(double v);
  static std::string ToField(int v) { return std::to_string(v); }
  static std::string ToField(long v) { return std::to_string(v); }
  static std::string ToField(long long v) { return std::to_string(v); }
  static std::string ToField(unsigned long v) { return std::to_string(v); }
  static std::string ToField(unsigned long long v) { return std::to_string(v); }

  std::ostream& out_;
};

// Parses CSV content into rows of fields. Handles quoted fields.
std::vector<std::vector<std::string>> ParseCsv(std::string_view content);

// Line-at-a-time CSV row reader over an std::istream: the streaming
// counterpart of ParseCsv, shared by the batch trace parsers and the
// streaming trace source so a multi-gigabyte trace never has to be
// materialized (or even fully read) to start serving rows. Same dialect as
// ParseCsv: quoted fields (which may span lines), '\r' stripped, blank
// lines skipped.
class CsvRowReader {
 public:
  explicit CsvRowReader(std::istream& in) : in_(in) {}

  // Overwrites *row with the next non-blank row; false at end of input.
  bool Next(std::vector<std::string>* row);

  // 1-based line number where the row returned by the last Next() started
  // (0 before the first call). Exact even when the file has blank lines —
  // this is what error messages should report.
  long long line() const { return row_line_; }

 private:
  std::istream& in_;
  std::string buffer_;       // Current physical line(s) being parsed.
  long long next_line_ = 0;  // Lines consumed from in_ so far.
  long long row_line_ = 0;
};

}  // namespace flowsched

#endif  // FLOWSCHED_UTIL_CSV_H_
