#include "util/csv.h"

#include <cstdio>

namespace flowsched {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r;") != std::string_view::npos;
}

std::string Quote(std::string_view field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string CsvEscapeField(std::string_view field) {
  return NeedsQuoting(field) ? Quote(field) : std::string(field);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << CsvEscapeField(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::ToField(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool CsvRowReader::Next(std::vector<std::string>* row) {
  row->clear();
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  while (true) {
    if (!std::getline(in_, buffer_)) {
      if (row_started) {
        row->push_back(std::move(field));
        return true;  // Last row without a trailing newline.
      }
      return false;
    }
    ++next_line_;
    if (!row_started) row_line_ = next_line_;
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      const char c = buffer_[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < buffer_.size() && buffer_[i + 1] == '"') {
            field += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field += c;
        }
      } else if (c == '"') {
        in_quotes = true;
        row_started = true;
      } else if (c == ',') {
        row->push_back(std::move(field));
        field.clear();
        row_started = true;  // A trailing empty field still counts.
      } else if (c != '\r') {
        field += c;
        row_started = true;
      }
    }
    if (in_quotes) {
      field += '\n';  // Quoted field spanning lines.
      continue;
    }
    if (!row_started) continue;  // Blank line: keep scanning.
    row->push_back(std::move(field));
    return true;
  }
}

std::vector<std::vector<std::string>> ParseCsv(std::string_view content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      end_field();
      field_started = true;  // An empty trailing field still counts.
    } else if (c == '\n') {
      end_row();
    } else if (c != '\r') {
      field += c;
      field_started = true;
    }
  }
  end_row();
  return rows;
}

}  // namespace flowsched
