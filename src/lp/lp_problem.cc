#include "lp/lp_problem.h"

#include "util/check.h"

namespace flowsched {

int LpProblem::AddRow(RowSense sense, double rhs) {
  FS_CHECK_MSG(!frozen_, "rows must be added before columns");
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  return num_rows() - 1;
}

int LpProblem::AddColumn(double objective,
                         std::span<const std::pair<int, double>> entries) {
  if (!frozen_) {
    matrix_ = ColumnMatrix(num_rows());
    frozen_ = true;
  }
  SparseColumn col;
  col.rows.reserve(entries.size());
  col.values.reserve(entries.size());
  for (const auto& [row, value] : entries) {
    col.Add(row, value);
  }
  objective_.push_back(objective);
  return matrix_.AddColumn(std::move(col));
}

}  // namespace flowsched
