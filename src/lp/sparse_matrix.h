// Column-oriented sparse matrix used by the LP machinery.
//
// The scheduling LPs have ~3 nonzeros per structural column (one covering
// row, two port-capacity rows), so columns are stored as (row, value) pairs.
#ifndef FLOWSCHED_LP_SPARSE_MATRIX_H_
#define FLOWSCHED_LP_SPARSE_MATRIX_H_

#include <span>
#include <utility>
#include <vector>

namespace flowsched {

struct SparseColumn {
  std::vector<int> rows;
  std::vector<double> values;

  void Add(int row, double value) {
    rows.push_back(row);
    values.push_back(value);
  }
  std::size_t size() const { return rows.size(); }
};

class ColumnMatrix {
 public:
  explicit ColumnMatrix(int num_rows) : num_rows_(num_rows) {}

  // Entries must reference rows in [0, num_rows); duplicates are merged.
  int AddColumn(SparseColumn col);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(cols_.size()); }
  const SparseColumn& col(int j) const { return cols_[j]; }

  // y . A_j for a dense row vector y of length num_rows().
  double DotColumn(std::span<const double> y, int j) const;

 private:
  int num_rows_;
  std::vector<SparseColumn> cols_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_LP_SPARSE_MATRIX_H_
