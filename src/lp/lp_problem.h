// LpProblem: minimize c'x subject to row constraints, x >= 0.
//
// Rows are declared first (sense + right-hand side), then columns are added
// with their sparse coefficients. This matches how the scheduling LPs are
// naturally built: rows = flows + (port, time) capacities; columns = b_{e,t}.
#ifndef FLOWSCHED_LP_LP_PROBLEM_H_
#define FLOWSCHED_LP_LP_PROBLEM_H_

#include <span>
#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"

namespace flowsched {

enum class RowSense { kLe, kGe, kEq };

class LpProblem {
 public:
  int AddRow(RowSense sense, double rhs);

  // Returns the column index.
  int AddColumn(double objective,
                std::span<const std::pair<int, double>> entries);

  int num_rows() const { return static_cast<int>(senses_.size()); }
  int num_cols() const { return static_cast<int>(objective_.size()); }

  RowSense sense(int i) const { return senses_[i]; }
  double rhs(int i) const { return rhs_[i]; }
  double objective(int j) const { return objective_[j]; }
  const SparseColumn& col(int j) const { return matrix_.col(j); }

 private:
  std::vector<RowSense> senses_;
  std::vector<double> rhs_;
  std::vector<double> objective_;
  ColumnMatrix matrix_{0};
  bool frozen_ = false;  // Rows may not be added after the first column.
};

}  // namespace flowsched

#endif  // FLOWSCHED_LP_LP_PROBLEM_H_
