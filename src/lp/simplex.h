// Two-phase revised primal simplex with an explicit dense basis inverse.
//
// Design targets (see DESIGN.md §4): the scheduling LPs have a few thousand
// rows, tens of thousands of columns, and ~3 nonzeros per column. A revised
// simplex with a dense row-major B^{-1} gives O(m^2) per pivot with fully
// contiguous inner loops, which is fast at this scale and has no external
// dependencies. Basic optimal solutions (vertices) are guaranteed, which the
// iterative-rounding algorithms require.
//
// Guarantees and conventions:
//  * Rows may be <=, >= or =; variables are non-negative.
//  * Returned duals y satisfy objective == y . rhs at optimality, with
//    y_i <= 0 for <= rows and y_i >= 0 for >= rows (minimization convention).
//  * Anti-cycling: Dantzig pricing switches to Bland's rule after a stall.
#ifndef FLOWSCHED_LP_SIMPLEX_H_
#define FLOWSCHED_LP_SIMPLEX_H_

#include <string>
#include <vector>

#include "lp/lp_problem.h"

namespace flowsched {

enum class SimplexStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* ToString(SimplexStatus status);

struct SimplexOptions {
  // 0 means automatic: 2000 + 60 * num_rows + 2 * num_cols.
  long max_iterations = 0;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-9;
  // Consecutive degenerate pivots before switching to Bland's rule.
  int stall_limit = 512;
};

struct SimplexResult {
  SimplexStatus status = SimplexStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;      // Structural variable values (num_cols).
  std::vector<double> duals;  // Row duals (num_rows).
  long iterations = 0;
  // Max |Ax - b| violation over rows at the returned point (audit of
  // numerical drift in the explicit inverse).
  double primal_residual = 0.0;

  bool ok() const { return status == SimplexStatus::kOptimal; }
};

SimplexResult SolveLp(const LpProblem& lp, const SimplexOptions& options = {});

}  // namespace flowsched

#endif  // FLOWSCHED_LP_SIMPLEX_H_
