#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace flowsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Internal column kinds. Structural columns come from the LpProblem; one
// slack/surplus is added per inequality row; artificials complete the
// initial basis.
enum class ColKind { kStructural, kSlack, kArtificial };

class RevisedSimplex {
 public:
  RevisedSimplex(const LpProblem& lp, const SimplexOptions& options)
      : lp_(lp), opt_(options), m_(lp.num_rows()) {
    Setup();
  }

  SimplexResult Solve() {
    SimplexResult result;
    if (max_iterations_ == 0) {
      max_iterations_ = 2000 + 60L * m_ + 2L * lp_.num_cols();
    }
    // Phase 1: minimize the sum of artificial values.
    if (needs_phase1_) {
      SetPhaseCosts(/*phase1=*/true);
      const SimplexStatus ph1 = Iterate(/*phase1=*/true);
      if (ph1 == SimplexStatus::kIterationLimit) {
        result.status = ph1;
        result.iterations = iterations_;
        return result;
      }
      double artificial_sum = 0.0;
      for (int i = 0; i < m_; ++i) {
        if (kind_[basis_[i]] == ColKind::kArtificial) artificial_sum += xb_[i];
      }
      if (artificial_sum > 1e-6) {
        result.status = SimplexStatus::kInfeasible;
        result.iterations = iterations_;
        return result;
      }
      DriveOutArtificials();
    }
    // Phase 2: the real objective.
    SetPhaseCosts(/*phase1=*/false);
    const SimplexStatus ph2 = Iterate(/*phase1=*/false);
    result.status = ph2;
    result.iterations = iterations_;
    if (ph2 != SimplexStatus::kOptimal) return result;

    result.x.assign(lp_.num_cols(), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int j = basis_[i];
      if (kind_[j] == ColKind::kStructural) {
        result.x[j] = std::max(0.0, xb_[i]);
      }
    }
    double obj = 0.0;
    for (int j = 0; j < lp_.num_cols(); ++j) {
      obj += lp_.objective(j) * result.x[j];
    }
    result.objective = obj;
    // Duals: y = cB' * Binv, un-scaled back to the user's row orientation.
    ComputeY();
    result.duals.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) result.duals[i] = y_[i] * row_scale_[i];
    result.primal_residual = PrimalResidual(result.x);
    return result;
  }

 private:
  void Setup() {
    max_iterations_ = opt_.max_iterations;
    // Normalize rows to rhs >= 0 via row scaling in {+1, -1} (flipping the
    // sense accordingly); coefficients are scaled on access.
    row_scale_.assign(m_, 1.0);
    rhs_.assign(m_, 0.0);
    eff_sense_.resize(m_);
    for (int i = 0; i < m_; ++i) {
      double b = lp_.rhs(i);
      RowSense s = lp_.sense(i);
      if (b < 0.0) {
        b = -b;
        row_scale_[i] = -1.0;
        if (s == RowSense::kLe) {
          s = RowSense::kGe;
        } else if (s == RowSense::kGe) {
          s = RowSense::kLe;
        }
      }
      rhs_[i] = b;
      eff_sense_[i] = s;
    }
    // Column layout: structural, then slacks/surpluses, then artificials.
    const int n = lp_.num_cols();
    kind_.assign(n, ColKind::kStructural);
    slack_row_.assign(n, -1);
    for (int i = 0; i < m_; ++i) {
      if (eff_sense_[i] != RowSense::kEq) {
        kind_.push_back(ColKind::kSlack);
        slack_row_.push_back(i);
      }
    }
    // Initial basis: slack for <= rows, artificial otherwise.
    basis_.assign(m_, -1);
    needs_phase1_ = false;
    for (int i = 0; i < m_; ++i) {
      if (eff_sense_[i] == RowSense::kLe) {
        basis_[i] = SlackColumnFor(i);
      } else {
        basis_[i] = static_cast<int>(kind_.size());
        kind_.push_back(ColKind::kArtificial);
        slack_row_.push_back(i);
        needs_phase1_ = true;
      }
    }
    total_cols_ = static_cast<int>(kind_.size());
    in_basis_.assign(total_cols_, 0);
    for (int j : basis_) in_basis_[j] = 1;
    // B = identity initially.
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
    xb_ = rhs_;
    y_.assign(m_, 0.0);
    w_.assign(m_, 0.0);
  }

  int SlackColumnFor(int row) const {
    // Slack columns were appended in row order for non-equality rows.
    int idx = lp_.num_cols();
    for (int i = 0; i < row; ++i) {
      if (eff_sense_[i] != RowSense::kEq) ++idx;
    }
    FS_CHECK(kind_[idx] == ColKind::kSlack && slack_row_[idx] == row);
    return idx;
  }

  double ColumnCoefficient(int j, int row) const {
    // Only used on slack/artificial columns (single nonzero).
    FS_CHECK(kind_[j] != ColKind::kStructural);
    if (slack_row_[j] != row) return 0.0;
    if (kind_[j] == ColKind::kArtificial) return 1.0;
    return eff_sense_[row] == RowSense::kLe ? 1.0 : -1.0;
  }

  void SetPhaseCosts(bool phase1) {
    cost_.assign(total_cols_, 0.0);
    if (phase1) {
      for (int j = 0; j < total_cols_; ++j) {
        if (kind_[j] == ColKind::kArtificial) cost_[j] = 1.0;
      }
    } else {
      for (int j = 0; j < lp_.num_cols(); ++j) cost_[j] = lp_.objective(j);
    }
  }

  // y = cB' * Binv, accumulated row by row (contiguous).
  void ComputeY() {
    std::fill(y_.begin(), y_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double cb = cost_[basis_[i]];
      if (cb == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int r = 0; r < m_; ++r) y_[r] += cb * row[r];
    }
  }

  // Reduced cost of column j given current y.
  double ReducedCost(int j) const {
    double yaj;
    if (kind_[j] == ColKind::kStructural) {
      const SparseColumn& col = lp_.col(j);
      yaj = 0.0;
      for (std::size_t k = 0; k < col.rows.size(); ++k) {
        yaj += y_[col.rows[k]] * row_scale_[col.rows[k]] * col.values[k];
      }
    } else {
      const int r = slack_row_[j];
      yaj = y_[r] * ColumnCoefficient(j, r);
    }
    return cost_[j] - yaj;
  }

  // w = Binv * A_j.
  void ComputeDirection(int j) {
    std::fill(w_.begin(), w_.end(), 0.0);
    if (kind_[j] == ColKind::kStructural) {
      const SparseColumn& col = lp_.col(j);
      for (std::size_t k = 0; k < col.rows.size(); ++k) {
        const int r = col.rows[k];
        const double a = col.values[k] * row_scale_[r];
        if (a == 0.0) continue;
        for (int i = 0; i < m_; ++i) {
          w_[i] += binv_[static_cast<std::size_t>(i) * m_ + r] * a;
        }
      }
    } else {
      const int r = slack_row_[j];
      const double a = ColumnCoefficient(j, r);
      for (int i = 0; i < m_; ++i) {
        w_[i] = binv_[static_cast<std::size_t>(i) * m_ + r] * a;
      }
    }
  }

  SimplexStatus Iterate(bool phase1) {
    int stall = 0;
    while (iterations_ < max_iterations_) {
      ++iterations_;
      ComputeY();
      const bool bland = stall >= opt_.stall_limit;
      // Pricing. In phase 2, artificials may never enter.
      int entering = -1;
      double best = -opt_.optimality_tol;
      for (int j = 0; j < total_cols_; ++j) {
        if (in_basis_[j]) continue;
        if (kind_[j] == ColKind::kArtificial && !phase1) continue;
        const double d = ReducedCost(j);
        if (d < best) {
          entering = j;
          if (bland) break;  // First eligible index (Bland).
          best = d;
        }
      }
      if (entering == -1) return SimplexStatus::kOptimal;

      ComputeDirection(entering);
      // Ratio test. Basic artificials must stay at zero: a direction that
      // would increase one (w_i < 0) blocks at theta = 0 and pivots the
      // artificial out instead.
      int leaving = -1;
      double theta = kInf;
      double best_pivot = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double wi = w_[i];
        const bool basic_artificial =
            kind_[basis_[i]] == ColKind::kArtificial && !phase1;
        double ratio = kInf;
        if (wi > 1e-9) {
          ratio = std::max(0.0, xb_[i]) / wi;
        } else if (basic_artificial && wi < -1e-9) {
          ratio = 0.0;  // Block: the artificial would grow positive.
        } else {
          continue;
        }
        if (ratio < theta - 1e-12 ||
            (ratio < theta + 1e-12 && std::abs(wi) > best_pivot)) {
          theta = ratio;
          leaving = i;
          best_pivot = std::abs(wi);
        }
      }
      if (leaving == -1) {
        // No blocking row: unbounded ray (cannot happen in phase 1, whose
        // objective is bounded below by zero — if it does, it is numerical).
        return phase1 ? SimplexStatus::kIterationLimit
                      : SimplexStatus::kUnbounded;
      }
      stall = theta <= 1e-10 ? stall + 1 : 0;
      Pivot(entering, leaving, theta);
    }
    return SimplexStatus::kIterationLimit;
  }

  void Pivot(int entering, int leaving, double theta) {
    const double wr = w_[leaving];
    FS_CHECK_GT(std::abs(wr), 1e-12);
    // Update basic values.
    for (int i = 0; i < m_; ++i) {
      if (i == leaving) continue;
      xb_[i] -= theta * w_[i];
      if (xb_[i] < 0.0 && xb_[i] > -opt_.feasibility_tol) xb_[i] = 0.0;
    }
    xb_[leaving] = theta;
    // Update Binv: eliminate w in all rows except the pivot row.
    double* pivot_row = &binv_[static_cast<std::size_t>(leaving) * m_];
    const double inv = 1.0 / wr;
    for (int r = 0; r < m_; ++r) pivot_row[r] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == leaving) continue;
      const double f = w_[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int r = 0; r < m_; ++r) row[r] -= f * pivot_row[r];
    }
    in_basis_[basis_[leaving]] = 0;
    in_basis_[entering] = 1;
    basis_[leaving] = entering;
  }

  void DriveOutArtificials() {
    for (int i = 0; i < m_; ++i) {
      if (kind_[basis_[i]] != ColKind::kArtificial) continue;
      // Find any non-artificial, nonbasic column with a usable pivot in row i.
      int found = -1;
      for (int j = 0; j < total_cols_ && found == -1; ++j) {
        if (in_basis_[j] || kind_[j] == ColKind::kArtificial) continue;
        ComputeDirection(j);
        if (std::abs(w_[i]) > 1e-7) found = j;
      }
      if (found != -1) {
        // Degenerate pivot: the artificial sits at zero, so theta ~ 0.
        // (w_ still holds the direction for `found` from the search loop.)
        PivotRowSwap(found, i);
      }
      // If no pivot exists the row is linearly dependent; the artificial
      // stays basic at value zero and the ratio test keeps it there.
    }
  }

  // Pivot `entering` into basis position `row` at value xb_[row] (which must
  // be ~0 for this to preserve feasibility).
  void PivotRowSwap(int entering, int row) {
    const double wr = w_[row];
    FS_CHECK_GT(std::abs(wr), 1e-12);
    const double theta = xb_[row] / wr;
    Pivot(entering, row, theta);
  }

  const LpProblem& lp_;
  SimplexOptions opt_;
  int m_;
  long max_iterations_ = 0;
  long iterations_ = 0;
  bool needs_phase1_ = false;
  int total_cols_ = 0;

  std::vector<double> row_scale_;
  std::vector<double> rhs_;
  std::vector<RowSense> eff_sense_;
  std::vector<ColKind> kind_;
  std::vector<int> slack_row_;  // Row of the single nonzero, per non-structural col.
  std::vector<int> basis_;      // basis_[i] = column in basis position i.
  std::vector<char> in_basis_;
  std::vector<double> binv_;    // Row-major m x m.
  std::vector<double> xb_;      // Basic variable values.
  std::vector<double> cost_;    // Phase-dependent costs.
  std::vector<double> y_;       // Dual vector (scaled rows).
  std::vector<double> w_;       // FTRAN scratch.

  double PrimalResidual(const std::vector<double>& x) const {
    // Recompute structural row activity and compare against senses.
    std::vector<double> activity(m_, 0.0);
    for (int j = 0; j < lp_.num_cols(); ++j) {
      if (x[j] == 0.0) continue;
      const SparseColumn& col = lp_.col(j);
      for (std::size_t k = 0; k < col.rows.size(); ++k) {
        activity[col.rows[k]] += col.values[k] * x[j];
      }
    }
    double worst = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double b = lp_.rhs(i);
      const double a = activity[i];
      double violation = 0.0;
      switch (lp_.sense(i)) {
        case RowSense::kLe:
          violation = a - b;
          break;
        case RowSense::kGe:
          violation = b - a;
          break;
        case RowSense::kEq:
          violation = std::abs(a - b);
          break;
      }
      worst = std::max(worst, violation);
    }
    return worst;
  }
};

}  // namespace

const char* ToString(SimplexStatus status) {
  switch (status) {
    case SimplexStatus::kOptimal:
      return "optimal";
    case SimplexStatus::kInfeasible:
      return "infeasible";
    case SimplexStatus::kUnbounded:
      return "unbounded";
    case SimplexStatus::kIterationLimit:
      return "iteration_limit";
  }
  return "unknown";
}

SimplexResult SolveLp(const LpProblem& lp, const SimplexOptions& options) {
  FS_CHECK_GT(lp.num_rows(), 0);
  FS_CHECK_GT(lp.num_cols(), 0);
  return RevisedSimplex(lp, options).Solve();
}

}  // namespace flowsched
