#include "lp/sparse_matrix.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace flowsched {

int ColumnMatrix::AddColumn(SparseColumn col) {
  FS_CHECK_EQ(col.rows.size(), col.values.size());
  // Sort by row and merge duplicates so downstream code can assume clean
  // columns.
  std::vector<int> order(col.rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return col.rows[a] < col.rows[b]; });
  SparseColumn clean;
  clean.rows.reserve(col.rows.size());
  clean.values.reserve(col.values.size());
  for (int idx : order) {
    const int r = col.rows[idx];
    FS_CHECK(r >= 0 && r < num_rows_);
    if (!clean.rows.empty() && clean.rows.back() == r) {
      clean.values.back() += col.values[idx];
    } else {
      clean.Add(r, col.values[idx]);
    }
  }
  cols_.push_back(std::move(clean));
  return num_cols() - 1;
}

double ColumnMatrix::DotColumn(std::span<const double> y, int j) const {
  const SparseColumn& c = cols_[j];
  double acc = 0.0;
  for (std::size_t k = 0; k < c.rows.size(); ++k) {
    acc += y[c.rows[k]] * c.values[k];
  }
  return acc;
}

}  // namespace flowsched
