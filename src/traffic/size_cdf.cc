#include "traffic/size_cdf.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::string LineMsg(int line_no, const std::string& msg) {
  return "line " + std::to_string(line_no) + ": " + msg;
}

// Integral of ceil(x) over [0, T] for T >= 0: with n = ceil(T) - 1,
// F(T) = n(n+1)/2 + (T - n)(n + 1). Closed form, so MeanSegments never
// iterates segment by segment (unit=1 against multi-MB tails is fine).
double CeilIntegral(double t) {
  if (t <= 0.0) return 0.0;
  const double n = std::ceil(t) - 1.0;
  return n * (n + 1.0) / 2.0 + (t - n) * (n + 1.0);
}

// E[ceil(X)] for X uniform on [a, b] (0 <= a <= b).
double MeanCeilUniform(double a, double b) {
  if (b <= a) return std::max(1.0, std::ceil(b));
  return (CeilIntegral(b) - CeilIntegral(a)) / (b - a);
}

}  // namespace

bool SizeCdf::ParseText(const std::string& text, SizeCdf* cdf,
                        std::string* error) {
  // Parse into a local vector so *cdf stays empty on ANY failure path,
  // including errors after valid leading lines.
  cdf->points_.clear();
  std::vector<CdfPoint> points;
  int line_no = 0;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string size_tok, pct_tok, extra;
    if (!(fields >> size_tok)) continue;  // Blank / comment-only line.
    if (!(fields >> pct_tok)) {
      return Fail(error, LineMsg(line_no, "expected \"<size> <percent>\""));
    }
    if (fields >> extra) {
      return Fail(error, LineMsg(line_no, "trailing token \"" + extra +
                                              "\" after \"<size> <percent>\""));
    }
    CdfPoint p;
    std::size_t used = 0;
    try {
      p.size = std::stod(size_tok, &used);
    } catch (...) {
      used = 0;
    }
    if (used != size_tok.size()) {
      return Fail(error,
                  LineMsg(line_no, "bad size \"" + size_tok + "\""));
    }
    try {
      p.percent = std::stod(pct_tok, &used);
    } catch (...) {
      used = 0;
    }
    if (used != pct_tok.size()) {
      return Fail(error,
                  LineMsg(line_no, "bad percent \"" + pct_tok + "\""));
    }
    if (!(p.size >= 0.0) || !std::isfinite(p.size)) {
      return Fail(error, LineMsg(line_no, "size must be >= 0 and finite"));
    }
    if (!(p.percent >= 0.0 && p.percent <= 100.0)) {
      return Fail(error, LineMsg(line_no, "percent must be in [0, 100]"));
    }
    if (!points.empty()) {
      if (p.size < points.back().size) {
        return Fail(error,
                    LineMsg(line_no, "sizes must be non-decreasing"));
      }
      if (p.percent < points.back().percent) {
        return Fail(error,
                    LineMsg(line_no, "percents must be non-decreasing"));
      }
    }
    points.push_back(p);
  }
  if (points.empty()) {
    return Fail(error, "empty CDF: no \"<size> <percent>\" data lines");
  }
  if (points.back().percent != 100.0) {
    return Fail(error, "last percent must be 100 (got " +
                           std::to_string(points.back().percent) + ")");
  }
  cdf->points_ = std::move(points);
  return true;
}

bool SizeCdf::ParseFile(const std::string& path, SizeCdf* cdf,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    cdf->points_.clear();
    return Fail(error, "cannot open CDF file \"" + path + "\"");
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string err;
  if (!ParseText(text.str(), cdf, &err)) {
    return Fail(error, path + ": " + err);
  }
  return true;
}

double SizeCdf::MinSize() const {
  FS_CHECK(!points_.empty());
  return points_.front().size;
}

double SizeCdf::MaxSize() const {
  FS_CHECK(!points_.empty());
  return points_.back().size;
}

double SizeCdf::Mean() const {
  FS_CHECK(!points_.empty());
  // Mass below the first point is a point mass at the first size.
  double mean = points_.front().percent / 100.0 * points_.front().size;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = (points_[i].percent - points_[i - 1].percent) / 100.0;
    mean += mass * 0.5 * (points_[i - 1].size + points_[i].size);
  }
  return mean;
}

double SizeCdf::MeanSegments(double unit) const {
  FS_CHECK(!points_.empty());
  FS_CHECK_GT(unit, 0.0);
  double mean = points_.front().percent / 100.0 *
                std::max(1.0, std::ceil(points_.front().size / unit));
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = (points_[i].percent - points_[i - 1].percent) / 100.0;
    if (mass <= 0.0) continue;
    mean += mass * std::max(1.0, MeanCeilUniform(points_[i - 1].size / unit,
                                                 points_[i].size / unit));
  }
  return mean;
}

double SizeCdf::Sample(double u) const {
  FS_CHECK(!points_.empty());
  const double target = u * 100.0;
  if (target <= points_.front().percent) return points_.front().size;
  // First point with percent >= target; its predecessor exists and has a
  // strictly smaller percent, so the interpolation below never divides by 0.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), target,
      [](const CdfPoint& p, double t) { return p.percent < t; });
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  const double frac = (target - lo.percent) / (hi.percent - lo.percent);
  return lo.size + frac * (hi.size - lo.size);
}

}  // namespace flowsched
