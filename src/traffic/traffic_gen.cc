#include "traffic/traffic_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace flowsched {
namespace {

void ValidateConfig(const TrafficConfig& config) {
  FS_CHECK_GT(config.num_inputs, 0);
  FS_CHECK_GT(config.num_outputs, 0);
  FS_CHECK_GE(config.port_capacity, 1);
  FS_CHECK_GE(config.load, 0.0);
  FS_CHECK(!config.cdf.empty());
  FS_CHECK_GE(config.unit, 0.0);
  FS_CHECK_GT(config.num_rounds, 0);
  FS_CHECK_GE(config.min_width, 1);
  FS_CHECK_GE(config.max_width, 0);
  if (config.max_width > 0) {
    FS_CHECK_GE(config.max_width, config.min_width);
    FS_CHECK(config.width_skew > 0.0 && config.width_skew <= 1.0);
  }
}

int SampleSegments(const TrafficConfig& config, double unit, Rng& rng) {
  const double size = config.cdf.Sample(rng.UniformReal());
  // Segment counts are bounded by MaxSize()/unit; the auto unit keeps that
  // at 64, and even unit=1 against a multi-MB tail stays well inside int.
  const double segments = std::ceil(size / unit);
  return segments < 1.0 ? 1 : static_cast<int>(segments);
}

}  // namespace

double TrafficUnit(const TrafficConfig& config) {
  if (config.unit > 0.0) return config.unit;
  const double auto_unit =
      std::max(config.cdf.Mean() / 4.0, config.cdf.MaxSize() / 64.0);
  // Degenerate all-zero-size CDFs still need a positive unit.
  return auto_unit > 0.0 ? auto_unit : 1.0;
}

double MeanTrafficWidth(const TrafficConfig& config) {
  if (config.max_width <= 0) return 1.0;
  const int span = config.max_width - config.min_width + 1;
  double weight_sum = 0.0;
  double mean = 0.0;
  double weight = 1.0;
  for (int k = 0; k < span; ++k) {
    weight_sum += weight;
    mean += weight * (config.min_width + k);
    weight *= config.width_skew;
  }
  return mean / weight_sum;
}

double MeanTrafficRequestsPerRound(const TrafficConfig& config) {
  const double mean_segments = config.cdf.MeanSegments(TrafficUnit(config));
  const double target = config.load * config.num_inputs *
                        static_cast<double>(config.port_capacity);
  return target / (MeanTrafficWidth(config) * mean_segments);
}

void AppendTrafficRound(const TrafficConfig& config, Round t, Rng& rng,
                        CoflowId* next_coflow, std::vector<Flow>* out) {
  const double unit = TrafficUnit(config);
  const int span = config.max_width - config.min_width + 1;
  const int requests = rng.Poisson(MeanTrafficRequestsPerRound(config));
  for (int c = 0; c < requests; ++c) {
    const bool tagged = config.max_width > 0;
    const int width =
        !tagged ? 1
        : config.width_skew >= 1.0
            ? rng.UniformInt(config.min_width, config.max_width)
            : config.min_width - 1 +
                  rng.TruncatedGeometric(config.width_skew, span);
    const CoflowId coflow = tagged ? (*next_coflow)++ : kNoCoflow;
    for (int k = 0; k < width; ++k) {
      Flow e;
      e.src = rng.UniformInt(0, config.num_inputs - 1);
      e.dst = rng.UniformInt(0, config.num_outputs - 1);
      e.release = t;
      e.coflow = coflow;
      const int segments = SampleSegments(config, unit, rng);
      for (int s = 0; s < segments; ++s) out->push_back(e);
    }
  }
}

Instance GenerateTraffic(const TrafficConfig& config) {
  ValidateConfig(config);
  Rng rng(config.seed);
  Instance instance(SwitchSpec::Uniform(config.num_inputs, config.num_outputs,
                                        config.port_capacity),
                    {});
  CoflowId next_coflow = 0;
  std::vector<Flow> round;
  for (Round t = 0; t < config.num_rounds; ++t) {
    round.clear();
    AppendTrafficRound(config, t, rng, &next_coflow, &round);
    for (const Flow& e : round) {
      instance.AddFlow(e.src, e.dst, e.demand, e.release, e.coflow);
    }
  }
  FS_CHECK(!instance.ValidationError().has_value());
  return instance;
}

}  // namespace flowsched
