#include "traffic/builtin_cdfs.h"

namespace flowsched {
namespace {

// Keep these byte-identical to traffic/cdf/<name>.cdf — the sync test in
// tests/traffic/builtin_cdfs_test.cc compares them against the files.
constexpr char kWebSearch[] =
    "# Web-search flow-size CDF (DCTCP-style query/response traffic), "
    "bytes.\n"
    "# Approximation of the published distribution shipped with HPCC's\n"
    "# traffic_gen; piecewise-linear between points, last percent is 100.\n"
    "0 0\n"
    "10000 15\n"
    "20000 20\n"
    "30000 30\n"
    "50000 40\n"
    "80000 53\n"
    "200000 60\n"
    "1000000 70\n"
    "2000000 80\n"
    "5000000 90\n"
    "10000000 97\n"
    "30000000 100\n";

constexpr char kFbHdp[] =
    "# Facebook Hadoop flow-size CDF, bytes. Mostly tiny control/shuffle "
    "flows\n"
    "# with a long heavy tail. Approximation of the published distribution\n"
    "# shipped with HPCC's traffic_gen.\n"
    "0 0\n"
    "100 3\n"
    "200 8\n"
    "300 15\n"
    "400 20\n"
    "500 25\n"
    "1000 40\n"
    "2000 52\n"
    "5000 60\n"
    "10000 65\n"
    "20000 70\n"
    "50000 77\n"
    "100000 82\n"
    "500000 90\n"
    "1000000 93\n"
    "5000000 97\n"
    "10000000 99\n"
    "30000000 100\n";

constexpr char kAliStorage[] =
    "# Alibaba storage-service flow-size CDF, bytes. Approximation of the\n"
    "# published distribution shipped with HPCC's traffic_gen.\n"
    "0 0\n"
    "1000 25\n"
    "2000 35\n"
    "5000 50\n"
    "10000 60\n"
    "20000 68\n"
    "50000 75\n"
    "100000 80\n"
    "200000 85\n"
    "500000 90\n"
    "1000000 93\n"
    "2000000 96\n"
    "5000000 98\n"
    "10000000 99\n"
    "50000000 100\n";

}  // namespace

const char* BuiltinCdfText(const std::string& name) {
  if (name == "websearch") return kWebSearch;
  if (name == "fbhdp") return kFbHdp;
  if (name == "alistorage") return kAliStorage;
  return nullptr;
}

std::vector<std::string> BuiltinCdfNames() {
  return {"websearch", "fbhdp", "alistorage"};
}

}  // namespace flowsched
