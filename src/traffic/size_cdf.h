// Empirical flow-size distributions in the HPCC traffic_gen format.
//
// A CDF file is a sequence of "<size> <cumulative-percent>" lines (bytes,
// percent in [0, 100]), '#' comments and blank lines ignored. Sizes and
// percents must both be non-decreasing and the last percent must be exactly
// 100. Between consecutive points the CDF is piecewise linear (a uniform
// size density); a repeated size with a percent jump is a point mass.
// Probability mass below the first point is a point mass at the first size.
//
// Sampling is by inverse transform on a uniform [0, 1) draw, so generators
// consume exactly one RNG draw per size — the property the batch/streaming
// byte-identity contract (src/serve/) relies on.
#ifndef FLOWSCHED_TRAFFIC_SIZE_CDF_H_
#define FLOWSCHED_TRAFFIC_SIZE_CDF_H_

#include <string>
#include <vector>

namespace flowsched {

struct CdfPoint {
  double size = 0.0;     // Flow size (bytes).
  double percent = 0.0;  // P(S <= size) * 100.
};

class SizeCdf {
 public:
  // Parses CDF text / a CDF file. On failure returns false and sets *error
  // to a message with a 1-based line number ("line 3: ..."). *cdf is left
  // empty on failure.
  static bool ParseText(const std::string& text, SizeCdf* cdf,
                        std::string* error);
  static bool ParseFile(const std::string& path, SizeCdf* cdf,
                        std::string* error);

  bool empty() const { return points_.empty(); }
  const std::vector<CdfPoint>& points() const { return points_; }

  double MinSize() const;
  double MaxSize() const;

  // Exact E[S] of the piecewise-linear distribution.
  double Mean() const;

  // Exact E[max(1, ceil(S / unit))]: the expected number of unit-demand
  // segments a sampled flow expands into. Closed form per linear piece
  // (integral of ceil over a uniform interval), so it stays O(points) even
  // when max_size/unit is in the millions. Requires unit > 0.
  double MeanSegments(double unit) const;

  // Inverse transform: the size at quantile u in [0, 1).
  double Sample(double u) const;

 private:
  std::vector<CdfPoint> points_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_TRAFFIC_SIZE_CDF_H_
