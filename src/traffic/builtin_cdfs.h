// The three published datacenter flow-size distributions, embedded so
// `cdf:dist=...` specs work without any file on disk (sweep tasks, the
// streaming daemon, CI). The text is byte-identical to the checked-in
// `traffic/cdf/<name>.cdf` files; tests/traffic keeps the two in sync.
#ifndef FLOWSCHED_TRAFFIC_BUILTIN_CDFS_H_
#define FLOWSCHED_TRAFFIC_BUILTIN_CDFS_H_

#include <string>
#include <vector>

namespace flowsched {

// CDF text for `name` ("websearch", "fbhdp", "alistorage"), nullptr when
// unknown.
const char* BuiltinCdfText(const std::string& name);

// The embedded distribution names, in a stable order.
std::vector<std::string> BuiltinCdfNames();

}  // namespace flowsched

#endif  // FLOWSCHED_TRAFFIC_BUILTIN_CDFS_H_
