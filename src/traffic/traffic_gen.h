// CDF-driven realistic workloads: load-calibrated Poisson arrivals with
// empirical flow sizes (traffic/size_cdf.h), à la HPCC's traffic_gen.
//
// Each round draws Poisson(lambda) *requests*; a request picks uniform
// random ports and a size from the CDF, then expands into
// max(1, ceil(size / unit)) unit-demand member flows released together —
// the segmented form every matching-based policy accepts. With
// max_width >= 1 a request is instead a coflow: `width` members (truncated
// geometric, like workload/coflow_gen.h), each with its own ports and size,
// all tagged with a fresh coflow id.
//
// Calibration: lambda is derived from the requested per-port load so that
//   E[unit-demand arrivals per round] = load * num_inputs * port_capacity,
// i.e. lambda = load * inputs * cap / (E[width] * E[segments]) with
// E[segments] = cdf.MeanSegments(unit) computed exactly.
#ifndef FLOWSCHED_TRAFFIC_TRAFFIC_GEN_H_
#define FLOWSCHED_TRAFFIC_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "traffic/size_cdf.h"
#include "util/rng.h"

namespace flowsched {

struct TrafficConfig {
  int num_inputs = 16;
  int num_outputs = 16;
  Capacity port_capacity = 1;
  double load = 0.9;  // Target offered load per input port, in [0, ...).
  SizeCdf cdf;
  // Bytes per unit-demand segment; 0 = auto: max(mean/4, max/64), which
  // bounds a single request at 64 segments and keeps the sampled offered
  // load within a fraction of a percent of the target.
  double unit = 0.0;
  int num_rounds = 10;
  // Coflow tagging: max_width = 0 leaves flows untagged. Otherwise width is
  // drawn from [min_width, max_width] with P(w) ~ width_skew^(w-min_width).
  int min_width = 1;
  int max_width = 0;
  double width_skew = 1.0;
  std::uint64_t seed = 1;
};

// The resolved segment size (config.unit, or the auto rule when 0).
double TrafficUnit(const TrafficConfig& config);

// Expected requests per round (the calibrated Poisson mean).
double MeanTrafficRequestsPerRound(const TrafficConfig& config);

// Expected coflow width (1.0 when untagged).
double MeanTrafficWidth(const TrafficConfig& config);

// Generates a realistic-traffic instance; deterministic in `config.seed`.
Instance GenerateTraffic(const TrafficConfig& config);

// Appends round t's arrivals to *out (release = t, ids left at 0, coflow
// tags allocated from *next_coflow when tagging), drawing from `rng`
// exactly as GenerateTraffic does for one round — the sharing point with
// the streaming source (src/serve/), which replays the identical instance
// on finite runs. `config.num_rounds` is ignored; pacing belongs to the
// caller. Precondition: config already validated (GenerateTraffic checks).
void AppendTrafficRound(const TrafficConfig& config, Round t, Rng& rng,
                        CoflowId* next_coflow, std::vector<Flow>* out);

}  // namespace flowsched

#endif  // FLOWSCHED_TRAFFIC_TRAFFIC_GEN_H_
