#include "scenario/scenario.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "util/check.h"

namespace flowsched {
namespace {

// Largest accepted round / port / capacity literal. Keeps every later
// arithmetic step (round comparisons, capacity sums) far from overflow.
constexpr std::int64_t kMaxLiteral = std::int64_t{1} << 30;

std::string LineTag(int line) {
  return "line " + std::to_string(line) + ": ";
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// Splits on spaces, tabs, CRs, and commas (so a script is equally valid as
// bare text or CSV columns).
void Tokenize(const std::string& line, std::vector<std::string>* tokens) {
  auto is_sep = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == ',';
  };
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_sep(line[i])) ++i;
    const std::size_t start = i;
    while (i < line.size() && !is_sep(line[i])) ++i;
    if (i > start) tokens->push_back(line.substr(start, i - start));
  }
}

bool ParseLiteral(const std::string& s, std::int64_t* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

// MIGRATE's <frac> is the one real-valued script argument.
bool ParseFraction(const std::string& s, double* out) {
  std::size_t used = 0;
  try {
    *out = std::stod(s, &used);
  } catch (...) {
    return false;
  }
  return used == s.size() && *out >= 0.0 && *out <= 1.0;
}

struct VerbSpec {
  const char* name;
  ScenarioEvent::Kind kind;
  int args;  // Argument count after the verb (t + target [+ capacity]).
};

constexpr VerbSpec kVerbs[] = {
    {"PORT_DOWN", ScenarioEvent::Kind::kPortDown, 2},
    {"PORT_UP", ScenarioEvent::Kind::kPortUp, 2},
    {"SET_CAPACITY", ScenarioEvent::Kind::kSetCapacity, 3},
    {"POD_DOWN", ScenarioEvent::Kind::kPodDown, 2},
    {"POD_UP", ScenarioEvent::Kind::kPodUp, 2},
};

// Mirrors the fabric block partitioner (fabric/fabric_partition.cc): pod s
// owns hosts [s*per, (s+1)*per) with the tail folded into the last pod.
int PodOfHost(int host, int num_hosts, int pods) {
  const int per = (num_hosts + pods - 1) / pods;
  return std::min(host / per, pods - 1);
}

}  // namespace

bool ScenarioScript::Parse(std::istream& in, ScenarioScript* script,
                           std::string* error) {
  script->events_.clear();
  script->pods_ = 0;
  std::string line;
  std::vector<std::string> tokens;
  for (int line_no = 1; std::getline(in, line); ++line_no) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    tokens.clear();
    Tokenize(line, &tokens);
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];
    if (verb == "PODS") {
      if (tokens.size() != 2) {
        return Fail(error, LineTag(line_no) + "PODS wants: PODS <k>");
      }
      std::int64_t k = 0;
      if (!ParseLiteral(tokens[1], &k) || k < 1 || k > kMaxLiteral) {
        return Fail(error, LineTag(line_no) + "PODS count must be a positive"
                                              " integer, got \"" +
                               tokens[1] + "\"");
      }
      if (script->pods_ != 0) {
        return Fail(error, LineTag(line_no) + "duplicate PODS header");
      }
      script->pods_ = static_cast<int>(k);
      continue;
    }
    if (verb == "MIGRATE") {
      // Its own branch, like PODS: the frac argument is a real number, not
      // an integer literal.
      if (tokens.size() != 5) {
        return Fail(error, LineTag(line_no) +
                               "MIGRATE wants: MIGRATE <t> <src> <dst> <frac>");
      }
      std::int64_t t = 0, src = 0, dst = 0;
      if (!ParseLiteral(tokens[1], &t) || !ParseLiteral(tokens[2], &src) ||
          !ParseLiteral(tokens[3], &dst)) {
        return Fail(error, LineTag(line_no) +
                               "MIGRATE round and hosts must be decimal "
                               "integers");
      }
      if (t < 0 || t > kMaxLiteral || src < 0 || src > kMaxLiteral ||
          dst < 0 || dst > kMaxLiteral) {
        return Fail(error, LineTag(line_no) +
                               "MIGRATE round and hosts must be in [0, 2^30]");
      }
      double frac = 0.0;
      if (!ParseFraction(tokens[4], &frac)) {
        return Fail(error, LineTag(line_no) +
                               "MIGRATE fraction must be a real in [0, 1], "
                               "got \"" +
                               tokens[4] + "\"");
      }
      ScenarioEvent event;
      event.kind = ScenarioEvent::Kind::kMigrate;
      event.t = static_cast<Round>(t);
      event.target = static_cast<int>(src);
      event.dst = static_cast<int>(dst);
      event.frac = frac;
      event.line = line_no;
      script->events_.push_back(event);
      continue;
    }
    const VerbSpec* spec = nullptr;
    for (const VerbSpec& v : kVerbs) {
      if (verb == v.name) {
        spec = &v;
        break;
      }
    }
    if (spec == nullptr) {
      return Fail(error, LineTag(line_no) + "unknown scenario verb \"" + verb +
                             "\" (want PORT_DOWN, PORT_UP, SET_CAPACITY, "
                             "POD_DOWN, POD_UP, MIGRATE, or PODS)");
    }
    if (static_cast<int>(tokens.size()) != spec->args + 1) {
      std::string usage = std::string(spec->name) + " <t> <" +
                          (spec->kind == ScenarioEvent::Kind::kPodDown ||
                                   spec->kind == ScenarioEvent::Kind::kPodUp
                               ? "pod"
                               : "port") +
                          ">";
      if (spec->kind == ScenarioEvent::Kind::kSetCapacity) usage += " <cap>";
      return Fail(error, LineTag(line_no) + verb + " wants: " + usage);
    }
    std::int64_t t = 0, target = 0, cap = 0;
    if (!ParseLiteral(tokens[1], &t) || !ParseLiteral(tokens[2], &target) ||
        (spec->args == 3 && !ParseLiteral(tokens[3], &cap))) {
      return Fail(error, LineTag(line_no) + verb +
                             " arguments must be decimal integers");
    }
    if (t < 0 || t > kMaxLiteral) {
      return Fail(error,
                  LineTag(line_no) + verb + " round must be in [0, 2^30]");
    }
    if (target < 0 || target > kMaxLiteral) {
      return Fail(error, LineTag(line_no) + verb +
                             " port/pod index must be in [0, 2^30]");
    }
    if (spec->args == 3 && (cap < 0 || cap > kMaxLiteral)) {
      return Fail(error, LineTag(line_no) +
                             "SET_CAPACITY capacity must be in [0, 2^30]");
    }
    if ((spec->kind == ScenarioEvent::Kind::kPodDown ||
         spec->kind == ScenarioEvent::Kind::kPodUp) &&
        script->pods_ == 0) {
      return Fail(error, LineTag(line_no) + verb +
                             " needs a PODS <k> header earlier in the script");
    }
    ScenarioEvent event;
    event.kind = spec->kind;
    event.t = static_cast<Round>(t);
    event.target = static_cast<int>(target);
    event.capacity = static_cast<Capacity>(cap);
    event.line = line_no;
    script->events_.push_back(event);
  }
  // Same-round events keep file order (stable), so a script can express
  // "down then immediately shrink the neighbor" deterministically.
  std::stable_sort(
      script->events_.begin(), script->events_.end(),
      [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.t < b.t; });
  return true;
}

bool ScenarioScript::ParseText(const std::string& text, ScenarioScript* script,
                               std::string* error) {
  std::istringstream in(text);
  return Parse(in, script, error);
}

bool ScenarioScript::ParseFile(const std::string& path, ScenarioScript* script,
                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return Fail(error, "cannot open scenario file \"" + path + "\"");
  }
  return Parse(in, script, error);
}

bool ScenarioScript::has_migrations() const {
  for (const ScenarioEvent& e : events_) {
    if (e.kind == ScenarioEvent::Kind::kMigrate) return true;
  }
  return false;
}

bool ScenarioRuntime::Bind(const ScenarioScript& script, const SwitchSpec& base,
                           std::string* error) {
  base_ = base;
  ops_.clear();
  migrations_.clear();
  const int num_hosts = std::max(base.num_inputs(), base.num_outputs());
  auto push_host = [&](Round t, PortId host, Capacity cap) {
    if (host < base.num_inputs()) ops_.push_back({t, true, host, cap});
    if (host < base.num_outputs()) ops_.push_back({t, false, host, cap});
  };
  for (const ScenarioEvent& e : script.events()) {
    Capacity cap = 0;
    switch (e.kind) {
      case ScenarioEvent::Kind::kPortDown:
        cap = 0;
        break;
      case ScenarioEvent::Kind::kPortUp:
        cap = kScenarioRestore;
        break;
      case ScenarioEvent::Kind::kSetCapacity:
        cap = e.capacity;
        break;
      case ScenarioEvent::Kind::kPodDown:
      case ScenarioEvent::Kind::kPodUp: {
        if (e.target >= script.pods()) {
          return Fail(error, LineTag(e.line) + "pod " +
                                 std::to_string(e.target) +
                                 " out of range (PODS " +
                                 std::to_string(script.pods()) + ")");
        }
        cap = e.kind == ScenarioEvent::Kind::kPodDown ? 0 : kScenarioRestore;
        for (PortId h = 0; h < num_hosts; ++h) {
          if (PodOfHost(h, num_hosts, script.pods()) == e.target) {
            push_host(e.t, h, cap);
          }
        }
        continue;
      }
      case ScenarioEvent::Kind::kMigrate: {
        // Load movement, not a capacity op: collected as a rule the admit
        // loops consult. Events are already stable-sorted by round.
        for (const int host : {e.target, e.dst}) {
          if (host >= num_hosts) {
            return Fail(error, LineTag(e.line) + "port " +
                                   std::to_string(host) +
                                   " out of range (switch has " +
                                   std::to_string(num_hosts) + " hosts)");
          }
        }
        migrations_.push_back({e.t, e.target, e.dst, e.frac});
        continue;
      }
    }
    if (e.target >= num_hosts) {
      return Fail(error, LineTag(e.line) + "port " + std::to_string(e.target) +
                             " out of range (switch has " +
                             std::to_string(num_hosts) + " hosts)");
    }
    push_host(e.t, e.target, cap);
  }
  return FinishBind(error);
}

bool ScenarioRuntime::BindOps(std::vector<ScenarioOp> ops,
                              const SwitchSpec& base, std::string* error) {
  base_ = base;
  ops_ = std::move(ops);
  // Pre-projected ops never carry migrations: the fabric runner applies
  // MIGRATE to the materialized instance before partitioning.
  migrations_.clear();
  std::stable_sort(ops_.begin(), ops_.end(),
                   [](const ScenarioOp& a, const ScenarioOp& b) {
                     return a.t < b.t;
                   });
  for (const ScenarioOp& op : ops_) {
    const int limit = op.input_side ? base.num_inputs() : base.num_outputs();
    if (op.port < 0 || op.port >= limit) {
      return Fail(error, "scenario op targets " +
                             std::string(op.input_side ? "input" : "output") +
                             " port " + std::to_string(op.port) +
                             " out of range [0, " + std::to_string(limit) +
                             ")");
    }
  }
  return FinishBind(error);
}

bool ScenarioRuntime::FinishBind(std::string* /*error*/) {
  eff_in_ = base_.input_capacities();
  eff_out_ = base_.output_capacities();
  next_op_ = 0;
  diff_sides_ = 0;
  down_sides_ = 0;
  migration_rng_ = Rng(kMigrationSeed);
  migrated_flows_ = 0;
  view_dirty_ = true;
  bound_ = true;
  return true;
}

void ScenarioRuntime::AdvanceTo(Round t) {
  while (next_op_ < ops_.size() && ops_[next_op_].t <= t) {
    const ScenarioOp& op = ops_[next_op_++];
    ApplySide(op.input_side, op.port, op.cap);
  }
}

void ScenarioRuntime::ApplySide(bool input_side, PortId p, Capacity cap) {
  const Capacity base =
      input_side ? base_.input_capacity(p) : base_.output_capacity(p);
  // Degradation only: a SET_CAPACITY above base clamps to base (realized
  // schedules must stay valid against the declared switch).
  const Capacity eff = cap == kScenarioRestore ? base : std::min(cap, base);
  std::vector<Capacity>& side = input_side ? eff_in_ : eff_out_;
  const Capacity old = side[p];
  if (old == eff) return;  // Double PORT_DOWN etc. is an idempotent no-op.
  if (old == 0) --down_sides_;
  if (eff == 0) ++down_sides_;
  if (old == base) ++diff_sides_;
  if (eff == base) --diff_sides_;
  side[p] = eff;
  view_dirty_ = true;
}

const SwitchSpec& ScenarioRuntime::view() const {
  if (view_dirty_) {
    std::vector<Capacity> in = eff_in_;
    std::vector<Capacity> out = eff_out_;
    for (Capacity& c : in) c = std::max<Capacity>(c, 1);
    for (Capacity& c : out) c = std::max<Capacity>(c, 1);
    view_ = SwitchSpec(std::move(in), std::move(out));
    view_dirty_ = false;
  }
  return view_;
}

bool ScenarioRuntime::HasOpAfter(Round t) const {
  // Ops are sorted by round, so it suffices to look at the unapplied tail.
  for (std::size_t i = next_op_; i < ops_.size(); ++i) {
    if (ops_[i].t > t) return true;
  }
  return false;
}

namespace {

// The one rule walk both RemapArrival and ApplyScenarioMigrations use:
// identical branch structure means identical coin consumption, which is
// what keeps batch / streaming / fabric migrations byte-identical. A coin
// is drawn whenever a side matches a rule's src, whether or not the
// destination exists on that side — consumption depends only on the
// arrival sequence, never on switch shape quirks.
bool ApplyMigrationRules(const std::vector<MigrationRule>& rules, Round t,
                         Rng& rng, int num_inputs, int num_outputs,
                         PortId* src, PortId* dst) {
  bool changed = false;
  for (const MigrationRule& rule : rules) {
    if (rule.t > t) break;  // Rules are sorted by round.
    if (*src == rule.src) {
      const bool hit = rng.UniformReal() < rule.frac;
      if (hit && rule.dst < num_inputs) {
        *src = rule.dst;
        changed = true;
      }
    }
    if (*dst == rule.src) {
      const bool hit = rng.UniformReal() < rule.frac;
      if (hit && rule.dst < num_outputs) {
        *dst = rule.dst;
        changed = true;
      }
    }
  }
  return changed;
}

std::vector<MigrationRule> RulesOf(const ScenarioScript& script) {
  std::vector<MigrationRule> rules;
  for (const ScenarioEvent& e : script.events()) {
    if (e.kind == ScenarioEvent::Kind::kMigrate) {
      rules.push_back({e.t, e.target, e.dst, e.frac});
    }
  }
  return rules;  // Events are stable-sorted by round already.
}

}  // namespace

bool ScenarioRuntime::RemapArrival(Round t, PortId* src, PortId* dst) {
  if (migrations_.empty()) return false;
  const bool changed =
      ApplyMigrationRules(migrations_, t, migration_rng_, base_.num_inputs(),
                          base_.num_outputs(), src, dst);
  if (changed) ++migrated_flows_;
  return changed;
}

bool ScenarioRuntime::ForceHostDown(PortId h, std::string* error) {
  FS_CHECK(bound_);
  const int num_hosts = std::max(base_.num_inputs(), base_.num_outputs());
  if (h < 0 || h >= num_hosts) {
    return Fail(error, "port " + std::to_string(h) +
                           " out of range (switch has " +
                           std::to_string(num_hosts) + " hosts)");
  }
  if (h < base_.num_inputs()) ApplySide(true, h, 0);
  if (h < base_.num_outputs()) ApplySide(false, h, 0);
  return true;
}

bool ScenarioRuntime::ForceHostUp(PortId h, std::string* error) {
  FS_CHECK(bound_);
  const int num_hosts = std::max(base_.num_inputs(), base_.num_outputs());
  if (h < 0 || h >= num_hosts) {
    return Fail(error, "port " + std::to_string(h) +
                           " out of range (switch has " +
                           std::to_string(num_hosts) + " hosts)");
  }
  if (h < base_.num_inputs()) ApplySide(true, h, kScenarioRestore);
  if (h < base_.num_outputs()) ApplySide(false, h, kScenarioRestore);
  return true;
}

bool LoadScenarioParam(const std::string& value, ScenarioScript* script,
                       std::string* error) {
  if (value.empty()) {
    *script = ScenarioScript();
    return true;
  }
  constexpr std::string_view kInline = "inline:";
  if (value.rfind(kInline, 0) == 0) {
    std::string text = value.substr(kInline.size());
    std::replace(text.begin(), text.end(), ';', '\n');
    return ScenarioScript::ParseText(text, script, error);
  }
  return ScenarioScript::ParseFile(value, script, error);
}

Capacity MigrationCapacityAllowance(const ScenarioScript& script,
                                    const SwitchSpec& base) {
  std::vector<int> dsts;
  for (const ScenarioEvent& e : script.events()) {
    if (e.kind == ScenarioEvent::Kind::kMigrate) dsts.push_back(e.dst);
  }
  std::sort(dsts.begin(), dsts.end());
  dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
  Capacity total = 0;
  for (const int d : dsts) {
    const Capacity in = d < base.num_inputs() ? base.input_capacity(d) : 0;
    const Capacity out = d < base.num_outputs() ? base.output_capacity(d) : 0;
    total += std::max(in, out);
  }
  return total;
}

Instance ApplyScenarioMigrations(const Instance& instance,
                                 const ScenarioScript& script,
                                 long long* migrated_flows) {
  const std::vector<MigrationRule> rules = RulesOf(script);
  std::vector<Flow> flows = instance.flows();
  // Admission order: (release, id). A stable sort of ids by release is
  // exactly what the simulators' admit loops walk.
  std::vector<int> order(flows.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return flows[a].release < flows[b].release;
  });
  Rng rng(kMigrationSeed);
  long long migrated = 0;
  const SwitchSpec& sw = instance.sw();
  for (const int idx : order) {
    Flow& f = flows[idx];
    if (ApplyMigrationRules(rules, f.release, rng, sw.num_inputs(),
                            sw.num_outputs(), &f.src, &f.dst)) {
      ++migrated;
    }
  }
  Instance out(sw, {});
  out.Reserve(instance.num_flows());
  for (const Flow& f : flows) {
    out.AddFlow(f.src, f.dst, f.demand, f.release, f.coflow);
  }
  out.set_source(instance.source());
  if (migrated_flows != nullptr) *migrated_flows = migrated;
  return out;
}

}  // namespace flowsched
