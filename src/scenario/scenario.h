// Fault-injection scenario engine: timed events that reshape a switch's
// effective port capacities mid-run (ROADMAP open item 2b — the SWARM-SIM
// scenario_parser idea recast for the single-switch model).
//
// A ScenarioScript is parsed from line-oriented text (or CSV — commas are
// treated as separators). Verbs, one event per line:
//
//   PODS <k>                  header: partition hosts into k equal pods
//   PORT_DOWN <t> <p>         at round t, host p loses both port sides
//   PORT_UP <t> <p>           at round t, host p returns to base capacity
//   SET_CAPACITY <t> <p> <c>  at round t, host p's sides become min(c, base)
//   POD_DOWN <t> <s>          at round t, every host in pod s goes down
//   POD_UP <t> <s>            at round t, every host in pod s recovers
//   MIGRATE <t> <src> <dst> <frac>  from round t on, each future arrival
//                             touching host src re-homes to dst with
//                             probability frac (per side, per flow)
//
// Blank lines and '#' comments are ignored; parse errors carry 1-based line
// numbers ("line N: ...", the trace_io convention). "Host p" addresses the
// unified host index: input port p AND output port p (they are the same
// machine's NIC; see docs/scenarios.md). Events at round t apply *before*
// round t's policy selection; same-round events apply in file order.
//
// Semantics are graceful degradation only: capacities never exceed the base
// SwitchSpec (SET_CAPACITY clamps — realized schedules must stay valid
// against the instance's declared switch), flows on a dead port stay
// backlogged until the port recovers, and a shrink below the current
// backlog just truncates that round's allowance. No event sequence —
// double PORT_DOWN, shrink-below-backlog, recovery of a live port — is an
// error at runtime; only out-of-range ports/pods are (at bind time).
//
// MIGRATE is the one verb that moves *load* rather than capacity: it
// prospectively re-homes a fraction of a host's future arrivals (flows
// already released keep their ports; nothing is ever dropped). Each
// arriving flow draws one coin per matching rule and side from a
// fixed-seed migration stream, a pure function of admission order — so
// batch, streaming, and fabric runs (which apply the rules to the
// materialized instance in the same (release, id) order) migrate the
// identical flow set at any parallelism.
#ifndef FLOWSCHED_SCENARIO_SCENARIO_H_
#define FLOWSCHED_SCENARIO_SCENARIO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "model/instance.h"
#include "model/switch_spec.h"
#include "util/rng.h"

namespace flowsched {

// One parsed script line (host/pod addressed; not yet bound to a switch).
struct ScenarioEvent {
  enum class Kind {
    kPortDown,
    kPortUp,
    kSetCapacity,
    kPodDown,
    kPodUp,
    kMigrate
  };
  Kind kind = Kind::kPortDown;
  Round t = 0;          // Round the event takes effect (applied pre-policy).
  int target = 0;       // Host index (src for kMigrate), or pod for kPod*.
  Capacity capacity = 0;  // kSetCapacity only.
  int dst = 0;          // kMigrate only: destination host.
  double frac = 0.0;    // kMigrate only: re-home probability in [0, 1].
  int line = 0;         // 1-based source line (for bind-time errors).
};

// A parsed, switch-independent script: events stable-sorted by round.
class ScenarioScript {
 public:
  // Parses a script; on failure returns false with *error = "line N: ...".
  static bool Parse(std::istream& in, ScenarioScript* script,
                    std::string* error);
  static bool ParseText(const std::string& text, ScenarioScript* script,
                        std::string* error);
  static bool ParseFile(const std::string& path, ScenarioScript* script,
                        std::string* error);

  bool empty() const { return events_.empty(); }
  const std::vector<ScenarioEvent>& events() const { return events_; }
  // True when the script carries at least one MIGRATE event.
  bool has_migrations() const;
  // Declared pod count (PODS header); 0 when the script declared none.
  int pods() const { return pods_; }
  // Round of the last event (0 for an empty script).
  Round last_event_round() const {
    return events_.empty() ? 0 : events_.back().t;
  }

 private:
  std::vector<ScenarioEvent> events_;
  int pods_ = 0;
};

// In `ScenarioOp::cap`: restore this port side to its base capacity.
inline constexpr Capacity kScenarioRestore = -1;

// One compiled per-port-side capacity override. Host-level script events
// expand to these at bind time; the fabric runner projects them per shard.
struct ScenarioOp {
  Round t = 0;
  bool input_side = true;
  PortId port = 0;
  Capacity cap = 0;  // kScenarioRestore, 0 (down), or a shrink target.
};

// One bound MIGRATE rule (host-addressed; applies to both port sides).
struct MigrationRule {
  Round t = 0;
  PortId src = 0;
  PortId dst = 0;
  double frac = 0.0;
};

// Seed of the migration coin stream. A fixed constant, NOT derived from the
// solver seed: every execution path (batch admit loop, streaming admit
// loop, fabric pre-partition rewrite) must draw the identical coins for the
// identical arrival sequence, or their schedules diverge.
inline constexpr std::uint64_t kMigrationSeed = 0x6d69677261746573ULL;

// A script bound to a concrete switch: the per-round cursor the simulators
// drive. AdvanceTo() is monotone; the effective capacities it maintains are
// what selection and validation audit against each round.
class ScenarioRuntime {
 public:
  ScenarioRuntime() = default;

  // Binds `script` against `base`: range-checks hosts/pods and expands
  // host-level events into per-side ops. Returns false with *error
  // ("line N: ...") on an out-of-range host or a pod event without a PODS
  // header. An empty script binds fine (wire-mode FAULT/RECOVER needs a
  // bound runtime even without a file).
  bool Bind(const ScenarioScript& script, const SwitchSpec& base,
            std::string* error);

  // Binds pre-projected ops (fabric shards). Ops are stable-sorted by
  // round; out-of-range ports are a bind error.
  bool BindOps(std::vector<ScenarioOp> ops, const SwitchSpec& base,
               std::string* error);

  bool bound() const { return bound_; }

  // Applies every op with op.t <= t. Monotone: rounds a caller skipped
  // (idle fast-forward) are caught up in one call.
  void AdvanceTo(Round t);

  // True when any port side currently differs from base (the simulators
  // skip all overlay work otherwise, keeping the fault-free path intact).
  bool degraded() const { return diff_sides_ > 0; }
  // True when any port side is fully down (capacity 0).
  bool AnyPortDown() const { return down_sides_ > 0; }
  // True when the flow (src input, dst output) touches a dead port side —
  // such flows are withheld from the policy and stay backlogged.
  bool IsBlocked(PortId src, PortId dst) const {
    return eff_in_[src] == 0 || eff_out_[dst] == 0;
  }

  // The effective switch the policy sees this round. Dead sides are
  // clamped to capacity 1 (SwitchSpec requires >= 1) — safe because
  // blocked flows never reach the policy, so nothing can be scheduled
  // through a dead port.
  const SwitchSpec& view() const;

  // True when some script op is scheduled strictly after round t (a
  // fully-blocked backlog can still recover).
  bool HasOpAfter(Round t) const;
  // Round of the last bound op (0 when there are none).
  Round last_op_round() const { return ops_.empty() ? 0 : ops_.back().t; }

  // Wire-mode forcing (FAULT/RECOVER verbs): immediately downs/restores
  // host `h` on both sides. False with *error when h is out of range.
  bool ForceHostDown(PortId h, std::string* error);
  bool ForceHostUp(PortId h, std::string* error);

  // True when the bound script carries MIGRATE rules (the admit loops skip
  // all migration work otherwise).
  bool has_migrations() const { return !migrations_.empty(); }
  // Applies every rule with rule.t <= t to an arriving flow's ports,
  // drawing one coin per matching side from the migration stream; rules
  // apply in script order and see already-rewritten ports. Call exactly
  // once per admitted flow, in admission order. Returns true (and counts
  // the flow as migrated) when either side was re-homed.
  bool RemapArrival(Round t, PortId* src, PortId* dst);
  // Flows RemapArrival re-homed since Bind.
  long long migrated_flows() const { return migrated_flows_; }

 private:
  bool FinishBind(std::string* error);
  void ApplySide(bool input_side, PortId p, Capacity cap);

  bool bound_ = false;
  SwitchSpec base_;
  std::vector<ScenarioOp> ops_;  // Stable-sorted by round.
  std::vector<MigrationRule> migrations_;  // Stable-sorted by round.
  Rng migration_rng_{kMigrationSeed};
  long long migrated_flows_ = 0;
  std::size_t next_op_ = 0;
  // True effective capacities (0 = down), maintained by AdvanceTo/Force*.
  std::vector<Capacity> eff_in_;
  std::vector<Capacity> eff_out_;
  int diff_sides_ = 0;  // Port sides differing from base.
  int down_sides_ = 0;  // Port sides at capacity 0.
  mutable SwitchSpec view_;
  mutable bool view_dirty_ = true;
};

// Loads a solver `scenario=` param value: a file path, or an inline script
// with "inline:" prefix and ';' as the line separator (handy for CI and
// sweeps — no temp file). Empty value leaves *script empty and succeeds.
bool LoadScenarioParam(const std::string& value, ScenarioScript* script,
                       std::string* error);

// Additive capacity slack for facade validation of migrated runs: the
// realized schedule is validated against the *original* instance, which
// attributes a migrated flow's transmissions to its original ports — so a
// port's audited usage can exceed its capacity by at most the total
// capacity of the migration destinations serving on its behalf. Returns
// the sum over distinct MIGRATE destination hosts of
// max(input capacity, output capacity); 0 for scripts without MIGRATE.
Capacity MigrationCapacityAllowance(const ScenarioScript& script,
                                    const SwitchSpec& base);

// Applies the script's MIGRATE rules to a copy of `instance`, walking
// flows in (release, id) stable order — the admission order of the batch
// and streaming simulators — with the same fixed-seed coin stream, so the
// returned instance is exactly the traffic a scenario run admits. Flow
// ids, order, demands, releases, and coflow tags are preserved; the source
// stamp is kept. *migrated_flows (optional) receives the re-homed count.
Instance ApplyScenarioMigrations(const Instance& instance,
                                 const ScenarioScript& script,
                                 long long* migrated_flows);

}  // namespace flowsched

#endif  // FLOWSCHED_SCENARIO_SCENARIO_H_
