// Coflow-aware online scheduling policies.
//
// All three policies rank the backlog by *group* (PendingFlow::coflow;
// untagged flows count as singleton groups) and feed the resulting order
// into the existing per-round machinery — greedy packing for the
// priority-ordered policies, the Hungarian max-weight matcher for the
// weighted variant:
//
//   sebf       smallest-effective-bottleneck-first (Varys): groups are
//              served in ascending order of their remaining bottleneck —
//              the max over ports of ceil(pending group load / capacity) —
//              with FIFO arrival tie-breaks; lower-priority groups backfill
//              leftover capacity (work conservation).
//   maxweight  maximum-weight matching with per-edge weight
//              1 + 1 / (1 + remaining group demand): every weight is
//              positive (so the matching is maximal) and edges of
//              nearly-finished groups outbid edges of heavy ones, draining
//              small coflows first. Matching-based => unit demands only.
//   fifo       FIFO-of-coflows: groups are served strictly in arrival
//              order (earliest release any member was seen with), the
//              baseline Varys and Sincronia compare against.
//
// Group statistics are recomputed from the visible backlog each round, so
// the policies are genuinely online: they never peek at unreleased flows.
#ifndef FLOWSCHED_COFLOW_COFLOW_POLICIES_H_
#define FLOWSCHED_COFLOW_COFLOW_POLICIES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "graph/auction_matching.h"
#include "graph/incremental_matching.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

// Per-round group statistics over the backlog, with slot bookkeeping that
// persists across rounds: each distinct coflow tag (or untagged flow) gets
// a dense slot on first sight and keeps it for the simulation, so steady-
// state rounds reuse all scratch. Update() recomputes which slots have
// pending flows, their remaining demand, their arrival round (earliest
// release ever seen — stable even after early members complete), and,
// on request, their effective bottleneck.
class CoflowBacklogStats {
 public:
  // Recomputes stats for this round's backlog. Bottlenecks cost an extra
  // O(backlog) bucket pass; policies that do not rank by them skip it.
  void Update(const SwitchSpec& sw, std::span<const PendingFlow> pending,
              bool with_bottlenecks);

  // Valid until the next Update(). Slots listed in touched() are exactly
  // those with at least one pending flow.
  int slot_of_pending(int i) const { return slot_of_pending_[i]; }
  const std::vector<int>& touched() const { return touched_; }
  Capacity rem(int slot) const { return rem_[slot]; }
  Round arrival(int slot) const { return arrival_[slot]; }
  Round bottleneck(int slot) const { return bottleneck_[slot]; }

  // Monotone creation stamp, refreshed when a retired slot is recycled.
  // Policies tie-break on this instead of the slot index: without
  // retirement (batch runs) stamp order equals slot order, and with it the
  // ordering stays stable when slots are reused for younger groups.
  long long seq(int slot) const { return seq_[slot]; }

  // Releases the slots of completed untagged flows / fully-drained coflow
  // groups back to a free list for recycling, keeping the map and slot
  // footprint proportional to the live backlog on unbounded streams. Call
  // between rounds (after the round's Update()). If a tag arrives again
  // after its group was retired, it is treated as a brand-new group.
  void Retire(std::span<const FlowId> completed_untagged,
              std::span<const CoflowId> drained_groups);

  // Forgets every slot (between simulations).
  void Clear();

 private:
  std::map<CoflowId, int> tag_slot_;   // Coflow tag -> persistent slot.
  std::map<FlowId, int> single_slot_;  // Untagged flow id -> slot.
  std::vector<Round> arrival_;         // Per slot, persistent.
  std::vector<Capacity> rem_;          // Per slot, touched slots only.
  std::vector<Round> bottleneck_;
  std::vector<long long> seq_;  // Per slot, see seq().
  std::vector<int> free_slots_;
  long long next_seq_ = 0;
  std::vector<int> touched_;
  std::vector<int> slot_of_pending_;
  // Bottleneck scratch: backlog bucketed by slot, then per-slot port loads
  // accumulated into (and zeroed back out of) the shared port arrays.
  std::vector<int> bucket_count_;
  std::vector<int> bucket_pos_;
  std::vector<int> by_slot_;
  std::vector<Capacity> in_load_;
  std::vector<Capacity> out_load_;
  std::vector<PortId> touched_in_;
  std::vector<PortId> touched_out_;
};

// Shared shape of the two priority-ordered policies: rank the touched
// groups, order the backlog by (group rank, release, id), greedily pack.
class CoflowGreedyPolicyBase : public SchedulingPolicy {
 public:
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;
  void Reset() override { stats_.Clear(); }
  void RetireFlows(std::span<const FlowId> completed_untagged,
                   std::span<const CoflowId> drained_groups) override {
    stats_.Retire(completed_untagged, drained_groups);
  }

 protected:
  virtual bool NeedsBottlenecks() const = 0;
  // Sorts `slots` (the touched list) into priority order, best first.
  virtual void RankGroups(std::vector<int>& slots) = 0;

  CoflowBacklogStats stats_;

 private:
  std::vector<int> slot_order_;
  std::vector<int> rank_;  // Per slot; valid for touched slots.
  std::vector<int> order_;
  std::vector<Capacity> in_res_;
  std::vector<Capacity> out_res_;
};

class CoflowSebfPolicy : public CoflowGreedyPolicyBase {
 public:
  std::string_view name() const override { return "coflow-sebf"; }

 protected:
  bool NeedsBottlenecks() const override { return true; }
  void RankGroups(std::vector<int>& slots) override;
};

class CoflowFifoPolicy : public CoflowGreedyPolicyBase {
 public:
  std::string_view name() const override { return "coflow-fifo"; }

 protected:
  bool NeedsBottlenecks() const override { return false; }
  void RankGroups(std::vector<int>& slots) override;
};

class CoflowMaxWeightPolicy : public SchedulingPolicy {
 public:
  explicit CoflowMaxWeightPolicy(const MatchingOptions& matching = {})
      : matching_(matching) {}

  std::string_view name() const override { return "coflow-maxweight"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;
  void Reset() override {
    stats_.Clear();
    warm_.Reset();
    auction_.Reset();
  }
  void RetireFlows(std::span<const FlowId> completed_untagged,
                   std::span<const CoflowId> drained_groups) override {
    stats_.Retire(completed_untagged, drained_groups);
  }
  PolicyMatchingStats matching_stats() const override;

 private:
  MatchingOptions matching_;
  CoflowBacklogStats stats_;
  BacklogGraphBuilder builder_;
  MaxWeightMatcher matcher_;
  IncrementalMatcher warm_;
  AuctionMatcher auction_;
  std::vector<double> weight_;
};

// Factory mirroring MakePolicy: "sebf", "maxweight", "fifo". The seed is
// accepted for interface symmetry; all three policies are deterministic.
// `matching` tunes the maxweight matching kernels (ignored by sebf/fifo).
std::unique_ptr<SchedulingPolicy> MakeCoflowPolicy(
    std::string_view name, std::uint64_t seed = 1,
    const MatchingOptions& matching = {});

// All policy names available through MakeCoflowPolicy.
std::vector<std::string> AllCoflowPolicyNames();

}  // namespace flowsched

#endif  // FLOWSCHED_COFLOW_COFLOW_POLICIES_H_
