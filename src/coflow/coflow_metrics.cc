#include "coflow/coflow_metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace flowsched {

CoflowMetrics ComputeCoflowMetrics(const Instance& instance,
                                   const CoflowSet& coflows,
                                   const Schedule& schedule) {
  FS_CHECK(schedule.AllAssigned());
  CoflowMetrics m;
  const int n = coflows.num_groups();
  m.cct.reserve(n);
  m.slowdown.reserve(n);
  for (int g = 0; g < n; ++g) {
    Round last = 0;
    for (FlowId e : coflows.members(g)) {
      last = std::max(last, schedule.round_of(e));
    }
    const auto cct = static_cast<double>(last + 1 - coflows.release(g));
    m.cct.push_back(cct);
    const Round isolation = coflows.IsolationRounds(g, instance.sw());
    m.slowdown.push_back(isolation > 0 ? cct / isolation : 0.0);
  }
  if (!m.cct.empty()) {
    RunningStats cct_stats;
    for (double c : m.cct) cct_stats.Add(c);
    m.total_cct = cct_stats.sum();
    m.avg_cct = cct_stats.mean();
    m.max_cct = cct_stats.max();
    m.p50_cct = Percentile(m.cct, 50.0);
    m.p95_cct = Percentile(m.cct, 95.0);
    m.p99_cct = Percentile(m.cct, 99.0);
    RunningStats slow_stats;
    for (double s : m.slowdown) slow_stats.Add(s);
    m.avg_slowdown = slow_stats.mean();
    m.max_slowdown = slow_stats.max();
  }
  return m;
}

}  // namespace flowsched
