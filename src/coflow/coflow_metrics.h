// Coflow completion time (CCT) metrics of a schedule.
//
// A coflow completes when its last member flow does, so its completion time
// is measured from the group's release (earliest member release) to one
// past the last member's scheduled round — the group-level analogue of the
// paper's per-flow response time. Slowdown compares each group's CCT
// against its isolation bound (CoflowSet::IsolationRounds): 1.0 means the
// coflow finished as fast as it possibly could on an empty switch.
#ifndef FLOWSCHED_COFLOW_COFLOW_METRICS_H_
#define FLOWSCHED_COFLOW_COFLOW_METRICS_H_

#include <vector>

#include "model/coflow.h"
#include "model/schedule.h"

namespace flowsched {

struct CoflowMetrics {
  std::vector<double> cct;       // Per-group completion time, group order.
  std::vector<double> slowdown;  // cct / isolation bound per group.
  double total_cct = 0.0;
  double avg_cct = 0.0;
  double max_cct = 0.0;
  double p50_cct = 0.0;
  double p95_cct = 0.0;
  double p99_cct = 0.0;
  double avg_slowdown = 0.0;
  double max_slowdown = 0.0;
};

// Requires every flow to be assigned. Groups follow `coflows`' ordering
// (tagged groups by ascending tag, then singletons in flow order).
CoflowMetrics ComputeCoflowMetrics(const Instance& instance,
                                   const CoflowSet& coflows,
                                   const Schedule& schedule);

}  // namespace flowsched

#endif  // FLOWSCHED_COFLOW_COFLOW_METRICS_H_
