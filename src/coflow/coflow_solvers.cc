// Adapters exposing the coflow-aware policies as registered solvers:
// "coflow.<policy>" replays the instance through the round-based simulator
// with MakeCoflowPolicy(<policy>) and reports coflow completion time (CCT)
// statistics in the diagnostics alongside the usual per-flow metrics.
// Instances without coflow tags still run — every flow degenerates to a
// singleton group, so CCT equals per-flow response time.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_solvers.h"
#include "api/registry.h"
#include "api/scenario_support.h"
#include "coflow/coflow_metrics.h"
#include "coflow/coflow_policies.h"
#include "core/online/simulator.h"
#include "model/coflow.h"

namespace flowsched {
namespace internal {
namespace {

class CoflowPolicySolver : public Solver {
 public:
  explicit CoflowPolicySolver(std::string policy)
      : policy_(std::move(policy)), name_("coflow." + policy_) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override {
    return "round-by-round simulation of the coflow-aware policy "
           "(CCT diagnostics; untagged flows count as singletons)";
  }
  std::vector<SolverKeyDoc> ParamDocs() const override {
    return {{"record_backlog",
             "0/1 (default 0): keep per-round backlog sizes"},
            ScenarioParamDoc(),
            {"validate",
             "0/1 (default 1): audit every policy selection for duplicates "
             "and port overloads (benchmarks turn this off)"},
            {"warmstart",
             "0/1 (default 1, maxweight only): reuse the previous round's "
             "Hungarian work via the incremental matcher; bit-exact, so the "
             "schedule is identical either way"},
            {"approx",
             "eps > 0 (default 0 = exact, maxweight only): eps-approximate "
             "auction matcher; each round's matched weight is within "
             "backlog*eps of optimal, schedules (and CCT) may differ"}};
  }
  std::vector<SolverKeyDoc> DiagnosticDocs() const override {
    std::vector<SolverKeyDoc> docs = {
        {"rounds_simulated", "rounds until the backlog drained"},
        {"avg_port_utilization",
         "scheduled demand / available bandwidth over the run"},
        {"peak_backlog", "largest backlog at any policy round"},
        {"num_coflows",
         "groups in the instance (untagged flows count as singletons)"},
        {"num_tagged_coflows", "groups that carry a real coflow tag"},
        {"total_cct", "sum of per-group completion times"},
        {"avg_cct", "mean group completion time"},
        {"p50_cct", "median group completion time"},
        {"p95_cct", "95th-percentile group completion time"},
        {"p99_cct", "99th-percentile group completion time"},
        {"max_cct", "slowest group's completion time"},
        {"avg_slowdown",
         "mean CCT / isolation bound (1.0 = as fast as an empty switch)"},
        {"max_slowdown", "worst group slowdown vs isolation"},
        {"matcher_cache_hits",
         "rounds whose matching problem was identical to the previous "
         "round's (maxweight with warmstart=1)"},
        {"matcher_prefix_resumes",
         "rounds resumed from a per-row Hungarian checkpoint"},
        {"matcher_full_solves", "rounds solved from scratch"},
        {"matcher_reused_rows",
         "Hungarian row insertions skipped via cache hits and resumes"},
        {"matcher_total_rows", "total Hungarian rows across all rounds"},
        {"auction_bids", "price raises across all rounds (approx>0)"},
        {"auction_cold_restarts",
         "warm starts whose certificate failed and were re-run cold"}};
    AppendScenarioDiagnosticDocs(&docs);
    return docs;
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (policy_ == "maxweight" && instance.MaxDemand() > 1) {
      report.error =
          "coflow.maxweight is matching-based and requires unit demands";
      return report;
    }
    SimulationOptions sim;
    if (options.max_rounds > 0) {
      if (options.max_rounds < instance.SafeHorizon()) {
        report.error = "max_rounds " + std::to_string(options.max_rounds) +
                       " is below the safe horizon " +
                       std::to_string(instance.SafeHorizon());
        return report;
      }
      sim.max_rounds = options.max_rounds;
    }
    std::string perr;
    sim.record_backlog = options.IntParamOr("record_backlog", 0, &perr) != 0;
    sim.validate = options.IntParamOr("validate", 1, &perr) != 0;
    MatchingOptions matching;
    matching.warmstart = options.IntParamOr("warmstart", 1, &perr) != 0;
    matching.approx_eps = options.DoubleParamOr("approx", 0.0, &perr);
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    if (matching.approx_eps < 0.0) {
      report.error = "approx must be >= 0";
      return report;
    }
    ScenarioScript script;
    bool has_scenario = false;
    if (!LoadScenarioOption(options, &script, &has_scenario, &report.error)) {
      return report;
    }
    if (has_scenario) sim.scenario = &script;
    auto policy = MakeCoflowPolicy(policy_, options.seed, matching);
    const SimulationResult r = Simulate(instance, *policy, sim);
    if (r.truncated) {
      report.error = r.error;
      return report;
    }
    report.schedule = MapRealizedSchedule(instance, r.schedule);

    report.ok = true;
    // MIGRATE runs are audited against the original instance's ports;
    // grant the destinations' capacity as additive slack (see
    // scenario/scenario.h).
    report.allowance =
        has_scenario && script.has_migrations()
            ? CapacityAllowance::Additive(
                  MigrationCapacityAllowance(script, instance.sw()))
            : CapacityAllowance::Exact();
    report.diagnostics["rounds_simulated"] = r.rounds;
    report.diagnostics["avg_port_utilization"] = r.avg_port_utilization;
    report.diagnostics["peak_backlog"] = r.peak_backlog;
    const PolicyMatchingStats ms = policy->matching_stats();
    if (ms.matcher_solves > 0) {
      report.diagnostics["matcher_cache_hits"] = ms.matcher_cache_hits;
      report.diagnostics["matcher_prefix_resumes"] = ms.matcher_prefix_resumes;
      report.diagnostics["matcher_full_solves"] = ms.matcher_full_solves;
      report.diagnostics["matcher_reused_rows"] = ms.matcher_reused_rows;
      report.diagnostics["matcher_total_rows"] = ms.matcher_total_rows;
    }
    if (ms.auction_bids > 0) {
      report.diagnostics["auction_bids"] = ms.auction_bids;
      report.diagnostics["auction_cold_restarts"] = ms.auction_cold_restarts;
    }

    const CoflowSet coflows(instance);
    const CoflowMetrics cm =
        ComputeCoflowMetrics(instance, coflows, report.schedule);
    report.diagnostics["num_coflows"] = coflows.num_groups();
    report.diagnostics["num_tagged_coflows"] = coflows.num_tagged();
    report.diagnostics["total_cct"] = cm.total_cct;
    report.diagnostics["avg_cct"] = cm.avg_cct;
    report.diagnostics["p50_cct"] = cm.p50_cct;
    report.diagnostics["p95_cct"] = cm.p95_cct;
    report.diagnostics["p99_cct"] = cm.p99_cct;
    report.diagnostics["max_cct"] = cm.max_cct;
    report.diagnostics["avg_slowdown"] = cm.avg_slowdown;
    report.diagnostics["max_slowdown"] = cm.max_slowdown;
    if (has_scenario) {
      // Fault-free baseline (same policy, same seed) for the robustness
      // diagnostics.
      SimulationOptions base_sim = sim;
      base_sim.scenario = nullptr;
      base_sim.record_backlog = false;
      auto base_policy = MakeCoflowPolicy(policy_, options.seed, matching);
      const SimulationResult base = Simulate(instance, *base_policy, base_sim);
      AddScenarioDiagnostics(script, r.rounds, r.downtime_rounds,
                             r.peak_backlog, r.metrics.total_response,
                             base.peak_backlog, base.metrics.total_response,
                             r.migrated_flows, &report);
    }
    return report;
  }

 private:
  std::string policy_;
  std::string name_;
};

}  // namespace

void RegisterCoflowSolvers(SolverRegistry& registry) {
  for (const std::string& policy : AllCoflowPolicyNames()) {
    auto factory = [policy] {
      return std::make_unique<CoflowPolicySolver>(policy);
    };
    auto probe = factory();
    registry.Register(std::string(probe->name()),
                      std::string(probe->description()), std::move(factory));
  }
}

}  // namespace internal
}  // namespace flowsched
