// Adapters exposing the coflow-aware policies as registered solvers:
// "coflow.<policy>" replays the instance through the round-based simulator
// with MakeCoflowPolicy(<policy>) and reports coflow completion time (CCT)
// statistics in the diagnostics alongside the usual per-flow metrics.
// Instances without coflow tags still run — every flow degenerates to a
// singleton group, so CCT equals per-flow response time.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_solvers.h"
#include "api/registry.h"
#include "coflow/coflow_metrics.h"
#include "coflow/coflow_policies.h"
#include "core/online/simulator.h"
#include "model/coflow.h"

namespace flowsched {
namespace internal {
namespace {

class CoflowPolicySolver : public Solver {
 public:
  explicit CoflowPolicySolver(std::string policy)
      : policy_(std::move(policy)), name_("coflow." + policy_) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override {
    return "round-by-round simulation of the coflow-aware policy "
           "(CCT diagnostics; untagged flows count as singletons)";
  }
  std::vector<std::string> ParamKeys() const override {
    return {"record_backlog", "validate"};
  }

 protected:
  SolveReport SolveImpl(const Instance& instance,
                        const SolveOptions& options) override {
    SolveReport report;
    report.objective_name = "total_response";
    if (policy_ == "maxweight" && instance.MaxDemand() > 1) {
      report.error =
          "coflow.maxweight is matching-based and requires unit demands";
      return report;
    }
    SimulationOptions sim;
    if (options.max_rounds > 0) {
      if (options.max_rounds < instance.SafeHorizon()) {
        report.error = "max_rounds " + std::to_string(options.max_rounds) +
                       " is below the safe horizon " +
                       std::to_string(instance.SafeHorizon());
        return report;
      }
      sim.max_rounds = options.max_rounds;
    }
    std::string perr;
    sim.record_backlog = options.IntParamOr("record_backlog", 0, &perr) != 0;
    sim.validate = options.IntParamOr("validate", 1, &perr) != 0;
    if (!perr.empty()) {
      report.error = perr;
      return report;
    }
    auto policy = MakeCoflowPolicy(policy_, options.seed);
    const SimulationResult r = Simulate(instance, *policy, sim);
    report.schedule = MapRealizedSchedule(instance, r.schedule);

    report.ok = true;
    report.allowance = CapacityAllowance::Exact();
    report.diagnostics["rounds_simulated"] = r.rounds;
    report.diagnostics["avg_port_utilization"] = r.avg_port_utilization;
    report.diagnostics["peak_backlog"] = r.peak_backlog;

    const CoflowSet coflows(instance);
    const CoflowMetrics cm =
        ComputeCoflowMetrics(instance, coflows, report.schedule);
    report.diagnostics["num_coflows"] = coflows.num_groups();
    report.diagnostics["num_tagged_coflows"] = coflows.num_tagged();
    report.diagnostics["total_cct"] = cm.total_cct;
    report.diagnostics["avg_cct"] = cm.avg_cct;
    report.diagnostics["p50_cct"] = cm.p50_cct;
    report.diagnostics["p95_cct"] = cm.p95_cct;
    report.diagnostics["p99_cct"] = cm.p99_cct;
    report.diagnostics["max_cct"] = cm.max_cct;
    report.diagnostics["avg_slowdown"] = cm.avg_slowdown;
    report.diagnostics["max_slowdown"] = cm.max_slowdown;
    return report;
  }

 private:
  std::string policy_;
  std::string name_;
};

}  // namespace

void RegisterCoflowSolvers(SolverRegistry& registry) {
  for (const std::string& policy : AllCoflowPolicyNames()) {
    auto factory = [policy] {
      return std::make_unique<CoflowPolicySolver>(policy);
    };
    auto probe = factory();
    registry.Register(std::string(probe->name()),
                      std::string(probe->description()), std::move(factory));
  }
}

}  // namespace internal
}  // namespace flowsched
