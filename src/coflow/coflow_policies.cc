#include "coflow/coflow_policies.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace flowsched {

void CoflowBacklogStats::Clear() {
  tag_slot_.clear();
  single_slot_.clear();
  arrival_.clear();
  rem_.clear();
  bottleneck_.clear();
  seq_.clear();
  free_slots_.clear();
  next_seq_ = 0;
  bucket_count_.clear();
  touched_.clear();
}

void CoflowBacklogStats::Retire(std::span<const FlowId> completed_untagged,
                                std::span<const CoflowId> drained_groups) {
  // Retired slots may still sit in this round's touched_ list; the next
  // Update() zeroes their bucket_count_ marks before any slot is handed
  // out again, so recycling is race-free with the zeroing trick.
  for (FlowId id : completed_untagged) {
    const auto it = single_slot_.find(id);
    if (it == single_slot_.end()) continue;
    free_slots_.push_back(it->second);
    single_slot_.erase(it);
  }
  for (CoflowId tag : drained_groups) {
    const auto it = tag_slot_.find(tag);
    if (it == tag_slot_.end()) continue;
    free_slots_.push_back(it->second);
    tag_slot_.erase(it);
  }
}

void CoflowBacklogStats::Update(const SwitchSpec& sw,
                                std::span<const PendingFlow> pending,
                                bool with_bottlenecks) {
  slot_of_pending_.resize(pending.size());
  // Zero only last round's marks — slots never retire, so a full
  // bucket_count_ sweep would make every round O(total groups ever seen)
  // instead of O(backlog). Slots created this round arrive zero-filled
  // from the resize below.
  for (int slot : touched_) bucket_count_[slot] = 0;
  touched_.clear();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingFlow& f = pending[i];
    auto& by_key = f.coflow == kNoCoflow ? single_slot_ : tag_slot_;
    const int key = f.coflow == kNoCoflow ? f.id : f.coflow;
    // New keys recycle a retired slot when one is free (streaming), else
    // extend the arrays (batch: Retire() is never called, so allocation
    // order — and hence seq order — matches slot order exactly).
    const int fresh = free_slots_.empty() ? static_cast<int>(arrival_.size())
                                          : free_slots_.back();
    const auto [it, inserted] = by_key.try_emplace(key, fresh);
    const int slot = it->second;
    if (inserted) {
      if (!free_slots_.empty()) {
        free_slots_.pop_back();
        arrival_[slot] = f.release;
      } else {
        arrival_.push_back(f.release);
        rem_.push_back(0);
        bottleneck_.push_back(0);
        seq_.push_back(0);
      }
      seq_[slot] = next_seq_++;
    } else {
      arrival_[slot] = std::min(arrival_[slot], f.release);
    }
    slot_of_pending_[i] = slot;
  }
  // Second pass resets each touched slot's accumulator on first sight
  // (bucket_count_ doubles as the per-slot marker), so stale values from
  // earlier rounds never leak in.
  if (bucket_count_.size() < arrival_.size()) {
    bucket_count_.resize(arrival_.size(), 0);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const int slot = slot_of_pending_[i];
    if (bucket_count_[slot] == 0) {
      touched_.push_back(slot);
      rem_[slot] = 0;
    }
    ++bucket_count_[slot];
    rem_[slot] += pending[i].demand;
  }
  if (!with_bottlenecks) return;

  // Bucket the backlog by slot, then accumulate each group's port loads in
  // the shared arrays (zeroed back out afterwards, so cost tracks the
  // touched ports, not the switch size). Only touched slots' entries are
  // written and read, so untouched ones may hold stale cursors.
  if (bucket_pos_.size() < arrival_.size()) bucket_pos_.resize(arrival_.size());
  int cursor = 0;
  for (int slot : touched_) {
    bucket_pos_[slot] = cursor;
    cursor += bucket_count_[slot];
  }
  by_slot_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    by_slot_[bucket_pos_[slot_of_pending_[i]]++] = static_cast<int>(i);
  }
  if (static_cast<int>(in_load_.size()) != sw.num_inputs()) {
    in_load_.assign(sw.num_inputs(), 0);
  }
  if (static_cast<int>(out_load_.size()) != sw.num_outputs()) {
    out_load_.assign(sw.num_outputs(), 0);
  }
  int start = 0;
  for (int slot : touched_) {
    touched_in_.clear();
    touched_out_.clear();
    const int end = start + bucket_count_[slot];
    for (int k = start; k < end; ++k) {
      const PendingFlow& f = pending[by_slot_[k]];
      if (in_load_[f.src] == 0) touched_in_.push_back(f.src);
      in_load_[f.src] += f.demand;
      if (out_load_[f.dst] == 0) touched_out_.push_back(f.dst);
      out_load_[f.dst] += f.demand;
    }
    Round bottleneck = 1;
    for (PortId p : touched_in_) {
      const Capacity cap = sw.input_capacity(p);
      bottleneck = std::max(
          bottleneck, static_cast<Round>((in_load_[p] + cap - 1) / cap));
      in_load_[p] = 0;
    }
    for (PortId q : touched_out_) {
      const Capacity cap = sw.output_capacity(q);
      bottleneck = std::max(
          bottleneck, static_cast<Round>((out_load_[q] + cap - 1) / cap));
      out_load_[q] = 0;
    }
    bottleneck_[slot] = bottleneck;
    start = end;
  }
}

void CoflowGreedyPolicyBase::SelectFlowsInto(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending,
    std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  stats_.Update(sw, pending, NeedsBottlenecks());

  slot_order_ = stats_.touched();
  RankGroups(slot_order_);
  int max_slot = -1;
  for (int slot : slot_order_) max_slot = std::max(max_slot, slot);
  if (static_cast<int>(rank_.size()) <= max_slot) rank_.resize(max_slot + 1);
  for (std::size_t r = 0; r < slot_order_.size(); ++r) {
    rank_[slot_order_[r]] = static_cast<int>(r);
  }

  order_.resize(pending.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    const int ra = rank_[stats_.slot_of_pending(a)];
    const int rb = rank_[stats_.slot_of_pending(b)];
    if (ra != rb) return ra < rb;
    if (pending[a].release != pending[b].release) {
      return pending[a].release < pending[b].release;
    }
    return pending[a].id < pending[b].id;
  });

  // Greedy packing against residual capacities — the same work-conserving
  // backfill FIFO/SRPT use, here over the group-priority order.
  in_res_.assign(sw.input_capacities().begin(), sw.input_capacities().end());
  out_res_.assign(sw.output_capacities().begin(), sw.output_capacities().end());
  for (int i : order_) {
    const PendingFlow& f = pending[i];
    if (f.demand <= in_res_[f.src] && f.demand <= out_res_[f.dst]) {
      in_res_[f.src] -= f.demand;
      out_res_[f.dst] -= f.demand;
      picked->push_back(i);
    }
  }
}

void CoflowSebfPolicy::RankGroups(std::vector<int>& slots) {
  std::sort(slots.begin(), slots.end(), [&](int a, int b) {
    if (stats_.bottleneck(a) != stats_.bottleneck(b)) {
      return stats_.bottleneck(a) < stats_.bottleneck(b);
    }
    if (stats_.arrival(a) != stats_.arrival(b)) {
      return stats_.arrival(a) < stats_.arrival(b);
    }
    return stats_.seq(a) < stats_.seq(b);
  });
}

void CoflowFifoPolicy::RankGroups(std::vector<int>& slots) {
  std::sort(slots.begin(), slots.end(), [&](int a, int b) {
    if (stats_.arrival(a) != stats_.arrival(b)) {
      return stats_.arrival(a) < stats_.arrival(b);
    }
    return stats_.seq(a) < stats_.seq(b);
  });
}

void CoflowMaxWeightPolicy::SelectFlowsInto(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending,
    std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  stats_.Update(sw, pending, /*with_bottlenecks=*/false);
  const BipartiteGraph& g = builder_.Build(sw, pending);
  weight_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto rem =
        static_cast<double>(stats_.rem(stats_.slot_of_pending(i)));
    // Positive everywhere (=> the matching is maximal); the 1/(1+rem) term
    // makes edges of nearly-drained groups outbid edges of heavy ones.
    weight_[i] = 1.0 + 1.0 / (1.0 + rem);
  }
  if (matching_.approx_eps > 0.0) {
    auction_.Solve(g, weight_, matching_.approx_eps, picked);
  } else if (matching_.warmstart) {
    warm_.Solve(g, weight_, picked);
  } else {
    matcher_.Solve(g, weight_, picked);
  }
}

PolicyMatchingStats CoflowMaxWeightPolicy::matching_stats() const {
  PolicyMatchingStats s;
  const IncrementalMatcher::Stats& w = warm_.stats();
  s.matcher_solves = w.solves;
  s.matcher_cache_hits = w.cache_hits;
  s.matcher_prefix_resumes = w.prefix_resumes;
  s.matcher_full_solves = w.full_solves;
  s.matcher_reused_rows = w.reused_rows;
  s.matcher_total_rows = w.total_rows;
  s.auction_bids = auction_.stats().bids;
  s.auction_cold_restarts = auction_.stats().cold_restarts;
  return s;
}

std::unique_ptr<SchedulingPolicy> MakeCoflowPolicy(
    std::string_view name, std::uint64_t /*seed*/,
    const MatchingOptions& matching) {
  if (name == "sebf") return std::make_unique<CoflowSebfPolicy>();
  if (name == "maxweight") {
    return std::make_unique<CoflowMaxWeightPolicy>(matching);
  }
  if (name == "fifo") return std::make_unique<CoflowFifoPolicy>();
  FS_CHECK_MSG(false, "unknown coflow policy: " << std::string(name));
  return nullptr;
}

std::vector<std::string> AllCoflowPolicyNames() {
  return {"sebf", "maxweight", "fifo"};
}

}  // namespace flowsched
