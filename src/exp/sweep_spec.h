// SweepSpec: the grid description for experiment campaigns — which solvers
// run on which instance families at which axis points, how many seeds and
// trials per point — plus its deterministic expansion into a SweepPlan of
// cells and tasks.
//
// Grid model
//   instances   generator-spec templates (api/instance_source.h) with
//               `{load}` `{ports}` `{rounds}` `{seed}` `{trial}`
//               placeholders,
//               e.g. "poisson:ports={ports},load={load},rounds=200,seed={seed}";
//               `{trial}` substitutes the 0-based trial index so
//               trace-driven templates can name one file per repetition
//   loads/ports/rounds/shards
//               axis value lists substituted into the placeholders; every
//               template must reference exactly the axes that are set (a
//               set axis no template reads, or a placeholder with no axis,
//               is a spec error — silent mismatches corrupt campaigns).
//               `{shards}` drives fabric campaigns: a template like
//               "fabric:shards={shards},partition=block,<inner>" sweeps the
//               pod count across fabric.* solvers (src/fabric/)
//   dists       `{dist}` axis for realistic-traffic templates: CDF names
//               substituted verbatim, e.g. "cdf:dist={dist},..." with
//               dists=websearch,fbhdp,alistorage compares the same grid
//               point across size distributions (src/traffic/)
//   solvers     registry names or '*' globs ("online.*")
//   seeds       instance seeds substituted into `{seed}`
//   trials      repeat count per (cell, seed) with distinct solver seeds
//               (distinguishes run-to-run variance of randomized policies
//               from instance-to-instance variance)
//   scenarios   fault-injection axis: '|'-separated scenario values, each
//               "none" (fault-free), a script path, or inline:<script>
//               ('|' because inline scripts use ';' as their line
//               separator). Unlike the template axes this one has no
//               placeholder — it forwards per cell as the solver's
//               `scenario` param, so every (solver, instance) point runs
//               once per listed fault pattern and the robustness
//               diagnostics (downtime, backlog surge, drain time,
//               response inflation) aggregate per cell
//
// A *cell* is one point of solver × template × load × ports × rounds — the
// unit the Aggregator reports statistics for. A *task* is one run: a cell
// plus a (seed, trial) pair. Task seeds derive from (base_seed, grid
// coordinates) via Rng::DeriveSeed, so a task's RNG stream is a pure
// function of its position in the grid — byte-identical results no matter
// how many threads execute the plan or in which order.
//
// Specs parse from a compact key=value text file, from a flat JSON object,
// or from CLI flags (tools/flowsched_sweep.cc maps flags onto the same
// ParseAxis/ParseSweepSpec helpers). See README "Running experiment
// sweeps" and docs/file-formats.md for the worked format reference.
//
// Failing fast: unknown spec keys, axis/placeholder mismatches, unknown
// solvers, and unknown keys inside generator-spec templates are all
// expansion-time errors (the last via ValidateInstanceSpec), so a typo'd
// campaign dies before any report file is opened or truncated.
#ifndef FLOWSCHED_EXP_SWEEP_SPEC_H_
#define FLOWSCHED_EXP_SWEEP_SPEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.h"

namespace flowsched {

struct SweepSpec {
  std::string name = "sweep";            // Names the report files.
  std::vector<std::string> solvers;      // Registry names or '*' globs.
  std::vector<std::string> instances;    // Generator-spec templates.
  std::vector<double> loads;             // {load} axis (empty = axis unused).
  std::vector<long long> ports;          // {ports} axis.
  std::vector<long long> rounds;         // {rounds} axis.
  std::vector<long long> shards;         // {shards} axis (fabric pod count).
  std::vector<std::string> dists;        // {dist} axis (CDF names, verbatim).
  std::vector<std::uint64_t> seeds;      // {seed} axis; defaults to {1} when
                                         // a template uses {seed}.
  std::vector<std::string> scenarios;    // Scenario axis (empty = unused);
                                         // elements: "none", a path, or
                                         // inline:<script>.
  int trials = 1;
  std::uint64_t base_seed = 1;           // Root of all task seed derivation.
  long long max_rounds = 0;              // SolveOptions::max_rounds.
  std::map<std::string, std::string> params;  // Forwarded SolveOptions params.
};

// One aggregation unit: a solver at one grid point of the instance axes.
struct SweepCell {
  int index = 0;
  std::string solver;
  std::string instance_template;         // As written in the spec.
  std::optional<double> load;            // Axis values at this point (unset
  std::optional<long long> ports;        // when the axis is unused).
  std::optional<long long> rounds;
  std::optional<long long> shards;
  std::optional<std::string> dist;       // CDF name at this point.
  std::optional<std::string> scenario;   // "none" = explicit fault-free cell.
  // Template with axes substituted but `{seed}` / `{trial}` left in place —
  // the repetition-independent identity of the cell's instance family.
  std::string instance_family;
};

// One run: a cell at one (seed, trial) coordinate.
struct SweepTask {
  int index = 0;                 // Position in SweepPlan::tasks.
  int cell = 0;                  // Index into SweepPlan::cells.
  std::uint64_t instance_seed = 0;
  int trial = 0;
  std::string instance_spec;     // Fully substituted generator spec / path.
  int instance_slot = 0;         // Index into SweepPlan::unique_instances.
  std::uint64_t solver_seed = 0; // Rng::DeriveSeed chain over coordinates.
};

struct SweepPlan {
  std::vector<SweepCell> cells;
  std::vector<SweepTask> tasks;
  // Deduplicated instance specs: tasks sharing a spec share one loaded
  // Instance (read-only across threads), so a 50k-flow Poisson family is
  // generated once per seed, not once per solver × trial.
  std::vector<std::string> unique_instances;
};

// Parses an axis list: comma-separated elements, each a number or a range —
// "a:b:step" (inclusive, doubles) or "a..b" (inclusive, integers). Returns
// false and fills *error on malformed input. Values keep list order.
bool ParseAxis(const std::string& text, std::vector<double>& out,
               std::string* error);
bool ParseAxis(const std::string& text, std::vector<long long>& out,
               std::string* error);
bool ParseAxis(const std::string& text, std::vector<std::uint64_t>& out,
               std::string* error);

// Applies one key=value pair (the spec-file line grammar) to `spec`.
// Both front ends below and the campaign spec parser
// (campaign/campaign_spec.h) funnel through this, so the key set cannot
// drift between sweep files, sweep JSON, CLI flags, and campaign grids.
bool ApplySweepSpecKey(SweepSpec& spec, const std::string& key,
                       const std::string& value, std::string* error);

// Parses a spec from text: a flat JSON object when the first non-space
// character is '{', otherwise key=value lines ('#' comments, blank lines
// ignored). Keys: name, solvers, instances (';'-separated — specs contain
// commas), loads, ports, rounds, shards, dists, seeds, scenarios
// ('|'-separated), trials, base_seed, max_rounds, param (repeatable
// "key=value"). JSON uses
// the same keys with
// arrays for lists and an object for "params". Unknown keys are errors.
bool ParseSweepSpec(const std::string& text, SweepSpec& spec,
                    std::string* error);

// Expands the grid: resolves solver globs against `registry`, substitutes
// axis values into templates, enumerates cells and tasks in a fixed
// deterministic order, and derives per-task solver seeds. Returns false and
// fills *error on invalid specs (empty/unknown solvers, axis/placeholder
// mismatches, trivial grids, unknown keys inside generator-spec templates —
// the offending key is named).
bool ExpandSweep(const SweepSpec& spec, const SolverRegistry& registry,
                 SweepPlan& plan, std::string* error);

}  // namespace flowsched

#endif  // FLOWSCHED_EXP_SWEEP_SPEC_H_
