// A small work-stealing thread pool for the experiment runner.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from the other workers when its deque drains, so a skewed
// grid (one maxweight cell dwarfing a hundred fifo cells) still keeps all
// cores busy. Submissions round-robin across the deques.
//
// Scope is deliberately narrow — fire-and-forget void() tasks plus a
// Wait() barrier. Tasks communicate results through whatever they capture
// (the sweep runner hands each task its own pre-allocated result slot, so
// tasks never contend). Tasks must not throw: the repo's failure modes are
// FS_CHECK aborts and error codes, not exceptions.
#ifndef FLOWSCHED_EXP_THREAD_POOL_H_
#define FLOWSCHED_EXP_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace flowsched {

class ThreadPool {
 public:
  // Clamped to >= 1. Workers start immediately and idle until Submit.
  explicit ThreadPool(int num_threads);
  // Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int worker_index);
  // Own queue back first, then steal from the front of the others.
  bool TryTake(int worker_index, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // Guards sleeping / counters below.
  std::condition_variable work_cv_;   // Signaled on Submit and shutdown.
  std::condition_variable done_cv_;   // Signaled when in-flight hits zero.
  std::size_t unfinished_ = 0;     // Submitted but not yet completed.
  std::size_t next_queue_ = 0;     // Round-robin submission cursor.
  bool shutdown_ = false;
};

}  // namespace flowsched

#endif  // FLOWSCHED_EXP_THREAD_POOL_H_
