#include "exp/experiment_runner.h"

#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "api/instance_source.h"
#include "exp/thread_pool.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace flowsched {

TaskOutcome OutcomeFromSolveReport(const SolveReport& report) {
  TaskOutcome o;
  o.ok = report.ok;
  o.error = report.error;
  o.wall_seconds = report.wall_seconds;
  if (!report.ok) return o;
  o.total_response = report.metrics.total_response;
  o.avg_response = report.metrics.avg_response;
  o.p50_response = report.metrics.p50_response;
  o.p95_response = report.metrics.p95_response;
  o.p99_response = report.metrics.p99_response;
  o.max_response = report.metrics.max_response;
  o.stddev_response = report.metrics.stddev_response;
  o.makespan = report.metrics.makespan;
  o.num_flows = static_cast<long long>(report.metrics.response.size());
  const auto rounds = report.diagnostics.find("rounds_simulated");
  if (rounds != report.diagnostics.end()) {
    o.rounds = static_cast<long long>(rounds->second);
  }
  const auto peak = report.diagnostics.find("peak_backlog");
  if (peak != report.diagnostics.end()) {
    o.peak_backlog = static_cast<long long>(peak->second);
  }
  const auto coflows = report.diagnostics.find("num_coflows");
  if (coflows != report.diagnostics.end()) {
    auto get = [&](const char* key) {
      const auto it = report.diagnostics.find(key);
      return it == report.diagnostics.end() ? 0.0 : it->second;
    };
    o.num_coflows = static_cast<long long>(coflows->second);
    o.avg_cct = get("avg_cct");
    o.p95_cct = get("p95_cct");
    o.max_cct = get("max_cct");
    o.avg_slowdown = get("avg_slowdown");
  }
  const auto shards = report.diagnostics.find("shards");
  if (shards != report.diagnostics.end()) {
    auto get = [&](const char* key) {
      const auto it = report.diagnostics.find(key);
      return it == report.diagnostics.end() ? 0.0 : it->second;
    };
    o.shards = static_cast<long long>(shards->second);
    o.load_imbalance = get("load_imbalance");
    o.cross_shard_flows = static_cast<long long>(get("cross_shard_flows"));
    o.split_coflows = static_cast<long long>(get("split_coflows"));
  }
  const auto downtime = report.diagnostics.find("downtime_rounds");
  if (downtime != report.diagnostics.end()) {
    auto get = [&](const char* key) {
      const auto it = report.diagnostics.find(key);
      return it == report.diagnostics.end() ? 0.0 : it->second;
    };
    o.has_scenario = true;
    o.downtime_rounds = static_cast<long long>(downtime->second);
    o.scenario_events = static_cast<long long>(get("scenario_events"));
    o.backlog_surge = get("backlog_surge");
    o.recovery_drain_rounds =
        static_cast<long long>(get("recovery_drain_rounds"));
    o.response_inflation = get("response_inflation");
    o.migrated_flows = static_cast<long long>(get("migrated_flows"));
  }
  if (o.rounds > 0 && o.wall_seconds > 0.0) {
    o.rounds_per_sec = static_cast<double>(o.rounds) / o.wall_seconds;
  }
  return o;
}

void WriteTaskJsonLine(std::ostream& out, const SweepCell& cell,
                       const SweepTask& task, const TaskOutcome& outcome) {
  out << "{\"task\": " << task.index << ", \"cell\": " << cell.index << ", "
      << JsonStr("solver", cell.solver) << ", "
      << JsonStr("instance", task.instance_spec);
  if (cell.dist) out << ", " << JsonStr("dist", *cell.dist);
  if (cell.scenario) out << ", " << JsonStr("scenario", *cell.scenario);
  out << ", \"instance_seed\": " << task.instance_seed
      << ", \"trial\": " << task.trial
      << ", \"solver_seed\": " << task.solver_seed
      << ", \"ok\": " << (outcome.ok ? "true" : "false");
  if (outcome.ok) {
    out << ", \"total_response\": " << JsonNum(outcome.total_response)
        << ", \"avg_response\": " << JsonNum(outcome.avg_response)
        << ", \"p50_response\": " << JsonNum(outcome.p50_response)
        << ", \"p95_response\": " << JsonNum(outcome.p95_response)
        << ", \"p99_response\": " << JsonNum(outcome.p99_response)
        << ", \"max_response\": " << JsonNum(outcome.max_response)
        << ", \"stddev_response\": " << JsonNum(outcome.stddev_response)
        << ", \"makespan\": " << outcome.makespan
        << ", \"num_flows\": " << outcome.num_flows
        << ", \"rounds\": " << outcome.rounds
        << ", \"peak_backlog\": " << outcome.peak_backlog;
    if (outcome.num_coflows > 0) {
      out << ", \"num_coflows\": " << outcome.num_coflows
          << ", \"avg_cct\": " << JsonNum(outcome.avg_cct)
          << ", \"p95_cct\": " << JsonNum(outcome.p95_cct)
          << ", \"max_cct\": " << JsonNum(outcome.max_cct)
          << ", \"avg_slowdown\": " << JsonNum(outcome.avg_slowdown);
    }
    if (outcome.shards > 0) {
      out << ", \"shards\": " << outcome.shards
          << ", \"load_imbalance\": " << JsonNum(outcome.load_imbalance)
          << ", \"cross_shard_flows\": " << outcome.cross_shard_flows
          << ", \"split_coflows\": " << outcome.split_coflows;
    }
    if (outcome.has_scenario) {
      out << ", \"scenario_events\": " << outcome.scenario_events
          << ", \"downtime_rounds\": " << outcome.downtime_rounds
          << ", \"backlog_surge\": " << JsonNum(outcome.backlog_surge)
          << ", \"recovery_drain_rounds\": " << outcome.recovery_drain_rounds
          << ", \"response_inflation\": "
          << JsonNum(outcome.response_inflation)
          << ", \"migrated_flows\": " << outcome.migrated_flows;
    }
    out << ", \"wall_seconds\": " << JsonNum(outcome.wall_seconds)
        << ", \"rounds_per_sec\": " << JsonNum(outcome.rounds_per_sec);
  } else {
    out << ", " << JsonStr("error", outcome.error);
  }
  out << "}\n";
}

bool RunSweep(const SweepSpec& spec, const RunnerOptions& options,
              SweepRun& run, std::string* error) {
  run = SweepRun{};
  const SolverRegistry& registry =
      options.registry != nullptr ? *options.registry
                                  : SolverRegistry::Global();
  if (!ExpandSweep(spec, registry, run.plan, error)) return false;

  Stopwatch sweep_timer;
  const int jobs = options.jobs < 1 ? 1 : options.jobs;
  run.jobs = jobs;
  ThreadPool pool(jobs);

  // Phase 1: materialize every unique instance once, in parallel. Slots are
  // pre-sized, so workers never touch a shared container.
  const std::size_t num_instances = run.plan.unique_instances.size();
  std::vector<std::optional<Instance>> instances(num_instances);
  std::vector<std::string> instance_errors(num_instances);
  for (std::size_t i = 0; i < num_instances; ++i) {
    pool.Submit([&, i] {
      instances[i] =
          LoadInstance(run.plan.unique_instances[i], &instance_errors[i]);
    });
  }
  pool.Wait();

  // Phase 2: one pool task per sweep task, writing into its own slot.
  run.outcomes.resize(run.plan.tasks.size());
  std::mutex io_mu;  // Serializes JSONL lines and progress callbacks.
  int done = 0;
  const int total = static_cast<int>(run.plan.tasks.size());
  for (const SweepTask& task : run.plan.tasks) {
    pool.Submit([&, &task = task] {
      TaskOutcome& outcome = run.outcomes[task.index];
      const auto& instance = instances[task.instance_slot];
      if (!instance.has_value()) {
        outcome.ok = false;
        outcome.error = "instance: " + instance_errors[task.instance_slot];
      } else {
        const SweepCell& cell = run.plan.cells[task.cell];
        SolveOptions solve;
        solve.seed = task.solver_seed;
        solve.max_rounds = static_cast<Round>(spec.max_rounds);
        solve.params = spec.params;
        // The scenario axis forwards as the solver's `scenario` param;
        // "none" is the fault-free point (no param, no overlay work).
        if (cell.scenario && *cell.scenario != "none") {
          solve.params["scenario"] = *cell.scenario;
        }
        outcome = OutcomeFromSolveReport(
            registry.Solve(cell.solver, *instance, solve));
      }
      if (options.jsonl != nullptr || options.progress) {
        std::lock_guard<std::mutex> lock(io_mu);
        ++done;
        if (options.jsonl != nullptr) {
          WriteTaskJsonLine(*options.jsonl, run.plan.cells[task.cell], task,
                            outcome);
          options.jsonl->flush();  // Crash-safe incremental record.
        }
        if (options.progress) options.progress(done, total);
      }
    });
  }
  pool.Wait();

  for (const TaskOutcome& o : run.outcomes) {
    if (!o.ok) ++run.failures;
  }
  run.wall_seconds = sweep_timer.ElapsedSeconds();
  return true;
}

}  // namespace flowsched
