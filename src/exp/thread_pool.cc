#include "exp/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace flowsched {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++unfinished_;
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

bool ThreadPool::TryTake(int worker_index, std::function<void()>& task) {
  {
    WorkerQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());  // LIFO: most recently pushed.
      own.tasks.pop_back();
      return true;
    }
  }
  const int n = static_cast<int>(queues_.size());
  for (int k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(worker_index + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());  // FIFO: steal the oldest.
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker_index) {
  for (;;) {
    std::function<void()> task;
    if (TryTake(worker_index, task)) {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    // Re-check under the lock: a Submit may have raced our empty scan.
    // unfinished_ > 0 alone is not "work available" (tasks may be running
    // on other workers), so wake on the cv and rescan.
    work_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

}  // namespace flowsched
