#include "exp/sweep_spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "api/instance_source.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace flowsched {
namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool ParseDouble(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool ParseLongLong(const std::string& text, long long& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool ParseU64(const std::string& text, std::uint64_t& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  for (char c : text + sep) {
    if (c == sep) {
      // Trim surrounding spaces; empty elements are skipped.
      const auto b = part.find_first_not_of(" \t");
      const auto e = part.find_last_not_of(" \t");
      if (b != std::string::npos) parts.push_back(part.substr(b, e - b + 1));
      part.clear();
    } else {
      part += c;
    }
  }
  return parts;
}

// Shortest representation that round-trips through the generator-spec
// parser; stable so instance specs (and thus reports) are reproducible.
std::string FormatAxisValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

template <typename T, typename ParseFn>
bool ParseAxisElements(const std::string& text, std::vector<T>& out,
                       ParseFn parse_range, std::string* error) {
  for (const std::string& elem : Split(text, ',')) {
    if (!parse_range(elem, out)) {
      return Fail(error, "axis element \"" + elem +
                             "\" is neither a number nor a range");
    }
  }
  if (out.empty()) return Fail(error, "axis \"" + text + "\" is empty");
  return true;
}

template <typename T>
bool ParseIntRangeOrValue(const std::string& elem, std::vector<T>& out) {
  const auto dots = elem.find("..");
  if (dots == std::string::npos) {
    T v{};
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      if (!ParseU64(elem, v)) return false;
    } else {
      if (!ParseLongLong(elem, v)) return false;
    }
    out.push_back(v);
    return true;
  }
  T lo{}, hi{};
  const std::string lo_s = elem.substr(0, dots);
  const std::string hi_s = elem.substr(dots + 2);
  if constexpr (std::is_same_v<T, std::uint64_t>) {
    if (!ParseU64(lo_s, lo) || !ParseU64(hi_s, hi)) return false;
  } else {
    if (!ParseLongLong(lo_s, lo) || !ParseLongLong(hi_s, hi)) return false;
  }
  if (hi < lo) return false;
  for (T v = lo; v <= hi; ++v) out.push_back(v);
  return true;
}

}  // namespace

bool ParseAxis(const std::string& text, std::vector<double>& out,
               std::string* error) {
  auto parse_elem = [](const std::string& elem, std::vector<double>& vals) {
    // "a:b:step" inclusive range, else a plain number.
    const auto c1 = elem.find(':');
    if (c1 == std::string::npos) {
      double v = 0.0;
      if (!ParseDouble(elem, v)) return false;
      vals.push_back(v);
      return true;
    }
    const auto c2 = elem.find(':', c1 + 1);
    if (c2 == std::string::npos) return false;
    double a = 0.0, b = 0.0, step = 0.0;
    if (!ParseDouble(elem.substr(0, c1), a) ||
        !ParseDouble(elem.substr(c1 + 1, c2 - c1 - 1), b) ||
        !ParseDouble(elem.substr(c2 + 1), step)) {
      return false;
    }
    if (step <= 0.0 || b < a) return false;
    // i*step (not repeated +=) keeps endpoints exact enough to include `b`
    // despite binary rounding; the epsilon absorbs the residue.
    const double eps = step * 1e-9;
    for (int i = 0;; ++i) {
      const double v = a + static_cast<double>(i) * step;
      if (v > b + eps) break;
      vals.push_back(std::min(v, b));
    }
    return true;
  };
  return ParseAxisElements(text, out, parse_elem, error);
}

bool ParseAxis(const std::string& text, std::vector<long long>& out,
               std::string* error) {
  return ParseAxisElements(text, out, ParseIntRangeOrValue<long long>, error);
}

bool ParseAxis(const std::string& text, std::vector<std::uint64_t>& out,
               std::string* error) {
  return ParseAxisElements(text, out, ParseIntRangeOrValue<std::uint64_t>,
                           error);
}

// Applies one key=value pair to the spec; the text and JSON front ends and
// the campaign spec parser (campaign/campaign_spec.cc) funnel through here
// so the key set cannot drift between formats.
bool ApplySweepSpecKey(SweepSpec& spec, const std::string& key,
                       const std::string& value, std::string* error) {
  std::string axis_error;
  if (key == "name") {
    spec.name = value;
  } else if (key == "solvers") {
    spec.solvers = Split(value, ',');
    if (spec.solvers.empty()) return Fail(error, "solvers: empty list");
  } else if (key == "instances" || key == "instance") {
    spec.instances = Split(value, ';');
    if (spec.instances.empty()) return Fail(error, "instances: empty list");
  } else if (key == "loads") {
    spec.loads.clear();
    if (!ParseAxis(value, spec.loads, &axis_error)) {
      return Fail(error, "loads: " + axis_error);
    }
  } else if (key == "ports") {
    spec.ports.clear();
    if (!ParseAxis(value, spec.ports, &axis_error)) {
      return Fail(error, "ports: " + axis_error);
    }
  } else if (key == "rounds") {
    spec.rounds.clear();
    if (!ParseAxis(value, spec.rounds, &axis_error)) {
      return Fail(error, "rounds: " + axis_error);
    }
  } else if (key == "shards") {
    spec.shards.clear();
    if (!ParseAxis(value, spec.shards, &axis_error)) {
      return Fail(error, "shards: " + axis_error);
    }
  } else if (key == "dists") {
    spec.dists = Split(value, ',');
    if (spec.dists.empty()) return Fail(error, "dists: empty list");
  } else if (key == "seeds") {
    spec.seeds.clear();
    if (!ParseAxis(value, spec.seeds, &axis_error)) {
      return Fail(error, "seeds: " + axis_error);
    }
  } else if (key == "scenarios") {
    // '|' separates elements because inline scenario scripts use ';' as
    // their own line separator (scenario/scenario.h).
    spec.scenarios = Split(value, '|');
    if (spec.scenarios.empty()) return Fail(error, "scenarios: empty list");
  } else if (key == "trials") {
    long long v = 0;
    if (!ParseLongLong(value, v) || v < 1) {
      return Fail(error, "trials: expected a positive integer, got \"" +
                             value + "\"");
    }
    spec.trials = static_cast<int>(v);
  } else if (key == "base_seed") {
    if (!ParseU64(value, spec.base_seed)) {
      return Fail(error, "base_seed: unparsable value \"" + value + "\"");
    }
  } else if (key == "max_rounds") {
    if (!ParseLongLong(value, spec.max_rounds) || spec.max_rounds < 0) {
      return Fail(error, "max_rounds: expected a non-negative integer, got \"" +
                             value + "\"");
    }
  } else if (key == "param") {
    const auto eq = value.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "param: expected key=value, got \"" + value + "\"");
    }
    spec.params[value.substr(0, eq)] = value.substr(eq + 1);
  } else {
    return Fail(error, "unknown spec key \"" + key + "\"");
  }
  return true;
}

namespace {

bool ParseTextSpec(const std::string& text, SweepSpec& spec,
                   std::string* error) {
  int line_no = 0;
  std::string line;
  for (char c : text + "\n") {
    if (c != '\n') {
      line += c;
      continue;
    }
    ++line_no;
    std::string trimmed = line;
    line.clear();
    const auto hash = trimmed.find('#');
    if (hash != std::string::npos) trimmed.resize(hash);
    const auto b = trimmed.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = trimmed.find_last_not_of(" \t\r");
    trimmed = trimmed.substr(b, e - b + 1);
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "line " + std::to_string(line_no) +
                             ": expected key=value, got \"" + trimmed + "\"");
    }
    std::string perr;
    if (!ApplySweepSpecKey(spec, trimmed.substr(0, eq), trimmed.substr(eq + 1),
                           &perr)) {
      return Fail(error, "line " + std::to_string(line_no) + ": " + perr);
    }
  }
  return true;
}

// ---- Flat JSON front end -------------------------------------------------
// Just enough JSON for sweep specs: one object whose values are scalars,
// arrays of scalars, or (for "params") an object of scalars. Numbers keep
// their source text and reuse the key=value parsing above.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  // Parses a quoted string (\" \\ \n \r \t \/ escapes).
  bool String(std::string& out, std::string* error) {
    if (!Eat('"')) return Fail(error, JsonWhere() + ": expected '\"'");
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case '"': case '\\': case '/': c = esc; break;
          default:
            return Fail(error, JsonWhere() + ": unsupported escape \\" +
                                   std::string(1, esc));
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      return Fail(error, JsonWhere() + ": unterminated string");
    }
    ++pos_;  // Closing quote.
    return true;
  }

  // Parses a scalar (string or number) as its textual value.
  bool Scalar(std::string& out, std::string* error) {
    if (Peek() == '"') return String(out, error);
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) {
      return Fail(error, JsonWhere() + ": expected a string or number");
    }
    out = text_.substr(start, pos_ - start);
    return true;
  }

  std::string JsonWhere() const {
    return "json offset " + std::to_string(pos_);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

bool ParseJsonSpec(const std::string& text, SweepSpec& spec,
                   std::string* error) {
  JsonCursor cur(text);
  if (!cur.Eat('{')) return Fail(error, "json: expected '{'");
  if (cur.Eat('}')) return cur.AtEnd() || Fail(error, "json: trailing data");
  do {
    std::string key;
    if (!cur.String(key, error)) return false;
    if (!cur.Eat(':')) {
      return Fail(error, cur.JsonWhere() + ": expected ':' after \"" + key +
                             "\"");
    }
    if (key == "params") {
      if (!cur.Eat('{')) {
        return Fail(error, "params: expected an object of key/value strings");
      }
      if (!cur.Eat('}')) {
        do {
          std::string pkey, pval;
          if (!cur.String(pkey, error)) return false;
          if (!cur.Eat(':')) {
            return Fail(error, "params: expected ':' after \"" + pkey + "\"");
          }
          if (!cur.Scalar(pval, error)) return false;
          spec.params[pkey] = pval;
        } while (cur.Eat(','));
        if (!cur.Eat('}')) return Fail(error, "params: expected '}'");
      }
      continue;
    }
    std::string value;
    if (cur.Peek() == '[') {
      cur.Eat('[');
      // Arrays join into the list syntax ApplySweepSpecKey already speaks;
      // instance
      // specs contain commas, so that key joins with ';'.
      const char sep = (key == "instances" || key == "instance") ? ';'
                       : key == "scenarios"                      ? '|'
                                                                 : ',';
      bool first = true;
      if (!cur.Eat(']')) {
        do {
          std::string elem;
          if (!cur.Scalar(elem, error)) return false;
          if (!first) value += sep;
          value += elem;
          first = false;
        } while (cur.Eat(','));
        if (!cur.Eat(']')) {
          return Fail(error, cur.JsonWhere() + ": expected ']'");
        }
      }
    } else if (!cur.Scalar(value, error)) {
      return false;
    }
    std::string perr;
    if (!ApplySweepSpecKey(spec, key, value, &perr)) {
      return Fail(error, perr);
    }
  } while (cur.Eat(','));
  if (!cur.Eat('}')) return Fail(error, cur.JsonWhere() + ": expected '}'");
  if (!cur.AtEnd()) return Fail(error, "json: trailing data after '}'");
  return true;
}

std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

bool References(const std::string& tmpl, const std::string& placeholder) {
  return tmpl.find(placeholder) != std::string::npos;
}

}  // namespace

bool ParseSweepSpec(const std::string& text, SweepSpec& spec,
                    std::string* error) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return Fail(error, "empty sweep spec");
  return text[first] == '{' ? ParseJsonSpec(text, spec, error)
                            : ParseTextSpec(text, spec, error);
}

bool ExpandSweep(const SweepSpec& spec, const SolverRegistry& registry,
                 SweepPlan& plan, std::string* error) {
  plan = SweepPlan{};
  if (spec.solvers.empty()) return Fail(error, "spec has no solvers");
  if (spec.instances.empty()) return Fail(error, "spec has no instances");
  if (spec.trials < 1) return Fail(error, "trials must be >= 1");

  // Resolve solver names/globs; order follows the spec, duplicates dropped.
  std::vector<std::string> solvers;
  std::set<std::string> seen;
  for (const std::string& pattern : spec.solvers) {
    const std::vector<std::string> matches = registry.NamesMatching(pattern);
    if (matches.empty()) {
      return Fail(error, "solver pattern \"" + pattern +
                             "\" matches no registered solver");
    }
    for (const std::string& name : matches) {
      if (seen.insert(name).second) solvers.push_back(name);
    }
  }

  // Every template must reference exactly the axes the spec sets: a set
  // axis nobody reads silently multiplies identical runs; an unreferenced
  // placeholder produces specs like "load={load}" that fail downstream
  // with a worse message.
  for (const std::string& tmpl : spec.instances) {
    const struct {
      const char* placeholder;
      bool axis_set;
    } axes[] = {
        {"{load}", !spec.loads.empty()},
        {"{ports}", !spec.ports.empty()},
        {"{rounds}", !spec.rounds.empty()},
        {"{shards}", !spec.shards.empty()},
        {"{dist}", !spec.dists.empty()},
    };
    for (const auto& [placeholder, axis_set] : axes) {
      if (References(tmpl, placeholder) && !axis_set) {
        return Fail(error, "template \"" + tmpl + "\" references " +
                               placeholder + " but the axis is not set");
      }
      if (!References(tmpl, placeholder) && axis_set) {
        return Fail(error, "axis for " + std::string(placeholder) +
                               " is set but template \"" + tmpl +
                               "\" does not reference it");
      }
    }
    // Per-template, like the axes above: a template without {seed} in a
    // multi-seed sweep would rerun one identical instance per seed and
    // report fake zero-variance statistics.
    if (spec.seeds.size() > 1 && !References(tmpl, "{seed}")) {
      return Fail(error, "multiple seeds set but template \"" + tmpl +
                             "\" does not reference {seed}");
    }
  }
  std::vector<std::uint64_t> seeds = spec.seeds;
  if (seeds.empty()) seeds.push_back(1);

  // The nullopt element stands for "axis unused" so the cell loops below
  // stay a plain cross product.
  std::vector<std::optional<double>> loads(spec.loads.begin(),
                                           spec.loads.end());
  if (loads.empty()) loads.push_back(std::nullopt);
  std::vector<std::optional<long long>> ports(spec.ports.begin(),
                                              spec.ports.end());
  if (ports.empty()) ports.push_back(std::nullopt);
  std::vector<std::optional<long long>> rounds(spec.rounds.begin(),
                                               spec.rounds.end());
  if (rounds.empty()) rounds.push_back(std::nullopt);
  std::vector<std::optional<long long>> shards(spec.shards.begin(),
                                               spec.shards.end());
  if (shards.empty()) shards.push_back(std::nullopt);
  std::vector<std::optional<std::string>> dists(spec.dists.begin(),
                                                spec.dists.end());
  if (dists.empty()) dists.push_back(std::nullopt);

  // The scenario axis is a solver-param axis (no template placeholder): a
  // malformed script is an expansion error, not per-task noise. "none" is
  // the explicit fault-free point.
  for (const std::string& s : spec.scenarios) {
    if (s == "none") continue;
    ScenarioScript probe;
    std::string scen_error;
    if (!LoadScenarioParam(s, &probe, &scen_error)) {
      return Fail(error, "scenario \"" + s + "\": " + scen_error);
    }
  }
  std::vector<std::optional<std::string>> scenarios(spec.scenarios.begin(),
                                                    spec.scenarios.end());
  if (scenarios.empty()) scenarios.push_back(std::nullopt);

  std::map<std::string, int> instance_slots;
  for (const std::string& tmpl : spec.instances) {
    for (const auto& load : loads) {
      for (const auto& port : ports) {
        for (const auto& round : rounds) {
          for (const auto& shard : shards) {
            for (const auto& dist : dists) {
              std::string family = tmpl;
              if (load) family = ReplaceAll(family, "{load}",
                                            FormatAxisValue(*load));
              if (port) family = ReplaceAll(family, "{ports}",
                                            std::to_string(*port));
              if (round) family = ReplaceAll(family, "{rounds}",
                                             std::to_string(*round));
              if (shard) family = ReplaceAll(family, "{shards}",
                                             std::to_string(*shard));
              if (dist) family = ReplaceAll(family, "{dist}", *dist);
              for (const auto& scenario : scenarios) {
                for (const std::string& solver : solvers) {
                  SweepCell cell;
                  cell.index = static_cast<int>(plan.cells.size());
                  cell.solver = solver;
                  cell.instance_template = tmpl;
                  cell.load = load;
                  cell.ports = port;
                  cell.rounds = round;
                  cell.shards = shard;
                  cell.dist = dist;
                  cell.scenario = scenario;
                  cell.instance_family = family;
                  plan.cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }

  for (const SweepCell& cell : plan.cells) {
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      for (int trial = 0; trial < spec.trials; ++trial) {
        SweepTask task;
        task.index = static_cast<int>(plan.tasks.size());
        task.cell = cell.index;
        task.instance_seed = seeds[si];
        task.trial = trial;
        // {seed} and {trial} substitute per task, not per cell: they vary
        // the instance *within* a cell's aggregate. {trial} lets
        // trace-driven templates name one file per repetition
        // (e.g. traces/day{trial}.csv).
        task.instance_spec =
            ReplaceAll(ReplaceAll(cell.instance_family, "{seed}",
                                  std::to_string(seeds[si])),
                       "{trial}", std::to_string(trial));
        // Seed = f(base_seed, grid coordinates): independent of thread
        // count, schedule, and of which other cells exist... as long as the
        // grid itself is unchanged.
        std::uint64_t s = Rng::DeriveSeed(spec.base_seed,
                                          static_cast<std::uint64_t>(cell.index));
        s = Rng::DeriveSeed(s, static_cast<std::uint64_t>(si));
        s = Rng::DeriveSeed(s, static_cast<std::uint64_t>(trial));
        task.solver_seed = s;
        const auto [it, inserted] = instance_slots.try_emplace(
            task.instance_spec,
            static_cast<int>(plan.unique_instances.size()));
        if (inserted) plan.unique_instances.push_back(task.instance_spec);
        task.instance_slot = it->second;
        plan.tasks.push_back(std::move(task));
      }
    }
  }
  if (plan.tasks.empty()) return Fail(error, "sweep expands to zero tasks");

  // Generator-spec templates are key-checked NOW, not at run time: a typo'd
  // key used to surface only as per-task failures, after the driver had
  // already truncated the previous campaign's JSONL. Validation never
  // generates, so probing even a 50k-flow family is free.
  for (const std::string& instance_spec : plan.unique_instances) {
    std::string spec_error;
    if (!ValidateInstanceSpec(instance_spec, &spec_error)) {
      return Fail(error, "instance spec \"" + instance_spec +
                             "\": " + spec_error);
    }
  }
  return true;
}

}  // namespace flowsched
