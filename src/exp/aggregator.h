// Aggregator: streams per-task outcomes into per-cell distributional
// statistics and writes the sweep reports.
//
// Each cell keeps O(1) state per metric — Welford mean/variance plus
// min/max via util/stats.h RunningStats — so a million-task campaign
// aggregates in constant memory. Confidence intervals are the bootstrap-
// free normal approximation: mean ± 1.96 * stddev / sqrt(n), emitted as
// the half-width (0 for n < 2).
//
// Feeding order matters for bit-exactness: Welford accumulation is not
// associative in floating point, so the runner feeds outcomes in task
// order after the pool drains. That is what makes the final JSON/CSV
// byte-identical across --jobs values; the JSONL stream (written live, in
// completion order) is the schedule-dependent record.
//
// Timing-derived statistics (wall_seconds, rounds_per_sec) are inherently
// non-deterministic; report writers take `include_timing` so CI can
// byte-compare --jobs=1 vs --jobs=N reports with timing stripped.
#ifndef FLOWSCHED_EXP_AGGREGATOR_H_
#define FLOWSCHED_EXP_AGGREGATOR_H_

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment_runner.h"
#include "exp/sweep_spec.h"
#include "util/stats.h"

namespace flowsched {

struct CellAggregate {
  int cell = 0;        // Index into the plan's cells.
  int n = 0;           // Successful tasks aggregated.
  int failures = 0;
  long long num_flows = 0;  // Total flows across successful tasks.
  // Distribution of each per-run summary statistic across (seed, trial)
  // repetitions of the cell.
  RunningStats total_response;
  RunningStats avg_response;
  RunningStats p50_response;
  RunningStats p95_response;
  RunningStats p99_response;
  RunningStats max_response;
  RunningStats makespan;
  RunningStats peak_backlog;
  // Coflow completion time, fed only by tasks reporting num_coflows > 0
  // (coflow.* and fabric.* solvers); the report writers emit the block
  // when any did.
  long long num_coflows = 0;  // Total groups across those tasks.
  RunningStats avg_cct;
  RunningStats p95_cct;
  RunningStats max_cct;
  RunningStats avg_slowdown;
  // Fabric sharding, fed only by tasks reporting shards > 0 (fabric.*
  // solvers). `shards` is a cell-level constant ({shards} substitutes into
  // the instance axis), recorded as the max seen for robustness.
  long long shards = 0;
  RunningStats load_imbalance;
  RunningStats cross_shard_flows;
  RunningStats split_coflows;
  // Robustness, fed only by tasks that ran under a scenario script
  // (TaskOutcome::has_scenario); scenario_n counts them so the report
  // writers can gate the block per cell.
  int scenario_n = 0;
  long long scenario_events = 0;  // Cell-level constant; max seen.
  RunningStats downtime_rounds;
  RunningStats backlog_surge;
  RunningStats recovery_drain_rounds;
  RunningStats response_inflation;
  RunningStats migrated_flows;
  // Timing (schedule-dependent).
  RunningStats wall_seconds;
  RunningStats rounds_per_sec;
};

// Normal-approximation 95% CI half-width for a RunningStats.
double Ci95HalfWidth(const RunningStats& s);

class Aggregator {
 public:
  explicit Aggregator(const SweepPlan& plan);

  // Streams one outcome into its cell. O(1); call in task order when the
  // aggregate must be bit-exact across schedules.
  void Add(const SweepTask& task, const TaskOutcome& outcome);

  // Convenience: feeds every outcome of a finished run in task order.
  void AddRun(const SweepRun& run);

  const std::vector<CellAggregate>& cells() const { return cells_; }

  // Full report, BENCH_*.json-style: spec echo, provenance block, per-cell
  // statistics, totals. `jobs`/`wall_seconds` describe the producing run
  // and are only emitted when include_timing is set.
  void WriteJson(std::ostream& out, const SweepSpec& spec, int jobs,
                 double wall_seconds, bool include_timing) const;

  // One row per cell; header first. Same determinism rules as WriteJson.
  void WriteCsv(std::ostream& out, bool include_timing) const;

 private:
  const SweepPlan& plan_;
  std::vector<CellAggregate> cells_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_EXP_AGGREGATOR_H_
