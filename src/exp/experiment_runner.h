// ExperimentRunner: executes an expanded SweepPlan on a work-stealing
// ThreadPool and collects one TaskOutcome per task.
//
// Determinism contract: every task runs a freshly Create()d solver (its own
// SimulationContext, scratch, and policy state) on a read-only shared
// Instance, seeded from the task's precomputed solver_seed. Outcomes land
// in a pre-sized vector slot indexed by task — no cross-thread merging —
// so everything except wall-clock fields is byte-identical for any
// --jobs value. Aggregation happens afterwards, in task order, in the
// Aggregator (exp/aggregator.h).
//
// Unique instances are materialized first (also on the pool: generating
// fifty 50k-flow Poisson families is itself parallel work), then shared by
// every task that references them. LoadInstance and Solve are safe to call
// concurrently: the registry is read-only after startup and solvers own
// all their mutable state.
#ifndef FLOWSCHED_EXP_EXPERIMENT_RUNNER_H_
#define FLOWSCHED_EXP_EXPERIMENT_RUNNER_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "exp/sweep_spec.h"

namespace flowsched {

// The per-run result the Aggregator consumes: the scalar summary of one
// solve. Deterministic fields first; wall_seconds / rounds_per_sec are the
// only schedule-dependent ones.
struct TaskOutcome {
  bool ok = false;
  std::string error;
  double total_response = 0.0;
  double avg_response = 0.0;
  double p50_response = 0.0;
  double p95_response = 0.0;
  double p99_response = 0.0;
  double max_response = 0.0;
  double stddev_response = 0.0;
  long long makespan = 0;
  long long num_flows = 0;
  long long rounds = 0;        // diagnostics["rounds_simulated"] (0 offline).
  long long peak_backlog = 0;  // diagnostics["peak_backlog"] (0 offline).
  // Coflow completion-time diagnostics emitted by coflow.* and fabric.*
  // solvers; num_coflows == 0 for other solvers.
  long long num_coflows = 0;
  double avg_cct = 0.0;
  double p95_cct = 0.0;
  double max_cct = 0.0;
  double avg_slowdown = 0.0;
  // Fabric sharding diagnostics emitted by fabric.* solvers
  // (fabric/fabric_solvers.cc); shards == 0 for everything else.
  long long shards = 0;
  double load_imbalance = 0.0;
  long long cross_shard_flows = 0;
  long long split_coflows = 0;
  // Robustness diagnostics emitted when the task ran under a scenario
  // script (api/scenario_support.h); has_scenario == false for fault-free
  // runs, which carry none of them.
  bool has_scenario = false;
  long long scenario_events = 0;
  long long downtime_rounds = 0;
  double backlog_surge = 0.0;
  long long recovery_drain_rounds = 0;
  double response_inflation = 0.0;
  long long migrated_flows = 0;  // MIGRATE re-homings (0 without MIGRATE).
  double wall_seconds = 0.0;   // Timing — excluded from determinism checks.
  double rounds_per_sec = 0.0;
};

struct RunnerOptions {
  int jobs = 1;  // Clamped to >= 1.
  // Registry to resolve solvers from; nullptr = SolverRegistry::Global().
  const SolverRegistry* registry = nullptr;
  // When set, one JSON line per completed task is appended here, in
  // completion order (schedule-dependent; each line carries its task
  // index). This is the crash-safe incremental record of a long campaign.
  std::ostream* jsonl = nullptr;
  // Progress callback, called after each task completes (serialized).
  std::function<void(int done, int total)> progress;
};

struct SweepRun {
  SweepPlan plan;
  std::vector<TaskOutcome> outcomes;  // Indexed by SweepTask::index.
  int jobs = 1;                       // Actual worker count used.
  double wall_seconds = 0.0;          // Whole-sweep wall clock.
  int failures = 0;                   // Tasks with ok == false.
};

// Expands `spec` and runs it. Returns false and fills *error only for spec
// errors (bad grid, unknown solvers); per-task failures (bad instance spec,
// solver rejection) are recorded in the matching TaskOutcome instead so one
// broken cell cannot void a campaign.
bool RunSweep(const SweepSpec& spec, const RunnerOptions& options,
              SweepRun& run, std::string* error);

// Writes the incremental JSONL line for one finished task (exposed for
// tests; RunSweep calls it when RunnerOptions::jsonl is set). The campaign
// runner writes the same object as each task's durable outcome.json, so
// the two records share one schema.
void WriteTaskJsonLine(std::ostream& out, const SweepCell& cell,
                       const SweepTask& task, const TaskOutcome& outcome);

// Converts one SolveReport into the TaskOutcome the Aggregator consumes.
// Shared by RunSweep and the durable campaign runner
// (campaign/campaign_runner.h).
TaskOutcome OutcomeFromSolveReport(const SolveReport& report);

}  // namespace flowsched

#endif  // FLOWSCHED_EXP_EXPERIMENT_RUNNER_H_
