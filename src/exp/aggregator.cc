#include "exp/aggregator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/provenance.h"

namespace flowsched {
namespace {

// Emits {"mean": ..., "stddev": ..., "min": ..., "max": ..., "ci95": ...}.
void WriteStatsObject(std::ostream& out, const RunningStats& s) {
  out << "{\"mean\": " << JsonNum(s.mean()) << ", \"stddev\": "
      << JsonNum(s.stddev()) << ", \"min\": " << JsonNum(s.min())
      << ", \"max\": " << JsonNum(s.max()) << ", \"ci95\": "
      << JsonNum(Ci95HalfWidth(s)) << "}";
}

void WriteCsvStats(std::ostream& out, const RunningStats& s) {
  out << JsonNum(s.mean()) << "," << JsonNum(s.stddev()) << ","
      << JsonNum(s.min()) << "," << JsonNum(s.max()) << ","
      << JsonNum(Ci95HalfWidth(s));
}

}  // namespace

double Ci95HalfWidth(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

Aggregator::Aggregator(const SweepPlan& plan) : plan_(plan) {
  cells_.resize(plan.cells.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].cell = static_cast<int>(i);
  }
}

void Aggregator::Add(const SweepTask& task, const TaskOutcome& outcome) {
  FS_CHECK_LT(static_cast<std::size_t>(task.cell), cells_.size());
  CellAggregate& cell = cells_[task.cell];
  if (!outcome.ok) {
    ++cell.failures;
    return;
  }
  ++cell.n;
  cell.num_flows += outcome.num_flows;
  cell.total_response.Add(outcome.total_response);
  cell.avg_response.Add(outcome.avg_response);
  cell.p50_response.Add(outcome.p50_response);
  cell.p95_response.Add(outcome.p95_response);
  cell.p99_response.Add(outcome.p99_response);
  cell.max_response.Add(outcome.max_response);
  cell.makespan.Add(static_cast<double>(outcome.makespan));
  cell.peak_backlog.Add(static_cast<double>(outcome.peak_backlog));
  if (outcome.num_coflows > 0) {
    cell.num_coflows += outcome.num_coflows;
    cell.avg_cct.Add(outcome.avg_cct);
    cell.p95_cct.Add(outcome.p95_cct);
    cell.max_cct.Add(outcome.max_cct);
    cell.avg_slowdown.Add(outcome.avg_slowdown);
  }
  if (outcome.shards > 0) {
    cell.shards = std::max(cell.shards, outcome.shards);
    cell.load_imbalance.Add(outcome.load_imbalance);
    cell.cross_shard_flows.Add(static_cast<double>(outcome.cross_shard_flows));
    cell.split_coflows.Add(static_cast<double>(outcome.split_coflows));
  }
  if (outcome.has_scenario) {
    ++cell.scenario_n;
    cell.scenario_events = std::max(cell.scenario_events,
                                    outcome.scenario_events);
    cell.downtime_rounds.Add(static_cast<double>(outcome.downtime_rounds));
    cell.backlog_surge.Add(outcome.backlog_surge);
    cell.recovery_drain_rounds.Add(
        static_cast<double>(outcome.recovery_drain_rounds));
    cell.response_inflation.Add(outcome.response_inflation);
    cell.migrated_flows.Add(static_cast<double>(outcome.migrated_flows));
  }
  cell.wall_seconds.Add(outcome.wall_seconds);
  cell.rounds_per_sec.Add(outcome.rounds_per_sec);
}

void Aggregator::AddRun(const SweepRun& run) {
  FS_CHECK_EQ(run.plan.tasks.size(), run.outcomes.size());
  for (const SweepTask& task : run.plan.tasks) {
    Add(task, run.outcomes[task.index]);
  }
}

void Aggregator::WriteJson(std::ostream& out, const SweepSpec& spec, int jobs,
                           double wall_seconds, bool include_timing) const {
  out << "{\n";
  out << "  " << JsonStr("sweep", spec.name) << ",\n";
  WriteProvenanceJson(out, CollectProvenance(), 2);
  out << ",\n";
  out << "  \"spec\": {\n";
  out << "    \"solvers\": [";
  for (std::size_t i = 0; i < spec.solvers.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(spec.solvers[i]) << "\"";
  }
  out << "],\n    \"instances\": [";
  for (std::size_t i = 0; i < spec.instances.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << JsonEscape(spec.instances[i])
        << "\"";
  }
  out << "],\n    \"trials\": " << spec.trials
      << ",\n    \"base_seed\": " << spec.base_seed << "\n  },\n";
  if (include_timing) {
    out << "  \"jobs\": " << jobs << ",\n";
    out << "  \"wall_seconds\": " << JsonNum(wall_seconds) << ",\n";
  }

  int total_n = 0, total_failures = 0;
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellAggregate& c = cells_[i];
    const SweepCell& key = plan_.cells[c.cell];
    total_n += c.n;
    total_failures += c.failures;
    out << "    {" << JsonStr("solver", key.solver) << ", "
        << JsonStr("instance", key.instance_family);
    if (key.load) out << ", \"load\": " << JsonNum(*key.load);
    if (key.ports) out << ", \"ports\": " << *key.ports;
    if (key.rounds) out << ", \"rounds\": " << *key.rounds;
    if (key.shards) out << ", \"shards\": " << *key.shards;
    if (key.dist) out << ", " << JsonStr("dist", *key.dist);
    if (key.scenario) out << ", " << JsonStr("scenario", *key.scenario);
    out << ", \"n\": " << c.n << ", \"failures\": " << c.failures
        << ", \"num_flows\": " << c.num_flows;
    if (c.n > 0) {
      out << ",\n     \"total_response\": ";
      WriteStatsObject(out, c.total_response);
      out << ",\n     \"avg_response\": ";
      WriteStatsObject(out, c.avg_response);
      out << ",\n     \"p50_response\": ";
      WriteStatsObject(out, c.p50_response);
      out << ",\n     \"p95_response\": ";
      WriteStatsObject(out, c.p95_response);
      out << ",\n     \"p99_response\": ";
      WriteStatsObject(out, c.p99_response);
      out << ",\n     \"max_response\": ";
      WriteStatsObject(out, c.max_response);
      out << ",\n     \"makespan\": ";
      WriteStatsObject(out, c.makespan);
      out << ",\n     \"peak_backlog\": ";
      WriteStatsObject(out, c.peak_backlog);
      if (c.num_coflows > 0) {
        out << ",\n     \"num_coflows\": " << c.num_coflows;
        out << ",\n     \"avg_cct\": ";
        WriteStatsObject(out, c.avg_cct);
        out << ",\n     \"p95_cct\": ";
        WriteStatsObject(out, c.p95_cct);
        out << ",\n     \"max_cct\": ";
        WriteStatsObject(out, c.max_cct);
        out << ",\n     \"avg_slowdown\": ";
        WriteStatsObject(out, c.avg_slowdown);
      }
      if (c.shards > 0) {
        out << ",\n     \"fabric_shards\": " << c.shards;
        out << ",\n     \"load_imbalance\": ";
        WriteStatsObject(out, c.load_imbalance);
        out << ",\n     \"cross_shard_flows\": ";
        WriteStatsObject(out, c.cross_shard_flows);
        out << ",\n     \"split_coflows\": ";
        WriteStatsObject(out, c.split_coflows);
      }
      if (c.scenario_n > 0) {
        out << ",\n     \"scenario_events\": " << c.scenario_events;
        out << ",\n     \"downtime_rounds\": ";
        WriteStatsObject(out, c.downtime_rounds);
        out << ",\n     \"backlog_surge\": ";
        WriteStatsObject(out, c.backlog_surge);
        out << ",\n     \"recovery_drain_rounds\": ";
        WriteStatsObject(out, c.recovery_drain_rounds);
        out << ",\n     \"response_inflation\": ";
        WriteStatsObject(out, c.response_inflation);
        out << ",\n     \"migrated_flows\": ";
        WriteStatsObject(out, c.migrated_flows);
      }
      if (include_timing) {
        out << ",\n     \"wall_seconds\": ";
        WriteStatsObject(out, c.wall_seconds);
        out << ",\n     \"rounds_per_sec\": ";
        WriteStatsObject(out, c.rounds_per_sec);
      }
    }
    out << "}" << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"totals\": {\"cells\": " << cells_.size()
      << ", \"tasks_ok\": " << total_n
      << ", \"tasks_failed\": " << total_failures << "}\n";
  out << "}\n";
}

void Aggregator::WriteCsv(std::ostream& out, bool include_timing) const {
  out << "solver,instance,load,ports,rounds,shards,dist,scenario,n,failures,"
         "num_flows";
  // Coflow, fabric, and robustness columns are always present (zeros for
  // solvers/cells that emit none) so the header is independent of which
  // solvers ran.
  const char* metrics[] = {"total_response",        "avg_response",
                           "p50_response",          "p95_response",
                           "p99_response",          "max_response",
                           "makespan",              "peak_backlog",
                           "avg_cct",               "p95_cct",
                           "max_cct",               "avg_slowdown",
                           "load_imbalance",        "cross_shard_flows",
                           "split_coflows",         "downtime_rounds",
                           "backlog_surge",         "recovery_drain_rounds",
                           "response_inflation",    "migrated_flows"};
  out << ",num_coflows,fabric_shards,scenario_events";
  for (const char* m : metrics) {
    out << "," << m << "_mean," << m << "_stddev," << m << "_min," << m
        << "_max," << m << "_ci95";
  }
  if (include_timing) {
    out << ",wall_seconds_mean,rounds_per_sec_mean";
  }
  out << "\n";
  for (const CellAggregate& c : cells_) {
    const SweepCell& key = plan_.cells[c.cell];
    // Instance specs and inline scenario scripts contain commas, semicolons,
    // and potentially quotes; CsvEscapeField quotes and doubles as needed —
    // bare surrounding quotes used to shear columns on embedded '"'.
    out << CsvEscapeField(key.solver) << ","
        << CsvEscapeField(key.instance_family) << ",";
    if (key.load) out << JsonNum(*key.load);
    out << ",";
    if (key.ports) out << *key.ports;
    out << ",";
    if (key.rounds) out << *key.rounds;
    out << ",";
    if (key.shards) out << *key.shards;
    out << ",";
    if (key.dist) out << CsvEscapeField(*key.dist);
    out << ",";
    if (key.scenario) out << CsvEscapeField(*key.scenario);
    out << "," << c.n << "," << c.failures << "," << c.num_flows << ","
        << c.num_coflows << "," << c.shards << "," << c.scenario_events;
    const RunningStats* stats[] = {
        &c.total_response, &c.avg_response, &c.p50_response, &c.p95_response,
        &c.p99_response,   &c.max_response, &c.makespan,     &c.peak_backlog,
        &c.avg_cct,        &c.p95_cct,      &c.max_cct,      &c.avg_slowdown,
        &c.load_imbalance, &c.cross_shard_flows, &c.split_coflows,
        &c.downtime_rounds, &c.backlog_surge, &c.recovery_drain_rounds,
        &c.response_inflation, &c.migrated_flows};
    for (const RunningStats* s : stats) {
      out << ",";
      WriteCsvStats(out, *s);
    }
    if (include_timing) {
      out << "," << JsonNum(c.wall_seconds.mean()) << ","
          << JsonNum(c.rounds_per_sec.mean());
    }
    out << "\n";
  }
}

}  // namespace flowsched
