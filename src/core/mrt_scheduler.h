// Theorem 3: optimal maximum response time with additive capacity
// augmentation 2*dmax - 1, plus the Remark 4.2 deadline variant.
//
// The minimum feasible rho for LP (19)-(21) is found by binary search (as in
// the paper's experiments, seeded by a heuristic schedule's max response);
// the fractional solution at rho* is rounded by GroupRound. rho* lower-bounds
// the optimum of ANY schedule, and the rounded schedule achieves it while
// overloading each port by at most the reported violation (<= 2*dmax - 1 on
// all tested workloads; see group_rounding.h).
#ifndef FLOWSCHED_CORE_MRT_SCHEDULER_H_
#define FLOWSCHED_CORE_MRT_SCHEDULER_H_

#include <optional>

#include "core/group_rounding.h"
#include "model/metrics.h"

namespace flowsched {

struct MrtSchedulerOptions {
  Round rho_upper_hint = 0;  // 0 = derive from a FIFO-greedy schedule.
  SimplexOptions simplex;
  GroupRoundingOptions rounding;
};

struct MrtSchedulerResult {
  // Smallest rho for which the LP is feasible: a lower bound on the optimal
  // max response time of any (non-augmented) schedule.
  Round rho_lp = 0;
  Schedule schedule;  // Max response == rho_lp, capacities augmented.
  ScheduleMetrics metrics;
  CapacityAllowance allowance;  // Additive 2*dmax - 1 (theorem bound).
  GroupRoundingReport rounding_report;
  int binary_search_probes = 0;
  Round heuristic_upper_bound = 0;
};

MrtSchedulerResult MinimizeMaxResponse(const Instance& instance,
                                       const MrtSchedulerOptions& options = {});

// Remark 4.2: schedule every flow within [release_e, deadline_e], capacities
// augmented by 2*dmax - 1. Returns nullopt when the LP itself is infeasible
// (then no schedule exists at all, augmented or not).
struct DeadlineSchedulerResult {
  Schedule schedule;
  CapacityAllowance allowance;
  GroupRoundingReport rounding_report;
};
std::optional<DeadlineSchedulerResult> ScheduleWithDeadlines(
    const Instance& instance, std::span<const Round> deadlines,
    const MrtSchedulerOptions& options = {});

// The FIFO-greedy heuristic used to seed the binary search (paper §5.2.2
// seeds with "the best of the three heuristics"; FIFO-greedy is simple and
// needs no matching machinery). Exposed for tests/benches.
Schedule FifoGreedySchedule(const Instance& instance);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_MRT_SCHEDULER_H_
