// Exact (exponential-time) optimal schedulers for tiny instances.
//
// The paper compares its algorithms against LP lower bounds because exact
// optima are intractable at scale; at test scale we *can* compute them, which
// lets the test suite verify Lemma 3.1 (LP <= OPT), the 4/3 hardness gap
// instances, the Theorem 2 reduction, and online competitive ratios against
// the true optimum. Memoized DFS over (round, set-of-scheduled-flows); use
// only for <= ~20 flows.
#ifndef FLOWSCHED_CORE_EXACT_H_
#define FLOWSCHED_CORE_EXACT_H_

#include <optional>
#include <span>

#include "model/instance.h"
#include "model/metrics.h"
#include "model/schedule.h"

namespace flowsched {

// Is there a schedule with max response <= rho? Returns one if so.
// All flows must fit the switch individually (instance valid).
std::optional<Schedule> ExactMrtFeasible(const Instance& instance, Round rho);

// Smallest rho in [1, rho_limit] admitting a schedule; nullopt if none.
std::optional<Round> ExactMinMaxResponse(const Instance& instance,
                                         Round rho_limit);

struct ExactArtResult {
  double total_response = 0.0;  // Weighted when weights are supplied.
  Schedule schedule;
};

// Minimizes (weighted) total response time by branch and bound. Pass an
// empty span for the unweighted objective; otherwise one weight >= 0 per
// flow.
ExactArtResult ExactMinTotalResponse(const Instance& instance,
                                     std::span<const double> weights = {});

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_EXACT_H_
