#include "core/art_scheduler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/edge_coloring.h"
#include "graph/expansion.h"
#include "util/check.h"

namespace flowsched {

ArtSchedulerResult ScheduleArtWithAugmentation(
    const Instance& instance, const ArtSchedulerOptions& options) {
  FS_CHECK_GE(options.c, 1);
  const int n = instance.num_flows();
  ArtSchedulerResult result;
  result.allowance = CapacityAllowance::Factor(1.0 + options.c);
  result.schedule = Schedule(n);
  if (n == 0) {
    result.metrics = ScheduleMetrics{};
    return result;
  }
  const PseudoSchedule pseudo =
      ArtIterativeRounding(instance, options.rounding, &result.rounding_report);

  // Interval length h: the theory wants ceil((h + overload/c_p) / (1+c)) <= h,
  // i.e. h >= overload / (c_p * c); we use the *measured* window overload
  // (O(c_p log n) by Lemma 3.3, usually far smaller). The packing cursor
  // below keeps the schedule valid even if an interval overruns h.
  const double per_cap_overload =
      static_cast<double>(result.rounding_report.max_window_overload) /
      static_cast<double>(instance.sw().MinCapacity());
  const int h = options.interval_length > 0
                    ? options.interval_length
                    : std::max(1, static_cast<int>(std::ceil(
                                      per_cap_overload / options.c)));
  result.interval_length = h;
  const Round pseudo_end = pseudo.assignment.Makespan();
  const int num_intervals = (pseudo_end + h - 1) / h;
  // Bucket flows by pseudo interval.
  std::vector<std::vector<FlowId>> interval_flows(num_intervals);
  for (FlowId e = 0; e < n; ++e) {
    interval_flows[pseudo.assignment.round_of(e) / h].push_back(e);
  }
  // Pack each interval's matchings into the following interval, (1+c)
  // matchings per round. `cursor` never moves backwards, which keeps the
  // placement valid even if an interval needs more rounds than h (possible
  // only for small n where the O(log n) constants dominate).
  const int stack = 1 + options.c;
  Round cursor = 0;
  ReplicatedGraph rg;  // Reused across intervals.
  for (int j = 0; j < num_intervals; ++j) {
    if (interval_flows[j].empty()) continue;
    Replicate(instance, interval_flows[j], &rg);
    const EdgeColoring ec = ColorBipartiteEdges(rg.graph, options.coloring);
    if (options.validate) FS_CHECK(IsValidEdgeColoring(rg.graph, ec));
    result.max_colors = std::max(result.max_colors, ec.num_colors);
    const Round interval_start = (j + 1) * static_cast<Round>(h);
    cursor = std::max(cursor, interval_start);
    const auto classes = ec.ColorClasses(options.validate);
    for (std::size_t color = 0; color < classes.size(); ++color) {
      const Round round = cursor + static_cast<Round>(color) / stack;
      for (int edge : classes[color]) {
        const FlowId e = interval_flows[j][rg.edge_to_input_index[edge]];
        // Releases are respected by construction: the pseudo round is >= the
        // release and the placement round is strictly later.
        FS_CHECK_GE(round, instance.flow(e).release);
        result.schedule.Assign(e, round);
        const int delay = round - pseudo.assignment.round_of(e);
        result.max_extra_delay = std::max(result.max_extra_delay, delay);
      }
    }
    cursor += (static_cast<Round>(ec.num_colors) + stack - 1) / stack;
  }
  FS_CHECK(result.schedule.AllAssigned());
  if (options.validate) {
    FS_CHECK_MSG(
        !result.schedule.ValidationError(instance, result.allowance).has_value(),
        *result.schedule.ValidationError(instance, result.allowance));
  }
  result.metrics = ComputeMetrics(instance, result.schedule);
  if (result.rounding_report.lp0_objective > 0.0) {
    result.approx_ratio_vs_lp =
        result.metrics.total_response / result.rounding_report.lp0_objective;
  }
  return result;
}

}  // namespace flowsched
