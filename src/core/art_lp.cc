#include "core/art_lp.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace flowsched {
namespace {

double ColumnCost(const Flow& e, Capacity kappa, Round t) {
  return static_cast<double>(t - e.release) / static_cast<double>(e.demand) +
         0.5 / static_cast<double>(kappa);
}

}  // namespace

Round ArtLpInitialHorizon(const Instance& instance) {
  // Load-based estimate: the backlog drains at no more than the total port
  // bandwidth of the tighter side; double it for slack and add r_max.
  Capacity side_in = 0;
  Capacity side_out = 0;
  for (Capacity c : instance.sw().input_capacities()) side_in += c;
  for (Capacity c : instance.sw().output_capacities()) side_out += c;
  const Capacity bandwidth = std::max<Capacity>(1, std::min(side_in, side_out));
  const Capacity total = instance.TotalDemand();
  const auto drain =
      static_cast<Round>(total / bandwidth + total / (4 * bandwidth) + 8);
  return std::min<Round>(instance.MaxRelease() + drain, instance.SafeHorizon());
}

ArtLpResult SolveArtLp(const Instance& instance, const ArtLpOptions& options) {
  FS_CHECK(!instance.ValidationError().has_value());
  ArtLpResult result;
  const int n = instance.num_flows();
  if (n == 0) {
    result.solved = true;
    result.certified = true;
    return result;
  }
  const SwitchSpec& sw = instance.sw();
  const bool weighted = !options.weights.empty();
  if (weighted) {
    FS_CHECK_EQ(static_cast<int>(options.weights.size()), n);
    for (double w : options.weights) FS_CHECK_GE(w, 0.0);
  }
  auto flow_weight = [&](int e) {
    return weighted ? options.weights[e] : 1.0;
  };
  Round horizon = options.initial_horizon > 0 ? options.initial_horizon
                                              : ArtLpInitialHorizon(instance);
  const Round safe = instance.SafeHorizon();
  horizon = std::min(horizon, safe);
  Round min_release = safe;
  for (const Flow& e : instance.flows()) {
    min_release = std::min(min_release, e.release);
  }

  for (int attempt = 0; attempt <= options.max_extensions; ++attempt) {
    LpProblem lp;
    // Rows: one covering row per flow, then capacity rows per (side, port,
    // round) for rounds in [min_release, horizon).
    std::vector<int> flow_row(n);
    for (int e = 0; e < n; ++e) {
      flow_row[e] =
          lp.AddRow(RowSense::kGe, static_cast<double>(instance.flow(e).demand));
    }
    const Round t0 = min_release;
    const int rounds = horizon - t0;
    FS_CHECK_GT(rounds, 0);
    auto in_row = [&](PortId p, Round t) {
      return n + (t - t0) * (sw.num_inputs() + sw.num_outputs()) + p;
    };
    auto out_row = [&](PortId q, Round t) {
      return n + (t - t0) * (sw.num_inputs() + sw.num_outputs()) +
             sw.num_inputs() + q;
    };
    for (Round t = t0; t < horizon; ++t) {
      for (PortId p = 0; p < sw.num_inputs(); ++p) {
        const int row = lp.AddRow(RowSense::kLe,
                                  static_cast<double>(sw.input_capacity(p)));
        FS_CHECK_EQ(row, in_row(p, t));
      }
      for (PortId q = 0; q < sw.num_outputs(); ++q) {
        const int row = lp.AddRow(RowSense::kLe,
                                  static_cast<double>(sw.output_capacity(q)));
        FS_CHECK_EQ(row, out_row(q, t));
      }
    }
    // Columns b_{e,t}.
    std::vector<std::pair<int, double>> entries(3);
    for (int e = 0; e < n; ++e) {
      const Flow& f = instance.flow(e);
      const Capacity kappa = sw.Kappa(f);
      for (Round t = f.release; t < horizon; ++t) {
        entries[0] = {flow_row[e], 1.0};
        entries[1] = {in_row(f.src, t), 1.0};
        entries[2] = {out_row(f.dst, t), 1.0};
        lp.AddColumn(flow_weight(e) * ColumnCost(f, kappa, t), entries);
      }
    }
    const SimplexResult res = SolveLp(lp, options.simplex);
    result.simplex_iterations += res.iterations;
    result.lp_rows = lp.num_rows();
    result.lp_cols = lp.num_cols();
    result.horizon = horizon;
    if (res.status == SimplexStatus::kInfeasible) {
      // Horizon too small to complete all demand; extend.
      FS_CHECK_LT(horizon, safe);
      horizon = std::min<Round>(safe, horizon + std::max<Round>(8, horizon / 2));
      continue;
    }
    FS_CHECK_MSG(res.status == SimplexStatus::kOptimal,
                 "ART LP solve failed: " << ToString(res.status));
    // Extract per-flow fractional response.
    result.delta.assign(n, 0.0);
    {
      int col = 0;
      for (int e = 0; e < n; ++e) {
        const Flow& f = instance.flow(e);
        const Capacity kappa = sw.Kappa(f);
        for (Round t = f.release; t < horizon; ++t, ++col) {
          if (res.x[col] > 0.0) {
            result.delta[e] +=
                flow_weight(e) * ColumnCost(f, kappa, t) * res.x[col];
          }
        }
      }
      FS_CHECK_EQ(col, lp.num_cols());
    }
    result.total_fractional_response = res.objective;
    result.solved = true;
    // Certificate: alpha_e <= w_{e,horizon} means no column beyond the
    // horizon can improve the solution.
    bool certified = true;
    for (int e = 0; e < n && certified; ++e) {
      const Flow& f = instance.flow(e);
      const double alpha = res.duals[flow_row[e]];
      const double w_next = flow_weight(e) * ColumnCost(f, sw.Kappa(f), horizon);
      if (alpha > w_next + 1e-7) certified = false;
    }
    result.certified = certified;
    if (certified || horizon >= safe) return result;
    horizon = std::min<Round>(safe, horizon + std::max<Round>(8, horizon / 2));
  }
  return result;  // Solved (possibly uncertified) after exhausting retries.
}

}  // namespace flowsched
