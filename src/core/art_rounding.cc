#include "core/art_rounding.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/art_lp.h"
#include "util/check.h"

namespace flowsched {
namespace {

constexpr double kIntegralTol = 1e-6;
constexpr double kZeroTol = 1e-9;

struct Var {
  FlowId e;
  Round t;
  double value = 0.0;  // b^{l-1}, the previous iteration's optimum.
};

double VarCost(const Instance& instance, const Var& v) {
  // Objective (5) with unit demands: (t - r_e) + 1/2.
  return static_cast<double>(v.t - instance.flow(v.e).release) + 0.5;
}

// Builds the per-port interval rows of LP(l), l >= 1: variables of each port
// sorted by (t, flow), greedily grouped until the running sum of previous
// values first exceeds 4*c_p; the row's rhs is the group's exact size.
void AddIntervalRows(LpProblem& lp, const std::vector<Var>& vars,
                     const std::vector<std::vector<int>>& port_vars,
                     const std::vector<Capacity>& caps,
                     std::vector<std::vector<std::pair<int, int>>>& var_rows) {
  for (std::size_t p = 0; p < port_vars.size(); ++p) {
    const double limit = 4.0 * static_cast<double>(caps[p]);
    double sum = 0.0;
    std::vector<int> group;
    auto flush = [&] {
      if (group.empty()) return;
      const int row = lp.AddRow(RowSense::kLe, sum);
      for (int v : group) var_rows[v].push_back({row, 1});
      group.clear();
      sum = 0.0;
    };
    for (int v : port_vars[p]) {
      group.push_back(v);
      sum += vars[v].value;
      if (sum > limit) flush();
    }
    flush();
  }
}

}  // namespace

Capacity MaxWindowOverload(const Instance& instance, const Schedule& schedule) {
  FS_CHECK(schedule.AllAssigned());
  const PortLoads loads = schedule.ComputeLoads(instance);
  const SwitchSpec& sw = instance.sw();
  Capacity worst = 0;
  auto scan = [&](const std::vector<Capacity>& load, Capacity cap) {
    // Maximum subarray of (load[t] - cap) == worst window overload.
    Capacity best = 0;
    Capacity run = 0;
    for (Capacity l : load) {
      run = std::max<Capacity>(0, run + (l - cap));
      best = std::max(best, run);
    }
    worst = std::max(worst, best);
  };
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    scan(loads.input[p], sw.input_capacity(p));
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    scan(loads.output[q], sw.output_capacity(q));
  }
  return worst;
}

PseudoSchedule ArtIterativeRounding(const Instance& instance,
                                    const ArtRoundingOptions& options,
                                    ArtRoundingReport* report) {
  FS_CHECK(!instance.ValidationError().has_value());
  const int n = instance.num_flows();
  PseudoSchedule out;
  out.assignment = Schedule(n);
  ArtRoundingReport local_report;
  ArtRoundingReport& rep = report != nullptr ? *report : local_report;
  rep = ArtRoundingReport{};
  if (n == 0) return out;
  for (const Flow& e : instance.flows()) {
    FS_CHECK_MSG(e.demand == 1,
                 "iterative rounding requires unit demands (Theorem 1)");
  }
  const SwitchSpec& sw = instance.sw();

  // ---------------------------------------------------------------------
  // LP(0): aligned 4-round windows, constraint (7). Solved with horizon
  // extension + the same dual certificate as LP (1)-(4).
  // ---------------------------------------------------------------------
  Round horizon = options.initial_horizon > 0 ? options.initial_horizon
                                              : ArtLpInitialHorizon(instance);
  const Round safe = instance.SafeHorizon();
  horizon = std::min(horizon, safe);
  std::vector<Var> vars;
  for (int attempt = 0; attempt <= options.max_extensions; ++attempt) {
    // Round the horizon up to a whole window.
    horizon = ((horizon + 3) / 4) * 4;
    LpProblem lp;
    std::vector<int> flow_row(n);
    for (int e = 0; e < n; ++e) flow_row[e] = lp.AddRow(RowSense::kGe, 1.0);
    const int windows = horizon / 4;
    auto in_row = [&](PortId p, Round t) {
      return n + (t / 4) * (sw.num_inputs() + sw.num_outputs()) + p;
    };
    auto out_row = [&](PortId q, Round t) {
      return n + (t / 4) * (sw.num_inputs() + sw.num_outputs()) +
             sw.num_inputs() + q;
    };
    for (int a = 0; a < windows; ++a) {
      for (PortId p = 0; p < sw.num_inputs(); ++p) {
        lp.AddRow(RowSense::kLe, 4.0 * static_cast<double>(sw.input_capacity(p)));
      }
      for (PortId q = 0; q < sw.num_outputs(); ++q) {
        lp.AddRow(RowSense::kLe,
                  4.0 * static_cast<double>(sw.output_capacity(q)));
      }
    }
    vars.clear();
    std::vector<std::pair<int, double>> entries(3);
    for (int e = 0; e < n; ++e) {
      const Flow& f = instance.flow(e);
      for (Round t = f.release; t < horizon; ++t) {
        entries[0] = {flow_row[e], 1.0};
        entries[1] = {in_row(f.src, t), 1.0};
        entries[2] = {out_row(f.dst, t), 1.0};
        const Var v{e, t, 0.0};
        lp.AddColumn(VarCost(instance, v), entries);
        vars.push_back(v);
      }
    }
    const SimplexResult res = SolveLp(lp, options.simplex);
    rep.horizon = horizon;
    if (res.status == SimplexStatus::kInfeasible && horizon < safe) {
      horizon = std::min<Round>(safe, horizon + std::max<Round>(8, horizon / 2));
      continue;
    }
    FS_CHECK_MSG(res.status == SimplexStatus::kOptimal,
                 "LP(0) solve failed: " << ToString(res.status));
    bool certified = true;
    for (int e = 0; e < n && certified; ++e) {
      const double w_next = static_cast<double>(horizon - instance.flow(e).release) + 0.5;
      if (res.duals[flow_row[e]] > w_next + 1e-7) certified = false;
    }
    if (!certified && horizon < safe && attempt < options.max_extensions) {
      horizon = std::min<Round>(safe, horizon + std::max<Round>(8, horizon / 2));
      continue;
    }
    for (std::size_t v = 0; v < vars.size(); ++v) vars[v].value = res.x[v];
    rep.lp0_objective = res.objective;
    break;
  }
  FS_CHECK_MSG(rep.lp0_objective > 0.0 || n == 0, "LP(0) was never solved");

  // ---------------------------------------------------------------------
  // Iterations l = 1, 2, ...: fix integral flows, regroup, re-solve.
  // ---------------------------------------------------------------------
  std::vector<char> assigned(n, 0);
  int remaining = n;
  for (int iter = 0; iter < options.max_iterations && remaining > 0; ++iter) {
    ++rep.iterations;
    rep.flows_per_iteration.push_back(remaining);
    // Fix flows whose mass sits (numerically) on a single round.
    int fixed_this_round = 0;
    for (const Var& v : vars) {
      if (!assigned[v.e] && v.value >= 1.0 - kIntegralTol) {
        out.assignment.Assign(v.e, v.t);
        assigned[v.e] = 1;
        --remaining;
        ++fixed_this_round;
      }
    }
    if (remaining == 0) break;
    if (fixed_this_round == 0) {
      // Numerical stall: force-fix the most concentrated flow (Lemma 3.5
      // guarantees progress in exact arithmetic; this guards drift).
      int best_var = -1;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        if (assigned[vars[v].e]) continue;
        if (best_var == -1 || vars[v].value > vars[best_var].value) {
          best_var = static_cast<int>(v);
        }
      }
      FS_CHECK_GE(best_var, 0);
      out.assignment.Assign(vars[best_var].e, vars[best_var].t);
      assigned[vars[best_var].e] = 1;
      --remaining;
      ++rep.forced_fixes;
      if (remaining == 0) break;
    }
    // Surviving variables: nonzero values of still-unassigned flows.
    std::vector<Var> next;
    next.reserve(vars.size());
    for (const Var& v : vars) {
      if (!assigned[v.e] && v.value > kZeroTol) next.push_back(v);
    }
    vars = std::move(next);
    // Variables are appended flow-major; interval grouping needs time order.
    std::sort(vars.begin(), vars.end(), [](const Var& a, const Var& b) {
      return a.t != b.t ? a.t < b.t : a.e < b.e;
    });
    // Build LP(l).
    LpProblem lp;
    std::vector<int> flow_row_of(n, -1);
    for (int e = 0; e < n; ++e) {
      if (!assigned[e]) flow_row_of[e] = lp.AddRow(RowSense::kGe, 1.0);
    }
    // Group per input port and output port.
    std::vector<std::vector<int>> in_vars(sw.num_inputs());
    std::vector<std::vector<int>> out_vars(sw.num_outputs());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const Flow& f = instance.flow(vars[v].e);
      in_vars[f.src].push_back(static_cast<int>(v));
      out_vars[f.dst].push_back(static_cast<int>(v));
    }
    std::vector<std::vector<std::pair<int, int>>> var_rows(vars.size());
    AddIntervalRows(lp, vars, in_vars, sw.input_capacities(), var_rows);
    AddIntervalRows(lp, vars, out_vars, sw.output_capacities(), var_rows);
    for (std::size_t v = 0; v < vars.size(); ++v) {
      std::vector<std::pair<int, double>> entries;
      entries.reserve(3);
      entries.push_back({flow_row_of[vars[v].e], 1.0});
      for (const auto& [row, coef] : var_rows[v]) {
        entries.push_back({row, static_cast<double>(coef)});
      }
      lp.AddColumn(VarCost(instance, vars[v]), entries);
    }
    const SimplexResult res = SolveLp(lp, options.simplex);
    FS_CHECK_MSG(res.status == SimplexStatus::kOptimal,
                 "LP(" << (iter + 1) << ") failed: " << ToString(res.status));
    for (std::size_t v = 0; v < vars.size(); ++v) vars[v].value = res.x[v];
  }
  FS_CHECK_MSG(remaining == 0,
               "iterative rounding left " << remaining << " flows unassigned");

  // Audit Lemma 3.3 properties for the report.
  rep.pseudo_cost = 0.0;
  for (const Flow& e : instance.flows()) {
    rep.pseudo_cost += static_cast<double>(out.assignment.round_of(e.id) -
                                           e.release) + 0.5;
  }
  rep.max_window_overload = MaxWindowOverload(instance, out.assignment);
  const double cap_log = static_cast<double>(sw.MaxCapacity()) *
                         std::log2(static_cast<double>(std::max(n, 2)));
  rep.overload_per_cap_log_n =
      static_cast<double>(rep.max_window_overload) / cap_log;
  return out;
}

}  // namespace flowsched
