#include "core/exact.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace flowsched {
namespace {

constexpr int kMaxExactFlows = 30;

using Mask = std::uint32_t;

// Shared helpers over an instance with n <= kMaxExactFlows flows.
struct ExactContext {
  const Instance& instance;
  int n;
  Mask full;

  explicit ExactContext(const Instance& inst)
      : instance(inst),
        n(inst.num_flows()),
        full(inst.num_flows() == 32 ? ~Mask{0}
                                    : ((Mask{1} << inst.num_flows()) - 1)) {
    FS_CHECK_LE(n, kMaxExactFlows);
  }

  // Flows released at or before t and still unscheduled.
  std::vector<int> Available(Mask scheduled, Round t) const {
    std::vector<int> avail;
    for (int e = 0; e < n; ++e) {
      if (!(scheduled & (Mask{1} << e)) && instance.flow(e).release <= t) {
        avail.push_back(e);
      }
    }
    return avail;
  }

  Round NextRelease(Mask scheduled, Round t) const {
    Round next = std::numeric_limits<Round>::max();
    for (int e = 0; e < n; ++e) {
      if (!(scheduled & (Mask{1} << e)) && instance.flow(e).release > t) {
        next = std::min(next, instance.flow(e).release);
      }
    }
    return next;
  }

  // Enumerates maximal capacity-feasible subsets of `avail` (as masks over
  // flow ids). Scheduling a superset never hurts either objective, so only
  // maximal sets need exploration (exchange argument; see exact.h).
  void MaximalFeasibleSets(const std::vector<int>& avail,
                           std::vector<Mask>& out) const {
    out.clear();
    std::vector<Capacity> in_res(instance.sw().num_inputs());
    std::vector<Capacity> out_res(instance.sw().num_outputs());
    for (PortId p = 0; p < instance.sw().num_inputs(); ++p) {
      in_res[p] = instance.sw().input_capacity(p);
    }
    for (PortId q = 0; q < instance.sw().num_outputs(); ++q) {
      out_res[q] = instance.sw().output_capacity(q);
    }
    Mask current = 0;
    EnumerateSets(avail, 0, current, in_res, out_res, out);
    // Deduplicate (different branches can yield the same maximal set).
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

 private:
  void EnumerateSets(const std::vector<int>& avail, std::size_t idx,
                     Mask& current, std::vector<Capacity>& in_res,
                     std::vector<Capacity>& out_res,
                     std::vector<Mask>& out) const {
    if (idx == avail.size()) {
      // Maximal iff no skipped flow still fits.
      for (int e : avail) {
        if (current & (Mask{1} << e)) continue;
        const Flow& f = instance.flow(e);
        if (f.demand <= in_res[f.src] && f.demand <= out_res[f.dst]) return;
      }
      out.push_back(current);
      return;
    }
    const Flow& f = instance.flow(avail[idx]);
    if (f.demand <= in_res[f.src] && f.demand <= out_res[f.dst]) {
      in_res[f.src] -= f.demand;
      out_res[f.dst] -= f.demand;
      current |= Mask{1} << avail[idx];
      EnumerateSets(avail, idx + 1, current, in_res, out_res, out);
      current &= ~(Mask{1} << avail[idx]);
      in_res[f.src] += f.demand;
      out_res[f.dst] += f.demand;
    }
    EnumerateSets(avail, idx + 1, current, in_res, out_res, out);
  }
};

// --------------------------- MRT feasibility -------------------------------

class MrtSearch {
 public:
  MrtSearch(const Instance& instance, Round rho)
      : ctx_(instance), rho_(rho), schedule_(instance.num_flows()) {}

  std::optional<Schedule> Run() {
    if (ctx_.n == 0) return Schedule(0);
    if (Dfs(0, 0)) return schedule_;
    return std::nullopt;
  }

 private:
  bool Dfs(Round t, Mask scheduled) {
    if (scheduled == ctx_.full) return true;
    // Deadline check: every unscheduled flow must still have a live window.
    for (int e = 0; e < ctx_.n; ++e) {
      if (scheduled & (Mask{1} << e)) continue;
      if (ctx_.instance.flow(e).release + rho_ - 1 < t) return false;
    }
    const auto key = (static_cast<std::uint64_t>(t) << 32) | scheduled;
    if (failed_.count(key) != 0) return false;
    std::vector<int> avail = ctx_.Available(scheduled, t);
    if (avail.empty()) {
      const Round next = ctx_.NextRelease(scheduled, t);
      FS_CHECK_LT(next, std::numeric_limits<Round>::max());
      if (Dfs(next, scheduled)) return true;
      failed_.insert(key);
      return false;
    }
    std::vector<Mask> sets;
    ctx_.MaximalFeasibleSets(avail, sets);
    for (Mask s : sets) {
      if (Dfs(t + 1, scheduled | s)) {
        for (int e = 0; e < ctx_.n; ++e) {
          if (s & (Mask{1} << e)) schedule_.Assign(e, t);
        }
        return true;
      }
    }
    failed_.insert(key);
    return false;
  }

  ExactContext ctx_;
  Round rho_;
  Schedule schedule_;
  std::unordered_set<std::uint64_t> failed_;
};

// --------------------------- ART branch & bound ----------------------------

class ArtSearch {
 public:
  ArtSearch(const Instance& instance, std::span<const double> weights)
      : ctx_(instance),
        best_cost_(std::numeric_limits<double>::infinity()),
        best_schedule_(instance.num_flows()),
        current_(instance.num_flows()) {
    weight_.assign(instance.num_flows(), 1.0);
    if (!weights.empty()) {
      FS_CHECK_EQ(static_cast<int>(weights.size()), instance.num_flows());
      for (int e = 0; e < instance.num_flows(); ++e) {
        FS_CHECK_GE(weights[e], 0.0);
        weight_[e] = weights[e];
      }
    }
  }

  ExactArtResult Run() {
    if (ctx_.n == 0) return {0.0, Schedule(0)};
    Dfs(0, 0, 0.0);
    FS_CHECK(best_schedule_.AllAssigned());
    return {best_cost_, best_schedule_};
  }

 private:
  // Admissible lower bound on the cost of completing `scheduled` from round
  // t onwards: every unscheduled flow responds at least
  // max(1, (t - release) + 1) if schedulable now, one more if later.
  double RemainingBound(Mask scheduled, Round t) const {
    double bound = 0.0;
    for (int e = 0; e < ctx_.n; ++e) {
      if (scheduled & (Mask{1} << e)) continue;
      const Round r = ctx_.instance.flow(e).release;
      bound += weight_[e] * std::max(1, t - r + 1);
    }
    return bound;
  }

  void Dfs(Round t, Mask scheduled, double cost) {
    if (scheduled == ctx_.full) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_schedule_ = current_;
      }
      return;
    }
    if (cost + RemainingBound(scheduled, t) >= best_cost_) return;
    const auto key = (static_cast<std::uint64_t>(t) << 32) | scheduled;
    auto [it, inserted] = best_at_state_.try_emplace(key, cost);
    if (!inserted) {
      if (it->second <= cost) return;
      it->second = cost;
    }
    std::vector<int> avail = ctx_.Available(scheduled, t);
    if (avail.empty()) {
      const Round next = ctx_.NextRelease(scheduled, t);
      FS_CHECK_LT(next, std::numeric_limits<Round>::max());
      Dfs(next, scheduled, cost);
      return;
    }
    std::vector<Mask> sets;
    ctx_.MaximalFeasibleSets(avail, sets);
    for (Mask s : sets) {
      double added = 0.0;
      for (int e = 0; e < ctx_.n; ++e) {
        if (s & (Mask{1} << e)) {
          added += weight_[e] * ResponseTime(t, ctx_.instance.flow(e).release);
          current_.Assign(e, t);
        }
      }
      Dfs(t + 1, scheduled | s, cost + added);
      for (int e = 0; e < ctx_.n; ++e) {
        if (s & (Mask{1} << e)) current_.Unassign(e);
      }
    }
  }

  ExactContext ctx_;
  double best_cost_;
  Schedule best_schedule_;
  Schedule current_;
  std::vector<double> weight_;
  std::unordered_map<std::uint64_t, double> best_at_state_;
};

}  // namespace

std::optional<Schedule> ExactMrtFeasible(const Instance& instance, Round rho) {
  FS_CHECK_GE(rho, 1);
  FS_CHECK(!instance.ValidationError().has_value());
  auto result = MrtSearch(instance, rho).Run();
  if (result.has_value() && instance.num_flows() > 0) {
    FS_CHECK(!result->ValidationError(instance).has_value());
  }
  return result;
}

std::optional<Round> ExactMinMaxResponse(const Instance& instance,
                                         Round rho_limit) {
  for (Round rho = 1; rho <= rho_limit; ++rho) {
    if (ExactMrtFeasible(instance, rho).has_value()) return rho;
  }
  return std::nullopt;
}

ExactArtResult ExactMinTotalResponse(const Instance& instance,
                                     std::span<const double> weights) {
  FS_CHECK(!instance.ValidationError().has_value());
  ExactArtResult result = ArtSearch(instance, weights).Run();
  if (instance.num_flows() > 0) {
    FS_CHECK(!result.schedule.ValidationError(instance).has_value());
  }
  return result;
}

}  // namespace flowsched
