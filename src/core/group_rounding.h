// Group rounding for the time-constrained LP (the role of Karp et al. [35],
// Lemma 4.3, in the paper's Theorem 3).
//
// Given a fractional solution x of LP (19)-(21), produces an integral
// assignment (every flow in exactly one active round) whose per-(port,round)
// load exceeds the capacity by at most an additive term. We implement an
// iterative LP-relaxation rounder (see DESIGN.md §5 for the substitution
// rationale): re-solve for a vertex, permanently fix (numerically) integral
// variables, and when a vertex fixes nothing, relax one capacity row —
// first to c_p + (2*dmax - 1) (the paper's bound), then, only if still
// stuck, to unbounded (counted as `hard_drops`; violations beyond
// 2*dmax - 1 can only originate from those, and the realized worst violation
// is measured and reported).
#ifndef FLOWSCHED_CORE_GROUP_ROUNDING_H_
#define FLOWSCHED_CORE_GROUP_ROUNDING_H_

#include "core/mrt_lp.h"
#include "model/schedule.h"

namespace flowsched {

struct GroupRoundingOptions {
  SimplexOptions simplex;
  double integrality_tol = 1e-6;
  int max_lp_solves = 300;
};

struct GroupRoundingReport {
  int lp_solves = 0;
  int relaxed_rows = 0;   // Rows raised to c_p + (2*dmax - 1).
  int hard_drops = 0;     // Rows raised beyond the paper's bound.
  int forced_fixes = 0;   // Flows fixed by argmax after the solve budget.
  Capacity max_violation = 0;  // Measured load - c_p over all (port, round).
  Capacity bound = 0;          // 2*dmax - 1 for reference.
};

// Requires a feasible fractional solution for (instance, windows). Returns
// the rounded schedule; the caller validates under
// CapacityAllowance::Additive(report.max_violation) or the theorem bound.
Schedule GroupRound(const Instance& instance, const ActiveWindows& windows,
                    const TimeConstrainedSolution& fractional,
                    const GroupRoundingOptions& options = {},
                    GroupRoundingReport* report = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_GROUP_ROUNDING_H_
