// Iterative LP rounding for average response time (paper §3.1, Lemma 3.3).
//
// Starting from the interval-indexed LP (5)-(8) ("LP(0)", size-4 aligned
// windows), repeatedly: solve to a basic optimal solution, permanently fix
// integrally-assigned flows, drop zero variables, and regroup the surviving
// variables of each port into consecutive intervals of size in [4c_p, 5c_p)
// (Figure 2 of the paper). Lemma 3.5 halves the flow count per iteration, so
// O(log n) iterations produce a *pseudo-schedule*: an integral assignment
// whose cost is at most LP(0)'s optimum and whose per-port load over any
// time window [t1, t2] exceeds c_p * |window| by at most O(c_p log n)
// (Lemmas 3.6-3.7).
//
// Unit demands are required (Theorem 1's setting); port capacities are
// arbitrary.
#ifndef FLOWSCHED_CORE_ART_ROUNDING_H_
#define FLOWSCHED_CORE_ART_ROUNDING_H_

#include <vector>

#include "lp/simplex.h"
#include "model/instance.h"
#include "model/schedule.h"

namespace flowsched {

struct ArtRoundingOptions {
  Round initial_horizon = 0;  // 0 = automatic (see ArtLpInitialHorizon).
  int max_extensions = 10;
  int max_iterations = 64;
  SimplexOptions simplex;
};

struct ArtRoundingReport {
  int iterations = 0;
  // Flows fixed without a clean integral LP value (numerical safety valve;
  // 0 in healthy runs).
  int forced_fixes = 0;
  double lp0_objective = 0.0;  // Optimal value of LP(0) — a lower bound on
                               // the total response of any schedule.
  double pseudo_cost = 0.0;    // Integral assignment cost under the same
                               // objective; Lemma 3.3(2): <= lp0_objective.
  Capacity max_window_overload = 0;  // Lemma 3.3(3) audit (see below).
  double overload_per_cap_log_n = 0.0;
  Round horizon = 0;
  std::vector<int> flows_per_iteration;
};

// The pseudo-schedule: every flow assigned to one round at/after release.
// NOT capacity-feasible in general; feed it to the Theorem 1 scheduler.
struct PseudoSchedule {
  Schedule assignment;
};

PseudoSchedule ArtIterativeRounding(const Instance& instance,
                                    const ArtRoundingOptions& options = {},
                                    ArtRoundingReport* report = nullptr);

// Max over ports p and round windows [t1, t2] of
//   (demand assigned to p in the window) - c_p * (t2 - t1 + 1),
// i.e. the additive overload of Lemma 3.3(3). Computed per port with a
// maximum-subarray scan over (load[t] - c_p).
Capacity MaxWindowOverload(const Instance& instance, const Schedule& schedule);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ART_ROUNDING_H_
