// Time-Constrained Flow Scheduling LP (19)-(21) (paper §4.2).
//
// Each flow e may be scheduled in any round of its active set R(e);
// variables x_{e,t} must sum to 1 per flow (constraint 20) while the demand
// crossing each (port, round) stays within capacity (constraint 19).
// FS-MRT reduces to it with R(e) = [r_e, r_e + rho); the release+deadline
// model of Remark 4.2 uses R(e) = [r_e, deadline_e].
#ifndef FLOWSCHED_CORE_MRT_LP_H_
#define FLOWSCHED_CORE_MRT_LP_H_

#include <span>
#include <vector>

#include "lp/simplex.h"
#include "model/instance.h"

namespace flowsched {

// Per-flow sorted list of rounds the flow may run in.
using ActiveWindows = std::vector<std::vector<Round>>;

ActiveWindows WindowsForMaxResponse(const Instance& instance, Round rho);

// deadline[e] is the last allowed round (inclusive); must be >= release.
ActiveWindows WindowsForDeadlines(const Instance& instance,
                                  std::span<const Round> deadlines);

struct TimeConstrainedSolution {
  bool feasible = false;
  // x[v] for variable v = (var_flow[v], var_round[v]).
  std::vector<double> x;
  std::vector<FlowId> var_flow;
  std::vector<Round> var_round;
  long simplex_iterations = 0;
};

// Solves the fractional feasibility problem (objective 0; any vertex).
// `capacity_slack` is added to every port capacity (used by callers probing
// relaxations).
TimeConstrainedSolution SolveTimeConstrained(const Instance& instance,
                                             const ActiveWindows& windows,
                                             const SimplexOptions& options = {},
                                             Capacity capacity_slack = 0);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_MRT_LP_H_
