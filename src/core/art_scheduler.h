// Theorem 1: the (1+c, O(log n)/c) offline algorithm for FS-ART.
//
// Pipeline (paper §3.2): iterative rounding produces a pseudo-schedule whose
// window overloads are O(c_p log n). The timeline is cut into intervals of
// length h ~ log(n)/c; each interval's flows are expanded into a
// unit-capacity multigraph by port replication, edge-colored (Birkhoff-von
// Neumann), and the resulting matchings are packed (1+c) per round into the
// *next* interval — so every flow still runs at/after its release, each port
// carries at most (1+c) * c_p demand per round, and each flow is delayed by
// at most h + ceil(Delta / (1+c)) = O(log n / c) rounds.
#ifndef FLOWSCHED_CORE_ART_SCHEDULER_H_
#define FLOWSCHED_CORE_ART_SCHEDULER_H_

#include "core/art_rounding.h"
#include "graph/edge_coloring.h"
#include "model/metrics.h"

namespace flowsched {

struct ArtSchedulerOptions {
  int c = 2;  // Capacity blowup is (1 + c); response blowup O(log n)/c.
  int interval_length = 0;  // 0 = automatic: max(1, ceil(4 log2(n+2) / c)).
  // Birkhoff-von-Neumann decomposition kernel. König (default) keeps
  // schedules bit-identical across versions; Euler split is markedly faster
  // on dense intervals (see graph/edge_coloring.h) at the cost of a
  // different — equally valid — matching decomposition.
  EdgeColoringAlgorithm coloring = EdgeColoringAlgorithm::kKoenig;
  // Re-validate each interval's coloring and the final schedule (FS_CHECK).
  // On by default; benchmarks turn it off to keep hot loops audit-free.
  bool validate = true;
  ArtRoundingOptions rounding;
};

struct ArtSchedulerResult {
  Schedule schedule;
  ScheduleMetrics metrics;
  CapacityAllowance allowance;  // factor (1 + c).
  ArtRoundingReport rounding_report;
  int interval_length = 0;      // h.
  int max_colors = 0;           // Largest BvN decomposition, over intervals.
  int max_extra_delay = 0;      // Worst realized (final - pseudo) round gap.
  // Ratio of achieved total response to the LP(0) lower bound.
  double approx_ratio_vs_lp = 0.0;
};

ArtSchedulerResult ScheduleArtWithAugmentation(
    const Instance& instance, const ArtSchedulerOptions& options = {});

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ART_SCHEDULER_H_
