#include "core/group_rounding.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace flowsched {
namespace {

// Capacity-row bookkeeping across rounding iterations. Rows are identified
// by (side, port, round) flattened over the window span [t_lo, t_hi].
//
// Every row starts with the theorem's full budget c_p + (2*dmax - 1): the
// rounded solution then respects the paper's bound by LP feasibility alone,
// and the generous slack lets each vertex fix many variables at once.
// Rows are only raised further ("hard drop") if the LP turns infeasible
// after forced fixes — counted and reported.
class CapacityState {
 public:
  CapacityState(const Instance& instance, Round t_lo, Round t_hi,
                Capacity bound)
      : instance_(instance),
        t_lo_(t_lo),
        bound_(bound),
        ports_per_round_(instance.sw().num_inputs() +
                         instance.sw().num_outputs()),
        fixed_load_((t_hi - t_lo + 1) * ports_per_round_, 0),
        hard_((t_hi - t_lo + 1) * ports_per_round_, 0) {}

  int InIndex(PortId p, Round t) const {
    return (t - t_lo_) * ports_per_round_ + p;
  }
  int OutIndex(PortId q, Round t) const {
    return (t - t_lo_) * ports_per_round_ + instance_.sw().num_inputs() + q;
  }

  Capacity BaseCapacity(int idx) const {
    const int within = idx % ports_per_round_;
    const SwitchSpec& sw = instance_.sw();
    return within < sw.num_inputs()
               ? sw.input_capacity(within)
               : sw.output_capacity(within - sw.num_inputs());
  }

  // Remaining allowed load for the residual LP.
  double Allowed(int idx) const {
    if (hard_[idx]) return 1e15;
    return static_cast<double>(BaseCapacity(idx) + bound_ - fixed_load_[idx]);
  }

  void AddFixed(const Flow& f, Round t) {
    fixed_load_[InIndex(f.src, t)] += f.demand;
    fixed_load_[OutIndex(f.dst, t)] += f.demand;
  }

  bool hard(int idx) const { return hard_[idx] != 0; }
  void MakeHard(int idx) { hard_[idx] = 1; }
  Capacity fixed_load(int idx) const { return fixed_load_[idx]; }
  int num_rows() const { return static_cast<int>(hard_.size()); }

  // True when committing flow f to round t keeps both of its rows within
  // the theorem budget c_p + bound.
  bool FitsBudget(const Flow& f, Round t) const {
    for (int idx : {InIndex(f.src, t), OutIndex(f.dst, t)}) {
      if (fixed_load_[idx] + f.demand > BaseCapacity(idx) + bound_) {
        return false;
      }
    }
    return true;
  }

  // Overshoot beyond the budget that committing f to t would cause.
  Capacity Overshoot(const Flow& f, Round t) const {
    Capacity worst = 0;
    for (int idx : {InIndex(f.src, t), OutIndex(f.dst, t)}) {
      worst = std::max(worst, fixed_load_[idx] + f.demand -
                                  (BaseCapacity(idx) + bound_));
    }
    return std::max<Capacity>(worst, 0);
  }

 private:
  const Instance& instance_;
  Round t_lo_;
  Capacity bound_;
  int ports_per_round_;
  std::vector<Capacity> fixed_load_;
  std::vector<char> hard_;
};

}  // namespace

Schedule GroupRound(const Instance& instance, const ActiveWindows& windows,
                    const TimeConstrainedSolution& fractional,
                    const GroupRoundingOptions& options,
                    GroupRoundingReport* report) {
  FS_CHECK(fractional.feasible);
  const int n = instance.num_flows();
  GroupRoundingReport local;
  GroupRoundingReport& rep = report != nullptr ? *report : local;
  rep = GroupRoundingReport{};
  rep.bound = 2 * std::max<Capacity>(instance.MaxDemand(), 1) - 1;
  Schedule schedule(n);
  if (n == 0) return schedule;

  Round t_lo = std::numeric_limits<Round>::max();
  Round t_hi = std::numeric_limits<Round>::min();
  for (const auto& w : windows) {
    t_lo = std::min(t_lo, w.front());
    t_hi = std::max(t_hi, w.back());
  }
  CapacityState caps(instance, t_lo, t_hi, rep.bound);
  Rng rng(0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(n));

  // Current fractional values per (flow, window position).
  std::vector<std::vector<double>> x(n);
  for (int e = 0; e < n; ++e) x[e].assign(windows[e].size(), 0.0);
  for (std::size_t v = 0; v < fractional.var_flow.size(); ++v) {
    const FlowId e = fractional.var_flow[v];
    const auto& w = windows[e];
    const auto it =
        std::lower_bound(w.begin(), w.end(), fractional.var_round[v]);
    FS_CHECK(it != w.end() && *it == fractional.var_round[v]);
    x[e][it - w.begin()] = fractional.x[v];
  }

  std::vector<char> fixed(n, 0);
  int remaining = n;
  auto fix_flow = [&](FlowId e, std::size_t pos) {
    schedule.Assign(e, windows[e][pos]);
    caps.AddFixed(instance.flow(e), windows[e][pos]);
    fixed[e] = 1;
    --remaining;
  };
  auto fix_integrals = [&] {
    int fixed_now = 0;
    for (int e = 0; e < n; ++e) {
      if (fixed[e]) continue;
      for (std::size_t k = 0; k < x[e].size(); ++k) {
        if (x[e][k] >= 1.0 - options.integrality_tol) {
          fix_flow(e, k);
          ++fixed_now;
          break;
        }
      }
    }
    return fixed_now;
  };
  // Force the single most concentrated remaining flow; used when a vertex
  // fixes nothing (numerically) or the solve budget runs out. Prefers
  // placements that stay within the theorem budget; only when a flow has no
  // in-budget round at all does it take the least-overshooting one.
  auto force_fix_best = [&] {
    int best_e = -1;
    std::size_t best_k = 0;
    double best_x = -1.0;
    bool best_fits = false;
    Capacity best_overshoot = std::numeric_limits<Capacity>::max();
    for (int e = 0; e < n; ++e) {
      if (fixed[e]) continue;
      const Flow& f = instance.flow(e);
      for (std::size_t k = 0; k < x[e].size(); ++k) {
        const bool fits = caps.FitsBudget(f, windows[e][k]);
        const Capacity overshoot =
            fits ? 0 : caps.Overshoot(f, windows[e][k]);
        const bool better =
            fits != best_fits
                ? fits
                : (fits ? x[e][k] > best_x
                        : overshoot < best_overshoot ||
                              (overshoot == best_overshoot && x[e][k] > best_x));
        if (better) {
          best_x = x[e][k];
          best_e = e;
          best_k = k;
          best_fits = fits;
          best_overshoot = overshoot;
        }
      }
    }
    FS_CHECK_GE(best_e, 0);
    fix_flow(best_e, best_k);
    ++rep.forced_fixes;
  };

  fix_integrals();
  while (remaining > 0) {
    if (rep.lp_solves >= options.max_lp_solves) {
      while (remaining > 0) force_fix_best();
      break;
    }
    // Residual LP over unfixed flows under the budgeted capacities, with a
    // small random objective: a generic cost makes the optimal vertex
    // unique and unrelated to the previous one, so each solve fixes many
    // flows (zero objective would return the same vertex forever).
    LpProblem lp;
    std::vector<int> assign_row(n, -1);
    for (int e = 0; e < n; ++e) {
      if (!fixed[e]) assign_row[e] = lp.AddRow(RowSense::kEq, 1.0);
    }
    std::vector<int> row_of_cap(caps.num_rows(), -1);
    std::vector<int> cap_of_row;
    auto cap_row = [&](int cap_idx) {
      if (row_of_cap[cap_idx] == -1) {
        row_of_cap[cap_idx] = lp.AddRow(RowSense::kLe, caps.Allowed(cap_idx));
        cap_of_row.push_back(cap_idx);
      }
      return row_of_cap[cap_idx];
    };
    for (int e = 0; e < n; ++e) {
      if (fixed[e]) continue;
      const Flow& f = instance.flow(e);
      for (Round t : windows[e]) {
        cap_row(caps.InIndex(f.src, t));
        cap_row(caps.OutIndex(f.dst, t));
      }
    }
    std::vector<std::pair<FlowId, std::size_t>> var_key;
    std::vector<std::pair<int, double>> entries(3);
    for (int e = 0; e < n; ++e) {
      if (fixed[e]) continue;
      const Flow& f = instance.flow(e);
      for (std::size_t k = 0; k < windows[e].size(); ++k) {
        const Round t = windows[e][k];
        entries[0] = {assign_row[e], 1.0};
        entries[1] = {row_of_cap[caps.InIndex(f.src, t)],
                      static_cast<double>(f.demand)};
        entries[2] = {row_of_cap[caps.OutIndex(f.dst, t)],
                      static_cast<double>(f.demand)};
        lp.AddColumn(rng.UniformReal(), entries);
        var_key.push_back({e, k});
      }
    }
    const SimplexResult res = SolveLp(lp, options.simplex);
    ++rep.lp_solves;
    if (res.status != SimplexStatus::kOptimal) {
      // Forced fixes consumed more than their fractional share somewhere:
      // lift the tightest non-hard row and retry.
      int candidate = -1;
      double least_slack = std::numeric_limits<double>::max();
      for (int idx : cap_of_row) {
        if (caps.hard(idx)) continue;
        if (caps.Allowed(idx) < least_slack) {
          least_slack = caps.Allowed(idx);
          candidate = idx;
        }
      }
      FS_CHECK_MSG(candidate != -1, "group rounding: no relaxable row left");
      caps.MakeHard(candidate);
      ++rep.hard_drops;
      continue;
    }
    for (int e = 0; e < n; ++e) {
      if (!fixed[e]) std::fill(x[e].begin(), x[e].end(), 0.0);
    }
    for (std::size_t v = 0; v < var_key.size(); ++v) {
      x[var_key[v].first][var_key[v].second] = res.x[v];
    }
    if (fix_integrals() == 0) {
      // Genuine fractional vertex (entangled cycle): break it by fixing the
      // heaviest variable, then re-solve.
      force_fix_best();
    }
  }

  FS_CHECK(schedule.AllAssigned());
  const PortLoads loads = schedule.ComputeLoads(instance);
  rep.max_violation = loads.MaxOverload(instance.sw());
  rep.relaxed_rows = 0;  // All rows start at the theorem budget in this
                         // scheme; only hard drops are interesting.
  return schedule;
}

}  // namespace flowsched
