#include "core/mrt_scheduler.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace flowsched {

Schedule FifoGreedySchedule(const Instance& instance) {
  const int n = instance.num_flows();
  Schedule schedule(n);
  const SwitchSpec& sw = instance.sw();
  // Flows ordered by (release, id); each round packs the backlog greedily.
  std::vector<FlowId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](FlowId a, FlowId b) {
    return instance.flow(a).release < instance.flow(b).release;
  });
  std::vector<FlowId> backlog;
  std::size_t next = 0;
  Round t = 0;
  int scheduled = 0;
  while (scheduled < n) {
    if (backlog.empty() && next < order.size() &&
        instance.flow(order[next]).release > t) {
      t = instance.flow(order[next]).release;  // Jump idle gaps.
    }
    while (next < order.size() && instance.flow(order[next]).release <= t) {
      backlog.push_back(order[next++]);
    }
    std::vector<Capacity> in_res(sw.input_capacities());
    std::vector<Capacity> out_res(sw.output_capacities());
    std::vector<FlowId> keep;
    keep.reserve(backlog.size());
    for (FlowId e : backlog) {
      const Flow& f = instance.flow(e);
      if (f.demand <= in_res[f.src] && f.demand <= out_res[f.dst]) {
        in_res[f.src] -= f.demand;
        out_res[f.dst] -= f.demand;
        schedule.Assign(e, t);
        ++scheduled;
      } else {
        keep.push_back(e);
      }
    }
    backlog.swap(keep);
    ++t;
  }
  FS_CHECK(!schedule.ValidationError(instance).has_value());
  return schedule;
}

MrtSchedulerResult MinimizeMaxResponse(const Instance& instance,
                                       const MrtSchedulerOptions& options) {
  FS_CHECK(!instance.ValidationError().has_value());
  MrtSchedulerResult result;
  const Capacity dmax = std::max<Capacity>(instance.MaxDemand(), 1);
  result.allowance = CapacityAllowance::Additive(2 * dmax - 1);
  if (instance.num_flows() == 0) {
    result.rho_lp = 0;
    result.schedule = Schedule(0);
    return result;
  }
  // Upper bound from an integral heuristic schedule (hence LP-feasible).
  Round hi = options.rho_upper_hint;
  if (hi <= 0) {
    const Schedule greedy = FifoGreedySchedule(instance);
    const ScheduleMetrics gm = ComputeMetrics(instance, greedy);
    hi = static_cast<Round>(gm.max_response);
  }
  result.heuristic_upper_bound = hi;
  Round lo = 1;
  TimeConstrainedSolution best;
  // Establish feasibility at hi (guaranteed if hi came from a schedule, but
  // a user hint may be too small — extend geometrically then).
  for (;;) {
    TimeConstrainedSolution probe = SolveTimeConstrained(
        instance, WindowsForMaxResponse(instance, hi), options.simplex);
    ++result.binary_search_probes;
    if (probe.feasible) {
      best = std::move(probe);
      break;
    }
    lo = hi + 1;
    hi *= 2;
  }
  Round best_rho = hi;
  while (lo < best_rho) {
    const Round mid = lo + (best_rho - lo) / 2;
    TimeConstrainedSolution probe = SolveTimeConstrained(
        instance, WindowsForMaxResponse(instance, mid), options.simplex);
    ++result.binary_search_probes;
    if (probe.feasible) {
      best = std::move(probe);
      best_rho = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.rho_lp = best_rho;
  const ActiveWindows windows = WindowsForMaxResponse(instance, best_rho);
  result.schedule = GroupRound(instance, windows, best, options.rounding,
                               &result.rounding_report);
  // The rounded schedule stays within each flow's window, so its max
  // response is at most rho_lp; validate capacity under the realized
  // violation (theorem bound unless hard drops occurred).
  const CapacityAllowance realized =
      CapacityAllowance::Additive(result.rounding_report.max_violation);
  FS_CHECK(!result.schedule.ValidationError(instance, realized).has_value());
  result.metrics = ComputeMetrics(instance, result.schedule);
  FS_CHECK_LE(result.metrics.max_response, static_cast<double>(best_rho));
  return result;
}

std::optional<DeadlineSchedulerResult> ScheduleWithDeadlines(
    const Instance& instance, std::span<const Round> deadlines,
    const MrtSchedulerOptions& options) {
  FS_CHECK(!instance.ValidationError().has_value());
  DeadlineSchedulerResult result;
  const Capacity dmax = std::max<Capacity>(instance.MaxDemand(), 1);
  result.allowance = CapacityAllowance::Additive(2 * dmax - 1);
  if (instance.num_flows() == 0) {
    result.schedule = Schedule(0);
    return result;
  }
  const ActiveWindows windows = WindowsForDeadlines(instance, deadlines);
  TimeConstrainedSolution sol =
      SolveTimeConstrained(instance, windows, options.simplex);
  if (!sol.feasible) return std::nullopt;
  result.schedule = GroupRound(instance, windows, sol, options.rounding,
                               &result.rounding_report);
  for (const Flow& e : instance.flows()) {
    FS_CHECK_LE(result.schedule.round_of(e.id), deadlines[e.id]);
    FS_CHECK_GE(result.schedule.round_of(e.id), e.release);
  }
  return result;
}

}  // namespace flowsched
