// AMRT — the online maximum-response-time algorithm of Lemma 5.3.
//
// Maintains a guess rho of the optimal max response. Arrivals are batched by
// rho-length windows; at each window boundary the batch is scheduled with
// the offline Theorem 3 machinery into the next rho rounds, incrementing rho
// whenever the batch does not fit. Because batches overlap at most pairwise
// (Figure 5), the schedule is feasible with capacity 2*(c_p + 2*dmax - 1)
// and its max response is at most twice the final guess.
#ifndef FLOWSCHED_CORE_ONLINE_AMRT_H_
#define FLOWSCHED_CORE_ONLINE_AMRT_H_

#include "core/group_rounding.h"
#include "model/metrics.h"

namespace flowsched {

struct AmrtOptions {
  Round initial_rho = 1;
  SimplexOptions simplex;
  GroupRoundingOptions rounding;
};

struct AmrtResult {
  Schedule schedule;
  ScheduleMetrics metrics;
  CapacityAllowance allowance;  // factor 2, additive 2*(2*dmax - 1).
  Round final_rho = 0;          // The guess when the last batch landed.
  int batches = 0;
  int rho_increments = 0;
  Capacity max_batch_violation = 0;  // Worst per-batch rounding violation.
};

// Runs AMRT over the instance's arrival sequence (only information available
// by each batch boundary is used: the algorithm is genuinely online).
AmrtResult RunAmrt(const Instance& instance, const AmrtOptions& options = {});

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_AMRT_H_
