#include "core/online/srpt_policy.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace flowsched {

void SrptPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                 std::span<const PendingFlow> pending,
                                 std::vector<int>* picked) {
  picked->clear();
  // Greedy pack by (demand, release, id): cheapest flows first, FIFO ties.
  order_.resize(pending.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    if (pending[a].demand != pending[b].demand) {
      return pending[a].demand < pending[b].demand;
    }
    if (pending[a].release != pending[b].release) {
      return pending[a].release < pending[b].release;
    }
    return pending[a].id < pending[b].id;
  });
  in_res_.assign(sw.input_capacities().begin(), sw.input_capacities().end());
  out_res_.assign(sw.output_capacities().begin(), sw.output_capacities().end());
  for (int i : order_) {
    const PendingFlow& f = pending[i];
    if (f.demand <= in_res_[f.src] && f.demand <= out_res_[f.dst]) {
      in_res_[f.src] -= f.demand;
      out_res_[f.dst] -= f.demand;
      picked->push_back(i);
    }
  }
}

void HybridPolicy::SelectFlowsInto(const SwitchSpec& sw, Round t,
                                   std::span<const PendingFlow> pending,
                                   std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  const BipartiteGraph& g = builder_.Build(sw, pending);
  in_queue_.assign(sw.num_inputs(), 0);
  out_queue_.assign(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    ++in_queue_[f.src];
    ++out_queue_[f.dst];
  }
  weight_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    FS_CHECK_LE(pending[i].release, t);
    const double age = static_cast<double>(t - pending[i].release + 1);
    const double pressure = static_cast<double>(in_queue_[pending[i].src] +
                                                out_queue_[pending[i].dst]);
    weight_[i] = age + alpha_ * pressure;
  }
  matcher_.Solve(g, weight_, picked);
}

}  // namespace flowsched
