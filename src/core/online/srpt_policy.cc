#include "core/online/srpt_policy.h"

#include <algorithm>
#include <numeric>

#include "graph/max_weight_matching.h"
#include "util/check.h"

namespace flowsched {

std::vector<int> SrptPolicy::SelectFlows(const SwitchSpec& sw, Round /*t*/,
                                         std::span<const PendingFlow> pending) {
  // Greedy pack by (demand, release, id): cheapest flows first, FIFO ties.
  std::vector<int> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (pending[a].demand != pending[b].demand) {
      return pending[a].demand < pending[b].demand;
    }
    if (pending[a].release != pending[b].release) {
      return pending[a].release < pending[b].release;
    }
    return pending[a].id < pending[b].id;
  });
  std::vector<Capacity> in_res(sw.input_capacities());
  std::vector<Capacity> out_res(sw.output_capacities());
  std::vector<int> picked;
  for (int i : order) {
    const PendingFlow& f = pending[i];
    if (f.demand <= in_res[f.src] && f.demand <= out_res[f.dst]) {
      in_res[f.src] -= f.demand;
      out_res[f.dst] -= f.demand;
      picked.push_back(i);
    }
  }
  return picked;
}

std::vector<int> HybridPolicy::SelectFlows(
    const SwitchSpec& sw, Round t, std::span<const PendingFlow> pending) {
  if (pending.empty()) return {};
  const BipartiteGraph g = BuildBacklogGraph(sw, pending);
  std::vector<int> in_queue(sw.num_inputs(), 0);
  std::vector<int> out_queue(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    ++in_queue[f.src];
    ++out_queue[f.dst];
  }
  std::vector<double> weight(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    FS_CHECK_LE(pending[i].release, t);
    const double age = static_cast<double>(t - pending[i].release + 1);
    const double pressure = static_cast<double>(in_queue[pending[i].src] +
                                                out_queue[pending[i].dst]);
    weight[i] = age + alpha_ * pressure;
  }
  return MaxWeightMatching(g, weight);
}

}  // namespace flowsched
