#include "core/online/min_rtime_policy.h"

#include "util/check.h"

namespace flowsched {

void MinRTimePolicy::SelectFlowsInto(const SwitchSpec& sw, Round t,
                                     std::span<const PendingFlow> pending,
                                     std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  const BipartiteGraph& g = builder_.Build(sw, pending);
  weight_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    // Paper weight is t - r_e; +1 keeps fresh arrivals strictly positive so
    // the matcher never leaves a port idle for free.
    FS_CHECK_LE(pending[i].release, t);
    weight_[i] = static_cast<double>(t - pending[i].release + 1);
  }
  matcher_.Solve(g, weight_, picked);
}

}  // namespace flowsched
