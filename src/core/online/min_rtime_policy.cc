#include "core/online/min_rtime_policy.h"

#include "graph/max_weight_matching.h"
#include "util/check.h"

namespace flowsched {

std::vector<int> MinRTimePolicy::SelectFlows(
    const SwitchSpec& sw, Round t, std::span<const PendingFlow> pending) {
  if (pending.empty()) return {};
  const BipartiteGraph g = BuildBacklogGraph(sw, pending);
  std::vector<double> weight(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    // Paper weight is t - r_e; +1 keeps fresh arrivals strictly positive so
    // the matcher never leaves a port idle for free.
    FS_CHECK_LE(pending[i].release, t);
    weight[i] = static_cast<double>(t - pending[i].release + 1);
  }
  return MaxWeightMatching(g, weight);
}

}  // namespace flowsched
