// Online scheduling policies (paper §5.2.1).
//
// Each round the simulator hands the policy the backlog (released,
// unscheduled flows); the policy writes a capacity-feasible subset to run
// into the simulator's reusable selection buffer (SelectFlowsInto — part of
// the PR 2 zero-allocation refit; the allocating SelectFlows wrapper
// remains for one-shot callers). Under unit capacities that subset is a
// matching of the backlog graph G_t; general capacities are handled by
// port replication.
#ifndef FLOWSCHED_CORE_ONLINE_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_POLICY_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/bipartite_graph.h"
#include "model/instance.h"

namespace flowsched {

// A backlog entry. `id` refers to the realized instance being simulated.
// The coflow tag rides along so group-aware policies (src/coflow/) can rank
// the backlog by coflow without any side-channel mapping; flow-level
// policies ignore it.
struct PendingFlow {
  FlowId id = 0;
  PortId src = 0;
  PortId dst = 0;
  Capacity demand = 1;
  Round release = 0;
  CoflowId coflow = kNoCoflow;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string_view name() const = 0;

  // Overwrites *picked with indices into `pending` of the flows to schedule
  // in round t. Must be capacity-feasible for `sw` (the simulator validates
  // when SimulationOptions::validate is set). The out-parameter lets the
  // simulator hot loop hand the same buffer back every round; policies keep
  // their own scratch across calls and may allocate only while the backlog
  // grows past its previous peak.
  virtual void SelectFlowsInto(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending,
                               std::vector<int>* picked) = 0;

  // One-shot convenience wrapper around SelectFlowsInto.
  std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending);

  // Clears internal state (e.g. RNG) between simulations.
  virtual void Reset() {}

  // True for matching-based policies (BacklogGraphBuilder expands ports
  // into unit-capacity replicas, so every flow must have demand 1). The
  // batch drivers FS_CHECK this deep in the round loop; long-running
  // callers (src/serve/) ask up front and reject non-unit flows with an
  // error instead of aborting.
  virtual bool RequiresUnitDemands() const { return false; }

  // Retirement hook for unbounded streams (src/serve/): after a round, the
  // streaming simulator reports untagged flows that completed and coflow
  // groups that fully drained, so policies holding per-flow or per-group
  // state (src/coflow/) can recycle those slots and keep resident memory
  // proportional to the live backlog. Batch Simulate() never calls this.
  // Default no-op: the flow-level policies here key nothing on flow ids.
  virtual void RetireFlows(std::span<const FlowId> /*completed_untagged*/,
                           std::span<const CoflowId> /*drained_groups*/) {}
};

// Buffer-reusing builder for the backlog multigraph over *port replicas*:
// edge i corresponds to pending[i]; matchings of this graph are exactly the
// capacity-feasible unit-demand subsets. Requires unit demands. The replica
// layout mirrors graph/expansion.cc but works from PendingFlow (the
// simulator does not materialize an Instance mid-flight).
//
// Each Build() patches the previous round's graph in place: the replica
// base offsets are recomputed only when the switch changes, and the edge /
// adjacency storage of the held BipartiteGraph is reused, so steady-state
// rounds touch no heap at all.
class BacklogGraphBuilder {
 public:
  const BipartiteGraph& Build(const SwitchSpec& sw,
                              std::span<const PendingFlow> pending);

  const BipartiteGraph& graph() const { return graph_; }

 private:
  BipartiteGraph graph_{0, 0};
  SwitchSpec cached_switch_;  // Base offsets below are valid for this spec.
  bool have_switch_ = false;
  std::vector<int> in_base_;
  std::vector<int> out_base_;
  std::vector<int> in_cursor_;
  std::vector<int> out_cursor_;
};

// One-shot convenience wrapper around BacklogGraphBuilder.
BipartiteGraph BuildBacklogGraph(const SwitchSpec& sw,
                                 std::span<const PendingFlow> pending);

// Factory for the policies evaluated in the paper plus extra baselines and
// extensions: "maxcard", "minrtime", "maxweight", "fifo", "random", "srpt",
// "hybrid".
std::unique_ptr<SchedulingPolicy> MakePolicy(std::string_view name,
                                             std::uint64_t seed = 1);

// All policy names available through MakePolicy.
std::vector<std::string> AllPolicyNames();

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_POLICY_H_
