// Online scheduling policies (paper §5.2.1).
//
// Each round the simulator hands the policy the backlog (released,
// unscheduled flows); the policy writes a capacity-feasible subset to run
// into the simulator's reusable selection buffer (SelectFlowsInto — part of
// the PR 2 zero-allocation refit; the allocating SelectFlows wrapper
// remains for one-shot callers). Under unit capacities that subset is a
// matching of the backlog graph G_t; general capacities are handled by
// port replication.
#ifndef FLOWSCHED_CORE_ONLINE_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_POLICY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/bipartite_graph.h"
#include "model/instance.h"

namespace flowsched {

// A backlog entry. `id` refers to the realized instance being simulated.
// The coflow tag rides along so group-aware policies (src/coflow/) can rank
// the backlog by coflow without any side-channel mapping; flow-level
// policies ignore it.
struct PendingFlow {
  FlowId id = 0;
  PortId src = 0;
  PortId dst = 0;
  Capacity demand = 1;
  Round release = 0;
  CoflowId coflow = kNoCoflow;
};

// Matching-kernel knobs for the maxweight policy family (graph/
// incremental_matching.h, graph/auction_matching.h). Non-matching policies
// ignore them.
struct MatchingOptions {
  // Reuse the previous round's Hungarian work (cache hits and per-row
  // checkpoint resumes). Bit-exact: the warm path provably reproduces the
  // from-scratch solve, so this is safe to leave on everywhere.
  bool warmstart = true;
  // > 0 switches to the eps-approximate auction matcher: matched weight is
  // within backlog·eps of optimal, schedules may differ from the exact
  // solver. Off (0) by default — approximations are opt-in (ROADMAP 4).
  double approx_eps = 0.0;
};

// Matching-kernel counters surfaced as solver diagnostics; all zero for
// policies that never run a matcher.
struct PolicyMatchingStats {
  std::int64_t matcher_solves = 0;
  std::int64_t matcher_cache_hits = 0;
  std::int64_t matcher_prefix_resumes = 0;
  std::int64_t matcher_full_solves = 0;
  std::int64_t matcher_reused_rows = 0;
  std::int64_t matcher_total_rows = 0;
  std::int64_t auction_bids = 0;
  std::int64_t auction_cold_restarts = 0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string_view name() const = 0;

  // Overwrites *picked with indices into `pending` of the flows to schedule
  // in round t. Must be capacity-feasible for `sw` (the simulator validates
  // when SimulationOptions::validate is set). The out-parameter lets the
  // simulator hot loop hand the same buffer back every round; policies keep
  // their own scratch across calls and may allocate only while the backlog
  // grows past its previous peak.
  virtual void SelectFlowsInto(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending,
                               std::vector<int>* picked) = 0;

  // One-shot convenience wrapper around SelectFlowsInto.
  std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending);

  // Clears internal state (e.g. RNG) between simulations.
  virtual void Reset() {}

  // True for matching-based policies (BacklogGraphBuilder expands ports
  // into unit-capacity replicas, so every flow must have demand 1). The
  // batch drivers FS_CHECK this deep in the round loop; long-running
  // callers (src/serve/) ask up front and reject non-unit flows with an
  // error instead of aborting.
  virtual bool RequiresUnitDemands() const { return false; }

  // Retirement hook for unbounded streams (src/serve/): after a round, the
  // streaming simulator reports untagged flows that completed and coflow
  // groups that fully drained, so policies holding per-flow or per-group
  // state (src/coflow/) can recycle those slots and keep resident memory
  // proportional to the live backlog. Batch Simulate() never calls this.
  // Default no-op: the flow-level policies here key nothing on flow ids.
  virtual void RetireFlows(std::span<const FlowId> /*completed_untagged*/,
                           std::span<const CoflowId> /*drained_groups*/) {}

  // Matching-kernel counters accumulated since construction (or the last
  // Reset), for diagnostics. Default: all zeros.
  virtual PolicyMatchingStats matching_stats() const { return {}; }
};

// Buffer-reusing builder for the backlog multigraph over *port replicas*:
// edge i corresponds to pending[i]; matchings of this graph are exactly the
// capacity-feasible unit-demand subsets. Requires unit demands. The replica
// layout mirrors graph/expansion.cc but works from PendingFlow (the
// simulator does not materialize an Instance mid-flight).
//
// Each Build() patches the previous round's graph in place: the replica
// base offsets are recomputed only when the switch changes, and the edge /
// adjacency storage of the held BipartiteGraph is reused, so steady-state
// rounds touch no heap at all.
class BacklogGraphBuilder {
 public:
  const BipartiteGraph& Build(const SwitchSpec& sw,
                              std::span<const PendingFlow> pending);

  const BipartiteGraph& graph() const { return graph_; }

 private:
  BipartiteGraph graph_{0, 0};
  SwitchSpec cached_switch_;  // Base offsets below are valid for this spec.
  bool have_switch_ = false;
  std::vector<int> in_base_;
  std::vector<int> out_base_;
  std::vector<int> in_cursor_;
  std::vector<int> out_cursor_;
};

// One-shot convenience wrapper around BacklogGraphBuilder.
BipartiteGraph BuildBacklogGraph(const SwitchSpec& sw,
                                 std::span<const PendingFlow> pending);

// Factory for the policies evaluated in the paper plus extra baselines and
// extensions: "maxcard", "minrtime", "maxweight", "fifo", "random", "srpt",
// "hybrid". `matching` tunes the maxweight matching kernels and is ignored
// by every other policy.
std::unique_ptr<SchedulingPolicy> MakePolicy(
    std::string_view name, std::uint64_t seed = 1,
    const MatchingOptions& matching = {});

// All policy names available through MakePolicy.
std::vector<std::string> AllPolicyNames();

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_POLICY_H_
