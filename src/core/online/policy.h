// Online scheduling policies (paper §5.2.1).
//
// Each round the simulator hands the policy the backlog (released,
// unscheduled flows); the policy returns a capacity-feasible subset to run.
// Under unit capacities that subset is a matching of the backlog graph G_t;
// general capacities are handled by port replication.
#ifndef FLOWSCHED_CORE_ONLINE_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_POLICY_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/bipartite_graph.h"
#include "model/instance.h"

namespace flowsched {

// A backlog entry. `id` refers to the realized instance being simulated.
struct PendingFlow {
  FlowId id = 0;
  PortId src = 0;
  PortId dst = 0;
  Capacity demand = 1;
  Round release = 0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string_view name() const = 0;

  // Returns indices into `pending` of the flows to schedule in round t.
  // Must be capacity-feasible for `sw` (the simulator validates).
  virtual std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                                       std::span<const PendingFlow> pending) = 0;

  // Clears internal state (e.g. RNG) between simulations.
  virtual void Reset() {}
};

// Builds the backlog multigraph over *port replicas*: edge i corresponds to
// pending[i]; matchings of this graph are exactly the capacity-feasible
// unit-demand subsets. Requires unit demands.
BipartiteGraph BuildBacklogGraph(const SwitchSpec& sw,
                                 std::span<const PendingFlow> pending);

// Factory for the policies evaluated in the paper plus extra baselines and
// extensions: "maxcard", "minrtime", "maxweight", "fifo", "random", "srpt",
// "hybrid".
std::unique_ptr<SchedulingPolicy> MakePolicy(std::string_view name,
                                             std::uint64_t seed = 1);

// All policy names available through MakePolicy.
std::vector<std::string> AllPolicyNames();

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_POLICY_H_
