// MinRTime (paper §5.2.1): maximum-weight matching with edge weight equal to
// the flow's waiting time — older flows get priority, which controls the
// maximum response time.
#ifndef FLOWSCHED_CORE_ONLINE_MIN_RTIME_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_MIN_RTIME_POLICY_H_

#include "core/online/policy.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

class MinRTimePolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "minrtime"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;

 private:
  BacklogGraphBuilder builder_;
  MaxWeightMatcher matcher_;
  std::vector<double> weight_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_MIN_RTIME_POLICY_H_
