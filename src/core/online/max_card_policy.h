// MaxCard (paper §5.2.1): schedule a maximum-cardinality matching of the
// backlog graph each round — maximizes instantaneous port utilization but is
// oblivious to waiting times.
#ifndef FLOWSCHED_CORE_ONLINE_MAX_CARD_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_MAX_CARD_POLICY_H_

#include "core/online/policy.h"
#include "graph/hopcroft_karp.h"

namespace flowsched {

class MaxCardPolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "maxcard"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;

 private:
  BacklogGraphBuilder builder_;  // Graph + solver scratch persist across
  HopcroftKarpSolver matcher_;   // rounds: steady state allocates nothing.
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_MAX_CARD_POLICY_H_
