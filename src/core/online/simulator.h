// The round-based online flow simulator (paper §5.2.1).
//
// Maintains the backlog bipartite graph G_t: released-but-unscheduled flows.
// Each round, arrivals join the backlog, the policy extracts a
// capacity-feasible subset (validated when options.validate is set), and
// those flows complete within the round. Per-port queues are open — the
// policy may pick any backlog flow, not just the oldest.
//
// The round loop is allocation-free at steady state: every per-round buffer
// lives in a SimulationContext that is reused across rounds (and, when the
// caller passes one in, across whole simulations).
#ifndef FLOWSCHED_CORE_ONLINE_SIMULATOR_H_
#define FLOWSCHED_CORE_ONLINE_SIMULATOR_H_

#include <string>

#include "core/online/policy.h"
#include "core/online/simulation_context.h"
#include "model/metrics.h"
#include "model/schedule.h"
#include "scenario/scenario.h"
#include "workload/adversarial.h"

namespace flowsched {

struct SimulationOptions {
  Round max_rounds = 1 << 20;   // Hard stop (policy livelock guard).
  bool record_backlog = false;  // Per-round backlog sizes.
  // Check every policy selection for duplicate indices and port overloads
  // (three O(backlog + ports) scans per round). On by default — a buggy
  // policy corrupts the realized schedule silently otherwise; benchmarks
  // turn it off to keep the measured loop free of audit overhead.
  bool validate = true;
  // Fault-injection overlay (scenario/scenario.h): timed events reshape
  // the effective capacities before each round's policy call. Flows on a
  // dead port stay backlogged; a run that can never drain truncates
  // gracefully (SimulationResult::truncated) instead of tripping FS_CHECK.
  const ScenarioScript* scenario = nullptr;
  // Pre-projected per-side ops (fabric pods); wins over `scenario`.
  const std::vector<ScenarioOp>* scenario_ops = nullptr;
};

struct SimulationResult {
  Instance realized;  // The flows that actually arrived, ids in arrival order.
  Schedule schedule;
  ScheduleMetrics metrics;
  Round rounds = 0;                // Rounds simulated until drain.
  std::vector<int> backlog_trace;  // If record_backlog.
  int peak_backlog = 0;  // Largest backlog at any policy round.
  // Scheduled demand / available port bandwidth over the simulated rounds,
  // averaged over the two sides (1.0 = every port saturated every round).
  double avg_port_utilization = 0.0;
  // Scenario runs only. A truncated run carries a partial realized
  // instance but no schedule/metrics; `error` says why (hit max_rounds, or
  // flows stranded on dead ports with no recovery event left).
  bool truncated = false;
  std::string error;
  // Simulated (non-idle) rounds during which >= 1 port side was down.
  Round downtime_rounds = 0;
  // Arrivals re-homed by MIGRATE rules (scenario runs only). The realized
  // instance carries the migrated ports; nothing is ever dropped.
  long long migrated_flows = 0;
};

// Replays a fixed instance (the "online" policy still only sees released
// flows each round). A caller-provided context is reused (benchmarks,
// sweeps); when null an internal one is used.
SimulationResult Simulate(const Instance& instance, SchedulingPolicy& policy,
                          const SimulationOptions& options = {},
                          SimulationContext* context = nullptr);

// Drives an arrival process (possibly adaptive) until it is exhausted and
// the backlog drains.
SimulationResult Simulate(const SwitchSpec& sw, ArrivalProcess& arrivals,
                          SchedulingPolicy& policy,
                          const SimulationOptions& options = {},
                          SimulationContext* context = nullptr);

// Audits one policy selection: in-range indices, no duplicates, no port
// overloads (aborts via FS_CHECK on violation; three O(backlog + ports)
// scans). Shared by the batch loop above and the streaming simulator
// (src/serve/); uses ctx's scratch vectors, so it allocates nothing at
// steady state.
void ValidatePolicySelection(const SwitchSpec& sw,
                             std::span<const PendingFlow> pending,
                             std::span<const int> picked,
                             SimulationContext& ctx);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SIMULATOR_H_
