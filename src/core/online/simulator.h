// The round-based online flow simulator (paper §5.2.1).
//
// Maintains the backlog bipartite graph G_t: released-but-unscheduled flows.
// Each round, arrivals join the backlog, the policy extracts a
// capacity-feasible subset (validated), and those flows complete within the
// round. Per-port queues are open — the policy may pick any backlog flow,
// not just the oldest.
#ifndef FLOWSCHED_CORE_ONLINE_SIMULATOR_H_
#define FLOWSCHED_CORE_ONLINE_SIMULATOR_H_

#include "core/online/policy.h"
#include "model/metrics.h"
#include "model/schedule.h"
#include "workload/adversarial.h"

namespace flowsched {

struct SimulationOptions {
  Round max_rounds = 1 << 20;   // Hard stop (policy livelock guard).
  bool record_backlog = false;  // Per-round backlog sizes.
};

struct SimulationResult {
  Instance realized;  // The flows that actually arrived, ids in arrival order.
  Schedule schedule;
  ScheduleMetrics metrics;
  Round rounds = 0;                // Rounds simulated until drain.
  std::vector<int> backlog_trace;  // If record_backlog.
  // Scheduled demand / available port bandwidth over the simulated rounds,
  // averaged over the two sides (1.0 = every port saturated every round).
  double avg_port_utilization = 0.0;
};

// Replays a fixed instance (the "online" policy still only sees released
// flows each round).
SimulationResult Simulate(const Instance& instance, SchedulingPolicy& policy,
                          const SimulationOptions& options = {});

// Drives an arrival process (possibly adaptive) until it is exhausted and
// the backlog drains.
SimulationResult Simulate(const SwitchSpec& sw, ArrivalProcess& arrivals,
                          SchedulingPolicy& policy,
                          const SimulationOptions& options = {});

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SIMULATOR_H_
