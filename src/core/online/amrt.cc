#include "core/online/amrt.h"

#include <algorithm>
#include <vector>

#include "core/mrt_lp.h"
#include "util/check.h"

namespace flowsched {

AmrtResult RunAmrt(const Instance& instance, const AmrtOptions& options) {
  FS_CHECK(!instance.ValidationError().has_value());
  FS_CHECK_GE(options.initial_rho, 1);
  AmrtResult result;
  const int n = instance.num_flows();
  const Capacity dmax = std::max<Capacity>(instance.MaxDemand(), 1);
  result.schedule = Schedule(n);
  result.allowance =
      CapacityAllowance{2.0, 2 * (2 * dmax - 1)};
  if (n == 0) {
    result.final_rho = options.initial_rho;
    return result;
  }
  // Flows sorted by release define the arrival stream.
  std::vector<FlowId> order(n);
  for (int e = 0; e < n; ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](FlowId a, FlowId b) {
    return instance.flow(a).release < instance.flow(b).release;
  });
  const Round max_release = instance.MaxRelease();

  Round rho = options.initial_rho;
  Round prev = 0;
  Round boundary = 0;
  std::size_t next = 0;
  std::vector<FlowId> batch;
  std::vector<Flow> flows;
  while (prev <= max_release || next < order.size()) {
    const Round t = boundary;
    // Batch: everything released in [prev, t). The buffer is reused across
    // batches (cleared, capacity kept).
    batch.clear();
    while (next < order.size() && instance.flow(order[next]).release < t) {
      batch.push_back(order[next++]);
    }
    if (!batch.empty()) {
      ++result.batches;
      // Sub-instance over the batch flows (ids renumbered 0..k-1).
      flows.clear();
      flows.reserve(batch.size());
      for (FlowId e : batch) flows.push_back(instance.flow(e));
      const Instance sub(instance.sw(), std::move(flows));
      // Probe windows [t, t + rho) with the offline LP; grow rho on failure
      // ("increase your guessed rho by one").
      TimeConstrainedSolution sol;
      for (;;) {
        ActiveWindows windows(sub.num_flows());
        for (int e = 0; e < sub.num_flows(); ++e) {
          for (Round r = t; r < t + rho; ++r) windows[e].push_back(r);
        }
        sol = SolveTimeConstrained(sub, windows, options.simplex);
        if (sol.feasible) {
          GroupRoundingReport rr;
          const Schedule rounded =
              GroupRound(sub, windows, sol, options.rounding, &rr);
          result.max_batch_violation =
              std::max(result.max_batch_violation, rr.max_violation);
          for (int e = 0; e < sub.num_flows(); ++e) {
            result.schedule.Assign(batch[e], rounded.round_of(e));
          }
          break;
        }
        ++rho;
        ++result.rho_increments;
      }
    }
    prev = t;
    boundary = t + rho;
  }
  FS_CHECK(result.schedule.AllAssigned());
  result.final_rho = rho;
  // Feasibility under the Lemma 5.3 augmentation (use the realized batch
  // violation when it exceeds the theorem constant, e.g. after hard drops).
  const Capacity per_batch =
      std::max<Capacity>(2 * dmax - 1, result.max_batch_violation);
  result.allowance = CapacityAllowance{2.0, 2 * per_batch};
  FS_CHECK(
      !result.schedule.ValidationError(instance, result.allowance).has_value());
  result.metrics = ComputeMetrics(instance, result.schedule);
  return result;
}

}  // namespace flowsched
