/// SimulationContext: the reusable buffer set behind the round-based
/// simulator's zero-allocation hot loop.
///
/// One context owns the backlog, the PendingFlow view handed to policies,
/// the arrival staging buffer, the per-flow assignment table, and the
/// per-port load scratch used by opt-in selection validation. Simulate()
/// creates one internally by default; drivers running many simulations
/// back-to-back (benchmarks, sweeps, fabric pods) pass the same context to
/// every run so steady-state rounds perform no heap allocation at all —
/// buffers only grow while the backlog exceeds every size seen before.
/// Contexts are single-simulation-at-a-time state: parallel runs take one
/// context each (exp/experiment_runner.h, fabric/fabric_runner.h).
#ifndef FLOWSCHED_CORE_ONLINE_SIMULATION_CONTEXT_H_
#define FLOWSCHED_CORE_ONLINE_SIMULATION_CONTEXT_H_

#include <vector>

#include "core/online/policy.h"
#include "model/flow.h"

namespace flowsched {

/// Owns every per-round buffer of one simulation; reusable across runs.
class SimulationContext {
 public:
  /// Empties every buffer while keeping its capacity (called by Simulate()
  /// on entry, so a context can be handed from run to run as-is).
  void Clear() {
    backlog.clear();
    arrivals.clear();
    pending.clear();
    pending_map.clear();
    picked.clear();
    assigned_round.clear();
    remove.clear();
    in_load.clear();
    out_load.clear();
    used.clear();
  }

  // Round-loop state (managed by Simulate()).
  std::vector<Flow> backlog;          ///< Released, unscheduled flows.
  std::vector<Flow> arrivals;         ///< Staging for ArrivalsInto.
  std::vector<PendingFlow> pending;   ///< Backlog view handed to the policy.
  std::vector<int> pending_map;       ///< pending index -> backlog index
                                      ///< (scenario rounds filter blocked
                                      ///< flows, so the view is not 1:1).
  std::vector<int> picked;            ///< Policy selection for the round.
  std::vector<Round> assigned_round;  ///< Indexed by realized flow id.
  std::vector<char> remove;           ///< Backlog compaction flags.

  // Scratch for ValidateSelection (SimulationOptions::validate).
  std::vector<Capacity> in_load;
  std::vector<Capacity> out_load;
  std::vector<char> used;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SIMULATION_CONTEXT_H_
