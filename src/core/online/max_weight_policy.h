// MaxWeight (paper §5.2.1): maximum-weight matching with edge weight equal
// to the sum of the queue lengths at its two endpoints — drains the most
// congested ports first. The classic stability policy from switch scheduling.
#ifndef FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_

#include "core/online/policy.h"

namespace flowsched {

class MaxWeightPolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "maxweight"; }
  std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending) override;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
