// MaxWeight (paper §5.2.1): maximum-weight matching with edge weight equal
// to the sum of the queue lengths at its two endpoints — drains the most
// congested ports first. The classic stability policy from switch scheduling.
//
// The matching kernel is selected by MatchingOptions: the warm-start
// Hungarian layer by default (bit-identical schedules, reuses the previous
// round's work), the plain from-scratch solver with warmstart=false, or the
// eps-approximate auction matcher when approx_eps > 0 (opt-in; schedules
// may differ within the eps bound).
#ifndef FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_

#include "core/online/policy.h"
#include "graph/auction_matching.h"
#include "graph/incremental_matching.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

class MaxWeightPolicy : public SchedulingPolicy {
 public:
  explicit MaxWeightPolicy(const MatchingOptions& matching = {})
      : matching_(matching) {}

  std::string_view name() const override { return "maxweight"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;
  // Drops all cross-round matcher state (checkpoints, auction prices) so
  // back-to-back simulations are independent.
  void Reset() override;
  PolicyMatchingStats matching_stats() const override;

 private:
  MatchingOptions matching_;
  BacklogGraphBuilder builder_;  // Graph, matcher and weight scratch persist
  MaxWeightMatcher matcher_;     // across rounds: steady state allocates
  IncrementalMatcher warm_;      // nothing.
  AuctionMatcher auction_;
  std::vector<int> in_queue_;
  std::vector<int> out_queue_;
  std::vector<double> weight_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
