// MaxWeight (paper §5.2.1): maximum-weight matching with edge weight equal
// to the sum of the queue lengths at its two endpoints — drains the most
// congested ports first. The classic stability policy from switch scheduling.
#ifndef FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_

#include "core/online/policy.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

class MaxWeightPolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "maxweight"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;

 private:
  BacklogGraphBuilder builder_;  // Graph, matcher and weight scratch persist
  MaxWeightMatcher matcher_;     // across rounds: steady state allocates
  std::vector<int> in_queue_;    // nothing.
  std::vector<int> out_queue_;
  std::vector<double> weight_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_MAX_WEIGHT_POLICY_H_
