#include "core/online/simple_policies.h"

#include <algorithm>
#include <numeric>

namespace flowsched {
namespace {

std::vector<int> GreedyPack(const SwitchSpec& sw,
                            std::span<const PendingFlow> pending,
                            std::span<const int> order) {
  std::vector<Capacity> in_res(sw.input_capacities());
  std::vector<Capacity> out_res(sw.output_capacities());
  std::vector<int> picked;
  for (int i : order) {
    const PendingFlow& f = pending[i];
    if (f.demand <= in_res[f.src] && f.demand <= out_res[f.dst]) {
      in_res[f.src] -= f.demand;
      out_res[f.dst] -= f.demand;
      picked.push_back(i);
    }
  }
  return picked;
}

}  // namespace

std::vector<int> FifoGreedyPolicy::SelectFlows(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending) {
  std::vector<int> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (pending[a].release != pending[b].release) {
      return pending[a].release < pending[b].release;
    }
    return pending[a].id < pending[b].id;
  });
  return GreedyPack(sw, pending, order);
}

std::vector<int> RandomPolicy::SelectFlows(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending) {
  std::vector<int> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng_.UniformU64(i)]);
  }
  return GreedyPack(sw, pending, order);
}

}  // namespace flowsched
