#include "core/online/simple_policies.h"

#include <algorithm>
#include <numeric>

namespace flowsched {

void GreedyPackPolicyBase::Pack(const SwitchSpec& sw,
                                std::span<const PendingFlow> pending,
                                std::vector<int>* picked) {
  in_res_.assign(sw.input_capacities().begin(), sw.input_capacities().end());
  out_res_.assign(sw.output_capacities().begin(), sw.output_capacities().end());
  for (int i : order_) {
    const PendingFlow& f = pending[i];
    if (f.demand <= in_res_[f.src] && f.demand <= out_res_[f.dst]) {
      in_res_[f.src] -= f.demand;
      out_res_[f.dst] -= f.demand;
      picked->push_back(i);
    }
  }
}

void FifoGreedyPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                       std::span<const PendingFlow> pending,
                                       std::vector<int>* picked) {
  picked->clear();
  order_.resize(pending.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    if (pending[a].release != pending[b].release) {
      return pending[a].release < pending[b].release;
    }
    return pending[a].id < pending[b].id;
  });
  Pack(sw, pending, picked);
}

void RandomPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                   std::span<const PendingFlow> pending,
                                   std::vector<int>* picked) {
  picked->clear();
  order_.resize(pending.size());
  std::iota(order_.begin(), order_.end(), 0);
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng_.UniformU64(i)]);
  }
  Pack(sw, pending, picked);
}

}  // namespace flowsched
