// SRPT-flavored and hybrid policies — extensions beyond the paper's three
// heuristics (§6 invites "a more thorough investigation of online
// algorithms"; the related-work section grounds SRPT for response time).
#ifndef FLOWSCHED_CORE_ONLINE_SRPT_POLICY_H_
#define FLOWSCHED_CORE_ONLINE_SRPT_POLICY_H_

#include "core/online/policy.h"
#include "graph/max_weight_matching.h"

namespace flowsched {

// Smallest-demand-first greedy packing. Flows are scheduled whole, so the
// SRPT rule degenerates to "shortest (cheapest) first" — it maximizes the
// number of flows completed under a demand mix, echoing SPT on one machine.
// Handles general demands.
class SrptPolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "srpt"; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;

 private:
  std::vector<int> order_;
  std::vector<Capacity> in_res_;
  std::vector<Capacity> out_res_;
};

// The compromise the paper's conclusion (§5.2.3) gestures at: a
// maximum-weight matching whose edge weight mixes MinRTime's age term with
// MaxWeight's queue-pressure term:
//   w_e = age(e) + alpha * (qlen(src) + qlen(dst)).
// alpha = 0 is exactly MinRTime; large alpha approaches MaxWeight.
class HybridPolicy : public SchedulingPolicy {
 public:
  explicit HybridPolicy(double alpha = 0.5) : alpha_(alpha) {}
  std::string_view name() const override { return "hybrid"; }
  bool RequiresUnitDemands() const override { return true; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;

 private:
  double alpha_;
  BacklogGraphBuilder builder_;
  MaxWeightMatcher matcher_;
  std::vector<int> in_queue_;
  std::vector<int> out_queue_;
  std::vector<double> weight_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SRPT_POLICY_H_
