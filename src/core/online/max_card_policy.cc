#include "core/online/max_card_policy.h"

#include "graph/hopcroft_karp.h"

namespace flowsched {

std::vector<int> MaxCardPolicy::SelectFlows(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending) {
  if (pending.empty()) return {};
  const BipartiteGraph g = BuildBacklogGraph(sw, pending);
  // Edge i of the backlog graph is pending[i].
  return MaxCardinalityMatching(g);
}

}  // namespace flowsched
