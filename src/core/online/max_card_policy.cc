#include "core/online/max_card_policy.h"

namespace flowsched {

void MaxCardPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                    std::span<const PendingFlow> pending,
                                    std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  const BipartiteGraph& g = builder_.Build(sw, pending);
  // Edge i of the backlog graph is pending[i].
  matcher_.Solve(g, picked);
}

}  // namespace flowsched
