#include "core/online/max_weight_policy.h"

#include "graph/max_weight_matching.h"

namespace flowsched {

std::vector<int> MaxWeightPolicy::SelectFlows(
    const SwitchSpec& sw, Round /*t*/, std::span<const PendingFlow> pending) {
  if (pending.empty()) return {};
  const BipartiteGraph g = BuildBacklogGraph(sw, pending);
  // Queue length = number of backlogged flows touching the port.
  std::vector<int> in_queue(sw.num_inputs(), 0);
  std::vector<int> out_queue(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    ++in_queue[f.src];
    ++out_queue[f.dst];
  }
  std::vector<double> weight(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    weight[i] =
        static_cast<double>(in_queue[pending[i].src] + out_queue[pending[i].dst]);
  }
  return MaxWeightMatching(g, weight);
}

}  // namespace flowsched
