#include "core/online/max_weight_policy.h"

namespace flowsched {

void MaxWeightPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                      std::span<const PendingFlow> pending,
                                      std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  const BipartiteGraph& g = builder_.Build(sw, pending);
  // Queue length = number of backlogged flows touching the port.
  in_queue_.assign(sw.num_inputs(), 0);
  out_queue_.assign(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    ++in_queue_[f.src];
    ++out_queue_[f.dst];
  }
  weight_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    weight_[i] = static_cast<double>(in_queue_[pending[i].src] +
                                     out_queue_[pending[i].dst]);
  }
  matcher_.Solve(g, weight_, picked);
}

}  // namespace flowsched
