#include "core/online/max_weight_policy.h"

namespace flowsched {

void MaxWeightPolicy::SelectFlowsInto(const SwitchSpec& sw, Round /*t*/,
                                      std::span<const PendingFlow> pending,
                                      std::vector<int>* picked) {
  picked->clear();
  if (pending.empty()) return;
  const BipartiteGraph& g = builder_.Build(sw, pending);
  // Queue length = number of backlogged flows touching the port.
  in_queue_.assign(sw.num_inputs(), 0);
  out_queue_.assign(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    ++in_queue_[f.src];
    ++out_queue_[f.dst];
  }
  weight_.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    weight_[i] = static_cast<double>(in_queue_[pending[i].src] +
                                     out_queue_[pending[i].dst]);
  }
  if (matching_.approx_eps > 0.0) {
    auction_.Solve(g, weight_, matching_.approx_eps, picked);
  } else if (matching_.warmstart) {
    warm_.Solve(g, weight_, picked);
  } else {
    matcher_.Solve(g, weight_, picked);
  }
}

void MaxWeightPolicy::Reset() {
  warm_.Reset();
  auction_.Reset();
}

PolicyMatchingStats MaxWeightPolicy::matching_stats() const {
  PolicyMatchingStats s;
  const IncrementalMatcher::Stats& w = warm_.stats();
  s.matcher_solves = w.solves;
  s.matcher_cache_hits = w.cache_hits;
  s.matcher_prefix_resumes = w.prefix_resumes;
  s.matcher_full_solves = w.full_solves;
  s.matcher_reused_rows = w.reused_rows;
  s.matcher_total_rows = w.total_rows;
  s.auction_bids = auction_.stats().bids;
  s.auction_cold_restarts = auction_.stats().cold_restarts;
  return s;
}

}  // namespace flowsched
