// Baseline policies beyond the paper's three: FIFO-greedy packing (works for
// general demands) and uniformly random greedy packing.
#ifndef FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_
#define FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_

#include "core/online/policy.h"
#include "util/rng.h"

namespace flowsched {

// Scans the backlog by (release, id) and packs every flow that still fits
// the residual capacities. 3-2/m-competitive flavor of FIFO for Rmax.
class FifoGreedyPolicy : public SchedulingPolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending) override;
};

// Greedy packing in uniformly random order; a sanity floor for experiments.
class RandomPolicy : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::string_view name() const override { return "random"; }
  std::vector<int> SelectFlows(const SwitchSpec& sw, Round t,
                               std::span<const PendingFlow> pending) override;
  void Reset() override { rng_ = Rng(seed_); }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_
