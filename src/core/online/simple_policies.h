// Baseline policies beyond the paper's three: FIFO-greedy packing (works for
// general demands) and uniformly random greedy packing.
#ifndef FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_
#define FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_

#include "core/online/policy.h"
#include "util/rng.h"

namespace flowsched {

// Shared greedy-packing scratch: an order buffer plus residual port
// capacities, reused across rounds.
class GreedyPackPolicyBase : public SchedulingPolicy {
 protected:
  // Packs pending flows in order_ into *picked, respecting residuals.
  void Pack(const SwitchSpec& sw, std::span<const PendingFlow> pending,
            std::vector<int>* picked);

  std::vector<int> order_;

 private:
  std::vector<Capacity> in_res_;
  std::vector<Capacity> out_res_;
};

// Scans the backlog by (release, id) and packs every flow that still fits
// the residual capacities. 3-2/m-competitive flavor of FIFO for Rmax.
class FifoGreedyPolicy : public GreedyPackPolicyBase {
 public:
  std::string_view name() const override { return "fifo"; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;
};

// Greedy packing in uniformly random order; a sanity floor for experiments.
class RandomPolicy : public GreedyPackPolicyBase {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::string_view name() const override { return "random"; }
  void SelectFlowsInto(const SwitchSpec& sw, Round t,
                       std::span<const PendingFlow> pending,
                       std::vector<int>* picked) override;
  void Reset() override { rng_ = Rng(seed_); }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ONLINE_SIMPLE_POLICIES_H_
