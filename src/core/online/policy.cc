#include "core/online/policy.h"

#include "core/online/max_card_policy.h"
#include "core/online/max_weight_policy.h"
#include "core/online/min_rtime_policy.h"
#include "core/online/simple_policies.h"
#include "core/online/srpt_policy.h"
#include "util/check.h"

namespace flowsched {

std::vector<int> SchedulingPolicy::SelectFlows(
    const SwitchSpec& sw, Round t, std::span<const PendingFlow> pending) {
  std::vector<int> picked;
  SelectFlowsInto(sw, t, pending, &picked);
  return picked;
}

const BipartiteGraph& BacklogGraphBuilder::Build(
    const SwitchSpec& sw, std::span<const PendingFlow> pending) {
  if (!have_switch_ || cached_switch_ != sw) {
    cached_switch_ = sw;
    have_switch_ = true;
    in_base_.assign(sw.num_inputs() + 1, 0);
    out_base_.assign(sw.num_outputs() + 1, 0);
    for (PortId p = 0; p < sw.num_inputs(); ++p) {
      in_base_[p + 1] = in_base_[p] + static_cast<int>(sw.input_capacity(p));
    }
    for (PortId q = 0; q < sw.num_outputs(); ++q) {
      out_base_[q + 1] = out_base_[q] + static_cast<int>(sw.output_capacity(q));
    }
  }
  graph_.Reset(in_base_[sw.num_inputs()], out_base_[sw.num_outputs()]);
  graph_.ReserveEdges(static_cast<int>(pending.size()));
  in_cursor_.assign(sw.num_inputs(), 0);
  out_cursor_.assign(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    FS_CHECK_MSG(f.demand == 1,
                 "matching-based policies require unit demands");
    const int u = in_base_[f.src] + in_cursor_[f.src];
    const int v = out_base_[f.dst] + out_cursor_[f.dst];
    in_cursor_[f.src] =
        (in_cursor_[f.src] + 1) % static_cast<int>(sw.input_capacity(f.src));
    out_cursor_[f.dst] =
        (out_cursor_[f.dst] + 1) % static_cast<int>(sw.output_capacity(f.dst));
    graph_.AddEdge(u, v);
  }
  return graph_;
}

BipartiteGraph BuildBacklogGraph(const SwitchSpec& sw,
                                 std::span<const PendingFlow> pending) {
  BacklogGraphBuilder builder;
  return builder.Build(sw, pending);
}

std::unique_ptr<SchedulingPolicy> MakePolicy(std::string_view name,
                                             std::uint64_t seed,
                                             const MatchingOptions& matching) {
  if (name == "maxcard") return std::make_unique<MaxCardPolicy>();
  if (name == "minrtime") return std::make_unique<MinRTimePolicy>();
  if (name == "maxweight") return std::make_unique<MaxWeightPolicy>(matching);
  if (name == "fifo") return std::make_unique<FifoGreedyPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "srpt") return std::make_unique<SrptPolicy>();
  if (name == "hybrid") return std::make_unique<HybridPolicy>();
  FS_CHECK_MSG(false, "unknown policy: " << std::string(name));
  return nullptr;
}

std::vector<std::string> AllPolicyNames() {
  return {"maxcard", "minrtime", "maxweight", "fifo", "random", "srpt",
          "hybrid"};
}

}  // namespace flowsched
