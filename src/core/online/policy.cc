#include "core/online/policy.h"

#include "core/online/max_card_policy.h"
#include "core/online/max_weight_policy.h"
#include "core/online/min_rtime_policy.h"
#include "core/online/simple_policies.h"
#include "core/online/srpt_policy.h"
#include "util/check.h"

namespace flowsched {

BipartiteGraph BuildBacklogGraph(const SwitchSpec& sw,
                                 std::span<const PendingFlow> pending) {
  // Replica layout mirrors graph/expansion.cc but works from PendingFlow
  // (the simulator does not materialize an Instance mid-flight).
  std::vector<int> in_base(sw.num_inputs() + 1, 0);
  std::vector<int> out_base(sw.num_outputs() + 1, 0);
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    in_base[p + 1] = in_base[p] + static_cast<int>(sw.input_capacity(p));
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    out_base[q + 1] = out_base[q] + static_cast<int>(sw.output_capacity(q));
  }
  BipartiteGraph g(in_base[sw.num_inputs()], out_base[sw.num_outputs()]);
  std::vector<int> in_cursor(sw.num_inputs(), 0);
  std::vector<int> out_cursor(sw.num_outputs(), 0);
  for (const PendingFlow& f : pending) {
    FS_CHECK_MSG(f.demand == 1,
                 "matching-based policies require unit demands");
    const int u = in_base[f.src] + in_cursor[f.src];
    const int v = out_base[f.dst] + out_cursor[f.dst];
    in_cursor[f.src] =
        (in_cursor[f.src] + 1) % static_cast<int>(sw.input_capacity(f.src));
    out_cursor[f.dst] =
        (out_cursor[f.dst] + 1) % static_cast<int>(sw.output_capacity(f.dst));
    g.AddEdge(u, v);
  }
  return g;
}

std::unique_ptr<SchedulingPolicy> MakePolicy(std::string_view name,
                                             std::uint64_t seed) {
  if (name == "maxcard") return std::make_unique<MaxCardPolicy>();
  if (name == "minrtime") return std::make_unique<MinRTimePolicy>();
  if (name == "maxweight") return std::make_unique<MaxWeightPolicy>();
  if (name == "fifo") return std::make_unique<FifoGreedyPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "srpt") return std::make_unique<SrptPolicy>();
  if (name == "hybrid") return std::make_unique<HybridPolicy>();
  FS_CHECK_MSG(false, "unknown policy: " << std::string(name));
  return nullptr;
}

std::vector<std::string> AllPolicyNames() {
  return {"maxcard", "minrtime", "maxweight", "fifo", "random", "srpt",
          "hybrid"};
}

}  // namespace flowsched
