#include "core/online/simulator.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace flowsched {
namespace {

// Adapter replaying a fixed instance as an arrival process.
class ReplayArrivals : public ArrivalProcess {
 public:
  explicit ReplayArrivals(const Instance& instance) : instance_(instance) {
    order_.reserve(instance.num_flows());
    for (const Flow& e : instance.flows()) order_.push_back(e.id);
    std::stable_sort(order_.begin(), order_.end(), [&](FlowId a, FlowId b) {
      return instance.flow(a).release < instance.flow(b).release;
    });
  }

  std::vector<Flow> Arrivals(Round t, std::span<const Flow>) override {
    std::vector<Flow> out;
    while (next_ < order_.size() &&
           instance_.flow(order_[next_]).release == t) {
      out.push_back(instance_.flow(order_[next_]));
      ++next_;
    }
    return out;
  }

  bool Exhausted(Round /*t*/) const override { return next_ >= order_.size(); }

 private:
  const Instance& instance_;
  std::vector<FlowId> order_;
  std::size_t next_ = 0;
};

void ValidateSelection(const SwitchSpec& sw,
                       std::span<const PendingFlow> pending,
                       std::span<const int> picked) {
  std::vector<Capacity> in_load(sw.num_inputs(), 0);
  std::vector<Capacity> out_load(sw.num_outputs(), 0);
  std::vector<char> used(pending.size(), 0);
  for (int i : picked) {
    FS_CHECK_MSG(i >= 0 && i < static_cast<int>(pending.size()),
                 "policy returned an out-of-range backlog index " << i);
    FS_CHECK_MSG(!used[i], "policy selected backlog index " << i << " twice");
    used[i] = 1;
    in_load[pending[i].src] += pending[i].demand;
    out_load[pending[i].dst] += pending[i].demand;
  }
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    FS_CHECK_MSG(in_load[p] <= sw.input_capacity(p),
                 "policy overloaded input port " << p);
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    FS_CHECK_MSG(out_load[q] <= sw.output_capacity(q),
                 "policy overloaded output port " << q);
  }
}

}  // namespace

SimulationResult Simulate(const SwitchSpec& sw, ArrivalProcess& arrivals,
                          SchedulingPolicy& policy,
                          const SimulationOptions& options) {
  SimulationResult result;
  result.realized = Instance(sw, {});
  std::vector<Round> assigned_round;  // Indexed by realized flow id.
  std::vector<Flow> backlog;
  std::vector<PendingFlow> pending;
  Round t = 0;
  for (; t < options.max_rounds; ++t) {
    // Arrivals for round t (the adversary sees the current backlog).
    std::vector<Flow> arrived = arrivals.Arrivals(t, backlog);
    for (Flow f : arrived) {
      f.release = t;
      f.id = result.realized.AddFlow(f.src, f.dst, f.demand, f.release);
      assigned_round.push_back(kUnassigned);
      backlog.push_back(f);
    }
    if (backlog.empty()) {
      if (arrivals.Exhausted(t + 1)) break;
      continue;
    }
    pending.clear();
    pending.reserve(backlog.size());
    for (const Flow& f : backlog) {
      pending.push_back(PendingFlow{f.id, f.src, f.dst, f.demand, f.release});
    }
    const std::vector<int> picked = policy.SelectFlows(sw, t, pending);
    ValidateSelection(sw, pending, picked);
    std::vector<char> remove(backlog.size(), 0);
    for (int i : picked) {
      assigned_round[pending[i].id] = t;
      remove[i] = 1;
    }
    std::vector<Flow> next_backlog;
    next_backlog.reserve(backlog.size() - picked.size());
    for (std::size_t i = 0; i < backlog.size(); ++i) {
      if (!remove[i]) next_backlog.push_back(backlog[i]);
    }
    backlog.swap(next_backlog);
    if (options.record_backlog) {
      result.backlog_trace.push_back(static_cast<int>(backlog.size()));
    }
  }
  FS_CHECK_MSG(backlog.empty(),
               "simulation hit max_rounds with " << backlog.size()
                                                 << " flows still pending");
  result.rounds = t;
  result.schedule = Schedule(result.realized.num_flows());
  for (FlowId e = 0; e < result.realized.num_flows(); ++e) {
    FS_CHECK_NE(assigned_round[e], kUnassigned);
    result.schedule.Assign(e, assigned_round[e]);
  }
  FS_CHECK(!result.schedule.ValidationError(result.realized).has_value());
  result.metrics = ComputeMetrics(result.realized, result.schedule);
  if (result.rounds > 0) {
    Capacity in_bw = 0;
    Capacity out_bw = 0;
    for (Capacity c : sw.input_capacities()) in_bw += c;
    for (Capacity c : sw.output_capacities()) out_bw += c;
    const auto demand = static_cast<double>(result.realized.TotalDemand());
    const auto rounds = static_cast<double>(result.rounds);
    result.avg_port_utilization =
        0.5 * (demand / (static_cast<double>(in_bw) * rounds) +
               demand / (static_cast<double>(out_bw) * rounds));
  }
  return result;
}

SimulationResult Simulate(const Instance& instance, SchedulingPolicy& policy,
                          const SimulationOptions& options) {
  FS_CHECK(!instance.ValidationError().has_value());
  ReplayArrivals arrivals(instance);
  return Simulate(instance.sw(), arrivals, policy, options);
}

}  // namespace flowsched
