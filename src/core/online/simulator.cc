#include "core/online/simulator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"

namespace flowsched {
namespace {

// Adapter replaying a fixed instance as an arrival process.
class ReplayArrivals : public ArrivalProcess {
 public:
  explicit ReplayArrivals(const Instance& instance) : instance_(instance) {
    order_.reserve(instance.num_flows());
    for (const Flow& e : instance.flows()) order_.push_back(e.id);
    std::stable_sort(order_.begin(), order_.end(), [&](FlowId a, FlowId b) {
      return instance.flow(a).release < instance.flow(b).release;
    });
    releases_.reserve(order_.size());
    for (FlowId id : order_) releases_.push_back(instance.flow(id).release);
  }

  std::vector<Flow> Arrivals(Round t, std::span<const Flow>) override {
    std::vector<Flow> out;
    Append(t, &out);
    return out;
  }

  void ArrivalsInto(Round t, std::span<const Flow>,
                    std::vector<Flow>* out) override {
    Append(t, out);
  }

  bool Exhausted(Round /*t*/) const override { return next_ >= order_.size(); }

  Round NextArrivalRound(Round t) const override {
    // Append() has already consumed every release <= the last queried
    // round, so the first unconsumed release is the next arrival — no
    // search needed (a lower_bound here could only ever land on next_).
    return next_ < releases_.size() ? std::max(t, releases_[next_]) : t;
  }

 private:
  void Append(Round t, std::vector<Flow>* out) {
    const std::size_t end =
        std::upper_bound(releases_.begin() + next_, releases_.end(), t) -
        releases_.begin();
    for (; next_ < end; ++next_) out->push_back(instance_.flow(order_[next_]));
  }

  const Instance& instance_;
  std::vector<FlowId> order_;
  std::vector<Round> releases_;  // Aligned with order_ (non-decreasing).
  std::size_t next_ = 0;
};

}  // namespace

void ValidatePolicySelection(const SwitchSpec& sw,
                             std::span<const PendingFlow> pending,
                             std::span<const int> picked,
                             SimulationContext& ctx) {
  ctx.in_load.assign(sw.num_inputs(), 0);
  ctx.out_load.assign(sw.num_outputs(), 0);
  ctx.used.assign(pending.size(), 0);
  for (int i : picked) {
    FS_CHECK_MSG(i >= 0 && i < static_cast<int>(pending.size()),
                 "policy returned an out-of-range backlog index " << i);
    FS_CHECK_MSG(!ctx.used[i], "policy selected backlog index " << i << " twice");
    ctx.used[i] = 1;
    ctx.in_load[pending[i].src] += pending[i].demand;
    ctx.out_load[pending[i].dst] += pending[i].demand;
  }
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    FS_CHECK_MSG(ctx.in_load[p] <= sw.input_capacity(p),
                 "policy overloaded input port " << p);
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    FS_CHECK_MSG(ctx.out_load[q] <= sw.output_capacity(q),
                 "policy overloaded output port " << q);
  }
}

SimulationResult Simulate(const SwitchSpec& sw, ArrivalProcess& arrivals,
                          SchedulingPolicy& policy,
                          const SimulationOptions& options,
                          SimulationContext* context) {
  SimulationContext local_context;
  SimulationContext& ctx = context != nullptr ? *context : local_context;
  ctx.Clear();
  SimulationResult result;
  result.realized = Instance(sw, {});
  // The fault overlay, bound once per run. Without a scenario this stays
  // untouched and the loop below is byte-for-byte the fault-free loop.
  ScenarioRuntime scen;
  const bool has_scenario =
      options.scenario_ops != nullptr || options.scenario != nullptr;
  if (has_scenario) {
    std::string scen_error;
    const bool bound =
        options.scenario_ops != nullptr
            ? scen.BindOps(*options.scenario_ops, sw, &scen_error)
            : scen.Bind(*options.scenario, sw, &scen_error);
    if (!bound) {
      result.truncated = true;
      result.error = "scenario: " + scen_error;
      return result;
    }
  }
  Round t = 0;
  for (; t < options.max_rounds; ++t) {
    // Arrivals for round t (the adversary sees the current backlog).
    ctx.arrivals.clear();
    arrivals.ArrivalsInto(t, ctx.backlog, &ctx.arrivals);
    for (Flow f : ctx.arrivals) {
      f.release = t;
      // MIGRATE rules re-home the arrival before it is recorded: the
      // realized instance carries the migrated ports (coins are a pure
      // function of admission order; see scenario/scenario.h).
      if (has_scenario) scen.RemapArrival(t, &f.src, &f.dst);
      f.id = result.realized.AddFlow(f.src, f.dst, f.demand, f.release,
                                     f.coflow);
      ctx.assigned_round.push_back(kUnassigned);
      ctx.backlog.push_back(f);
    }
    if (has_scenario) scen.AdvanceTo(t);
    if (ctx.backlog.empty()) {
      if (arrivals.Exhausted(t + 1)) break;
      // Fast-forward the idle gap: with nothing pending and nothing
      // released before `next`, the intermediate rounds are no-ops. Never
      // skip past the round cap — result.rounds must stay <= max_rounds
      // exactly as if the gap had been walked one round at a time.
      // (AdvanceTo is monotone, so skipped scenario events are caught up.)
      const Round next =
          std::min(arrivals.NextArrivalRound(t + 1), options.max_rounds);
      if (next > t + 1) t = next - 1;  // ++t lands on `next`.
      continue;
    }
    ctx.pending.clear();
    const bool mapped = has_scenario && scen.degraded();
    if (mapped) {
      // Flows touching a dead port stay backlogged and are withheld from
      // the policy; pending_map remembers each survivor's backlog slot.
      ctx.pending_map.clear();
      for (std::size_t i = 0; i < ctx.backlog.size(); ++i) {
        const Flow& f = ctx.backlog[i];
        if (scen.IsBlocked(f.src, f.dst)) continue;
        ctx.pending.push_back(
            PendingFlow{f.id, f.src, f.dst, f.demand, f.release, f.coflow});
        ctx.pending_map.push_back(static_cast<int>(i));
      }
    } else {
      for (const Flow& f : ctx.backlog) {
        ctx.pending.push_back(
            PendingFlow{f.id, f.src, f.dst, f.demand, f.release, f.coflow});
      }
    }
    result.peak_backlog =
        std::max(result.peak_backlog, static_cast<int>(ctx.backlog.size()));
    if (has_scenario && scen.AnyPortDown()) ++result.downtime_rounds;
    if (ctx.pending.empty()) {
      // Every backlogged flow is blocked. The round idles — unless nothing
      // can ever unblock them, in which case the run is stranded.
      if (arrivals.Exhausted(t + 1) && !scen.HasOpAfter(t)) {
        result.truncated = true;
        result.error =
            "scenario leaves " + std::to_string(ctx.backlog.size()) +
            " flows on dead ports with no recovery event after round " +
            std::to_string(t);
        break;
      }
      if (options.record_backlog) {
        result.backlog_trace.push_back(static_cast<int>(ctx.backlog.size()));
      }
      continue;
    }
    // Selection and validation audit against the round's *effective*
    // capacities, not the base spec.
    const SwitchSpec& round_sw = mapped ? scen.view() : sw;
    policy.SelectFlowsInto(round_sw, t, ctx.pending, &ctx.picked);
    if (options.validate) {
      ValidatePolicySelection(round_sw, ctx.pending, ctx.picked, ctx);
    }
    ctx.remove.assign(ctx.backlog.size(), 0);
    for (int i : ctx.picked) {
      ctx.assigned_round[ctx.pending[i].id] = t;
      ctx.remove[mapped ? ctx.pending_map[i] : i] = 1;
    }
    // Stable in-place compaction of the surviving backlog.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < ctx.backlog.size(); ++i) {
      if (!ctx.remove[i]) {
        if (kept != i) ctx.backlog[kept] = ctx.backlog[i];
        ++kept;
      }
    }
    ctx.backlog.resize(kept);
    if (options.record_backlog) {
      result.backlog_trace.push_back(static_cast<int>(kept));
    }
  }
  if (has_scenario) {
    result.migrated_flows = scen.migrated_flows();
    // A daemon-facing scenario run must degrade gracefully: hitting the
    // round cap truncates instead of aborting.
    if (!ctx.backlog.empty() && !result.truncated) {
      result.truncated = true;
      result.error = "scenario run hit max_rounds=" +
                     std::to_string(options.max_rounds) + " with " +
                     std::to_string(ctx.backlog.size()) +
                     " flows still pending";
    }
  } else {
    FS_CHECK_MSG(ctx.backlog.empty(),
                 "simulation hit max_rounds with " << ctx.backlog.size()
                                                   << " flows still pending");
  }
  result.rounds = t;
  if (result.truncated) {
    // Partial run: the realized instance (and downtime count) stand, but
    // there is no complete schedule to validate or score.
    return result;
  }
  result.schedule = Schedule(result.realized.num_flows());
  for (FlowId e = 0; e < result.realized.num_flows(); ++e) {
    FS_CHECK_NE(ctx.assigned_round[e], kUnassigned);
    result.schedule.Assign(e, ctx.assigned_round[e]);
  }
  if (options.validate) {
    FS_CHECK(!result.schedule.ValidationError(result.realized).has_value());
  }
  result.metrics = ComputeMetrics(result.realized, result.schedule);
  if (result.rounds > 0) {
    Capacity in_bw = 0;
    Capacity out_bw = 0;
    for (Capacity c : sw.input_capacities()) in_bw += c;
    for (Capacity c : sw.output_capacities()) out_bw += c;
    const auto demand = static_cast<double>(result.realized.TotalDemand());
    const auto rounds = static_cast<double>(result.rounds);
    result.avg_port_utilization =
        0.5 * (demand / (static_cast<double>(in_bw) * rounds) +
               demand / (static_cast<double>(out_bw) * rounds));
  }
  return result;
}

SimulationResult Simulate(const Instance& instance, SchedulingPolicy& policy,
                          const SimulationOptions& options,
                          SimulationContext* context) {
  FS_CHECK(!instance.ValidationError().has_value());
  ReplayArrivals arrivals(instance);
  return Simulate(instance.sw(), arrivals, policy, options, context);
}

}  // namespace flowsched
