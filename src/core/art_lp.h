// LP (1)-(4): the fractional lower bound on total response time (paper §3.1).
//
//   minimize   sum_e sum_{t >= r_e} ((t - r_e)/d_e + 1/(2*kappa_e)) b_{e,t}
//   subject to sum_t b_{e,t} >= d_e                  (flow completion)
//              sum_{e in F_p} b_{e,t} <= c_p         (port capacity, all p,t)
//              b >= 0
//
// Lemma 3.1: the optimum lower-bounds the total response time of any
// schedule. The paper's LP ranges over an unbounded horizon; we solve over a
// finite horizon H and certify optimality for the unbounded LP from duals
// (see DESIGN.md §4.1): per-flow covering duals alpha_e can only price a
// column (e, t >= H) negative if alpha_e > w_{e,t}, and w is increasing in t,
// so alpha_e <= w_{e,H} for all e proves nothing beyond H helps.
#ifndef FLOWSCHED_CORE_ART_LP_H_
#define FLOWSCHED_CORE_ART_LP_H_

#include <vector>

#include "lp/simplex.h"
#include "model/instance.h"

namespace flowsched {

struct ArtLpOptions {
  Round initial_horizon = 0;  // 0 = heuristic from load.
  int max_extensions = 10;    // Horizon grows ~1.6x per retry.
  SimplexOptions simplex;
  // Optional per-flow weights (>= 0, size num_flows). When set, the LP
  // lower-bounds the *weighted* total response time sum_e w_e * rho_e
  // (Lemma 3.1 extends verbatim: Delta_e <= rho_e holds per flow).
  std::vector<double> weights;
};

struct ArtLpResult {
  bool solved = false;
  bool certified = false;  // Optimal for the unbounded-horizon LP.
  double total_fractional_response = 0.0;  // sum_e Delta_e, the lower bound.
  std::vector<double> delta;               // Per-flow Delta_e.
  Round horizon = 0;
  long simplex_iterations = 0;
  int lp_rows = 0;
  int lp_cols = 0;
};

ArtLpResult SolveArtLp(const Instance& instance, const ArtLpOptions& options = {});

// The smallest finite horizon that is always sufficient and the heuristic
// initial guess used before extension (exposed for tests and benches).
Round ArtLpInitialHorizon(const Instance& instance);

}  // namespace flowsched

#endif  // FLOWSCHED_CORE_ART_LP_H_
