#include "core/mrt_lp.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace flowsched {

ActiveWindows WindowsForMaxResponse(const Instance& instance, Round rho) {
  FS_CHECK_GE(rho, 1);
  ActiveWindows windows(instance.num_flows());
  for (const Flow& e : instance.flows()) {
    windows[e.id].reserve(rho);
    for (Round t = e.release; t < e.release + rho; ++t) {
      windows[e.id].push_back(t);
    }
  }
  return windows;
}

ActiveWindows WindowsForDeadlines(const Instance& instance,
                                  std::span<const Round> deadlines) {
  FS_CHECK_EQ(static_cast<int>(deadlines.size()), instance.num_flows());
  ActiveWindows windows(instance.num_flows());
  for (const Flow& e : instance.flows()) {
    FS_CHECK_GE(deadlines[e.id], e.release);
    for (Round t = e.release; t <= deadlines[e.id]; ++t) {
      windows[e.id].push_back(t);
    }
  }
  return windows;
}

TimeConstrainedSolution SolveTimeConstrained(const Instance& instance,
                                             const ActiveWindows& windows,
                                             const SimplexOptions& options,
                                             Capacity capacity_slack) {
  FS_CHECK_EQ(static_cast<int>(windows.size()), instance.num_flows());
  TimeConstrainedSolution sol;
  const int n = instance.num_flows();
  if (n == 0) {
    sol.feasible = true;
    return sol;
  }
  const SwitchSpec& sw = instance.sw();
  Round t_lo = std::numeric_limits<Round>::max();
  Round t_hi = std::numeric_limits<Round>::min();
  for (const auto& w : windows) {
    FS_CHECK(!w.empty());
    FS_CHECK(std::is_sorted(w.begin(), w.end()));
    t_lo = std::min(t_lo, w.front());
    t_hi = std::max(t_hi, w.back());
  }
  LpProblem lp;
  std::vector<int> assign_row(n);
  for (int e = 0; e < n; ++e) assign_row[e] = lp.AddRow(RowSense::kEq, 1.0);
  const int ports_per_round = sw.num_inputs() + sw.num_outputs();
  auto in_row = [&](PortId p, Round t) {
    return n + (t - t_lo) * ports_per_round + p;
  };
  auto out_row = [&](PortId q, Round t) {
    return n + (t - t_lo) * ports_per_round + sw.num_inputs() + q;
  };
  for (Round t = t_lo; t <= t_hi; ++t) {
    for (PortId p = 0; p < sw.num_inputs(); ++p) {
      lp.AddRow(RowSense::kLe,
                static_cast<double>(sw.input_capacity(p) + capacity_slack));
    }
    for (PortId q = 0; q < sw.num_outputs(); ++q) {
      lp.AddRow(RowSense::kLe,
                static_cast<double>(sw.output_capacity(q) + capacity_slack));
    }
  }
  std::vector<std::pair<int, double>> entries(3);
  for (int e = 0; e < n; ++e) {
    const Flow& f = instance.flow(e);
    for (Round t : windows[e]) {
      FS_CHECK_GE(t, f.release);
      entries[0] = {assign_row[e], 1.0};
      entries[1] = {in_row(f.src, t), static_cast<double>(f.demand)};
      entries[2] = {out_row(f.dst, t), static_cast<double>(f.demand)};
      lp.AddColumn(0.0, entries);
      sol.var_flow.push_back(e);
      sol.var_round.push_back(t);
    }
  }
  const SimplexResult res = SolveLp(lp, options);
  sol.simplex_iterations = res.iterations;
  if (res.status == SimplexStatus::kInfeasible) {
    sol.feasible = false;
    return sol;
  }
  FS_CHECK_MSG(res.status == SimplexStatus::kOptimal,
               "time-constrained LP: " << ToString(res.status));
  sol.feasible = true;
  sol.x = res.x;
  return sol;
}

}  // namespace flowsched
