// SwitchSpec: the bipartite switch S(m, m') with per-port capacities.
#ifndef FLOWSCHED_MODEL_SWITCH_SPEC_H_
#define FLOWSCHED_MODEL_SWITCH_SPEC_H_

#include <vector>

#include "model/flow.h"

namespace flowsched {

// An m-input, m'-output non-blocking switch. Port capacities bound the total
// demand that may cross a port in one round. Inputs and outputs are separate
// index spaces, both starting at 0.
class SwitchSpec {
 public:
  SwitchSpec() = default;
  SwitchSpec(std::vector<Capacity> input_capacities,
             std::vector<Capacity> output_capacities);

  // An m x m' switch with every port capacity equal to `cap` (the paper's
  // experiments use cap = 1 on a 150 x 150 switch).
  static SwitchSpec Uniform(int num_inputs, int num_outputs, Capacity cap = 1);

  int num_inputs() const { return static_cast<int>(input_capacity_.size()); }
  int num_outputs() const { return static_cast<int>(output_capacity_.size()); }

  Capacity input_capacity(PortId p) const { return input_capacity_[p]; }
  Capacity output_capacity(PortId q) const { return output_capacity_[q]; }

  const std::vector<Capacity>& input_capacities() const {
    return input_capacity_;
  }
  const std::vector<Capacity>& output_capacities() const {
    return output_capacity_;
  }

  // kappa_e = min(c_p, c_q) for flow e = (p, q).
  Capacity Kappa(const Flow& e) const;

  // True when every port has capacity exactly 1 (matching-based scheduling).
  bool IsUnitCapacity() const;

  Capacity MinCapacity() const;
  Capacity MaxCapacity() const;

  friend bool operator==(const SwitchSpec&, const SwitchSpec&) = default;

 private:
  std::vector<Capacity> input_capacity_;
  std::vector<Capacity> output_capacity_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_SWITCH_SPEC_H_
