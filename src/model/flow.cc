#include "model/flow.h"

// Header-only; this translation unit keeps the build graph uniform.
