#include "model/switch_spec.h"

#include <algorithm>

#include "util/check.h"

namespace flowsched {

SwitchSpec::SwitchSpec(std::vector<Capacity> input_capacities,
                       std::vector<Capacity> output_capacities)
    : input_capacity_(std::move(input_capacities)),
      output_capacity_(std::move(output_capacities)) {
  FS_CHECK_MSG(!input_capacity_.empty(),
               "SwitchSpec needs at least one input port");
  FS_CHECK_MSG(!output_capacity_.empty(),
               "SwitchSpec needs at least one output port");
  for (std::size_t p = 0; p < input_capacity_.size(); ++p) {
    FS_CHECK_MSG(input_capacity_[p] >= 1,
                 "SwitchSpec input port " << p << " has non-positive capacity "
                     << input_capacity_[p]
                     << " (capacities must be >= 1; model an outage with a "
                        "scenario script, see docs/scenarios.md)");
  }
  for (std::size_t q = 0; q < output_capacity_.size(); ++q) {
    FS_CHECK_MSG(output_capacity_[q] >= 1,
                 "SwitchSpec output port " << q << " has non-positive capacity "
                     << output_capacity_[q]
                     << " (capacities must be >= 1; model an outage with a "
                        "scenario script, see docs/scenarios.md)");
  }
}

SwitchSpec SwitchSpec::Uniform(int num_inputs, int num_outputs, Capacity cap) {
  FS_CHECK_GE(num_inputs, 1);
  FS_CHECK_GE(num_outputs, 1);
  FS_CHECK_GE(cap, 1);
  return SwitchSpec(std::vector<Capacity>(num_inputs, cap),
                    std::vector<Capacity>(num_outputs, cap));
}

Capacity SwitchSpec::Kappa(const Flow& e) const {
  FS_CHECK(e.src >= 0 && e.src < num_inputs());
  FS_CHECK(e.dst >= 0 && e.dst < num_outputs());
  return std::min(input_capacity_[e.src], output_capacity_[e.dst]);
}

bool SwitchSpec::IsUnitCapacity() const {
  auto is_one = [](Capacity c) { return c == 1; };
  return std::all_of(input_capacity_.begin(), input_capacity_.end(), is_one) &&
         std::all_of(output_capacity_.begin(), output_capacity_.end(), is_one);
}

Capacity SwitchSpec::MinCapacity() const {
  return std::min(*std::min_element(input_capacity_.begin(), input_capacity_.end()),
                  *std::min_element(output_capacity_.begin(), output_capacity_.end()));
}

Capacity SwitchSpec::MaxCapacity() const {
  return std::max(*std::max_element(input_capacity_.begin(), input_capacity_.end()),
                  *std::max_element(output_capacity_.begin(), output_capacity_.end()));
}

}  // namespace flowsched
