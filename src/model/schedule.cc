#include "model/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace flowsched {

Capacity CapacityAllowance::Allowed(Capacity base) const {
  FS_CHECK_GE(factor, 0.0);
  const double scaled = std::floor(static_cast<double>(base) * factor + 1e-9);
  return static_cast<Capacity>(scaled) + additive;
}

SwitchSpec AugmentSwitch(const SwitchSpec& sw,
                         const CapacityAllowance& allowance) {
  std::vector<Capacity> in(sw.num_inputs());
  std::vector<Capacity> out(sw.num_outputs());
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    in[p] = allowance.Allowed(sw.input_capacity(p));
    FS_CHECK_GE(in[p], 1);
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    out[q] = allowance.Allowed(sw.output_capacity(q));
    FS_CHECK_GE(out[q], 1);
  }
  return SwitchSpec(std::move(in), std::move(out));
}

Capacity PortLoads::MaxOverload(const SwitchSpec& sw) const {
  Capacity worst = 0;
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    for (Capacity load : input[p]) {
      worst = std::max(worst, load - sw.input_capacity(p));
    }
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    for (Capacity load : output[q]) {
      worst = std::max(worst, load - sw.output_capacity(q));
    }
  }
  return std::max<Capacity>(worst, 0);
}

void Schedule::Assign(FlowId e, Round t) {
  FS_CHECK(e >= 0 && e < num_flows());
  FS_CHECK_GE(t, 0);
  assigned_[e] = t;
}

void Schedule::Unassign(FlowId e) {
  FS_CHECK(e >= 0 && e < num_flows());
  assigned_[e] = kUnassigned;
}

Round Schedule::Makespan() const {
  Round last = -1;
  for (Round t : assigned_) last = std::max(last, t);
  return last + 1;
}

bool Schedule::AllAssigned() const {
  return std::all_of(assigned_.begin(), assigned_.end(),
                     [](Round t) { return t != kUnassigned; });
}

PortLoads Schedule::ComputeLoads(const Instance& instance) const {
  FS_CHECK_EQ(num_flows(), instance.num_flows());
  PortLoads loads;
  loads.horizon = Makespan();
  loads.input.assign(instance.sw().num_inputs(),
                     std::vector<Capacity>(loads.horizon, 0));
  loads.output.assign(instance.sw().num_outputs(),
                      std::vector<Capacity>(loads.horizon, 0));
  for (const Flow& e : instance.flows()) {
    const Round t = assigned_[e.id];
    if (t == kUnassigned) continue;
    loads.input[e.src][t] += e.demand;
    loads.output[e.dst][t] += e.demand;
  }
  return loads;
}

std::optional<std::string> Schedule::ValidationError(
    const Instance& instance, const CapacityAllowance& allowance) const {
  FS_CHECK_EQ(num_flows(), instance.num_flows());
  for (const Flow& e : instance.flows()) {
    const Round t = assigned_[e.id];
    std::ostringstream os;
    if (t == kUnassigned) {
      os << "flow " << e.id << " is unassigned";
      return os.str();
    }
    if (t < e.release) {
      os << "flow " << e.id << " scheduled at round " << t
         << " before its release " << e.release;
      return os.str();
    }
  }
  const PortLoads loads = ComputeLoads(instance);
  const SwitchSpec& sw = instance.sw();
  for (PortId p = 0; p < sw.num_inputs(); ++p) {
    const Capacity allowed = allowance.Allowed(sw.input_capacity(p));
    for (Round t = 0; t < loads.horizon; ++t) {
      if (loads.input[p][t] > allowed) {
        std::ostringstream os;
        os << "input port " << p << " overloaded at round " << t << ": load "
           << loads.input[p][t] << " > allowed " << allowed;
        return os.str();
      }
    }
  }
  for (PortId q = 0; q < sw.num_outputs(); ++q) {
    const Capacity allowed = allowance.Allowed(sw.output_capacity(q));
    for (Round t = 0; t < loads.horizon; ++t) {
      if (loads.output[q][t] > allowed) {
        std::ostringstream os;
        os << "output port " << q << " overloaded at round " << t << ": load "
           << loads.output[q][t] << " > allowed " << allowed;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace flowsched
