#include "model/metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace flowsched {

ScheduleMetrics ComputeMetrics(const Instance& instance,
                               const Schedule& schedule) {
  FS_CHECK(schedule.AllAssigned());
  ScheduleMetrics m;
  m.response.reserve(instance.num_flows());
  for (const Flow& e : instance.flows()) {
    const Round t = schedule.round_of(e.id);
    m.response.push_back(static_cast<double>(ResponseTime(t, e.release)));
  }
  m.makespan = schedule.Makespan();
  if (!m.response.empty()) {
    RunningStats stats;
    for (double r : m.response) stats.Add(r);
    m.total_response = stats.sum();
    m.avg_response = stats.mean();
    m.max_response = stats.max();
    m.stddev_response = stats.stddev();
    m.p50_response = Percentile(m.response, 50.0);
    m.p95_response = Percentile(m.response, 95.0);
    m.p99_response = Percentile(m.response, 99.0);
  }
  return m;
}

WeightedMetrics ComputeWeightedMetrics(const Instance& instance,
                                       const Schedule& schedule,
                                       std::span<const double> weights) {
  FS_CHECK(schedule.AllAssigned());
  FS_CHECK_EQ(static_cast<int>(weights.size()), instance.num_flows());
  WeightedMetrics m;
  for (const Flow& e : instance.flows()) {
    FS_CHECK_GE(weights[e.id], 0.0);
    const double rho = ResponseTime(schedule.round_of(e.id), e.release);
    m.total_weighted_response += weights[e.id] * rho;
    m.max_weighted_response =
        std::max(m.max_weighted_response, weights[e.id] * rho);
    m.total_weight += weights[e.id];
  }
  return m;
}

}  // namespace flowsched
