#include "model/trace_io.h"

#include <charconv>
#include <ostream>

#include "util/csv.h"

namespace flowsched {
namespace {

bool ParseInt64(const std::string& s, std::int64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt(const std::string& s, int& out) {
  std::int64_t v = 0;
  if (!ParseInt64(s, v)) return false;
  out = static_cast<int>(v);
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// 1-based line number of row index `i` (blank lines are skipped by
// ParseCsv, so this is exact for files without them).
std::string LineTag(std::size_t row_index) {
  return "line " + std::to_string(row_index + 1) + ": ";
}

bool ParseCapacityRow(const std::vector<std::string>& row,
                      std::size_t row_index, std::vector<Capacity>& caps,
                      std::string* error) {
  caps.clear();
  caps.reserve(row.size());
  for (const auto& field : row) {
    std::int64_t v = 0;
    if (!ParseInt64(field, v)) {
      return Fail(error, LineTag(row_index) + "bad capacity: " + field);
    }
    caps.push_back(v);
  }
  return true;
}

}  // namespace

void WriteInstanceCsv(const Instance& instance, std::ostream& out) {
  CsvWriter w(out);
  w.Row("input_capacities");
  {
    std::vector<std::string> row;
    row.reserve(instance.sw().num_inputs());
    for (Capacity c : instance.sw().input_capacities()) {
      row.push_back(std::to_string(c));
    }
    w.WriteRow(row);
  }
  w.Row("output_capacities");
  {
    std::vector<std::string> row;
    row.reserve(instance.sw().num_outputs());
    for (Capacity c : instance.sw().output_capacities()) {
      row.push_back(std::to_string(c));
    }
    w.WriteRow(row);
  }
  w.Row("src", "dst", "demand", "release");
  for (const Flow& e : instance.flows()) {
    w.Row(e.src, e.dst, static_cast<long long>(e.demand), e.release);
  }
}

std::optional<Instance> ReadInstanceCsv(const std::string& content,
                                        std::string* error) {
  const auto rows = ParseCsv(content);
  std::string err;
  if (rows.size() < 5 || rows[0].empty() || rows[0][0] != "input_capacities" ||
      rows[2].empty() || rows[2][0] != "output_capacities") {
    Fail(error, "missing capacity header rows");
    return std::nullopt;
  }
  std::vector<Capacity> in_caps;
  std::vector<Capacity> out_caps;
  if (!ParseCapacityRow(rows[1], 1, in_caps, error)) return std::nullopt;
  if (!ParseCapacityRow(rows[3], 3, out_caps, error)) return std::nullopt;
  if (rows[4] != std::vector<std::string>{"src", "dst", "demand", "release"}) {
    Fail(error, "missing flow header row");
    return std::nullopt;
  }
  std::vector<Flow> flows;
  flows.reserve(rows.size() - 5);
  for (std::size_t i = 5; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 4) {
      Fail(error, LineTag(i) + "flow row has " + std::to_string(row.size()) +
                      " fields, want 4 (src,dst,demand,release)");
      return std::nullopt;
    }
    Flow e;
    if (!ParseInt(row[0], e.src) || !ParseInt(row[1], e.dst) ||
        !ParseInt64(row[2], e.demand) || !ParseInt(row[3], e.release)) {
      Fail(error, LineTag(i) + "unparsable flow row");
      return std::nullopt;
    }
    flows.push_back(e);
  }
  Instance instance(SwitchSpec(std::move(in_caps), std::move(out_caps)),
                    std::move(flows));
  if (auto verr = instance.ValidationError()) {
    Fail(error, *verr);
    return std::nullopt;
  }
  return instance;  // Implicitly moved into the optional (C++20).
}

void WriteScheduleCsv(const Schedule& schedule, std::ostream& out) {
  CsvWriter w(out);
  w.Row("flow_id", "round");
  for (FlowId e = 0; e < schedule.num_flows(); ++e) {
    w.Row(e, schedule.round_of(e));
  }
}

std::optional<Schedule> ReadScheduleCsv(const std::string& content,
                                        int num_flows, std::string* error) {
  const auto rows = ParseCsv(content);
  if (rows.empty() || rows[0] != std::vector<std::string>{"flow_id", "round"}) {
    Fail(error, "missing schedule header");
    return std::nullopt;
  }
  Schedule schedule(num_flows);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    int id = 0;
    int round = 0;
    if (row.size() != 2 || !ParseInt(row[0], id) || !ParseInt(row[1], round)) {
      Fail(error, LineTag(i) + "unparsable schedule row");
      return std::nullopt;
    }
    if (id < 0 || id >= num_flows) {
      Fail(error, LineTag(i) + "flow id out of range: " + row[0]);
      return std::nullopt;
    }
    if (round >= 0) schedule.Assign(id, round);
  }
  return schedule;
}

}  // namespace flowsched
