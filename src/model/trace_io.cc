#include "model/trace_io.h"

#include <charconv>
#include <ostream>
#include <sstream>

#include "util/csv.h"

namespace flowsched {
namespace {

bool ParseInt64(const std::string& s, std::int64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt(const std::string& s, int& out) {
  std::int64_t v = 0;
  if (!ParseInt64(s, v)) return false;
  out = static_cast<int>(v);
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// 1-based line number of row index `i` (blank lines are skipped by
// ParseCsv, so this is exact for files without them).
std::string LineTag(std::size_t row_index) {
  return "line " + std::to_string(row_index + 1) + ": ";
}

// Same tag from a CsvRowReader's physical line number (already 1-based,
// exact even with blank lines).
std::string LineTagAt(long long line) {
  return "line " + std::to_string(line) + ": ";
}

bool ParseCapacityRow(const std::vector<std::string>& row,
                      std::size_t row_index, std::vector<Capacity>& caps,
                      std::string* error) {
  caps.clear();
  caps.reserve(row.size());
  for (const auto& field : row) {
    std::int64_t v = 0;
    if (!ParseInt64(field, v)) {
      return Fail(error, LineTag(row_index) + "bad capacity: " + field);
    }
    caps.push_back(v);
  }
  return true;
}

}  // namespace

void WriteInstanceCsv(const Instance& instance, std::ostream& out) {
  CsvWriter w(out);
  w.Row("input_capacities");
  {
    std::vector<std::string> row;
    row.reserve(instance.sw().num_inputs());
    for (Capacity c : instance.sw().input_capacities()) {
      row.push_back(std::to_string(c));
    }
    w.WriteRow(row);
  }
  w.Row("output_capacities");
  {
    std::vector<std::string> row;
    row.reserve(instance.sw().num_outputs());
    for (Capacity c : instance.sw().output_capacities()) {
      row.push_back(std::to_string(c));
    }
    w.WriteRow(row);
  }
  if (instance.HasCoflows()) {
    w.Row("src", "dst", "demand", "release", "coflow");
    for (const Flow& e : instance.flows()) {
      w.Row(e.src, e.dst, static_cast<long long>(e.demand), e.release,
            e.coflow == kNoCoflow ? std::string() : std::to_string(e.coflow));
    }
  } else {
    w.Row("src", "dst", "demand", "release");
    for (const Flow& e : instance.flows()) {
      w.Row(e.src, e.dst, static_cast<long long>(e.demand), e.release);
    }
  }
}

InstanceCsvReader::InstanceCsvReader(std::istream& in) : rows_(in) {
  auto expect_label = [&](const char* label) {
    if (!rows_.Next(&row_) || row_.size() != 1 || row_[0] != label) {
      error_ = "missing capacity header rows";
      return false;
    }
    return true;
  };
  auto read_caps = [&](std::vector<Capacity>& caps) {
    if (!rows_.Next(&row_)) {
      error_ = "missing capacity header rows";
      return false;
    }
    caps.reserve(row_.size());
    for (const auto& field : row_) {
      std::int64_t v = 0;
      // Reject non-positive values here rather than let SwitchSpec's
      // capacity >= 1 invariant abort on daemon-supplied input.
      if (!ParseInt64(field, v) || v < 1) {
        error_ = LineTagAt(rows_.line()) + "bad capacity: " + field;
        return false;
      }
      caps.push_back(v);
    }
    return true;
  };
  std::vector<Capacity> in_caps;
  std::vector<Capacity> out_caps;
  if (!expect_label("input_capacities") || !read_caps(in_caps) ||
      !expect_label("output_capacities") || !read_caps(out_caps)) {
    return;
  }
  if (!rows_.Next(&row_)) {
    error_ = "missing flow header row";
    return;
  }
  const std::vector<std::string> header4 = {"src", "dst", "demand", "release"};
  const std::vector<std::string> header5 = {"src", "dst", "demand", "release",
                                            "coflow"};
  with_coflow_ = row_ == header5;
  if (!with_coflow_ && row_ != header4) {
    error_ = "missing flow header row";
    return;
  }
  sw_ = SwitchSpec(std::move(in_caps), std::move(out_caps));
}

bool InstanceCsvReader::NextFlow(Flow* flow) {
  if (!error_.empty() || !rows_.Next(&row_)) return false;
  const std::size_t width = with_coflow_ ? 5 : 4;
  if (row_.size() != width) {
    error_ = LineTagAt(rows_.line()) + "flow row has " +
             std::to_string(row_.size()) + " fields, want " +
             std::to_string(width) +
             (with_coflow_ ? " (src,dst,demand,release,coflow)"
                           : " (src,dst,demand,release)");
    return false;
  }
  Flow e;
  if (!ParseInt(row_[0], e.src) || !ParseInt(row_[1], e.dst) ||
      !ParseInt64(row_[2], e.demand) || !ParseInt(row_[3], e.release)) {
    error_ = LineTagAt(rows_.line()) + "unparsable flow row";
    return false;
  }
  if (with_coflow_ && !row_[4].empty() && !ParseInt(row_[4], e.coflow)) {
    error_ = LineTagAt(rows_.line()) + "unparsable coflow tag: " + row_[4];
    return false;
  }
  flow->src = e.src;
  flow->dst = e.dst;
  flow->demand = e.demand;
  flow->release = e.release;
  flow->coflow = e.coflow;
  return true;
}

std::optional<Instance> ReadInstanceCsv(const std::string& content,
                                        std::string* error) {
  std::istringstream in(content);
  InstanceCsvReader reader(in);
  std::vector<Flow> flows;
  Flow e;
  while (reader.NextFlow(&e)) flows.push_back(e);
  if (!reader.ok()) {
    Fail(error, reader.error());
    return std::nullopt;
  }
  Instance instance(reader.sw(), std::move(flows));
  if (auto verr = instance.ValidationError()) {
    Fail(error, *verr);
    return std::nullopt;
  }
  return instance;  // Implicitly moved into the optional (C++20).
}

namespace {

std::vector<std::string> SplitSemicolons(const std::string& field) {
  std::vector<std::string> parts;
  std::string part;
  for (char c : field + ';') {
    if (c == ';') {
      if (!part.empty()) parts.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  return parts;
}

const std::vector<std::string> kCoflowHeader = {"coflow", "arrival", "mappers",
                                                "reducers"};

// Ceiling on port indices when the trace carries no capacity preamble: the
// inferred square switch allocates two arrays of this size, so a typo'd
// port number must become a parse error, not a multi-gigabyte allocation.
constexpr PortId kMaxInferredPort = 1 << 20;

}  // namespace

bool LooksLikeCoflowTrace(const std::string& content) {
  // Sniff only the first five lines — the header is at row 0, or row 4
  // behind a capacity preamble — so routing a large file costs O(1), not a
  // second full parse.
  std::size_t end = 0;
  for (int newlines = 0; end < content.size() && newlines < 5; ++end) {
    if (content[end] == '\n') ++newlines;
  }
  const auto rows = ParseCsv(std::string_view(content).substr(0, end));
  if (!rows.empty() && rows[0] == kCoflowHeader) return true;
  return rows.size() > 4 && !rows[0].empty() &&
         rows[0][0] == "input_capacities" && rows[4] == kCoflowHeader;
}

std::optional<Instance> ReadCoflowTraceCsv(const std::string& content,
                                           std::string* error) {
  const auto rows = ParseCsv(content);
  std::size_t first = 0;
  std::vector<Capacity> in_caps;
  std::vector<Capacity> out_caps;
  if (!rows.empty() && !rows[0].empty() && rows[0][0] == "input_capacities") {
    if (rows.size() < 4 || rows[2].empty() ||
        rows[2][0] != "output_capacities") {
      Fail(error, "truncated capacity preamble");
      return std::nullopt;
    }
    if (!ParseCapacityRow(rows[1], 1, in_caps, error)) return std::nullopt;
    if (!ParseCapacityRow(rows[3], 3, out_caps, error)) return std::nullopt;
    first = 4;
  }
  if (rows.size() <= first || rows[first] != kCoflowHeader) {
    Fail(error, "missing coflow header row (coflow,arrival,mappers,reducers)");
    return std::nullopt;
  }
  std::vector<Flow> flows;
  PortId max_port = -1;
  for (std::size_t i = first + 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 4) {
      Fail(error, LineTag(i) + "coflow row has " + std::to_string(row.size()) +
                      " fields, want 4 (coflow,arrival,mappers,reducers)");
      return std::nullopt;
    }
    CoflowId coflow = kNoCoflow;
    Round arrival = 0;
    if (!ParseInt(row[0], coflow) || coflow < 0 ||
        !ParseInt(row[1], arrival)) {
      Fail(error, LineTag(i) + "unparsable coflow id / arrival");
      return std::nullopt;
    }
    std::vector<PortId> mappers;
    for (const std::string& m : SplitSemicolons(row[2])) {
      PortId p = 0;
      if (!ParseInt(m, p) || p < 0 || p >= kMaxInferredPort) {
        Fail(error, LineTag(i) + "bad mapper port: " + m);
        return std::nullopt;
      }
      mappers.push_back(p);
      max_port = std::max(max_port, p);
    }
    if (mappers.empty()) {
      Fail(error, LineTag(i) + "coflow has no mappers");
      return std::nullopt;
    }
    // Each reducer's shuffle volume splits evenly over the mappers
    // (rounded up, min 1 unit) — the standard expansion of the Facebook
    // trace's per-reducer totals into per-flow demands.
    const auto num_mappers = static_cast<Capacity>(mappers.size());
    bool any_reducer = false;
    for (const std::string& r : SplitSemicolons(row[3])) {
      const auto colon = r.find(':');
      PortId q = 0;
      std::int64_t units = 0;
      if (colon == std::string::npos || !ParseInt(r.substr(0, colon), q) ||
          q < 0 || q >= kMaxInferredPort ||
          !ParseInt64(r.substr(colon + 1), units) || units < 1) {
        Fail(error, LineTag(i) + "unparsable reducer spec: " + r);
        return std::nullopt;
      }
      any_reducer = true;
      max_port = std::max(max_port, q);
      const Capacity demand =
          std::max<Capacity>(1, (units + num_mappers - 1) / num_mappers);
      for (PortId p : mappers) {
        Flow e;
        e.src = p;
        e.dst = q;
        e.demand = demand;
        e.release = arrival;
        e.coflow = coflow;
        flows.push_back(e);
      }
    }
    if (!any_reducer) {
      Fail(error, LineTag(i) + "coflow has no reducers");
      return std::nullopt;
    }
  }
  if (in_caps.empty()) {
    // No preamble: square switch over the referenced ports, capacity large
    // enough for the largest expanded flow demand. An empty trace leaves
    // nothing to size the switch from — reject it rather than abort in
    // SwitchSpec's zero-port check downstream.
    if (flows.empty()) {
      Fail(error,
           "coflow trace has no coflow rows and no capacity preamble to "
           "size the switch from");
      return std::nullopt;
    }
    Capacity cap = 1;
    for (const Flow& e : flows) cap = std::max(cap, e.demand);
    in_caps.assign(static_cast<std::size_t>(max_port) + 1, cap);
    out_caps = in_caps;
  }
  Instance instance(SwitchSpec(std::move(in_caps), std::move(out_caps)),
                    std::move(flows));
  if (auto verr = instance.ValidationError()) {
    Fail(error, *verr);
    return std::nullopt;
  }
  return instance;
}

void WriteScheduleCsv(const Schedule& schedule, std::ostream& out) {
  CsvWriter w(out);
  w.Row("flow_id", "round");
  for (FlowId e = 0; e < schedule.num_flows(); ++e) {
    w.Row(e, schedule.round_of(e));
  }
}

std::optional<Schedule> ReadScheduleCsv(const std::string& content,
                                        int num_flows, std::string* error) {
  const auto rows = ParseCsv(content);
  if (rows.empty() || rows[0] != std::vector<std::string>{"flow_id", "round"}) {
    Fail(error, "missing schedule header");
    return std::nullopt;
  }
  Schedule schedule(num_flows);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    int id = 0;
    int round = 0;
    if (row.size() != 2 || !ParseInt(row[0], id) || !ParseInt(row[1], round)) {
      Fail(error, LineTag(i) + "unparsable schedule row");
      return std::nullopt;
    }
    if (id < 0 || id >= num_flows) {
      Fail(error, LineTag(i) + "flow id out of range: " + row[0]);
      return std::nullopt;
    }
    if (round >= 0) schedule.Assign(id, round);
  }
  return schedule;
}

}  // namespace flowsched
