#include "model/coflow.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace flowsched {

CoflowSet::CoflowSet(const Instance& instance) : instance_(&instance) {
  group_of_.assign(instance.num_flows(), -1);
  // Tagged groups first, ordered by ascending tag (std::map iteration).
  std::map<CoflowId, int> group_by_tag;
  for (const Flow& e : instance.flows()) {
    if (e.coflow != kNoCoflow) group_by_tag.emplace(e.coflow, 0);
  }
  num_tagged_ = static_cast<int>(group_by_tag.size());
  int next = 0;
  for (auto& [tag, index] : group_by_tag) {
    index = next++;
    tag_.push_back(tag);
  }
  for (const Flow& e : instance.flows()) {
    if (e.coflow == kNoCoflow) {
      group_of_[e.id] = next++;
      tag_.push_back(kNoCoflow);
    } else {
      group_of_[e.id] = group_by_tag[e.coflow];
    }
  }
  members_.resize(next);
  release_.assign(next, 0);
  total_demand_.assign(next, 0);
  for (const Flow& e : instance.flows()) {
    const int g = group_of_[e.id];
    if (members_[g].empty() || e.release < release_[g]) {
      release_[g] = e.release;
    }
    members_[g].push_back(e.id);
    total_demand_[g] += e.demand;
  }
}

Round CoflowSet::IsolationRounds(int g, const SwitchSpec& sw) const {
  FS_CHECK(instance_ != nullptr);
  FS_CHECK(g >= 0 && g < num_groups());
  // Group loads are sparse over ports; accumulate via the member list only.
  std::vector<std::pair<PortId, Capacity>> in_load;
  std::vector<std::pair<PortId, Capacity>> out_load;
  auto bump = [](std::vector<std::pair<PortId, Capacity>>& loads, PortId p,
                 Capacity d) {
    for (auto& [port, load] : loads) {
      if (port == p) {
        load += d;
        return;
      }
    }
    loads.emplace_back(p, d);
  };
  for (FlowId e : members_[g]) {
    const Flow& f = instance_->flow(e);
    bump(in_load, f.src, f.demand);
    bump(out_load, f.dst, f.demand);
  }
  Round rounds = members_[g].empty() ? 0 : 1;
  for (const auto& [port, load] : in_load) {
    const Capacity cap = sw.input_capacity(port);
    rounds = std::max(rounds, static_cast<Round>((load + cap - 1) / cap));
  }
  for (const auto& [port, load] : out_load) {
    const Capacity cap = sw.output_capacity(port);
    rounds = std::max(rounds, static_cast<Round>((load + cap - 1) / cap));
  }
  return rounds;
}

}  // namespace flowsched
