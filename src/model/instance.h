// Instance: a switch plus a set of flow requests (a full FS-ART / FS-MRT
// problem input).
#ifndef FLOWSCHED_MODEL_INSTANCE_H_
#define FLOWSCHED_MODEL_INSTANCE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/flow.h"
#include "model/switch_spec.h"

namespace flowsched {

class Instance {
 public:
  Instance() = default;
  // Flows are renumbered so flows()[i].id == i.
  Instance(SwitchSpec sw, std::vector<Flow> flows);

  const SwitchSpec& sw() const { return switch_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const Flow& flow(FlowId id) const { return flows_[id]; }
  int num_flows() const { return static_cast<int>(flows_.size()); }

  // Adds a flow (id assigned automatically); returns its id.
  FlowId AddFlow(PortId src, PortId dst, Capacity demand = 1, Round release = 0,
                 CoflowId coflow = kNoCoflow);

  // Pre-sizes the flow list for callers that grow an instance flow by flow
  // (trace parsers, generators, the simulator's realized instance).
  void Reserve(int num_flows) { flows_.reserve(num_flows); }

  // Returns an error message if the instance is malformed (port out of
  // range, demand < 1 or > kappa_e, negative release), nullopt when valid.
  //
  // Flows with src == dst are legal: inputs and outputs are separate index
  // spaces of the bipartite switch (paper §2), so input port p and output
  // port p are distinct physical ports — such a flow is a host sending to
  // a same-numbered peer (shuffles routinely emit mapper i -> reducer i),
  // not a self-loop that could bypass the switch.
  std::optional<std::string> ValidationError() const;

  // Aggregate properties used throughout the algorithms.
  Capacity MaxDemand() const;       // d_max (0 for empty instances).
  Round MaxRelease() const;         // r_max (0 for empty instances).
  Capacity TotalDemand() const;
  // True when at least one flow carries a coflow tag (model/coflow.h builds
  // the grouped view; untagged flows become singleton groups there).
  bool HasCoflows() const;
  // A horizon H such that some optimal schedule (for either objective)
  // finishes before round H: any non-idle schedule completes at least one
  // pending flow per round, so r_max + n rounds always suffice.
  Round SafeHorizon() const;

  // Flow ids incident to input port p / output port q (the paper's F_p).
  std::vector<std::vector<FlowId>> FlowsByInputPort() const;
  std::vector<std::vector<FlowId>> FlowsByOutputPort() const;

  /// Provenance stamp: the spec text or file path this instance was loaded
  /// from (api/instance_source.h sets it; empty for programmatically built
  /// instances). Purely descriptive for most consumers — reports echo it —
  /// but `fabric.*` solvers recover their shard topology from a `fabric:`
  /// stamp, so sweeps can vary the shard count through the instance axis.
  const std::string& source() const { return source_; }
  void set_source(std::string source) { source_ = std::move(source); }

 private:
  SwitchSpec switch_;
  std::vector<Flow> flows_;
  std::string source_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_INSTANCE_H_
