/// CoflowSet: the grouped view of an instance's coflow tags.
///
/// A coflow is a set of parallel flows that completes only when its last
/// member flow does (Chowdhury & Stoica; Liang & Modiano analyze coflows on
/// exactly this input-queued switch model). Flows opt in through
/// Flow::coflow; CoflowSet densifies the tags into contiguous group indices
/// and precomputes the per-group aggregates the coflow policies and metrics
/// need: member lists, release (earliest member release), total demand,
/// width, and the isolation bound (the bottleneck lower bound on the rounds
/// any schedule needs for the group alone).
#ifndef FLOWSCHED_MODEL_COFLOW_H_
#define FLOWSCHED_MODEL_COFLOW_H_

#include <vector>

#include "model/instance.h"

namespace flowsched {

/// Immutable grouping of one instance's flows by coflow tag. Holds a
/// pointer to the instance it was built from, which must outlive it.
class CoflowSet {
 public:
  CoflowSet() = default;

  /// Groups `instance`'s flows by Flow::coflow. Tagged groups come first,
  /// ordered by ascending tag; untagged flows (coflow == kNoCoflow) follow
  /// as singleton groups in flow-id order, so every flow belongs to exactly
  /// one group and per-flow metrics degenerate gracefully to the flow
  /// scheduling view.
  explicit CoflowSet(const Instance& instance);

  /// Total groups: tagged coflows plus one singleton per untagged flow.
  int num_groups() const { return static_cast<int>(members_.size()); }
  /// Number of groups that came from real (non-singleton-by-default) tags.
  int num_tagged() const { return num_tagged_; }

  /// Dense group index of flow e, in [0, num_groups()).
  int group_of(FlowId e) const { return group_of_[e]; }
  /// The original Flow::coflow tag of group g (kNoCoflow for singletons).
  CoflowId tag(int g) const { return tag_[g]; }

  /// Flow ids belonging to group g, ascending.
  const std::vector<FlowId>& members(int g) const { return members_[g]; }
  /// Member count of group g (the coflow literature's "width").
  int width(int g) const { return static_cast<int>(members_[g].size()); }
  /// Earliest member release — the group's arrival for CCT purposes.
  Round release(int g) const { return release_[g]; }
  /// Sum of member demands.
  Capacity total_demand(int g) const { return total_demand_[g]; }

  /// Bottleneck lower bound on the rounds needed to serve group g alone on
  /// an empty switch: max over ports of ceil(group load at port / port
  /// capacity). Every schedule's CCT for the group is >= this, so it is the
  /// denominator of the slowdown-vs-isolation metric (Varys' Gamma).
  Round IsolationRounds(int g, const SwitchSpec& sw) const;

 private:
  std::vector<int> group_of_;             // Indexed by flow id.
  std::vector<CoflowId> tag_;             // Indexed by group.
  std::vector<std::vector<FlowId>> members_;
  std::vector<Round> release_;
  std::vector<Capacity> total_demand_;
  const Instance* instance_ = nullptr;
  int num_tagged_ = 0;
};

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_COFLOW_H_
