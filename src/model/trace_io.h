// CSV import/export of instances and schedules (for the trace_replay example
// and for interoperability with plotting scripts).
//
// Instance format:   header "src,dst,demand,release" then one row per flow.
//                    Instances carrying coflow tags write (and the reader
//                    accepts) a fifth "coflow" column; kNoCoflow rows write
//                    an empty field.
// Capacities format: first row "input_capacities", second row the values,
//                    then "output_capacities" and its values.
// Schedule format:   header "flow_id,round" then one row per flow.
//
// Coflow trace format (ReadCoflowTraceCsv): one row per coflow, following
// the Facebook/Varys trace column convention (coflow id, arrival time,
// mapper list, reducer list with per-reducer shuffle volume):
//
//   coflow,arrival,mappers,reducers
//   1,0,0;2;5,1:6;3:2
//
// "mappers" is a ';'-separated list of input ports; "reducers" a
// ';'-separated list of output_port:units pairs. Each (mapper, reducer)
// pair becomes one flow with demand ceil(units / num_mappers) (min 1),
// released at the coflow's arrival round and tagged with the coflow id.
// An optional capacity preamble (same four rows as the instance format) may
// precede the header; without one, a square unit-capacity switch spanning
// the largest referenced port is assumed — with capacity raised to the
// largest per-flow demand so the trace always validates.
#ifndef FLOWSCHED_MODEL_TRACE_IO_H_
#define FLOWSCHED_MODEL_TRACE_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "model/instance.h"
#include "model/schedule.h"
#include "util/csv.h"

namespace flowsched {

void WriteInstanceCsv(const Instance& instance, std::ostream& out);

// Line-at-a-time instance-CSV reader: the streaming primitive behind both
// batch loading (ReadInstanceCsv collects every row) and the serve-path
// trace source (src/serve/), which pulls one row per arrival and never
// materializes the file. The constructor consumes the capacity preamble
// and the flow header; NextFlow() then yields one flow per row. Row-level
// errors carry the exact 1-based line number (blank lines included —
// CsvRowReader counts physical lines).
class InstanceCsvReader {
 public:
  // Reads the preamble + header from `in`; on malformed input ok() turns
  // false and error() explains. `in` must outlive the reader.
  explicit InstanceCsvReader(std::istream& in);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const SwitchSpec& sw() const { return sw_; }
  bool with_coflow() const { return with_coflow_; }

  // Parses the next flow row into *flow (id left untouched — callers
  // number flows). Returns false at end of input or on a malformed row;
  // check ok() to distinguish. Per-flow model validation (port ranges,
  // demand bounds) is the caller's concern.
  bool NextFlow(Flow* flow);

  // 1-based line number of the row the last NextFlow() returned.
  long long line() const { return rows_.line(); }

 private:
  CsvRowReader rows_;
  SwitchSpec sw_;
  bool with_coflow_ = false;
  std::string error_;
  std::vector<std::string> row_;
};

// Parses an instance written by WriteInstanceCsv. Returns nullopt and fills
// `error` (if non-null) on malformed input; row-level errors carry the
// 1-based line number (exact when the file has no blank lines, which the
// parser skips).
std::optional<Instance> ReadInstanceCsv(const std::string& content,
                                        std::string* error = nullptr);

// Parses a coflow trace (format above) into an instance with tagged flows.
// Returns nullopt and fills `error` (if non-null) on malformed input.
std::optional<Instance> ReadCoflowTraceCsv(const std::string& content,
                                           std::string* error = nullptr);

// True when `content` starts with a coflow-trace header (with or without
// the capacity preamble); instance loaders use this to route files.
bool LooksLikeCoflowTrace(const std::string& content);

void WriteScheduleCsv(const Schedule& schedule, std::ostream& out);

std::optional<Schedule> ReadScheduleCsv(const std::string& content,
                                        int num_flows,
                                        std::string* error = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_TRACE_IO_H_
