// CSV import/export of instances and schedules (for the trace_replay example
// and for interoperability with plotting scripts).
//
// Instance format:   header "src,dst,demand,release" then one row per flow.
// Capacities format: first row "input_capacities", second row the values,
//                    then "output_capacities" and its values.
// Schedule format:   header "flow_id,round" then one row per flow.
#ifndef FLOWSCHED_MODEL_TRACE_IO_H_
#define FLOWSCHED_MODEL_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "model/instance.h"
#include "model/schedule.h"

namespace flowsched {

void WriteInstanceCsv(const Instance& instance, std::ostream& out);

// Parses an instance written by WriteInstanceCsv. Returns nullopt and fills
// `error` (if non-null) on malformed input; row-level errors carry the
// 1-based line number (exact when the file has no blank lines, which the
// parser skips).
std::optional<Instance> ReadInstanceCsv(const std::string& content,
                                        std::string* error = nullptr);

void WriteScheduleCsv(const Schedule& schedule, std::ostream& out);

std::optional<Schedule> ReadScheduleCsv(const std::string& content,
                                        int num_flows,
                                        std::string* error = nullptr);

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_TRACE_IO_H_
