#include "model/instance.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace flowsched {

Instance::Instance(SwitchSpec sw, std::vector<Flow> flows)
    : switch_(std::move(sw)), flows_(std::move(flows)) {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].id = static_cast<FlowId>(i);
  }
}

FlowId Instance::AddFlow(PortId src, PortId dst, Capacity demand,
                         Round release, CoflowId coflow) {
  const auto id = static_cast<FlowId>(flows_.size());
  flows_.push_back(Flow{id, src, dst, demand, release, coflow});
  return id;
}

std::optional<std::string> Instance::ValidationError() const {
  for (const Flow& e : flows_) {
    std::ostringstream os;
    if (e.src < 0 || e.src >= switch_.num_inputs()) {
      os << "flow " << e.id << ": input port " << e.src << " out of range";
      return os.str();
    }
    if (e.dst < 0 || e.dst >= switch_.num_outputs()) {
      os << "flow " << e.id << ": output port " << e.dst << " out of range";
      return os.str();
    }
    if (e.demand < 1) {
      os << "flow " << e.id << ": demand " << e.demand << " < 1";
      return os.str();
    }
    if (e.demand > switch_.Kappa(e)) {
      // The model (paper §2) requires d_e <= kappa_e = min(c_p, c_q).
      os << "flow " << e.id << ": demand " << e.demand << " exceeds kappa "
         << switch_.Kappa(e);
      return os.str();
    }
    if (e.release < 0) {
      os << "flow " << e.id << ": negative release " << e.release;
      return os.str();
    }
    if (e.coflow < kNoCoflow) {
      os << "flow " << e.id << ": invalid coflow tag " << e.coflow;
      return os.str();
    }
  }
  return std::nullopt;
}

bool Instance::HasCoflows() const {
  for (const Flow& e : flows_) {
    if (e.coflow != kNoCoflow) return true;
  }
  return false;
}

Capacity Instance::MaxDemand() const {
  Capacity d = 0;
  for (const Flow& e : flows_) d = std::max(d, e.demand);
  return d;
}

Round Instance::MaxRelease() const {
  Round r = 0;
  for (const Flow& e : flows_) r = std::max(r, e.release);
  return r;
}

Capacity Instance::TotalDemand() const {
  Capacity total = 0;
  for (const Flow& e : flows_) total += e.demand;
  return total;
}

Round Instance::SafeHorizon() const {
  return MaxRelease() + static_cast<Round>(flows_.size()) + 1;
}

std::vector<std::vector<FlowId>> Instance::FlowsByInputPort() const {
  std::vector<std::vector<FlowId>> by_port(switch_.num_inputs());
  for (const Flow& e : flows_) by_port[e.src].push_back(e.id);
  return by_port;
}

std::vector<std::vector<FlowId>> Instance::FlowsByOutputPort() const {
  std::vector<std::vector<FlowId>> by_port(switch_.num_outputs());
  for (const Flow& e : flows_) by_port[e.dst].push_back(e.id);
  return by_port;
}

}  // namespace flowsched
