// Schedule: an assignment of each flow to one round, plus validation.
//
// The paper's sigma_{e,t} in {0,1} schedules a flow entirely within a round;
// we store the chosen round per flow. Validation checks release times and
// per-(port, round) capacity, optionally under *resource augmentation*
// (Theorems 1 and 3 schedule against enlarged capacities).
#ifndef FLOWSCHED_MODEL_SCHEDULE_H_
#define FLOWSCHED_MODEL_SCHEDULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/instance.h"

namespace flowsched {

// Capacity allowance for validation: a port with base capacity c may carry
// floor(c * factor) + additive demand per round.
struct CapacityAllowance {
  double factor = 1.0;
  Capacity additive = 0;

  Capacity Allowed(Capacity base) const;

  static CapacityAllowance Exact() { return {1.0, 0}; }
  static CapacityAllowance Factor(double f) { return {f, 0}; }
  static CapacityAllowance Additive(Capacity a) { return {1.0, a}; }
};

// A switch whose port capacities are enlarged per `allowance` — resource
// augmentation as a first-class object (used to run *online* policies with
// extra bandwidth, mirroring the offline theorems' augmented analyses).
SwitchSpec AugmentSwitch(const SwitchSpec& sw,
                         const CapacityAllowance& allowance);

// Per-(port, round) load profile of a schedule.
struct PortLoads {
  // loads[p][t] = total demand crossing the port in round t; t in [0, horizon).
  std::vector<std::vector<Capacity>> input;
  std::vector<std::vector<Capacity>> output;
  Round horizon = 0;

  // Largest load - allowed excess over base capacities (0 when feasible).
  Capacity MaxOverload(const SwitchSpec& sw) const;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int num_flows) : assigned_(num_flows, kUnassigned) {}

  int num_flows() const { return static_cast<int>(assigned_.size()); }
  Round round_of(FlowId e) const { return assigned_[e]; }
  bool IsAssigned(FlowId e) const { return assigned_[e] != kUnassigned; }

  void Assign(FlowId e, Round t);
  void Unassign(FlowId e);

  // Max assigned round + 1 (0 when nothing is assigned).
  Round Makespan() const;

  bool AllAssigned() const;

  // Computes per-port per-round loads (for assigned flows only).
  PortLoads ComputeLoads(const Instance& instance) const;

  // Returns an error message when the schedule is invalid for `instance`
  // under `allowance`: some flow unassigned, scheduled before release, or a
  // port overloaded. Returns nullopt when valid.
  std::optional<std::string> ValidationError(
      const Instance& instance,
      const CapacityAllowance& allowance = CapacityAllowance::Exact()) const;

  const std::vector<Round>& assignments() const { return assigned_; }

 private:
  std::vector<Round> assigned_;
};

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_SCHEDULE_H_
