// Response-time metrics of a schedule (the paper's objectives).
#ifndef FLOWSCHED_MODEL_METRICS_H_
#define FLOWSCHED_MODEL_METRICS_H_

#include <span>
#include <vector>

#include "model/instance.h"
#include "model/schedule.h"

namespace flowsched {

struct ScheduleMetrics {
  std::vector<double> response;  // rho_e = t_e + 1 - r_e per flow.
  double total_response = 0.0;   // FS-ART objective (sum rho_e).
  double avg_response = 0.0;
  double max_response = 0.0;     // FS-MRT objective.
  Round makespan = 0;            // Last busy round + 1.
  double stddev_response = 0.0;  // Sample stddev (n-1) of the responses.
  double p50_response = 0.0;     // Nearest-rank percentiles (util/stats.h).
  double p95_response = 0.0;
  double p99_response = 0.0;
};

// Requires every flow to be assigned.
ScheduleMetrics ComputeMetrics(const Instance& instance,
                               const Schedule& schedule);

// Weighted response metrics (the weighted flow-time objective from the
// scheduling literature the paper builds on; weights >= 0, one per flow).
struct WeightedMetrics {
  double total_weighted_response = 0.0;  // sum_e w_e * rho_e.
  double max_weighted_response = 0.0;    // max_e w_e * rho_e.
  double total_weight = 0.0;
};

WeightedMetrics ComputeWeightedMetrics(const Instance& instance,
                                       const Schedule& schedule,
                                       std::span<const double> weights);

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_METRICS_H_
