// Core value types of the switch scheduling model (paper §2).
//
// A flow e = (p, q) requests `demand` units between input port p and output
// port q, and becomes available at round `release`. Rounds are discrete; a
// schedule assigns each flow to a single round (sigma_{e,t} = 1), and the
// response time of a flow scheduled in round t is t + 1 - release
// (C_e = 1 + min{t : sigma_{e,t} = 1} in the paper's notation).
#ifndef FLOWSCHED_MODEL_FLOW_H_
#define FLOWSCHED_MODEL_FLOW_H_

#include <cstdint>

namespace flowsched {

using FlowId = int;
using PortId = int;
using Round = int;
using Capacity = std::int64_t;
using CoflowId = int;

inline constexpr Round kUnassigned = -1;
// Flows not belonging to any coflow carry this tag (model/coflow.h treats
// them as singleton groups when computing coflow metrics).
inline constexpr CoflowId kNoCoflow = -1;

struct Flow {
  FlowId id = 0;
  PortId src = 0;       // Input-side port index, in [0, num_inputs).
  PortId dst = 0;       // Output-side port index, in [0, num_outputs).
  Capacity demand = 1;  // d_e >= 1; must satisfy d_e <= min(c_src, c_dst).
  Round release = 0;    // r_e >= 0; earliest round the flow may be scheduled.
  // Optional coflow tag: flows sharing a tag form one coflow, which
  // completes only when its last member flow does (Chowdhury & Stoica's
  // coflow abstraction; Liang & Modiano study it on this switch model).
  CoflowId coflow = kNoCoflow;

  friend bool operator==(const Flow&, const Flow&) = default;
};

// Response time of a flow released at `release` and scheduled in `round`.
inline int ResponseTime(Round round, Round release) {
  return round + 1 - release;
}

}  // namespace flowsched

#endif  // FLOWSCHED_MODEL_FLOW_H_
