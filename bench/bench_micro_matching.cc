// Microbenchmarks for the graph substrate: Hopcroft-Karp, max-weight
// matching (the per-round cost of the paper's heuristics at 150x150 scale),
// and König edge coloring (the Birkhoff-von Neumann step of Theorem 1).
#include <benchmark/benchmark.h>

#include "graph/bipartite_graph.h"
#include "graph/edge_coloring.h"
#include "graph/greedy_matching.h"
#include "graph/hopcroft_karp.h"
#include "graph/max_weight_matching.h"
#include "util/rng.h"

namespace flowsched {
namespace {

BipartiteGraph RandomGraph(int ports, int edges, Rng& rng) {
  BipartiteGraph g(ports, ports);
  for (int i = 0; i < edges; ++i) {
    g.AddEdge(rng.UniformInt(0, ports - 1), rng.UniformInt(0, ports - 1));
  }
  return g;
}

void BM_HopcroftKarp(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Rng rng(1);
  const BipartiteGraph g = RandomGraph(ports, edges, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxCardinalityMatching(g));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_HopcroftKarp)
    ->Args({150, 150})
    ->Args({150, 600})
    ->Args({150, 2400})
    ->Args({600, 2400});

void BM_MaxWeightMatching(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Rng rng(2);
  const BipartiteGraph g = RandomGraph(ports, edges, rng);
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = static_cast<double>(rng.UniformInt(1, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightMatching(g, w));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_MaxWeightMatching)
    ->Args({150, 150})
    ->Args({150, 600})
    ->Args({150, 2400});

void BM_GreedyByWeight(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Rng rng(3);
  const BipartiteGraph g = RandomGraph(ports, edges, rng);
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = static_cast<double>(rng.UniformInt(1, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMatchingByWeight(g, w));
  }
}
BENCHMARK(BM_GreedyByWeight)->Args({150, 600})->Args({150, 2400});

void BM_EdgeColoring(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Rng rng(4);
  const BipartiteGraph g = RandomGraph(ports, edges, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColorBipartiteEdges(g));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_EdgeColoring)
    ->Args({50, 500})
    ->Args({150, 1500})
    ->Args({150, 6000});

}  // namespace
}  // namespace flowsched

BENCHMARK_MAIN();
