// Shared helpers for the benchmark harness: scaled sweep configurations,
// multi-trial policy evaluation (OpenMP across trials), and CSV emission.
//
// The paper's experiments (§5.2) run a 150x150 unit-capacity switch with
// M ∈ {50,100,150,300,600} Poisson arrivals per round, i.e. per-port load
// ratios {1/3, 2/3, 1, 2, 4}. The LP-compared sweeps here reproduce those
// *load ratios* on a scaled switch (see DESIGN.md §5.2), while the
// heuristic-only sweeps also run the paper's full scale.
#ifndef FLOWSCHED_BENCH_BENCH_COMMON_H_
#define FLOWSCHED_BENCH_BENCH_COMMON_H_

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/online/simulator.h"
#include "model/metrics.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/poisson.h"

#if defined(FLOWSCHED_HAVE_OPENMP)
#include <omp.h>
#endif

namespace flowsched::bench {

// The paper's per-port load ratios M/m.
inline const std::vector<double> kPaperLoadRatios = {1.0 / 3, 2.0 / 3, 1.0,
                                                     2.0, 4.0};

// Labels the panel the same way the paper labels Figures 6/7 (by M at 150
// ports).
inline std::string PanelLabel(double load_ratio) {
  return "M/m=" + TextTable::Format(load_ratio) +
         " (paper M=" + std::to_string(static_cast<int>(load_ratio * 150)) +
         ")";
}

struct SweepScale {
  int ports = 8;                 // Scaled switch size for LP-compared runs.
  std::vector<int> lp_rounds;    // T values with LP bounds.
  std::vector<int> heur_rounds;  // Extra T values, heuristics only.
  int trials = 3;
  int full_ports = 150;               // Paper-scale, heuristics only.
  std::vector<int> full_rounds;       // T values at full scale.
  std::vector<double> full_ratios;    // Load ratios at full scale.
  int full_trials = 2;
};

inline SweepScale ScaleFor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kQuick:
      return SweepScale{6, {6, 8}, {16}, 2, 150, {10}, {1.0}, 1};
    case BenchScale::kFull:
      return SweepScale{12,
                        {10, 12, 14, 16, 18, 20},
                        {40, 60, 80, 100},
                        5,
                        150,
                        {10, 14, 20, 40},
                        kPaperLoadRatios,
                        3};
    case BenchScale::kDefault:
    default:
      return SweepScale{8,     {8, 10, 12}, {20, 40}, 3,
                        150,   {10, 20},    {1.0, 4.0}, 2};
  }
}

// Mean metric per policy over `trials` seeded runs (parallelized).
struct PolicySweepResult {
  std::vector<double> avg_response;  // Indexed like `policies`.
  std::vector<double> max_response;
};

inline PolicySweepResult RunPolicies(const std::vector<std::string>& policies,
                                     int ports, double load_ratio, int rounds,
                                     int trials, std::uint64_t base_seed) {
  PolicySweepResult out;
  out.avg_response.assign(policies.size(), 0.0);
  out.max_response.assign(policies.size(), 0.0);
  const int jobs = static_cast<int>(policies.size()) * trials;
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (int job = 0; job < jobs; ++job) {
    const int pi = job / trials;
    const int trial = job % trials;
    PoissonConfig cfg;
    cfg.num_inputs = cfg.num_outputs = ports;
    cfg.mean_arrivals_per_round = load_ratio * ports;
    cfg.num_rounds = rounds;
    cfg.seed = base_seed + 1000003ULL * trial;
    const Instance instance = GeneratePoisson(cfg);
    auto policy = MakePolicy(policies[pi], cfg.seed);
    const SimulationResult r = Simulate(instance, *policy);
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      out.avg_response[pi] += r.metrics.avg_response / trials;
      out.max_response[pi] += r.metrics.max_response / trials;
    }
  }
  return out;
}

// Opens bench_out/<name>.csv for results; directory created lazily.
inline std::ofstream OpenCsv(const std::string& name) {
  (void)std::system("mkdir -p bench_out");
  std::ofstream out("bench_out/" + name + ".csv");
  return out;
}

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::cout << "\n=== " << title << " ===\n" << what << "\n";
}

}  // namespace flowsched::bench

#endif  // FLOWSCHED_BENCH_BENCH_COMMON_H_
