// Group-rounding audit (DESIGN.md E9): distribution of capacity violations
// across workload families, against the paper's 2*dmax - 1 bound. Our
// substituted rounder only proves < 4*dmax in the worst case, so this bench
// is the evidence that the paper's constant holds in practice.
#include <iostream>

#include "bench_common.h"
#include "core/group_rounding.h"
#include "workload/patterns.h"

namespace flowsched::bench {
namespace {

struct Family {
  std::string name;
  Instance instance;
};

std::vector<Family> Families(BenchScale bs) {
  const int trials = bs == BenchScale::kQuick ? 2 : 5;
  std::vector<Family> out;
  for (int trial = 0; trial < trials; ++trial) {
    for (const Capacity dmax : {Capacity{1}, Capacity{2}, Capacity{4}}) {
      PoissonConfig cfg;
      cfg.num_inputs = cfg.num_outputs = 6;
      cfg.port_capacity = std::max<Capacity>(2 * dmax, 2);
      cfg.max_demand = dmax;
      cfg.mean_arrivals_per_round = 12.0;
      cfg.num_rounds = 5;
      cfg.seed = 7000 + 13 * trial + static_cast<int>(dmax);
      out.push_back({"poisson_d" + std::to_string(dmax), GeneratePoisson(cfg)});
    }
    {
      Instance incast(SwitchSpec::Uniform(8, 8), {});
      AddIncast(incast, trial % 8, 8, 0);
      AddIncast(incast, (trial + 3) % 8, 6, 1);
      out.push_back({"incast", std::move(incast)});
    }
    {
      out.push_back({"shuffle", ShuffleWaves(6, 5, 3, 2)});
    }
  }
  return out;
}

void Run() {
  auto file = OpenCsv("rounding_audit");
  CsvWriter csv(file);
  csv.Row("family", "n", "dmax", "rho", "violation", "bound", "relaxed_rows",
          "hard_drops", "lp_solves");
  PrintHeader("Group rounding audit",
              "violations vs the paper's 2*dmax-1 across workload families");
  TextTable table({"family", "n", "dmax", "rho", "violation", "bound",
                   "relaxed", "hard_drops", "lp_solves"});
  Capacity worst_gap = 0;  // violation - bound; must stay <= 0.
  for (Family& family : Families(GetBenchScale())) {
    const Instance& instance = family.instance;
    if (instance.num_flows() == 0) continue;
    Round rho = 4;
    TimeConstrainedSolution sol;
    for (;;) {
      sol = SolveTimeConstrained(instance,
                                 WindowsForMaxResponse(instance, rho));
      if (sol.feasible) break;
      rho *= 2;
    }
    GroupRoundingReport report;
    const ActiveWindows windows = WindowsForMaxResponse(instance, rho);
    const Schedule schedule = GroupRound(instance, windows, sol, {}, &report);
    (void)schedule;
    worst_gap = std::max(worst_gap, report.max_violation - report.bound);
    table.Row(family.name, instance.num_flows(),
              static_cast<long long>(instance.MaxDemand()), rho,
              static_cast<long long>(report.max_violation),
              static_cast<long long>(report.bound), report.relaxed_rows,
              report.hard_drops, report.lp_solves);
    csv.Row(family.name, instance.num_flows(),
            static_cast<long long>(instance.MaxDemand()), rho,
            static_cast<long long>(report.max_violation),
            static_cast<long long>(report.bound), report.relaxed_rows,
            report.hard_drops, report.lp_solves);
  }
  table.Print(std::cout);
  std::cout << "\nWorst (violation - bound) over all runs: " << worst_gap
            << (worst_gap <= 0 ? "  [within the paper's 2*dmax-1]" : "  [EXCEEDED]")
            << "\nCSV: bench_out/rounding_audit.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
