// Theorem 3 validation: optimal max response with additive augmentation
// 2*dmax - 1, driven through the Solver facade ("mrt.theorem3").
//
// Sweeps the maximum demand dmax and the load, reporting: the LP's minimum
// feasible rho (the report's lower_bound), the rounded schedule's max
// response (always == rho_lp), the measured capacity violation against the
// theorem bound 2*dmax - 1, and the rounder's internals — all read from the
// report's diagnostics map.
#include <iostream>

#include "api/registry.h"
#include "bench_common.h"

namespace flowsched::bench {
namespace {

void Run() {
  const BenchScale bs = GetBenchScale();
  const std::vector<Capacity> dmaxes = {1, 2, 4, 8};
  const std::vector<double> loads =
      bs == BenchScale::kQuick ? std::vector<double>{1.5}
                               : std::vector<double>{0.75, 1.5, 3.0};
  const int ports = 6;
  const int rounds = bs == BenchScale::kFull ? 10 : 6;
  const int trials = bs == BenchScale::kFull ? 5 : 3;
  const SolverRegistry& registry = SolverRegistry::Global();

  auto file = OpenCsv("theorem3_mrt");
  CsvWriter csv(file);
  csv.Row("dmax", "load", "n", "rho_lp", "achieved_max", "violation", "bound",
          "hard_drops", "lp_solves", "probes", "wall_ms");

  PrintHeader("Theorem 3: optimal rho with +(2*dmax-1) capacity",
              "violation column must stay <= bound (no hard drops expected)");
  TextTable table({"dmax", "load", "n", "rho_LP", "achieved", "violation",
                   "bound", "hard_drops", "lp_solves", "probes", "wall_ms"});
  for (const Capacity dmax : dmaxes) {
    for (const double load : loads) {
      RunningStats rho_stats;
      RunningStats achieved_stats;
      RunningStats violation_stats;
      long hard_drops = 0;
      long lp_solves = 0;
      long probes = 0;
      int n_total = 0;
      double wall_ms = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        PoissonConfig cfg;
        cfg.num_inputs = cfg.num_outputs = ports;
        cfg.port_capacity = std::max<Capacity>(2 * dmax, 2);
        cfg.max_demand = dmax;
        // Load is measured in demand units per port per round.
        cfg.mean_arrivals_per_round =
            load * ports * static_cast<double>(cfg.port_capacity) /
            (0.5 * (1.0 + static_cast<double>(dmax)));
        cfg.num_rounds = rounds;
        cfg.seed = 3000 + 71 * trial;
        const Instance instance = GeneratePoisson(cfg);
        if (instance.num_flows() == 0) continue;
        const SolveReport r = registry.Solve("mrt.theorem3", instance);
        if (!r.ok) {
          std::cerr << "mrt.theorem3 failed: " << r.error << "\n";
          continue;
        }
        rho_stats.Add(*r.lower_bound);
        achieved_stats.Add(r.metrics.max_response);
        violation_stats.Add(r.diagnostics.at("max_violation"));
        hard_drops += static_cast<long>(r.diagnostics.at("hard_drops"));
        lp_solves += static_cast<long>(r.diagnostics.at("lp_solves"));
        probes +=
            static_cast<long>(r.diagnostics.at("binary_search_probes"));
        n_total += instance.num_flows();
        wall_ms += r.wall_seconds * 1e3;
      }
      const Capacity bound = 2 * dmax - 1;
      table.Row(static_cast<long long>(dmax), load, n_total / trials,
                rho_stats.mean(), achieved_stats.mean(),
                violation_stats.max(), static_cast<long long>(bound),
                hard_drops, lp_solves / trials, probes / trials,
                wall_ms / trials);
      csv.Row(static_cast<long long>(dmax), load, n_total / trials,
              rho_stats.mean(), achieved_stats.mean(), violation_stats.max(),
              static_cast<long long>(bound), hard_drops, lp_solves / trials,
              probes / trials, wall_ms / trials);
    }
  }
  table.Print(std::cout);
  std::cout << "\nCSV: bench_out/theorem3_mrt.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
