// The paper's §6 open problem, probed experimentally.
//
// Question (verbatim intent): requests arrive as bipartite graphs
// G_1..G_T with, for every interval I and port v, total degree over I at
// most |I| + 1. With +1 capacity augmentation everything fits with response
// 1; WITHOUT augmentation, is a constant max response always achievable?
// An affirmative answer "will likely lead to a compelling approximation
// algorithm for response time metrics".
//
// This bench generates such sequences (random per-round matchings plus one
// scattered extra matching) and brackets the un-augmented optimum between
// the LP lower bound and heuristic/exact upper bounds, sweeping the horizon
// T. A constant bracket as T grows is evidence *for* the conjecture.
#include <iostream>

#include "bench_common.h"
#include "core/exact.h"
#include "core/mrt_lp.h"
#include "workload/patterns.h"

namespace flowsched::bench {
namespace {

Round LpMinRho(const Instance& instance, Round hi_start) {
  Round lo = 1;
  Round hi = std::max<Round>(1, hi_start);
  for (;;) {
    if (SolveTimeConstrained(instance, WindowsForMaxResponse(instance, hi))
            .feasible) {
      break;
    }
    lo = hi + 1;
    hi *= 2;
  }
  Round best = hi;
  while (lo < best) {
    const Round mid = lo + (best - lo) / 2;
    if (SolveTimeConstrained(instance, WindowsForMaxResponse(instance, mid))
            .feasible) {
      best = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

void Run() {
  const BenchScale bs = GetBenchScale();
  const int ports = 5;
  const std::vector<int> horizons = bs == BenchScale::kFull
                                        ? std::vector<int>{2, 4, 8, 16, 32, 64}
                                        : std::vector<int>{2, 4, 8, 16, 32};
  const int seeds = bs == BenchScale::kQuick ? 3 : 8;

  auto file = OpenCsv("open_problem");
  CsvWriter csv(file);
  csv.Row("T", "n", "lp_rho_max", "heuristic_rho_max", "exact_rho_max");

  PrintHeader("Open problem (paper §6): interval degree <= |I| + 1, no augmentation",
              "max-over-seeds of [LP lower bound, MinRTime upper bound] on "
              "the optimal max response; exact optimum where tractable");
  TextTable table({"T", "n", "LP_rho(max)", "MinRTime_rho(max)",
                   "exact_rho(max)"});
  for (const int T : horizons) {
    Round lp_worst = 0;
    Round heur_worst = 0;
    Round exact_worst = 0;
    int n = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(810000 + 131 * seed + T);
      const Instance instance =
          OpenProblemInstance(ports, T, /*extra_edges=*/ports, rng);
      FS_CHECK_LE(MaxIntervalDegreeExcess(instance), 1);
      n = instance.num_flows();
      auto policy = MakePolicy("minrtime");
      const SimulationResult sim = Simulate(instance, *policy);
      heur_worst = std::max<Round>(
          heur_worst, static_cast<Round>(sim.metrics.max_response));
      lp_worst = std::max(
          lp_worst,
          LpMinRho(instance, static_cast<Round>(sim.metrics.max_response)));
      if (instance.num_flows() <= 18) {
        const auto exact =
            ExactMinMaxResponse(instance, instance.SafeHorizon());
        exact_worst = std::max(exact_worst, *exact);
      }
    }
    table.Row(T, n, lp_worst, heur_worst,
              exact_worst > 0 ? std::to_string(exact_worst) : "-");
    csv.Row(T, n, lp_worst, heur_worst, exact_worst);
  }
  table.Print(std::cout);
  std::cout <<
      "\nReading: if the MinRTime column stays flat as T doubles, these\n"
      "instances empirically admit constant response without augmentation,\n"
      "supporting the paper's conjecture. The LP column is the certified\n"
      "lower bound; the exact column (small T) pins the true optimum.\n"
      "CSV: bench_out/open_problem.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
