// Figure 4 / Lemmas 5.1-5.2: realized competitive-ratio lower bounds for
// every online policy against the adaptive adversaries.
//
// (a) Average response: the ratio must grow (roughly linearly) with the
//     stream length M — no online algorithm is constant-competitive.
// (b) Max response: every policy is forced to 3 while the realized instance
//     admits 2 — the 3/2 bound of Lemma 5.2.
#include <iostream>

#include "bench_common.h"
#include "core/exact.h"
#include "workload/adversarial.h"

namespace flowsched::bench {
namespace {

void ArtAdversarySweep(CsvWriter& csv) {
  const BenchScale bs = GetBenchScale();
  const int T = 6;
  const std::vector<int> streams = bs == BenchScale::kFull
                                       ? std::vector<int>{24, 48, 96, 192, 384}
                                       : std::vector<int>{24, 48, 96};
  PrintHeader("Lemma 5.1 / Figure 4(a): average response adversary",
              "T=" + std::to_string(T) +
                  "; ratio = policy total response / offline bound; grows "
                  "with M (unbounded competitiveness)");
  TextTable table({"policy", "M", "policy_total", "offline_bound", "ratio"});
  for (const std::string& name : AllPolicyNames()) {
    for (const int M : streams) {
      ArtLowerBoundAdversary adversary(T, M);
      auto policy = MakePolicy(name);
      const SimulationResult r =
          Simulate(ArtLowerBoundAdversary::Switch(), adversary, *policy);
      const double ratio =
          r.metrics.total_response / adversary.OfflineTotalResponse();
      table.Row(name, M, r.metrics.total_response,
                adversary.OfflineTotalResponse(), ratio);
      csv.Row("art", name, M, r.metrics.total_response,
              adversary.OfflineTotalResponse(), ratio);
    }
  }
  table.Print(std::cout);
}

void MrtAdversarySweep(CsvWriter& csv) {
  PrintHeader("Lemma 5.2 / Figure 4(b): max response adversary",
              "every policy is forced to >= 3 while OPT = 2 (ratio 3/2)");
  TextTable table({"policy", "policy_max", "exact_opt", "ratio"});
  for (const std::string& name : AllPolicyNames()) {
    MrtLowerBoundAdversary adversary;
    auto policy = MakePolicy(name);
    const SimulationResult r =
        Simulate(MrtLowerBoundAdversary::Switch(), adversary, *policy);
    const auto opt = ExactMinMaxResponse(r.realized, 4);
    const double exact = opt.has_value() ? static_cast<double>(*opt) : 0.0;
    table.Row(name, r.metrics.max_response, exact,
              r.metrics.max_response / exact);
    csv.Row("mrt", name, 0, r.metrics.max_response, exact,
            r.metrics.max_response / exact);
  }
  table.Print(std::cout);
}

void Run() {
  auto file = OpenCsv("fig4_lower_bounds");
  CsvWriter csv(file);
  csv.Row("series", "policy", "M", "policy_value", "reference", "ratio");
  ArtAdversarySweep(csv);
  MrtAdversarySweep(csv);
  std::cout << "\nCSV: bench_out/fig4_lower_bounds.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
