// Figure 7 reproduction: maximum response time of the online heuristics
// against the LP (19)-(21) lower bound (binary search for the smallest
// feasible rho, seeded by the best heuristic, exactly as §5.2.2 describes).
//
// Expected shape (paper §5.2.3): MinRTime consistently best (close to the
// LP bound), MaxWeight worst, all heuristics within ~2.5x of the LP, and
// the spread between heuristics widening with M.
#include <iostream>

#include "bench_common.h"
#include "core/mrt_lp.h"
#include "util/stopwatch.h"

namespace flowsched::bench {
namespace {

const std::vector<std::string> kHeuristics = {"maxcard", "minrtime",
                                              "maxweight"};

// Smallest rho with a feasible fractional schedule, searched downward from
// the best heuristic value (the paper's binary-search scheme).
Round LpMinRho(const Instance& instance, Round heuristic_best) {
  Round lo = 1;
  Round hi = std::max<Round>(heuristic_best, 1);
  for (;;) {
    const auto sol = SolveTimeConstrained(
        instance, WindowsForMaxResponse(instance, hi));
    if (sol.feasible) break;
    lo = hi + 1;
    hi *= 2;
  }
  Round best = hi;
  while (lo < best) {
    const Round mid = lo + (best - lo) / 2;
    const auto sol = SolveTimeConstrained(
        instance, WindowsForMaxResponse(instance, mid));
    if (sol.feasible) {
      best = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

void LpComparedSweep(const SweepScale& scale, CsvWriter& csv) {
  for (const double ratio : kPaperLoadRatios) {
    PrintHeader("Figure 7 panel " + PanelLabel(ratio),
                "scaled switch " + std::to_string(scale.ports) + "x" +
                    std::to_string(scale.ports) +
                    ", max response vs T; LP = min feasible rho");
    TextTable table({"T", "LP", "MaxCard", "MinRTime", "MaxWeight",
                     "MaxCard/LP", "MinRTime/LP", "MaxWeight/LP"});
    for (const int rounds : scale.lp_rounds) {
      double lp_avg = 0.0;
      std::vector<double> heur(kHeuristics.size(), 0.0);
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
      for (int trial = 0; trial < scale.trials; ++trial) {
        PoissonConfig cfg;
        cfg.num_inputs = cfg.num_outputs = scale.ports;
        cfg.mean_arrivals_per_round = ratio * scale.ports;
        cfg.num_rounds = rounds;
        cfg.seed = 4242 + 1000003ULL * trial;
        const Instance instance = GeneratePoisson(cfg);
        // Heuristics on this trial's instance.
        std::vector<double> trial_heur(kHeuristics.size(), 0.0);
        Round best_heur = instance.SafeHorizon();
        for (std::size_t i = 0; i < kHeuristics.size(); ++i) {
          auto policy = MakePolicy(kHeuristics[i], cfg.seed);
          const SimulationResult r = Simulate(instance, *policy);
          trial_heur[i] = r.metrics.max_response;
          best_heur = std::min<Round>(
              best_heur, static_cast<Round>(r.metrics.max_response));
        }
        const Round rho =
            instance.num_flows() == 0 ? 1 : LpMinRho(instance, best_heur);
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp critical
#endif
        {
          lp_avg += static_cast<double>(rho) / scale.trials;
          for (std::size_t i = 0; i < kHeuristics.size(); ++i) {
            heur[i] += trial_heur[i] / scale.trials;
          }
        }
      }
      table.Row(rounds, lp_avg, heur[0], heur[1], heur[2], heur[0] / lp_avg,
                heur[1] / lp_avg, heur[2] / lp_avg);
      csv.Row("lp_compared", ratio, rounds, lp_avg, heur[0], heur[1], heur[2]);
    }
    table.Print(std::cout);
  }
}

void HeuristicSweeps(const SweepScale& scale, CsvWriter& csv) {
  PrintHeader("Figure 7 extension (heuristics only)",
              "longer T at scaled size, plus the paper's 150x150 scale");
  TextTable table({"switch", "M/m", "T", "MaxCard", "MinRTime", "MaxWeight"});
  for (const double ratio : kPaperLoadRatios) {
    for (const int rounds : scale.heur_rounds) {
      const PolicySweepResult sim = RunPolicies(
          kHeuristics, scale.ports, ratio, rounds, scale.trials, 555);
      table.Row(std::to_string(scale.ports) + "x" + std::to_string(scale.ports),
                ratio, rounds, sim.max_response[0], sim.max_response[1],
                sim.max_response[2]);
      csv.Row("heur_scaled", ratio, rounds, 0.0, sim.max_response[0],
              sim.max_response[1], sim.max_response[2]);
    }
  }
  for (const double ratio : scale.full_ratios) {
    for (const int rounds : scale.full_rounds) {
      const PolicySweepResult sim =
          RunPolicies(kHeuristics, scale.full_ports, ratio, rounds,
                      scale.full_trials, 666);
      table.Row("150x150", ratio, rounds, sim.max_response[0],
                sim.max_response[1], sim.max_response[2]);
      csv.Row("heur_full", ratio, rounds, 0.0, sim.max_response[0],
              sim.max_response[1], sim.max_response[2]);
    }
  }
  table.Print(std::cout);
}

void Run() {
  const SweepScale scale = ScaleFor(GetBenchScale());
  auto file = OpenCsv("fig7_mrt");
  CsvWriter csv(file);
  csv.Row("series", "load_ratio", "T", "lp_rho", "maxcard", "minrtime",
          "maxweight");
  Stopwatch watch;
  LpComparedSweep(scale, csv);
  HeuristicSweeps(scale, csv);
  std::cout << "\n[fig7] total " << watch.ElapsedSeconds()
            << "s; CSV: bench_out/fig7_mrt.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
