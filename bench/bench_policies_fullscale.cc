// Full-scale (150x150) policy throughput: rounds/second and end-to-end
// simulation time per heuristic at the paper's switch size and loads. This
// is the practical-deployment companion to Figures 6/7: a heuristic is only
// usable online if a round computes faster than the port transmission time.
#include <iostream>

#include "bench_common.h"
#include "util/stopwatch.h"

namespace flowsched::bench {
namespace {

void Run() {
  const BenchScale bs = GetBenchScale();
  const std::vector<double> ratios =
      bs == BenchScale::kQuick ? std::vector<double>{1.0}
      : bs == BenchScale::kFull ? kPaperLoadRatios
                                : std::vector<double>{1.0 / 3, 1.0, 4.0};
  const int rounds = bs == BenchScale::kFull ? 40 : 20;
  auto file = OpenCsv("policies_fullscale");
  CsvWriter csv(file);
  csv.Row("policy", "M", "T", "n", "sim_seconds", "rounds_per_sec",
          "avg_response", "max_response");
  PrintHeader("Policy throughput at paper scale (150x150)",
              "wall time to simulate one workload; rounds/sec");
  TextTable table({"policy", "M", "T", "n", "seconds", "rounds/s", "avg_rho",
                   "max_rho"});
  for (const std::string& name : {"maxcard", "minrtime", "maxweight", "fifo"}) {
    for (const double ratio : ratios) {
      PoissonConfig cfg;
      cfg.num_inputs = cfg.num_outputs = 150;
      cfg.mean_arrivals_per_round = ratio * 150;
      cfg.num_rounds = rounds;
      cfg.seed = 2026;
      const Instance instance = GeneratePoisson(cfg);
      auto policy = MakePolicy(name);
      Stopwatch watch;
      const SimulationResult r = Simulate(instance, *policy);
      const double secs = watch.ElapsedSeconds();
      const double rps = static_cast<double>(r.rounds) / std::max(secs, 1e-9);
      table.Row(name, static_cast<int>(ratio * 150), rounds,
                instance.num_flows(), secs, rps, r.metrics.avg_response,
                r.metrics.max_response);
      csv.Row(name, static_cast<int>(ratio * 150), rounds,
              instance.num_flows(), secs, rps, r.metrics.avg_response,
              r.metrics.max_response);
    }
  }
  table.Print(std::cout);
  std::cout << "\nCSV: bench_out/policies_fullscale.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
