// Lemma 5.3 validation: the online AMRT batching algorithm is
// 2-competitive for maximum response time under 2*(c_p + 2*dmax - 1)
// capacity. Reports the realized max response against the offline LP bound
// rho_lp (<= OPT), the competitive ratio, and the batching internals.
#include <iostream>

#include "bench_common.h"
#include "core/mrt_scheduler.h"
#include "core/online/amrt.h"

namespace flowsched::bench {
namespace {

void Run() {
  const BenchScale bs = GetBenchScale();
  const std::vector<double> loads = {0.5, 1.0, 2.0, 4.0};
  const int ports = 6;
  const int rounds = bs == BenchScale::kFull ? 12 : 8;
  const int trials = bs == BenchScale::kQuick ? 2 : 4;

  auto file = OpenCsv("lemma53_amrt");
  CsvWriter csv(file);
  csv.Row("load", "n", "amrt_max", "offline_rho_lp", "ratio", "final_rho",
          "batches", "rho_increments");

  PrintHeader("Lemma 5.3: online AMRT vs offline rho",
              "ratio = AMRT max response / offline LP rho; lemma predicts <= 2"
              " (vs OPT; rho_lp <= OPT so the column may slightly exceed 2)");
  TextTable table({"load", "n", "AMRT_max", "rho_LP", "ratio", "final_rho",
                   "batches", "rho_increments"});
  for (const double load : loads) {
    RunningStats amrt_stats;
    RunningStats rho_stats;
    RunningStats ratio_stats;
    RunningStats final_rho;
    long batches = 0;
    long increments = 0;
    int n_total = 0;
    for (int trial = 0; trial < trials; ++trial) {
      PoissonConfig cfg;
      cfg.num_inputs = cfg.num_outputs = ports;
      cfg.mean_arrivals_per_round = load * ports;
      cfg.num_rounds = rounds;
      cfg.seed = 5000 + 31 * trial;
      const Instance instance = GeneratePoisson(cfg);
      if (instance.num_flows() == 0) continue;
      const AmrtResult amrt = RunAmrt(instance);
      const MrtSchedulerResult offline = MinimizeMaxResponse(instance);
      amrt_stats.Add(amrt.metrics.max_response);
      rho_stats.Add(static_cast<double>(offline.rho_lp));
      ratio_stats.Add(amrt.metrics.max_response /
                      static_cast<double>(offline.rho_lp));
      final_rho.Add(static_cast<double>(amrt.final_rho));
      batches += amrt.batches;
      increments += amrt.rho_increments;
      n_total += instance.num_flows();
    }
    table.Row(load, n_total / trials, amrt_stats.mean(), rho_stats.mean(),
              ratio_stats.mean(), final_rho.mean(), batches / trials,
              increments / trials);
    csv.Row(load, n_total / trials, amrt_stats.mean(), rho_stats.mean(),
            ratio_stats.mean(), final_rho.mean(), batches / trials,
            increments / trials);
  }
  table.Print(std::cout);
  std::cout << "\nCSV: bench_out/lemma53_amrt.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
