// Microbenchmarks for the LP substrate: the scheduling LPs at the sizes the
// figure benches solve (paper §5.2.2 reports >3h Gurobi runs at 150 ports;
// these numbers locate our simplex on that curve at the scaled sizes).
#include <benchmark/benchmark.h>

#include "core/art_lp.h"
#include "core/mrt_lp.h"
#include "workload/poisson.h"

namespace flowsched {
namespace {

Instance MakeInstance(int ports, double load, int rounds, std::uint64_t seed) {
  PoissonConfig cfg;
  cfg.num_inputs = cfg.num_outputs = ports;
  cfg.mean_arrivals_per_round = load * ports;
  cfg.num_rounds = rounds;
  cfg.seed = seed;
  return GeneratePoisson(cfg);
}

void BM_ArtLp(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const double load = static_cast<double>(state.range(1)) / 4.0;
  const int rounds = static_cast<int>(state.range(2));
  const Instance instance = MakeInstance(ports, load, rounds, 11);
  long iters = 0;
  for (auto _ : state) {
    const ArtLpResult r = SolveArtLp(instance);
    benchmark::DoNotOptimize(r.total_fractional_response);
    iters = r.simplex_iterations;
  }
  state.counters["flows"] = instance.num_flows();
  state.counters["simplex_iters"] = static_cast<double>(iters);
}
// range(1) is load * 4 (integer args only).
BENCHMARK(BM_ArtLp)
    ->Args({4, 4, 8})
    ->Args({6, 4, 8})
    ->Args({8, 4, 8})
    ->Args({8, 8, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MrtFeasibility(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  const Round rho = static_cast<Round>(state.range(2));
  const Instance instance = MakeInstance(ports, 1.0, rounds, 12);
  const ActiveWindows windows = WindowsForMaxResponse(instance, rho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTimeConstrained(instance, windows));
  }
  state.counters["flows"] = instance.num_flows();
}
BENCHMARK(BM_MrtFeasibility)
    ->Args({6, 8, 4})
    ->Args({8, 10, 6})
    ->Args({10, 12, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowsched

BENCHMARK_MAIN();
