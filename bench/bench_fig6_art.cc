// Figure 6 reproduction: average response time of the online heuristics
// (MaxCard / MinRTime / MaxWeight) against the LP (1)-(4) lower bound.
//
// The paper plots, per M ∈ {50,...,600} on a 150x150 switch, the average
// response time versus T ∈ {10..20} (LP-compared) and T ∈ {40..100}
// (heuristics only). We reproduce the same per-port load ratios on a scaled
// switch for the LP-compared grid (the LP at 150 ports took the authors >3h
// per point on Gurobi) and also run the heuristics at the paper's full
// scale. Expected shape (paper §5.2.3): all heuristics within ~2x of the LP,
// MaxWeight/MaxCard best, MinRTime worst, gap narrowing as M grows.
//
// FLOWSCHED_BENCH_SCALE={quick,default,full} controls sweep sizes.
#include <iostream>

#include "bench_common.h"
#include "core/art_lp.h"
#include "util/stopwatch.h"

namespace flowsched::bench {
namespace {

const std::vector<std::string> kHeuristics = {"maxcard", "minrtime",
                                              "maxweight"};

void LpComparedSweep(const SweepScale& scale, CsvWriter& csv) {
  for (const double ratio : kPaperLoadRatios) {
    PrintHeader("Figure 6 panel " + PanelLabel(ratio),
                "scaled switch " + std::to_string(scale.ports) + "x" +
                    std::to_string(scale.ports) +
                    ", avg response vs T; LP = lower bound (1)-(4)");
    TextTable table({"T", "n", "LP", "MaxCard", "MinRTime", "MaxWeight",
                     "MaxCard/LP", "MinRTime/LP", "MaxWeight/LP"});
    for (const int rounds : scale.lp_rounds) {
      double lp_avg = 0.0;
      double n_avg = 0.0;
      std::vector<double> heur(kHeuristics.size(), 0.0);
      // LP per trial (the bound is instance-specific); trials in parallel.
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
      for (int trial = 0; trial < scale.trials; ++trial) {
        PoissonConfig cfg;
        cfg.num_inputs = cfg.num_outputs = scale.ports;
        cfg.mean_arrivals_per_round = ratio * scale.ports;
        cfg.num_rounds = rounds;
        cfg.seed = 7777 + 1000003ULL * trial;
        const Instance instance = GeneratePoisson(cfg);
        const ArtLpResult lp = SolveArtLp(instance);
        const double lp_per_flow =
            instance.num_flows() == 0
                ? 0.0
                : lp.total_fractional_response / instance.num_flows();
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp critical
#endif
        {
          lp_avg += lp_per_flow / scale.trials;
          n_avg += static_cast<double>(instance.num_flows()) / scale.trials;
        }
      }
      const PolicySweepResult sim = RunPolicies(
          kHeuristics, scale.ports, ratio, rounds, scale.trials, 7777);
      for (std::size_t i = 0; i < kHeuristics.size(); ++i) {
        heur[i] = sim.avg_response[i];
      }
      table.Row(rounds, static_cast<int>(n_avg), lp_avg, heur[0], heur[1],
                heur[2], heur[0] / lp_avg, heur[1] / lp_avg, heur[2] / lp_avg);
      csv.Row("lp_compared", ratio, rounds, lp_avg, heur[0], heur[1], heur[2]);
    }
    table.Print(std::cout);
  }
}

void HeuristicOnlySweep(const SweepScale& scale, CsvWriter& csv) {
  PrintHeader("Figure 6 extension (heuristics only, scaled switch)",
              "longer T; the LP is omitted as in the paper's T>20 runs");
  TextTable table({"M/m", "T", "MaxCard", "MinRTime", "MaxWeight"});
  for (const double ratio : kPaperLoadRatios) {
    for (const int rounds : scale.heur_rounds) {
      const PolicySweepResult sim = RunPolicies(
          kHeuristics, scale.ports, ratio, rounds, scale.trials, 8888);
      table.Row(ratio, rounds, sim.avg_response[0], sim.avg_response[1],
                sim.avg_response[2]);
      csv.Row("heur_scaled", ratio, rounds, 0.0, sim.avg_response[0],
              sim.avg_response[1], sim.avg_response[2]);
    }
  }
  table.Print(std::cout);
}

void FullScaleSweep(const SweepScale& scale, CsvWriter& csv) {
  PrintHeader("Figure 6 at paper scale (150x150, heuristics only)",
              "the paper's switch size; average response per policy");
  TextTable table({"M", "T", "MaxCard", "MinRTime", "MaxWeight"});
  for (const double ratio : scale.full_ratios) {
    for (const int rounds : scale.full_rounds) {
      const PolicySweepResult sim =
          RunPolicies(kHeuristics, scale.full_ports, ratio, rounds,
                      scale.full_trials, 9999);
      table.Row(static_cast<int>(ratio * scale.full_ports), rounds,
                sim.avg_response[0], sim.avg_response[1], sim.avg_response[2]);
      csv.Row("heur_full", ratio, rounds, 0.0, sim.avg_response[0],
              sim.avg_response[1], sim.avg_response[2]);
    }
  }
  table.Print(std::cout);
}

void Run() {
  const SweepScale scale = ScaleFor(GetBenchScale());
  auto file = OpenCsv("fig6_art");
  CsvWriter csv(file);
  csv.Row("series", "load_ratio", "T", "lp_avg", "maxcard", "minrtime",
          "maxweight");
  Stopwatch watch;
  LpComparedSweep(scale, csv);
  HeuristicOnlySweep(scale, csv);
  FullScaleSweep(scale, csv);
  std::cout << "\n[fig6] total " << watch.ElapsedSeconds()
            << "s; CSV: bench_out/fig6_art.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
