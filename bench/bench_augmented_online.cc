// Resource augmentation for *online* scheduling (paper §6): the offline
// Theorem 1 buys its O(log n)/c ratio with (1+c) capacity, and Lemma 5.1
// shows augmentation is unavoidable online. This bench quantifies what
// augmentation buys the online heuristics: the same arrival sequences run
// on a switch with (1+c) capacity, compared against the *un-augmented*
// LP (1)-(4) lower bound.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/art_lp.h"

namespace flowsched::bench {
namespace {

void Run() {
  const BenchScale bs = GetBenchScale();
  const int ports = 8;
  const int rounds = bs == BenchScale::kFull ? 12 : 8;
  const int trials = bs == BenchScale::kQuick ? 2 : 3;
  const std::vector<int> cs = {0, 1, 2, 3};
  const std::vector<double> loads = {1.0, 2.0, 4.0};
  const std::vector<std::string> policies = {"maxcard", "minrtime",
                                             "maxweight", "hybrid"};
  auto file = OpenCsv("augmented_online");
  CsvWriter csv(file);
  csv.Row("c", "load", "policy", "avg_response", "lp_bound_avg", "ratio");

  PrintHeader("Online heuristics under (1+c) capacity augmentation",
              "ratio = augmented online avg response / un-augmented LP bound");
  TextTable table({"c", "load", "MaxCard", "MinRTime", "MaxWeight", "Hybrid",
                   "best/LP"});
  for (const int c : cs) {
    for (const double load : loads) {
      std::vector<double> avg(policies.size(), 0.0);
      double lp_avg = 0.0;
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
      for (int trial = 0; trial < trials; ++trial) {
        PoissonConfig cfg;
        cfg.num_inputs = cfg.num_outputs = ports;
        cfg.mean_arrivals_per_round = load * ports;
        cfg.num_rounds = rounds;
        cfg.seed = 1234 + 97 * trial;
        const Instance base = GeneratePoisson(cfg);
        // Same flows, (1+c)x port capacity.
        const Instance augmented(
            AugmentSwitch(base.sw(), CapacityAllowance::Factor(1.0 + c)),
            std::vector<Flow>(base.flows()));
        const ArtLpResult lp = SolveArtLp(base);  // Un-augmented bound.
        std::vector<double> trial_avg(policies.size());
        for (std::size_t i = 0; i < policies.size(); ++i) {
          auto policy = MakePolicy(policies[i], cfg.seed);
          const SimulationResult r = Simulate(augmented, *policy);
          trial_avg[i] = r.metrics.avg_response;
        }
#if defined(FLOWSCHED_HAVE_OPENMP)
#pragma omp critical
#endif
        {
          lp_avg += lp.total_fractional_response /
                    std::max(1, base.num_flows()) / trials;
          for (std::size_t i = 0; i < policies.size(); ++i) {
            avg[i] += trial_avg[i] / trials;
          }
        }
      }
      const double best = *std::min_element(avg.begin(), avg.end());
      table.Row(c, load, avg[0], avg[1], avg[2], avg[3], best / lp_avg);
      for (std::size_t i = 0; i < policies.size(); ++i) {
        csv.Row(c, load, policies[i], avg[i], lp_avg, avg[i] / lp_avg);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading: c=0 is the plain Figure 6 setting; by c>=1 the\n"
               "backlog collapses and the heuristics sit on the LP's floor —\n"
               "the online counterpart of Theorem 1's augmentation budget.\n"
               "CSV: bench_out/augmented_online.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
