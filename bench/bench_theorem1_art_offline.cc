// Theorem 1 validation: the offline (1+c, O(log n)/c) FS-ART algorithm,
// driven through the Solver facade ("art.theorem1").
//
// Sweeps the augmentation parameter c and the instance size n, reporting the
// achieved average response against the LP(0) lower bound (the report's
// lower_bound), the measured iterative-rounding window overload against its
// O(c_p log n) guarantee, and the interval/coloring internals — all read
// from the report's diagnostics map, plus the facade's wall timing.
#include <cmath>
#include <iostream>

#include "api/registry.h"
#include "bench_common.h"

namespace flowsched::bench {
namespace {

void Run() {
  const BenchScale bs = GetBenchScale();
  const int ports = 8;
  const std::vector<double> loads =
      bs == BenchScale::kQuick ? std::vector<double>{1.0}
                               : std::vector<double>{0.5, 1.0, 2.0};
  const std::vector<int> rounds_sweep =
      bs == BenchScale::kFull ? std::vector<int>{8, 16, 32}
                              : std::vector<int>{8, 16};
  const std::vector<int> cs = {1, 2, 4, 8};
  const SolverRegistry& registry = SolverRegistry::Global();

  auto file = OpenCsv("theorem1_art");
  CsvWriter csv(file);
  csv.Row("c", "load", "T", "n", "lp0", "achieved_total", "ratio",
          "envelope_1_plus_logn_over_c", "overload", "iters", "h", "colors",
          "wall_ms");

  PrintHeader("Theorem 1: offline FS-ART with (1+c) capacity",
              "achieved total response vs LP(0); envelope = 1 + log2(n)/c");
  TextTable table({"c", "load", "T", "n", "LP(0)", "achieved", "ratio",
                   "1+log2(n)/c", "overload", "iters", "h", "colors",
                   "wall_ms"});
  for (const int c : cs) {
    for (const double load : loads) {
      for (const int rounds : rounds_sweep) {
        PoissonConfig cfg;
        cfg.num_inputs = cfg.num_outputs = ports;
        cfg.mean_arrivals_per_round = load * ports;
        cfg.num_rounds = rounds;
        cfg.seed = 100 + c;
        const Instance instance = GeneratePoisson(cfg);
        if (instance.num_flows() == 0) continue;
        SolveOptions options;
        options.params["c"] = std::to_string(c);
        const SolveReport r =
            registry.Solve("art.theorem1", instance, options);
        if (!r.ok) {
          std::cerr << "art.theorem1 failed: " << r.error << "\n";
          continue;
        }
        const double envelope =
            1.0 + std::log2(static_cast<double>(instance.num_flows()) + 2.0) /
                      c;
        table.Row(c, load, rounds, instance.num_flows(), *r.lower_bound,
                  r.metrics.total_response, r.ApproxRatio(), envelope,
                  r.diagnostics.at("max_window_overload"),
                  r.diagnostics.at("rounding_iterations"),
                  r.diagnostics.at("interval_length"),
                  r.diagnostics.at("max_colors"), r.wall_seconds * 1e3);
        csv.Row(c, load, rounds, instance.num_flows(), *r.lower_bound,
                r.metrics.total_response, r.ApproxRatio(), envelope,
                r.diagnostics.at("max_window_overload"),
                r.diagnostics.at("rounding_iterations"),
                r.diagnostics.at("interval_length"),
                r.diagnostics.at("max_colors"), r.wall_seconds * 1e3);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading: ratio should fall as c grows (response blowup "
               "O(log n)/c); overload stays O(c_p log n) regardless of c.\n"
               "CSV: bench_out/theorem1_art.csv\n";
}

}  // namespace
}  // namespace flowsched::bench

int main() {
  flowsched::bench::Run();
  return 0;
}
