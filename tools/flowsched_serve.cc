// flowsched_serve: the streaming scheduler daemon — drive an online or
// coflow policy over an unbounded flow stream, emitting per-round MATCH
// lines and periodic JSONL stats with O(live flows) memory.
//
// Modes (first match wins):
//   --smoke          self-check: stream a generated instance through both
//                    the trace path and the wire protocol and require the
//                    realized schedule and aggregates to be bit-identical
//                    to the batch simulator; exit nonzero on any mismatch
//   --spec=SPEC      pull arrivals from a generator spec (poisson|coflow|
//                    cdf, same keys as flowsched_cli --instance, plus
//                    rounds=inf for an endless stream)
//   --trace=PATH     stream an instance CSV row by row ("-" = stdin)
//   --tcp=PORT       wire protocol over TCP, one client (POSIX only)
//   --unix=PATH      wire protocol over a unix socket, one client
//   (default)        wire protocol on stdin/stdout
//
// Wire protocol (docs/serve-protocol.md): clients send
//   ARRIVE id src dst size [coflow] | TICK | STATS | STOP
// and receive MATCH / STATS / ERROR lines plus a final DONE summary.
//
// Examples:
//   flowsched_serve --spec "poisson:ports=64,load=0.9,rounds=1000000"
//   flowsched_serve --trace=trace.csv --policy=coflow.sebf --stats-every=64
//   printf 'ARRIVE 0 0 1 1\nTICK\nSTOP\n' | flowsched_serve --ports=4
//
// SIGINT/SIGTERM request a graceful stop: the session finishes its current
// round and emits the final DONE summary before the process exits. Socket
// accept/read errors are logged and the daemon keeps accepting — only a
// signal (or --tcp/--unix bind failure at startup) ends it.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/instance_source.h"
#include "api/stream_source.h"
#include "core/online/simulator.h"
#include "model/schedule.h"
#include "model/trace_io.h"
#include "scenario/scenario.h"
#include "serve/daemon.h"
#include "serve/stream_sources.h"

#if defined(__unix__) || defined(__APPLE__)
#define FLOWSCHED_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace flowsched {
namespace {

// Set by the SIGINT/SIGTERM handler; every session loop polls it between
// rounds, so a signal drains the current round and still emits DONE.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void HandleStopSignal(int) { g_stop = 1; }

void InstallStopHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  // No SA_RESTART: a signal must interrupt the blocking read()/accept() so
  // the session loop can observe g_stop instead of sleeping in the kernel.
  struct sigaction sa {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
#endif
}

struct ServeCli {
  std::string spec;
  std::string trace;
  std::string unix_path;
  std::string scenario;   // --scenario: path or inline:<script>.
  int tcp_port = -1;
  int ports = 16;         // Wire-mode switch geometry.
  long long cap = 1;
  bool smoke = false;
  ServeOptions serve;
};

void PrintUsage(std::ostream& out) {
  out << "flowsched_serve: streaming scheduler daemon.\n"
         "  --spec=SPEC        generator stream (poisson|coflow|cdf:k=v,...;\n"
         "                     rounds=inf for an endless stream)\n"
         "  --trace=PATH       stream an instance CSV; \"-\" reads stdin\n"
         "  --tcp=PORT         wire protocol over TCP (clients served one "
         "at a time)\n"
         "  --unix=PATH        wire protocol over a unix socket\n"
         "  --policy=NAME      online.<p> or coflow.<p> (default "
         "online.srpt)\n"
         "  --scenario=S       fault-injection script: a path or "
         "inline:<script>\n"
         "                     with ';' line separators "
         "(docs/scenarios.md)\n"
         "  --ports=N          wire-mode switch: N inputs and N outputs\n"
         "  --cap=C            wire-mode switch: uniform port capacity\n"
         "  --seed=N           RNG seed for randomized policies\n"
         "  --stats-every=N    emit a stats line every N rounds\n"
         "  --max-rounds=N     truncate after N rounds (default: run to "
         "drain)\n"
         "  --no-match         suppress per-round MATCH lines\n"
         "  --no-validate      skip per-round selection audits\n"
         "  --no-warmstart     solve each round's matching from scratch\n"
         "                     (maxweight; warm start is bit-exact and on\n"
         "                     by default)\n"
         "  --approx=EPS       eps-approximate auction matcher for\n"
         "                     maxweight policies (default 0 = exact)\n"
         "  --smoke            run the streaming-vs-batch self-check\n"
         "With no mode flag, speaks the wire protocol on stdin/stdout\n"
         "(docs/serve-protocol.md). SIGINT/SIGTERM finish the current\n"
         "round and emit the final DONE summary.\n";
}

// Accepts --name=value and --name value.
bool TakeValue(int argc, char** argv, int& i, const std::string& name,
               std::string* value) {
  const std::string arg = argv[i];
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == "--" + name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

bool ParseCount(const std::string& value, long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == value.c_str()) return false;
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, ServeCli& cli, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    long long n = 0;
    const auto count = [&](const char* name) {
      if (!TakeValue(argc, argv, i, name, &value)) return false;
      if (!ParseCount(value, &n)) {
        error = arg + ": expected an integer, got \"" + value + "\"";
        n = -1;  // Error already set; caller returns false below.
      }
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--no-match") {
      cli.serve.emit_match = false;
    } else if (arg == "--no-validate") {
      cli.serve.validate = false;
    } else if (arg == "--no-warmstart") {
      cli.serve.matching.warmstart = false;
    } else if (TakeValue(argc, argv, i, "approx", &value)) {
      char* end = nullptr;
      cli.serve.matching.approx_eps = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' ||
          cli.serve.matching.approx_eps < 0.0) {
        error = "--approx needs a number >= 0, got \"" + value + "\"";
        return false;
      }
    } else if (TakeValue(argc, argv, i, "spec", &value)) {
      cli.spec = value;
    } else if (TakeValue(argc, argv, i, "trace", &value)) {
      cli.trace = value;
    } else if (TakeValue(argc, argv, i, "unix", &value)) {
      cli.unix_path = value;
    } else if (TakeValue(argc, argv, i, "policy", &value)) {
      cli.serve.policy = value;
    } else if (TakeValue(argc, argv, i, "scenario", &value)) {
      cli.scenario = value;
    } else if (count("tcp")) {
      cli.tcp_port = static_cast<int>(n);
    } else if (count("ports")) {
      cli.ports = static_cast<int>(n);
    } else if (count("cap")) {
      cli.cap = n;
    } else if (count("seed")) {
      cli.serve.seed = static_cast<std::uint64_t>(n);
    } else if (count("stats-every")) {
      cli.serve.stats_every = static_cast<Round>(n);
    } else if (count("max-rounds")) {
      cli.serve.max_rounds = static_cast<Round>(n);
    } else {
      error = "unknown argument \"" + arg + "\" (try --help)";
      return false;
    }
    if (!error.empty()) return false;
  }
  return true;
}

#ifdef FLOWSCHED_HAVE_SOCKETS
// A minimal bidirectional streambuf over a connected socket fd — enough
// iostream for RunWireSession, nothing more.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

 private:
  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

// Serves wire sessions one client at a time until a stop signal arrives.
// A failed accept (or a client whose connection died mid-session — the
// session just sees EOF and summarizes) is logged and the daemon keeps
// accepting; nothing a client does can take the listener down.
int ServeSocket(int listen_fd, const SwitchSpec& sw,
                const ServeOptions& options) {
  int status = 0;
  while (g_stop == 0) {
    std::fprintf(stderr, "flowsched_serve: waiting for a client...\n");
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (g_stop != 0 || errno == EINTR) break;
      std::perror("flowsched_serve: accept (continuing)");
      continue;
    }
    FdStreamBuf buf(client);
    std::istream in(&buf);
    std::ostream out(&buf);
    const StreamingSummary summary = RunWireSession(sw, in, out, options);
    if (summary.source_error) {
      std::fprintf(stderr, "flowsched_serve: session error: %s (continuing)\n",
                   summary.error.c_str());
      status = 1;
    }
    ::close(client);
  }
  ::close(listen_fd);
  return status;
}

int ServeTcp(int port, const SwitchSpec& sw, const ServeOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    std::perror("bind/listen");
    ::close(fd);
    return 1;
  }
  std::fprintf(stderr, "flowsched_serve: listening on 127.0.0.1:%d\n", port);
  return ServeSocket(fd, sw, options);
}

int ServeUnix(const std::string& path, const SwitchSpec& sw,
              const ServeOptions& options) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "unix socket path too long\n");
    return 1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    std::perror("bind/listen");
    ::close(fd);
    return 1;
  }
  std::fprintf(stderr, "flowsched_serve: listening on %s\n", path.c_str());
  return ServeSocket(fd, sw, options);
}
#endif  // FLOWSCHED_HAVE_SOCKETS

// --- --smoke: streaming-vs-batch equivalence self-check. ------------------

bool SmokeFail(const std::string& what) {
  std::cerr << "SMOKE FAIL: " << what << '\n';
  return false;
}

// Splits captured daemon output into MATCH assignments + sanity-checks
// every line's shape. `prefixed` selects wire framing ("STATS {...}")
// versus source framing (bare JSONL).
bool ParseMatchLines(const std::string& output, bool prefixed,
                     std::map<FlowId, Round>* assigned) {
  std::istringstream lines(output);
  std::string line;
  Round last_round = -1;
  bool saw_done = false;
  while (std::getline(lines, line)) {
    if (line.rfind("MATCH ", 0) == 0) {
      std::istringstream fields(line.substr(6));
      Round t = -1;
      if (!(fields >> t) || t < 0 || t < last_round) {
        return SmokeFail("bad MATCH round in \"" + line + "\"");
      }
      last_round = t;
      FlowId id = -1;
      int picked = 0;
      while (fields >> id) {
        if (!assigned->emplace(id, t).second) {
          return SmokeFail("flow " + std::to_string(id) + " matched twice");
        }
        ++picked;
      }
      if (picked == 0 || !fields.eof()) {
        return SmokeFail("malformed MATCH line \"" + line + "\"");
      }
    } else if (line.rfind("DONE {", 0) == 0) {
      saw_done = true;
    } else if (prefixed ? line.rfind("STATS {\"round\":", 0) == 0
                        : line.rfind("{\"round\":", 0) == 0) {
      // Periodic or requested stats line; shape-checked by the prefix.
    } else {
      return SmokeFail("unexpected output line \"" + line + "\"");
    }
  }
  if (!saw_done) return SmokeFail("no DONE summary line");
  return true;
}

bool CheckSummary(const char* path, const StreamingSummary& summary,
                  const SimulationResult& batch, int num_flows) {
  const auto fail = [&](const std::string& what) {
    return SmokeFail(std::string(path) + ": " + what);
  };
  if (summary.source_error || !summary.error.empty()) {
    return fail("source error: " + summary.error);
  }
  if (summary.truncated) return fail("unexpectedly truncated");
  if (summary.flows != num_flows || summary.arrived != num_flows) {
    return fail("flows=" + std::to_string(summary.flows) + " arrived=" +
                std::to_string(summary.arrived) + ", want " +
                std::to_string(num_flows));
  }
  if (summary.rounds != batch.rounds) {
    return fail("rounds=" + std::to_string(summary.rounds) + ", batch " +
                std::to_string(batch.rounds));
  }
  if (summary.total_response != batch.metrics.total_response ||
      summary.max_response != batch.metrics.max_response) {
    return fail("response aggregates diverge from batch");
  }
  if (summary.peak_backlog != batch.peak_backlog) {
    return fail("peak_backlog=" + std::to_string(summary.peak_backlog) +
                ", batch " + std::to_string(batch.peak_backlog));
  }
  if (summary.avg_port_utilization != batch.avg_port_utilization) {
    return fail("utilization diverges from batch");
  }
  return true;
}

bool CheckSchedule(const char* path, const std::map<FlowId, Round>& assigned,
                   const SimulationResult& batch) {
  Schedule streamed(batch.schedule.num_flows());
  for (const auto& [id, t] : assigned) {
    if (id < 0 || id >= streamed.num_flows()) {
      return SmokeFail(std::string(path) + ": matched unknown flow id " +
                       std::to_string(id));
    }
    streamed.Assign(id, t);
  }
  std::ostringstream got;
  std::ostringstream want;
  WriteScheduleCsv(streamed, got);
  WriteScheduleCsv(batch.schedule, want);
  if (got.str() != want.str()) {
    return SmokeFail(std::string(path) +
                     ": realized schedule differs from batch");
  }
  return true;
}

int RunSmoke(const ServeCli& cli) {
  ServeOptions options = cli.serve;
  options.stats_every = options.stats_every > 0 ? options.stats_every : 128;
  options.emit_match = true;

  // Batch reference policy (fresh policies are built inside each streaming
  // session from the same name + seed).
  std::string error;
  const auto batch_policy = MakeServePolicy(options.policy, &error,
                                            options.seed);
  if (batch_policy == nullptr) return SmokeFail(error), 1;

  // ~6k flows: big enough to exercise retirement and stats windows, small
  // enough for a CI leg. Matching-based policies only take unit demands.
  const std::string spec =
      batch_policy->RequiresUnitDemands()
          ? "poisson:ports=16,cap=2,load=0.95,rounds=400,dmax=1,seed=7"
          : "poisson:ports=16,cap=2,load=0.95,rounds=400,dmax=4,seed=7";
  const auto instance = LoadInstance(spec, &error);
  if (!instance.has_value()) return SmokeFail(error), 1;
  const SimulationResult batch = Simulate(*instance, *batch_policy);

  // Path 1: the trace pipeline (CSV text -> TraceStreamSource -> daemon).
  std::ostringstream csv;
  WriteInstanceCsv(*instance, csv);
  std::istringstream trace_in(csv.str());
  TraceStreamSource trace(trace_in);
  std::ostringstream trace_out;
  const StreamingSummary trace_summary =
      RunSourceSession(trace, trace_out, options);
  std::map<FlowId, Round> trace_assigned;
  if (!ParseMatchLines(trace_out.str(), /*prefixed=*/false, &trace_assigned) ||
      !CheckSummary("trace", trace_summary, batch, instance->num_flows()) ||
      !CheckSchedule("trace", trace_assigned, batch)) {
    return 1;
  }

  // Path 2: the wire protocol, replaying the same arrivals round by round.
  std::ostringstream script;
  int next_flow = 0;
  for (Round t = 0; t < batch.rounds; ++t) {
    while (next_flow < instance->num_flows() &&
           instance->flow(next_flow).release == t) {
      const Flow& f = instance->flow(next_flow);
      script << "ARRIVE " << f.id << ' ' << f.src << ' ' << f.dst << ' '
             << f.demand << '\n';
      ++next_flow;
    }
    script << "TICK\n";
  }
  script << "STOP\n";
  std::istringstream wire_in(script.str());
  std::ostringstream wire_out;
  const StreamingSummary wire_summary =
      RunWireSession(instance->sw(), wire_in, wire_out, options);
  std::map<FlowId, Round> wire_assigned;
  if (!ParseMatchLines(wire_out.str(), /*prefixed=*/true, &wire_assigned) ||
      !CheckSummary("wire", wire_summary, batch, instance->num_flows()) ||
      !CheckSchedule("wire", wire_assigned, batch)) {
    return 1;
  }

  std::cout << "SMOKE OK: " << instance->num_flows() << " flows, "
            << batch.rounds << " rounds, policy " << options.policy
            << ", streaming == batch on both paths\n";
  return 0;
}

int Main(int argc, char** argv) {
  ServeCli cli;
  std::string error;
  if (!ParseArgs(argc, argv, cli, error)) {
    std::cerr << "flowsched_serve: " << error << '\n';
    return 2;
  }
  if (cli.smoke) return RunSmoke(cli);

  InstallStopHandlers();
  cli.serve.stop = &g_stop;
  ScenarioScript scenario;
  if (!cli.scenario.empty()) {
    if (!LoadScenarioParam(cli.scenario, &scenario, &error)) {
      std::cerr << "flowsched_serve: scenario: " << error << '\n';
      return 2;
    }
    cli.serve.scenario = &scenario;
  }

  if (!cli.spec.empty() || !cli.trace.empty()) {
    std::unique_ptr<StreamingFlowSource> source;
    // Owns the stdin-backed source when --trace=-; unused otherwise.
    std::unique_ptr<TraceStreamSource> stdin_trace;
    if (!cli.spec.empty()) {
      source = MakeStreamSource(cli.spec, &error);
    } else if (cli.trace == "-") {
      stdin_trace = std::make_unique<TraceStreamSource>(std::cin);
      if (!stdin_trace->ok()) error = "stdin: " + stdin_trace->error();
    } else {
      source = MakeStreamSource(cli.trace, &error);
    }
    StreamingFlowSource* active =
        stdin_trace != nullptr ? stdin_trace.get() : source.get();
    if (active == nullptr || !error.empty()) {
      std::cerr << "flowsched_serve: " << error << '\n';
      return 2;
    }
    const StreamingSummary summary =
        RunSourceSession(*active, std::cout, cli.serve);
    return summary.source_error ? 1 : 0;
  }

  const SwitchSpec sw = SwitchSpec::Uniform(cli.ports, cli.ports, cli.cap);
  if (cli.tcp_port >= 0 || !cli.unix_path.empty()) {
#ifdef FLOWSCHED_HAVE_SOCKETS
    return cli.tcp_port >= 0 ? ServeTcp(cli.tcp_port, sw, cli.serve)
                             : ServeUnix(cli.unix_path, sw, cli.serve);
#else
    std::cerr << "flowsched_serve: sockets unavailable on this platform; "
                 "use stdin/stdout or --trace\n";
    return 2;
#endif
  }
  const StreamingSummary summary =
      RunWireSession(sw, std::cin, std::cout, cli.serve);
  return summary.source_error ? 1 : 0;
}

}  // namespace
}  // namespace flowsched

int main(int argc, char** argv) { return flowsched::Main(argc, argv); }
