// flowsched_bench: the reproducible performance harness. Runs a fixed suite
// of generator specs across registered solvers (validation off — the point
// is to measure the scheduling hot path, not the audit scaffolding), times
// the decomposition kernels, and writes a machine-readable BENCH_<suite>.json
// so every future change has a comparable baseline. CI runs the "smoke"
// suite in Release as a sanity check and uploads the JSON as an artifact.
//
// Usage:
//   flowsched_bench [--suite=core|smoke] [--out=PATH] [--repeat=N]
//                   [--seed=N] [--list]
//
// Suites:
//   core   the paper-scale online suite — a 256x256 switch with ~50k
//          Poisson flows plus coflow / shuffle / incast / Figure-4
//          instances across every online.* and coflow.* policy — and the
//          König vs Euler-split edge coloring kernels on a dense
//          multigraph.
//   smoke  a down-scaled copy of core that finishes in seconds (CI).
//
// Timing: each (instance, solver) cell runs --repeat times (default 3) and
// reports the fastest run — the minimum is the standard noise-robust
// estimator for throughput benches on shared machines.
//
// The JSON schema is documented in README.md ("Performance" section).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "api/instance_source.h"
#include "api/registry.h"
#include "api/stream_source.h"
#include "core/online/simulator.h"
#include "graph/auction_matching.h"
#include "graph/edge_coloring.h"
#include "graph/incremental_matching.h"
#include "graph/max_weight_matching.h"
#include "scenario/scenario.h"
#include "serve/daemon.h"
#include "serve/streaming_simulator.h"
#include "util/json.h"
#include "util/proc_stats.h"
#include "util/provenance.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

// ---- Global allocation counter -------------------------------------------
// Replacing the global operator new lets the harness report how many heap
// allocations each measured run performs (the zero-allocation claim for the
// simulator core is checked in CI from exactly this number).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flowsched {
namespace {

struct BenchCell {
  std::string instance;
  std::string solver;
  bool ok = false;
  std::string error;
  double wall_seconds = 0.0;
  long long rounds = 0;
  double rounds_per_sec = 0.0;
  long long peak_backlog = 0;
  long long allocations = 0;
  double total_response = 0.0;
  double avg_response = 0.0;
  double max_response = 0.0;
  long long makespan = 0;
  // VmHWM across the cell's repeats (watermark reset per cell); -1 when
  // the kernel doesn't support per-interval resets. Batch cells hold the
  // whole instance + schedule; stream: cells quantify the O(live flows)
  // memory of the serve path on the same traffic.
  long long peak_rss_kb = -1;
  // scenario: cells only (-1 elsewhere). Surge is the peak backlog over the
  // fault-free twin's peak; drain is rounds simulated past the last event.
  long long backlog_surge = -1;
  long long drain_rounds = -1;
  long long downtime_rounds = -1;
};

struct KernelCell {
  std::string name;
  long long edges = 0;
  long long max_degree = 0;
  long long num_colors = 0;
  double wall_seconds = 0.0;
};

// One matching kernel timed over the same synthetic mutation sequence;
// total_weight is the sanity channel: scratch and warmstart must agree to
// the bit, the auction rows may trail by at most rounds·n·eps.
struct MatcherCell {
  std::string name;
  long long rounds = 0;
  long long edges = 0;  // Edges across all rounds of the sequence.
  double wall_seconds = 0.0;
  double total_weight = 0.0;
};

// Extra (instance, solver, params) cells benched next to the plain grid —
// the maxweight kernel variants (scratch Hungarian, eps-auction) whose
// deltas the CI smoke assertions pin against the warm-start default.
struct VariantSpec {
  std::string instance;
  std::string solver;  // Registry name.
  std::string label;   // Shown as the solver column / JSON solver field.
  std::map<std::string, std::string> params;
};

struct ScenarioBenchSpec {
  std::string instance;  // Generator spec for the faulted run.
  std::string script;    // Scenario script text (scenario/scenario.h).
};

struct SuiteSpec {
  std::string name;
  std::vector<std::string> instances;
  // Generator specs run through the streaming service (src/serve/) with
  // online.srpt — same traffic as the matching batch cell, so the
  // peak_rss_kb columns are directly comparable.
  std::vector<std::string> streams;
  // Fault-injection cells: the instance replayed under a timed outage
  // script (online.srpt), measuring the degraded round loop and recording
  // backlog surge + recovery drain against the fault-free twin.
  std::vector<ScenarioBenchSpec> scenarios;
  // Matching-kernel variant cells (see VariantSpec).
  std::vector<VariantSpec> variants;
  // Dense multigraph for the edge-coloring kernel comparison.
  int coloring_side = 0;
  int coloring_edges = 0;
  // Synthetic backlog mutation sequence for the matcher micro-bench.
  int matcher_ports = 0;
  int matcher_rounds = 0;
};

SuiteSpec MakeSuite(const std::string& name) {
  if (name == "core") {
    return SuiteSpec{
        "core",
        {
            "poisson:ports=256,load=1.0,rounds=195,seed=1",
            "coflow:ports=256,load=1.0,rounds=195,width=16,skew=0.7,seed=1",
            // The sharding cell: fabric.* solvers split this 4 ways
            // (fabric.<p> x non-fabric instances are skipped; every other
            // solver runs the inner instance unsharded for the 1-switch
            // baseline on identical traffic).
            "fabric:shards=4,partition=block,"
            "coflow:ports=256,load=1.0,rounds=195,width=16,skew=0.7,seed=1",
            "shuffle:ports=256,wave=64,waves=8,period=2",
            "incast:ports=256,fanin=255",
            "fig4a:phase=128,total=1024",
            "fig4b",
            // Realistic traffic (src/traffic/): one cell per checked-in
            // datacenter CDF at the paper's 256-port scale, load 0.9.
            "cdf:dist=websearch,ports=256,load=0.9,rounds=195,seed=1",
            "cdf:dist=fbhdp,ports=256,load=0.9,rounds=195,seed=1",
            "cdf:dist=alistorage,ports=256,load=0.9,rounds=195,seed=1",
        },
        {
            "poisson:ports=256,load=1.0,rounds=195,seed=1",
            "poisson:ports=64,load=0.9,rounds=100000,seed=1",
            "cdf:dist=websearch,ports=256,load=0.9,rounds=195,seed=1",
            "cdf:dist=alistorage,ports=64,load=0.9,rounds=20000,seed=1",
        },
        {
            // Mid-run loss of a quarter of the fabric (pod 0 of 4) under
            // sustained near-saturation load, then recovery and drain.
            {"poisson:ports=256,load=0.9,rounds=195,seed=1",
             "PODS 4\nPOD_DOWN 60 0\nPOD_UP 120 0\n"},
        },
        {
            // The maxweight kernel variants on the paper-scale cell: the
            // from-scratch Hungarian (the bit-exactness baseline for the
            // warm-start default benched above) and the opt-in eps-auction
            // (the quantified approximation, campaigns/approx.json).
            {"poisson:ports=256,load=1.0,rounds=195,seed=1",
             "online.maxweight", "online.maxweight+scratch",
             {{"warmstart", "0"}}},
            {"poisson:ports=256,load=1.0,rounds=195,seed=1",
             "online.maxweight", "online.maxweight+approx0.5",
             {{"approx", "0.5"}}},
            {"coflow:ports=256,load=1.0,rounds=195,width=16,skew=0.7,seed=1",
             "coflow.maxweight", "coflow.maxweight+approx0.5",
             {{"approx", "0.5"}}},
        },
        /*coloring_side=*/256,
        /*coloring_edges=*/200000,
        /*matcher_ports=*/256,
        /*matcher_rounds=*/120,
    };
  }
  if (name == "smoke") {
    return SuiteSpec{
        "smoke",
        {
            "poisson:ports=32,load=1.0,rounds=40,seed=1",
            "coflow:ports=32,load=1.0,rounds=40,width=6,skew=0.7,seed=1",
            "fabric:shards=2,partition=block,"
            "coflow:ports=32,load=1.0,rounds=40,width=6,skew=0.7,seed=1",
            "incast:ports=32,fanin=31",
            "fig4b",
            "cdf:dist=websearch,ports=32,load=0.9,rounds=40,seed=1",
        },
        {
            "poisson:ports=32,load=1.0,rounds=40,seed=1",
            "cdf:dist=websearch,ports=32,load=0.9,rounds=40,seed=1",
        },
        {
            {"poisson:ports=32,load=0.9,rounds=40,seed=1",
             "PODS 4\nPOD_DOWN 10 0\nPOD_UP 25 0\n"},
        },
        {
            {"poisson:ports=32,load=1.0,rounds=40,seed=1",
             "online.maxweight", "online.maxweight+scratch",
             {{"warmstart", "0"}}},
            {"poisson:ports=32,load=1.0,rounds=40,seed=1",
             "online.maxweight", "online.maxweight+approx0.5",
             {{"approx", "0.5"}}},
            {"coflow:ports=32,load=1.0,rounds=40,width=6,skew=0.7,seed=1",
             "coflow.maxweight", "coflow.maxweight+approx0.5",
             {{"approx", "0.5"}}},
        },
        /*coloring_side=*/64,
        /*coloring_edges=*/4000,
        /*matcher_ports=*/48,
        /*matcher_rounds=*/40,
    };
  }
  return SuiteSpec{};
}

std::vector<std::string> SimulationSolverNames() {
  std::vector<std::string> names;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    if (name.rfind("online.", 0) == 0 || name.rfind("coflow.", 0) == 0 ||
        name.rfind("fabric.", 0) == 0) {
      names.push_back(name);
    }
  }
  return names;
}

// fabric.* solvers need a shard topology, which only fabric: instances
// carry — pairing them with anything else would just bench the error path.
bool SkipCell(const std::string& instance_spec, const std::string& solver) {
  return solver.rfind("fabric.", 0) == 0 &&
         instance_spec.rfind("fabric:", 0) != 0;
}

BenchCell RunCell(const std::string& instance_spec, const Instance& instance,
                  const std::string& solver, std::uint64_t seed, int repeat,
                  const std::map<std::string, std::string>& extra_params = {},
                  const std::string& label = "") {
  BenchCell cell;
  cell.instance = instance_spec;
  cell.solver = label.empty() ? solver : label;
  SolveOptions options;
  options.seed = seed;
  options.params["validate"] = "0";
  for (const auto& [key, value] : extra_params) options.params[key] = value;
  ResetPeakRss();
  for (int rep = 0; rep < repeat; ++rep) {
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const SolveReport report =
        SolverRegistry::Global().Solve(solver, instance, options);
    const std::uint64_t allocs_after =
        g_alloc_count.load(std::memory_order_relaxed);
    if (!report.ok) {
      cell.ok = false;
      cell.error = report.error;
      return cell;
    }
    if (rep == 0 || report.wall_seconds < cell.wall_seconds) {
      cell.wall_seconds = report.wall_seconds;
      cell.allocations =
          static_cast<long long>(allocs_after - allocs_before);
    }
    cell.ok = true;
    cell.total_response = report.metrics.total_response;
    cell.avg_response = report.metrics.avg_response;
    cell.max_response = report.metrics.max_response;
    cell.makespan = report.metrics.makespan;
    const auto rounds = report.diagnostics.find("rounds_simulated");
    cell.rounds = rounds == report.diagnostics.end()
                      ? 0
                      : static_cast<long long>(rounds->second);
    const auto peak = report.diagnostics.find("peak_backlog");
    cell.peak_backlog = peak == report.diagnostics.end()
                            ? 0
                            : static_cast<long long>(peak->second);
  }
  if (cell.wall_seconds > 0.0 && cell.rounds > 0) {
    cell.rounds_per_sec = static_cast<double>(cell.rounds) / cell.wall_seconds;
  }
  cell.peak_rss_kb = PeakRssKb();
  return cell;
}

// One generator spec through the streaming service. The spec never
// materializes as an Instance — the cell's peak_rss_kb is the serve path's
// O(live flows) footprint on the same traffic the batch cells replay.
BenchCell RunStreamCell(const std::string& spec, std::uint64_t seed,
                        int repeat) {
  BenchCell cell;
  cell.instance = "stream:" + spec;
  cell.solver = "online.srpt";
  ResetPeakRss();
  for (int rep = 0; rep < repeat; ++rep) {
    std::string error;
    const auto source = MakeStreamSource(spec, &error);
    const auto policy = MakeServePolicy(cell.solver, &error, seed);
    if (source == nullptr || policy == nullptr) {
      cell.ok = false;
      cell.error = error;
      return cell;
    }
    StreamingOptions options;
    options.validate = false;
    StreamingSimulator sim(source->sw(), *policy, options);
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    Stopwatch sw;
    const StreamingSummary summary = sim.Run(*source);
    const double s = sw.ElapsedSeconds();
    const std::uint64_t allocs_after =
        g_alloc_count.load(std::memory_order_relaxed);
    if (summary.source_error) {
      cell.ok = false;
      cell.error = summary.error;
      return cell;
    }
    if (rep == 0 || s < cell.wall_seconds) {
      cell.wall_seconds = s;
      cell.allocations = static_cast<long long>(allocs_after - allocs_before);
    }
    cell.ok = true;
    cell.rounds = summary.rounds;
    cell.peak_backlog = summary.peak_backlog;
    cell.total_response = summary.total_response;
    cell.avg_response = summary.mean_response;
    cell.max_response = summary.max_response;
    cell.makespan = summary.rounds;
  }
  if (cell.wall_seconds > 0.0 && cell.rounds > 0) {
    cell.rounds_per_sec = static_cast<double>(cell.rounds) / cell.wall_seconds;
  }
  cell.peak_rss_kb = PeakRssKb();
  return cell;
}

// The faulted instance through batch Simulate with online.srpt: the timed
// script reshapes the effective capacities mid-run. The fault-free twin runs
// once (untimed) for the surge baseline; the measured repeats all replay the
// degraded loop. A script that strands flows fails the cell rather than
// aborting the harness.
BenchCell RunScenarioCell(const ScenarioBenchSpec& spec, std::uint64_t seed,
                          int repeat) {
  BenchCell cell;
  cell.instance = "scenario:" + spec.instance;
  cell.solver = "online.srpt";
  std::string error;
  const auto instance = LoadInstance(spec.instance, &error);
  if (!instance.has_value()) {
    cell.error = error;
    return cell;
  }
  ScenarioScript script;
  if (!ScenarioScript::ParseText(spec.script, &script, &error)) {
    cell.error = error;
    return cell;
  }
  const auto policy = MakeServePolicy(cell.solver, &error, seed);
  if (policy == nullptr) {
    cell.error = error;
    return cell;
  }
  SimulationOptions options;
  options.validate = false;
  const SimulationResult base = Simulate(*instance, *policy, options);
  options.scenario = &script;
  ResetPeakRss();
  for (int rep = 0; rep < repeat; ++rep) {
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    Stopwatch sw;
    const SimulationResult r = Simulate(*instance, *policy, options);
    const double s = sw.ElapsedSeconds();
    const std::uint64_t allocs_after =
        g_alloc_count.load(std::memory_order_relaxed);
    if (r.truncated) {
      cell.ok = false;
      cell.error = r.error;
      return cell;
    }
    if (rep == 0 || s < cell.wall_seconds) {
      cell.wall_seconds = s;
      cell.allocations = static_cast<long long>(allocs_after - allocs_before);
    }
    cell.ok = true;
    cell.rounds = r.rounds;
    cell.peak_backlog = r.peak_backlog;
    cell.total_response = r.metrics.total_response;
    cell.avg_response = r.metrics.avg_response;
    cell.max_response = r.metrics.max_response;
    cell.makespan = r.metrics.makespan;
    cell.backlog_surge = r.peak_backlog - base.peak_backlog;
    cell.drain_rounds =
        std::max<long long>(0, r.rounds - script.last_event_round());
    cell.downtime_rounds = r.downtime_rounds;
  }
  if (cell.wall_seconds > 0.0 && cell.rounds > 0) {
    cell.rounds_per_sec = static_cast<double>(cell.rounds) / cell.wall_seconds;
  }
  cell.peak_rss_kb = PeakRssKb();
  return cell;
}

// Synthetic backlog mutation sequence for the matcher micro-bench: a port
// square with ~2 flows per port, where 3 of 4 rounds churn ~1/8 of the
// backlog (arrivals + swap-erase retirements, the policy's access pattern)
// and 1 in 4 repeats the previous graph verbatim (the cache-hit case the
// incremental matcher recognizes). Weights are small integers fixed at
// arrival, so scratch/warmstart totals must agree exactly.
struct MatcherSequence {
  std::vector<BipartiteGraph> graphs;
  std::vector<std::vector<double>> weights;
  long long total_edges = 0;
};

MatcherSequence BuildMatcherSequence(int ports, int rounds,
                                     std::uint64_t seed) {
  struct Backlogged {
    int u, v;
    double w;
  };
  Rng rng(seed);
  auto draw = [&]() {
    return Backlogged{rng.UniformInt(0, ports - 1),
                      rng.UniformInt(0, ports - 1),
                      static_cast<double>(rng.UniformInt(1, 16))};
  };
  std::vector<Backlogged> backlog;
  for (int i = 0; i < 2 * ports; ++i) backlog.push_back(draw());
  MatcherSequence seq;
  for (int t = 0; t < rounds; ++t) {
    if (t > 0 && rng.UniformInt(0, 3) != 0) {
      const int churn = ports / 8 + 1;
      for (int c = 0; c < churn && !backlog.empty(); ++c) {
        const int k = rng.UniformInt(0, static_cast<int>(backlog.size()) - 1);
        backlog[k] = backlog.back();
        backlog.pop_back();
      }
      for (int c = 0; c < churn; ++c) backlog.push_back(draw());
    }
    BipartiteGraph g(ports, ports);
    std::vector<double> w;
    w.reserve(backlog.size());
    for (const Backlogged& e : backlog) {
      g.AddEdge(e.u, e.v);
      w.push_back(e.w);
    }
    seq.total_edges += g.num_edges();
    seq.graphs.push_back(std::move(g));
    seq.weights.push_back(std::move(w));
  }
  return seq;
}

// `run` owns its matcher, replays the whole sequence, and returns the sum of
// matched weights; the fastest of `repeat` replays is reported.
MatcherCell RunMatcherKernel(
    const std::string& name, const MatcherSequence& seq, int repeat,
    const std::function<double(const MatcherSequence&)>& run) {
  MatcherCell cell;
  cell.name = name;
  cell.rounds = static_cast<long long>(seq.graphs.size());
  cell.edges = seq.total_edges;
  for (int rep = 0; rep < repeat; ++rep) {
    Stopwatch sw;
    const double total = run(seq);
    const double s = sw.ElapsedSeconds();
    if (rep == 0 || s < cell.wall_seconds) cell.wall_seconds = s;
    cell.total_weight = total;
  }
  return cell;
}

std::vector<MatcherCell> RunMatcherKernels(const SuiteSpec& suite,
                                           std::uint64_t seed, int repeat) {
  std::vector<MatcherCell> cells;
  if (suite.matcher_ports <= 0) return cells;
  const MatcherSequence seq =
      BuildMatcherSequence(suite.matcher_ports, suite.matcher_rounds, seed);
  auto matched_weight = [](const std::vector<double>& w,
                           const std::vector<int>& out) {
    double total = 0.0;
    for (int e : out) total += w[e];
    return total;
  };
  cells.push_back(RunMatcherKernel(
      "matcher_scratch", seq, repeat, [&](const MatcherSequence& s) {
        MaxWeightMatcher m;
        std::vector<int> out;
        double total = 0.0;
        for (std::size_t i = 0; i < s.graphs.size(); ++i) {
          m.Solve(s.graphs[i], s.weights[i], &out);
          total += matched_weight(s.weights[i], out);
        }
        return total;
      }));
  cells.push_back(RunMatcherKernel(
      "matcher_warmstart", seq, repeat, [&](const MatcherSequence& s) {
        IncrementalMatcher m;
        std::vector<int> out;
        double total = 0.0;
        for (std::size_t i = 0; i < s.graphs.size(); ++i) {
          m.Solve(s.graphs[i], s.weights[i], &out);
          total += matched_weight(s.weights[i], out);
        }
        return total;
      }));
  const std::pair<const char*, double> auction_eps[] = {{"0.5", 0.5},
                                                        {"0.05", 0.05}};
  for (const auto& [eps_label, eps] : auction_eps) {
    cells.push_back(RunMatcherKernel(
        std::string("matcher_auction_eps") + eps_label, seq, repeat,
        [&, eps](const MatcherSequence& s) {
          AuctionMatcher m;
          std::vector<int> out;
          double total = 0.0;
          for (std::size_t i = 0; i < s.graphs.size(); ++i) {
            m.Solve(s.graphs[i], s.weights[i], eps, &out);
            total += matched_weight(s.weights[i], out);
          }
          return total;
        }));
  }
  return cells;
}

KernelCell RunColoringKernel(const std::string& name,
                             EdgeColoringAlgorithm algorithm,
                             const BipartiteGraph& g, int repeat) {
  KernelCell cell;
  cell.name = name;
  cell.edges = g.num_edges();
  cell.max_degree = g.MaxDegree();
  for (int rep = 0; rep < repeat; ++rep) {
    Stopwatch sw;
    const EdgeColoring ec = ColorBipartiteEdges(g, algorithm);
    const double s = sw.ElapsedSeconds();
    if (rep == 0 || s < cell.wall_seconds) cell.wall_seconds = s;
    cell.num_colors = ec.num_colors;
  }
  return cell;
}

void WriteJson(std::ostream& out, const SuiteSpec& suite,
               const std::vector<BenchCell>& cells,
               const std::vector<KernelCell>& kernels,
               const std::vector<MatcherCell>& matchers, int repeat,
               std::uint64_t seed) {
  long long total_rounds = 0;
  double total_wall = 0.0;
  for (const BenchCell& c : cells) {
    if (!c.ok) continue;
    total_rounds += c.rounds;
    total_wall += c.wall_seconds;
  }
  out << "{\n";
  out << "  \"suite\": \"" << JsonEscape(suite.name) << "\",\n";
#ifdef NDEBUG
  out << "  \"build_type\": \"Release\",\n";
#else
  out << "  \"build_type\": \"Debug\",\n";
#endif
  // Provenance makes artifacts comparable across machines; the sweep
  // reports (SWEEP_*.json) embed the same block.
  WriteProvenanceJson(out, CollectProvenance(), 2);
  out << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BenchCell& c = cells[i];
    out << "    {\"instance\": \"" << JsonEscape(c.instance)
        << "\", \"solver\": \"" << JsonEscape(c.solver) << "\", \"ok\": "
        << (c.ok ? "true" : "false");
    if (c.ok) {
      out << ", \"wall_seconds\": " << JsonNum(c.wall_seconds)
          << ", \"rounds\": " << c.rounds
          << ", \"rounds_per_sec\": " << JsonNum(c.rounds_per_sec)
          << ", \"peak_backlog\": " << c.peak_backlog
          << ", \"allocations\": " << c.allocations
          << ", \"total_response\": " << JsonNum(c.total_response)
          << ", \"avg_response\": " << JsonNum(c.avg_response)
          << ", \"max_response\": " << JsonNum(c.max_response)
          << ", \"makespan\": " << c.makespan
          << ", \"peak_rss_kb\": " << c.peak_rss_kb;
      if (c.downtime_rounds >= 0) {
        out << ", \"backlog_surge\": " << c.backlog_surge
            << ", \"recovery_drain_rounds\": " << c.drain_rounds
            << ", \"downtime_rounds\": " << c.downtime_rounds;
      }
    } else {
      out << ", \"error\": \"" << JsonEscape(c.error) << "\"";
    }
    out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelCell& k = kernels[i];
    out << "    {\"name\": \"" << JsonEscape(k.name) << "\", \"edges\": "
        << k.edges << ", \"max_degree\": " << k.max_degree
        << ", \"num_colors\": " << k.num_colors
        << ", \"wall_seconds\": " << JsonNum(k.wall_seconds) << "}"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"matchers\": [\n";
  for (std::size_t i = 0; i < matchers.size(); ++i) {
    const MatcherCell& m = matchers[i];
    out << "    {\"name\": \"" << JsonEscape(m.name) << "\", \"rounds\": "
        << m.rounds << ", \"edges\": " << m.edges
        << ", \"wall_seconds\": " << JsonNum(m.wall_seconds)
        << ", \"total_weight\": " << JsonNum(m.total_weight) << "}"
        << (i + 1 < matchers.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"suite_totals\": {\"rounds\": " << total_rounds
      << ", \"wall_seconds\": " << JsonNum(total_wall)
      << ", \"rounds_per_sec\": "
      << JsonNum(total_wall > 0.0 ? total_rounds / total_wall : 0.0)
      << "}\n";
  out << "}\n";
}

int Run(int argc, char** argv) {
  std::string suite_name = "core";
  std::string out_path;
  int repeat = 3;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> const char* {
      const std::string prefix = "--" + flag + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << "flowsched_bench --suite=core|smoke [--out=PATH] "
                   "[--repeat=N] [--seed=N] [--list]\n";
      return 0;
    } else if (arg == "--list") {
      std::cout << "suites: core smoke\n";
      return 0;
    } else if (const char* v = value("suite")) {
      suite_name = v;
    } else if (const char* v = value("out")) {
      out_path = v;
    } else if (const char* v = value("repeat")) {
      repeat = std::atoi(v);
    } else if (const char* v = value("seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "error: unknown argument \"" << arg << "\"\n";
      return 2;
    }
  }
  const SuiteSpec suite = MakeSuite(suite_name);
  if (suite.name.empty()) {
    std::cerr << "error: unknown suite \"" << suite_name
              << "\" (core, smoke)\n";
    return 2;
  }
  if (repeat < 1) repeat = 1;
  if (out_path.empty()) out_path = "BENCH_" + suite.name + ".json";

  const std::vector<std::string> solvers = SimulationSolverNames();
  std::vector<BenchCell> cells;
  TextTable table({"instance", "solver", "wall_ms", "rounds", "rounds/s",
                   "peak_backlog", "allocs", "peak_rss_kb"});
  for (const std::string& spec : suite.instances) {
    std::string error;
    const auto instance = LoadInstance(spec, &error);
    if (!instance.has_value()) {
      std::cerr << "error: " << spec << ": " << error << "\n";
      return 2;
    }
    for (const std::string& solver : solvers) {
      if (SkipCell(spec, solver)) continue;
      BenchCell cell = RunCell(spec, *instance, solver, seed, repeat);
      if (cell.ok) {
        table.Row(cell.instance, cell.solver, cell.wall_seconds * 1e3,
                  cell.rounds, cell.rounds_per_sec, cell.peak_backlog,
                  cell.allocations, cell.peak_rss_kb);
      } else {
        table.Row(cell.instance, cell.solver, "FAIL: " + cell.error, "-", "-",
                  "-", "-", "-");
      }
      cells.push_back(std::move(cell));
    }
  }
  for (const std::string& spec : suite.streams) {
    BenchCell cell = RunStreamCell(spec, seed, repeat);
    if (cell.ok) {
      table.Row(cell.instance, cell.solver, cell.wall_seconds * 1e3,
                cell.rounds, cell.rounds_per_sec, cell.peak_backlog,
                cell.allocations, cell.peak_rss_kb);
    } else {
      table.Row(cell.instance, cell.solver, "FAIL: " + cell.error, "-", "-",
                "-", "-", "-");
    }
    cells.push_back(std::move(cell));
  }
  for (const ScenarioBenchSpec& spec : suite.scenarios) {
    BenchCell cell = RunScenarioCell(spec, seed, repeat);
    if (cell.ok) {
      table.Row(cell.instance, cell.solver, cell.wall_seconds * 1e3,
                cell.rounds, cell.rounds_per_sec, cell.peak_backlog,
                cell.allocations, cell.peak_rss_kb);
    } else {
      table.Row(cell.instance, cell.solver, "FAIL: " + cell.error, "-", "-",
                "-", "-", "-");
    }
    cells.push_back(std::move(cell));
  }
  for (const VariantSpec& spec : suite.variants) {
    std::string error;
    const auto instance = LoadInstance(spec.instance, &error);
    if (!instance.has_value()) {
      std::cerr << "error: " << spec.instance << ": " << error << "\n";
      return 2;
    }
    BenchCell cell = RunCell(spec.instance, *instance, spec.solver, seed,
                             repeat, spec.params, spec.label);
    if (cell.ok) {
      table.Row(cell.instance, cell.solver, cell.wall_seconds * 1e3,
                cell.rounds, cell.rounds_per_sec, cell.peak_backlog,
                cell.allocations, cell.peak_rss_kb);
    } else {
      table.Row(cell.instance, cell.solver, "FAIL: " + cell.error, "-", "-",
                "-", "-", "-");
    }
    cells.push_back(std::move(cell));
  }

  // Matching-kernel micro-bench: one shared mutation sequence, one row per
  // kernel, so the scratch/warmstart/auction tradeoff is visible without
  // the simulator around it.
  const std::vector<MatcherCell> matchers =
      RunMatcherKernels(suite, seed, repeat);
  for (const MatcherCell& m : matchers) {
    table.Row(m.name,
              "rounds=" + std::to_string(m.rounds) +
                  " E=" + std::to_string(m.edges),
              m.wall_seconds * 1e3, m.rounds, "-", "-", "-", "-");
  }

  // Edge-coloring kernel comparison on one dense random multigraph.
  std::vector<KernelCell> kernels;
  if (suite.coloring_side > 0) {
    Rng rng(seed);
    BipartiteGraph g(suite.coloring_side, suite.coloring_side);
    for (int i = 0; i < suite.coloring_edges; ++i) {
      g.AddEdge(rng.UniformInt(0, suite.coloring_side - 1),
                rng.UniformInt(0, suite.coloring_side - 1));
    }
    kernels.push_back(RunColoringKernel(
        "edge_coloring_koenig", EdgeColoringAlgorithm::kKoenig, g, repeat));
    kernels.push_back(RunColoringKernel("edge_coloring_euler",
                                        EdgeColoringAlgorithm::kEulerSplit, g,
                                        repeat));
    for (const KernelCell& k : kernels) {
      table.Row(k.name,
                "D=" + std::to_string(k.max_degree) +
                    " E=" + std::to_string(k.edges),
                k.wall_seconds * 1e3, "-", "-", "-", "-", "-");
    }
  }
  table.Print(std::cout);

  long long total_rounds = 0;
  double total_wall = 0.0;
  int failures = 0;
  for (const BenchCell& c : cells) {
    if (!c.ok) {
      ++failures;
      continue;
    }
    total_rounds += c.rounds;
    total_wall += c.wall_seconds;
  }
  std::cout << "\nsuite " << suite.name << ": " << total_rounds
            << " rounds in " << TextTable::Format(total_wall * 1e3)
            << " ms => "
            << TextTable::Format(total_wall > 0.0 ? total_rounds / total_wall
                                                  : 0.0)
            << " rounds/sec aggregate\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 2;
  }
  WriteJson(out, suite, cells, kernels, matchers, repeat, seed);
  std::cout << "results written to " << out_path << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace flowsched

int main(int argc, char** argv) { return flowsched::Run(argc, argv); }
