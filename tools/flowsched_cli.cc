// flowsched_cli: run any registered solver (or all of them) on an instance
// and emit a comparison table — the batch driver over the Solver facade.
//
// Usage:
//   flowsched_cli --list | --list-solvers
//   flowsched_cli [--instance=<csv path | generator spec>]
//                 [--solver=all | name[,name...]]
//                 [--param key=value]... [--seed=N] [--max-rounds=N]
//                 [--time-limit=SECONDS] [--csv=out.csv]
//                 [--schedule-out=schedule.csv] [--diagnostics]
//
// Examples:
//   flowsched_cli --instance=poisson:ports=8,load=1.0,rounds=8 --solver=all
//   flowsched_cli --instance=trace.csv --solver=mrt.theorem3 \
//       --schedule-out=plan.csv
//   flowsched_cli --instance=fig4b --solver=online.maxweight,mrt.exact
//
// Generator specs are documented in api/instance_source.h; per-solver
// parameter keys in the README's registry table (or `--list`).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/instance_source.h"
#include "api/registry.h"
#include "model/trace_io.h"
#include "util/csv.h"
#include "util/table.h"

namespace flowsched {
namespace {

struct CliOptions {
  std::string instance = "poisson:ports=8,load=1.0,rounds=8,seed=1";
  std::vector<std::string> solvers;  // Empty = all.
  SolveOptions solve;
  std::string csv_out;
  std::string schedule_out;
  bool list = false;
  bool list_solvers = false;
  bool diagnostics = false;
};

void PrintUsage(std::ostream& out) {
  out << "flowsched_cli: run registered solvers on an instance.\n"
         "  --list                 print solver names + descriptions and exit\n"
         "  --list-solvers         print registered solver names, one per\n"
         "                         line (script-friendly), and exit\n"
         "  --instance=SOURCE      CSV trace path (instance or coflow trace)\n"
         "                         or generator spec (poisson|coflow|shuffle|\n"
         "                         incast|fig4a|fig4b[:k=v,...])\n"
         "  --solver=NAMES         'all' (default) or comma-separated names\n"
         "  --param KEY=VALUE      solver-specific parameter (repeatable)\n"
         "  --seed=N               RNG seed for randomized policies\n"
         "  --max-rounds=N         online simulation horizon\n"
         "  --time-limit=SECONDS   advisory wall-clock budget per solver\n"
         "  --csv=PATH             also write the comparison table as CSV\n"
         "  --schedule-out=PATH    write the schedule (single-solver runs)\n"
         "  --diagnostics          print each solver's diagnostic key/values\n";
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions& cli, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--list-solvers") {
      cli.list_solvers = true;
    } else if (arg == "--diagnostics") {
      cli.diagnostics = true;
    } else if (ParseFlag(arg, "instance", &value)) {
      cli.instance = value;
    } else if (ParseFlag(arg, "solver", &value)) {
      if (value != "all") {
        std::string name;
        for (char c : value + ",") {
          if (c == ',') {
            if (!name.empty()) cli.solvers.push_back(name);
            name.clear();
          } else {
            name += c;
          }
        }
      }
    } else if (arg == "--param" && i + 1 < argc) {
      const std::string pair = argv[++i];
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        error = "--param expects KEY=VALUE, got \"" + pair + "\"";
        return false;
      }
      cli.solve.params[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (ParseFlag(arg, "param", &value)) {
      const auto eq = value.find('=');
      if (eq == std::string::npos) {
        error = "--param expects KEY=VALUE, got \"" + value + "\"";
        return false;
      }
      cli.solve.params[value.substr(0, eq)] = value.substr(eq + 1);
    } else if (ParseFlag(arg, "seed", &value)) {
      cli.solve.seed = std::stoull(value);
    } else if (ParseFlag(arg, "max-rounds", &value)) {
      cli.solve.max_rounds = std::stoi(value);
    } else if (ParseFlag(arg, "time-limit", &value)) {
      cli.solve.time_limit_seconds = std::stod(value);
    } else if (ParseFlag(arg, "csv", &value)) {
      cli.csv_out = value;
    } else if (ParseFlag(arg, "schedule-out", &value)) {
      cli.schedule_out = value;
    } else {
      error = "unknown argument \"" + arg + "\" (see --help)";
      return false;
    }
  }
  return true;
}

std::string FormatAllowance(const CapacityAllowance& a) {
  std::string out = "x" + TextTable::Format(a.factor);
  if (a.additive != 0) out += "+" + std::to_string(a.additive);
  return out;
}

int Run(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, cli, error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const SolverRegistry& registry = SolverRegistry::Global();

  if (cli.list_solvers) {
    for (const std::string& name : registry.Names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (cli.list) {
    TextTable table({"solver", "description"});
    for (const std::string& name : registry.Names()) {
      table.Row(name, registry.Description(name));
    }
    table.Print(std::cout);
    return 0;
  }

  const auto instance = LoadInstance(cli.instance, &error);
  if (!instance.has_value()) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  std::cout << "instance: " << cli.instance << " (" << instance->num_flows()
            << " flows, " << instance->sw().num_inputs() << "x"
            << instance->sw().num_outputs() << " switch, dmax="
            << instance->MaxDemand() << ")\n\n";

  std::vector<std::string> names =
      cli.solvers.empty() ? registry.Names() : cli.solvers;

  TextTable table({"solver", "status", "total_resp", "avg_resp", "max_resp",
                   "makespan", "allowance", "lower_bound", "wall_ms"});
  std::ofstream csv_file;
  CsvWriter csv(csv_file);
  if (!cli.csv_out.empty()) {
    csv_file.open(cli.csv_out);
    csv.Row("solver", "status", "total_response", "avg_response",
            "max_response", "makespan", "allowance_factor",
            "allowance_additive", "lower_bound", "wall_seconds", "error");
  }

  int solved = 0;
  std::vector<SolveReport> reports;
  for (const std::string& name : names) {
    SolveReport report = registry.Solve(name, *instance, cli.solve);
    if (report.ok) {
      ++solved;
      table.Row(report.solver, "ok", report.metrics.total_response,
                report.metrics.avg_response, report.metrics.max_response,
                report.metrics.makespan, FormatAllowance(report.allowance),
                report.lower_bound.has_value()
                    ? TextTable::Format(*report.lower_bound)
                    : std::string("-"),
                report.wall_seconds * 1e3);
    } else {
      table.Row(report.solver, "FAIL: " + report.error, "-", "-", "-", "-",
                "-", "-", report.wall_seconds * 1e3);
    }
    if (!cli.csv_out.empty()) {
      csv.Row(report.solver, report.ok ? "ok" : "fail",
              report.metrics.total_response, report.metrics.avg_response,
              report.metrics.max_response, report.metrics.makespan,
              report.allowance.factor,
              static_cast<long long>(report.allowance.additive),
              report.lower_bound.value_or(0.0), report.wall_seconds,
              report.error);
    }
    reports.push_back(std::move(report));
  }
  table.Print(std::cout);
  if (!cli.csv_out.empty()) {
    std::cout << "\ncomparison written to " << cli.csv_out << "\n";
  }

  if (cli.diagnostics) {
    for (const SolveReport& report : reports) {
      if (report.diagnostics.empty()) continue;
      std::cout << "\n" << report.solver << " diagnostics:\n";
      for (const auto& [key, value] : report.diagnostics) {
        std::cout << "  " << key << " = " << TextTable::Format(value) << "\n";
      }
    }
  }

  if (!cli.schedule_out.empty()) {
    if (reports.size() != 1) {
      std::cerr << "\n--schedule-out requires exactly one --solver (got "
                << reports.size() << ")\n";
      return 2;
    }
    if (!reports[0].ok) {
      std::cerr << "\nno schedule to write: " << reports[0].error << "\n";
      return 1;
    }
    std::ofstream out(cli.schedule_out);
    WriteScheduleCsv(reports[0].schedule, out);
    std::cout << "\nschedule written to " << cli.schedule_out << "\n";
  }
  return solved > 0 ? 0 : 1;
}

}  // namespace
}  // namespace flowsched

int main(int argc, char** argv) { return flowsched::Run(argc, argv); }
