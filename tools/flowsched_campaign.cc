// flowsched_campaign: durable, resumable experiment campaigns.
//
// A campaign spec (campaigns/*.json, or the [grid]-sectioned key=value
// format — see docs/campaigns.md) names an output root and a list of sweep
// grids. Every expanded task gets its own directory under
// <out_root>/runs/<task_id>/ holding outcome.json + meta.json (params,
// spec hash, build provenance, timestamps, exit code), so a killed
// campaign resumes exactly where it stopped and the merged report is
// byte-identical to an uninterrupted run.
//
// Subcommands:
//   run       execute the plan (then collect + report, unless --no-report)
//   plan      print the expanded task list and exit (alias: run --dry-run)
//   status    count up-to-date / stale / missing task directories
//   collect   merge completed runs into aggregate/<grid>.{json,csv}
//   report    collect + write the self-contained report/index.html
//
// Usage:
//   flowsched_campaign run --spec=campaigns/fig6.json --jobs=8
//   flowsched_campaign run --spec=campaigns/fig6.json --resume
//   flowsched_campaign plan --spec=campaigns/core.json
//   flowsched_campaign report --spec=campaigns/fig6.json
//
// Exit codes: 0 all tasks ok (or nothing to do), 1 some task failed,
// 2 usage/spec/environment error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "campaign/campaign_plan.h"
#include "campaign/campaign_report.h"
#include "campaign/campaign_runner.h"
#include "campaign/campaign_spec.h"
#include "util/provenance.h"

namespace flowsched {
namespace {

void PrintUsage(std::ostream& out) {
  out << "flowsched_campaign: durable, resumable experiment campaigns.\n"
         "usage: flowsched_campaign <run|plan|status|collect|report> "
         "--spec=FILE [flags]\n"
         "  --spec=FILE    campaign spec (JSON or [grid]-sectioned "
         "key=value)\n"
         "  --out=DIR      output root (default: spec out_root, else "
         "campaign_runs/<name>)\n"
         "  --jobs=N       worker threads (default: hardware threads)\n"
         "  --resume       skip tasks whose meta.json matches the current\n"
         "                 spec hash and build provenance\n"
         "  --dry-run      print the expanded task list and exit\n"
         "  --fail-fast    stop scheduling new tasks after the first "
         "failure\n"
         "  --no-report    run only; skip the collect + report step\n"
         "  --quiet        suppress per-task progress lines\n"
         "see docs/campaigns.md for the spec grammar, output layout,\n"
         "resume semantics, and report schema.\n";
}

int RunMain(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage(std::cout);
    return 0;
  }
  if (command != "run" && command != "plan" && command != "status" &&
      command != "collect" && command != "report") {
    std::cerr << "error: unknown command \"" << command
              << "\" (see --help)\n";
    return 2;
  }

  std::string spec_path, out_root;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  bool resume = false, dry_run = false, fail_fast = false;
  bool no_report = false, quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> const char* {
      const std::string prefix = "--" + flag + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--fail-fast") {
      fail_fast = true;
    } else if (arg == "--no-report") {
      no_report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if ((v = value("spec"))) {
      spec_path = v;
    } else if ((v = value("out"))) {
      out_root = v;
    } else if ((v = value("jobs"))) {
      jobs = std::atoi(v);
      if (jobs < 1) {
        std::cerr << "error: --jobs must be >= 1\n";
        return 2;
      }
    } else {
      std::cerr << "error: unknown argument \"" << arg << "\" (see --help)\n";
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::cerr << "error: --spec=FILE is required (see --help)\n";
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "error: cannot open spec file \"" << spec_path << "\"\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  CampaignSpec spec;
  std::string error;
  if (!ParseCampaignSpec(buffer.str(), spec, &error)) {
    std::cerr << "error: " << spec_path << ": " << error << "\n";
    return 2;
  }
  if (out_root.empty()) out_root = CampaignOutRoot(spec);

  CampaignPlan plan;
  if (!ExpandCampaign(spec, SolverRegistry::Global(), plan, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  if (command == "plan" || dry_run) {
    for (const CampaignGrid& grid : plan.grids) {
      std::cout << "grid " << grid.spec.name << " ("
                << grid.plan.tasks.size() << " tasks over "
                << grid.plan.cells.size() << " cells, hash "
                << HashHex(grid.grid_hash) << "):\n";
      WriteTaskListText(std::cout, grid.plan, &grid.task_ids);
    }
    std::cout << "campaign " << spec.name << ": " << plan.total_tasks
              << " tasks, out root " << out_root << " (nothing executed)\n";
    return 0;
  }

  if (command == "status") {
    const Provenance prov = CollectProvenance();
    int up_to_date = 0, stale = 0;
    for (const CampaignGrid& grid : plan.grids) {
      for (const SweepTask& task : grid.plan.tasks) {
        const std::string dir =
            CampaignTaskDir(out_root, grid.task_ids[task.index]);
        if (CampaignTaskUpToDate(dir, HashHex(grid.task_hashes[task.index]),
                                 prov)) {
          ++up_to_date;
        } else {
          ++stale;
          if (!quiet) {
            std::cout << "pending " << grid.task_ids[task.index] << "\n";
          }
        }
      }
    }
    std::cout << "campaign " << spec.name << ": " << up_to_date << "/"
              << plan.total_tasks << " tasks up to date, " << stale
              << " pending (out root " << out_root << ")\n";
    return 0;
  }

  if (command == "collect" || command == "report") {
    CampaignCollectSummary summary;
    if (!CollectCampaign(spec, plan, out_root, summary, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (command == "report") {
      if (!WriteCampaignReport(spec, plan, out_root, &error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
      std::cout << "report written to " << out_root
                << "/report/index.html\n";
    }
    std::cout << "collected " << summary.ok << "/" << summary.total
              << " tasks";
    if (summary.failed > 0) std::cout << ", " << summary.failed << " failed";
    if (summary.missing > 0) {
      std::cout << ", " << summary.missing << " missing";
    }
    std::cout << " -> " << out_root << "/aggregate/\n";
    return summary.failed == 0 ? 0 : 1;
  }

  // command == "run"
  CampaignRunOptions options;
  options.jobs = jobs;
  options.resume = resume;
  options.fail_fast = fail_fast;
  if (!quiet) options.log = &std::cerr;

  CampaignRunSummary summary;
  if (!RunCampaign(spec, plan, out_root, options, summary, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  std::cout << "campaign " << spec.name << ": " << summary.ok << " ok, "
            << summary.failed << " failed, " << summary.skipped
            << " skipped (resume), " << summary.not_run
            << " not run, of " << summary.total << " tasks\n";

  if (!no_report) {
    CampaignCollectSummary collect;
    if (!CollectCampaign(spec, plan, out_root, collect, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (!WriteCampaignReport(spec, plan, out_root, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "report written to " << out_root << "/report/index.html ("
              << collect.ok << "/" << collect.total << " tasks merged)\n";
  }
  return summary.failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace flowsched

int main(int argc, char** argv) { return flowsched::RunMain(argc, argv); }
