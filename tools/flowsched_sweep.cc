// flowsched_sweep: the parallel experiment-campaign driver. Expands a
// SweepSpec grid (solvers × instance templates × load/ports/rounds axes ×
// seeds × trials), runs every task on a work-stealing thread pool with
// deterministic per-task seeding, and writes three artifacts:
//
//   <out>.jsonl   one line per task, appended live in completion order —
//                 the crash-safe incremental record
//   <out>.json    per-cell distributional statistics (Welford mean/stddev,
//                 min/max, normal-approx 95% CIs) + provenance + spec echo
//   <out>.csv     the same cells, one row each, for plotting
//
// Everything except wall-clock timing is byte-identical regardless of
// --jobs; pass --no-timing to strip the timing fields and byte-compare
// reports across thread counts (CI does exactly that).
//
// Usage:
//   flowsched_sweep --spec=FILE [overrides...]
//   flowsched_sweep --smoke [--jobs=N]
//   flowsched_sweep --solvers=online.fifo,online.srpt \
//       --instances='poisson:ports={ports},load={load},rounds=200,seed={seed}' \
//       --loads=0.5:1.0:0.1 --ports=64,256 --seeds=1..5 --jobs=8
//
// Templates also accept a {trial} placeholder (the 0-based trial index), so
// trace-driven campaigns can run one file per repetition:
//   flowsched_sweep --solvers='coflow.*' --instances='traces/day{trial}.csv' \
//       --trials=7
//
// Flags mirror the spec keys (--solvers, --instances, --loads, --ports,
// --rounds, --seeds, --trials, --base-seed, --max-rounds, --name,
// --param K=V) and override the file when both are given. See README
// "Running experiment sweeps".
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_plan.h"
#include "exp/aggregator.h"
#include "exp/experiment_runner.h"
#include "exp/sweep_spec.h"
#include "util/table.h"

namespace flowsched {
namespace {

// The built-in CI/quick-start grid: 5 policies x 3 instance families x
// 2 loads x 2 port counts x 2 seeds = 120 tasks over 60 cells; finishes in
// seconds. The coflow family exercises the coflow.* solvers' CCT reporting
// (and the flow-level solvers on grouped traffic); the cdf family runs the
// realistic-traffic generator (src/traffic/, dist fixed to websearch — the
// smoke grid has no {dist} axis); every template is fabric-wrapped so
// fabric.sebf shards them 2 ways while every other solver runs the
// identical inner traffic unsharded (the fabric: stamp is inert for
// non-fabric solvers).
const char kSmokeSpec[] =
    "name=smoke\n"
    "solvers=online.fifo,online.srpt,online.maxweight,coflow.sebf,"
    "fabric.sebf\n"
    "instances=fabric:shards=2,partition=block,"
    "poisson:ports={ports},load={load},rounds=60,seed={seed};"
    "fabric:shards=2,partition=block,"
    "coflow:ports={ports},load={load},rounds=60,width=6,skew=0.7,seed={seed};"
    "fabric:shards=2,partition=block,"
    "cdf:dist=websearch,ports={ports},load={load},rounds=60,seed={seed}\n"
    "loads=0.7,1.0\n"
    "ports=16,32\n"
    "seeds=1..2\n"
    "param=validate=0\n";

void PrintUsage(std::ostream& out) {
  out << "flowsched_sweep: run a solver x instance x axes experiment grid.\n"
         "  --spec=FILE         sweep spec (key=value lines or flat JSON)\n"
         "  --smoke             built-in small grid (CI / quick start)\n"
         "  --jobs=N            worker threads (default: hardware threads)\n"
         "  --out=PREFIX        artifact prefix (default SWEEP_<name>)\n"
         "  --json=PATH --csv=PATH --jsonl=PATH   per-artifact overrides\n"
         "  --no-timing         omit wall-clock fields from json/csv\n"
         "                      (reports become byte-identical across --jobs)\n"
         "  --dry-run           print the expanded task list and exit without\n"
         "                      running anything or touching output files\n"
         "  --quiet             suppress the progress line\n"
         "spec overrides (same syntax as spec keys):\n"
         "  --name=S --solvers=LIST --instances=LIST(';'-sep) --loads=AXIS\n"
         "  --ports=AXIS --rounds=AXIS --shards=AXIS --dists=LIST\n"
         "  --seeds=AXIS\n"
         "  --scenarios=LIST('|'-sep: none, a path, or inline:<script>)\n"
         "  --trials=N --base-seed=N --max-rounds=N --param KEY=VALUE\n"
         "axes: comma lists; a:b:step (doubles) or a..b (ints) ranges.\n"
         "a scenarios axis reruns every cell under each fault script and\n"
         "adds robustness columns (downtime, backlog surge, drain time,\n"
         "response inflation), e.g.\n"
         "  --scenarios='none|inline:PORT_DOWN 20 3;PORT_UP 60 3'\n"
         "{shards} in a fabric template sweeps the pod count, e.g.\n"
         "  --solvers='fabric.sebf' --shards=1,2,4,8 \\\n"
         "  --instances='fabric:shards={shards},partition=block,"
         "coflow:ports=64,load=1.0,rounds=100,seed={seed}'\n"
         "{dist} in a cdf template sweeps the size distribution, e.g.\n"
         "  --dists=websearch,fbhdp,alistorage \\\n"
         "  --instances='cdf:dist={dist},ports=256,load={load},rounds=200,"
         "seed={seed}'\n";
}

int Run(int argc, char** argv) {
  std::string spec_path;
  bool smoke = false;
  bool no_timing = false;
  bool dry_run = false;
  bool quiet = false;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  std::string out_prefix, json_path, csv_path, jsonl_path;
  // Overrides are replayed through the spec parser after the file, so CLI
  // flags and spec keys cannot drift apart.
  std::string overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> const char* {
      const std::string prefix = "--" + flag + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--no-timing") {
      no_timing = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if ((v = value("spec"))) {
      spec_path = v;
    } else if ((v = value("jobs"))) {
      jobs = std::atoi(v);
      if (jobs < 1) {
        std::cerr << "error: --jobs must be >= 1\n";
        return 2;
      }
    } else if ((v = value("out"))) {
      out_prefix = v;
    } else if ((v = value("json"))) {
      json_path = v;
    } else if ((v = value("csv"))) {
      csv_path = v;
    } else if ((v = value("jsonl"))) {
      jsonl_path = v;
    } else if (arg == "--param" && i + 1 < argc) {
      overrides += std::string("param=") + argv[++i] + "\n";
    } else if ((v = value("param"))) {
      overrides += std::string("param=") + v + "\n";
    } else if ((v = value("base-seed"))) {
      overrides += std::string("base_seed=") + v + "\n";
    } else if ((v = value("max-rounds"))) {
      overrides += std::string("max_rounds=") + v + "\n";
    } else {
      // Spec-keyed flags: --name, --solvers, --instances, --loads, ...
      bool matched = false;
      for (const char* key : {"name", "solvers", "instances", "instance",
                              "loads", "ports", "rounds", "shards", "dists",
                              "seeds", "scenarios", "trials"}) {
        if ((v = value(key))) {
          overrides += std::string(key) + "=" + v + "\n";
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::cerr << "error: unknown argument \"" << arg
                  << "\" (see --help)\n";
        return 2;
      }
    }
  }

  SweepSpec spec;
  std::string error;
  if (smoke && !spec_path.empty()) {
    std::cerr << "error: --smoke and --spec are mutually exclusive\n";
    return 2;
  }
  if (smoke) {
    if (!ParseSweepSpec(kSmokeSpec, spec, &error)) {
      std::cerr << "internal error: smoke spec: " << error << "\n";
      return 2;
    }
  } else if (!spec_path.empty()) {
    std::ifstream in(spec_path);
    if (!in) {
      std::cerr << "error: cannot open spec file \"" << spec_path << "\"\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!ParseSweepSpec(buffer.str(), spec, &error)) {
      std::cerr << "error: " << spec_path << ": " << error << "\n";
      return 2;
    }
  }
  if (!overrides.empty() && !ParseSweepSpec(overrides, spec, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (spec.solvers.empty() || spec.instances.empty()) {
    std::cerr << "error: a sweep needs --spec, --smoke, or at least "
                 "--solvers and --instances (see --help)\n";
    return 2;
  }

  if (out_prefix.empty()) out_prefix = "SWEEP_" + spec.name;
  if (json_path.empty()) json_path = out_prefix + ".json";
  if (csv_path.empty()) csv_path = out_prefix + ".csv";
  if (jsonl_path.empty()) jsonl_path = out_prefix + ".jsonl";

  // Validate the grid before touching any output file: opening the JSONL
  // truncates it, and a typo'd rerun must not wipe the previous campaign's
  // crash-safe record. (RunSweep re-expands; expansion is cheap and
  // deterministic.)
  {
    SweepPlan probe;
    if (!ExpandSweep(spec, SolverRegistry::Global(), probe, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (dry_run) {
      // Same printer as flowsched_campaign plan/--dry-run, so the two
      // tools' expansions can be diffed directly.
      WriteTaskListText(std::cout, probe, /*ids=*/nullptr);
      std::cout << "dry run: " << probe.tasks.size() << " tasks over "
                << probe.cells.size() << " cells (nothing executed)\n";
      return 0;
    }
  }

  std::ofstream jsonl(jsonl_path);
  if (!jsonl) {
    std::cerr << "error: cannot write " << jsonl_path << "\n";
    return 2;
  }

  RunnerOptions options;
  options.jobs = jobs;
  options.jsonl = &jsonl;
  if (!quiet) {
    options.progress = [](int done, int total) {
      std::cerr << "\r[" << done << "/" << total << "] tasks done"
                << std::flush;
      if (done == total) std::cerr << "\n";
    };
  }

  SweepRun run;
  if (!RunSweep(spec, options, run, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  Aggregator agg(run.plan);
  agg.AddRun(run);

  // Per-cell summary table on stdout.
  TextTable table({"solver", "instance", "n", "avg_resp", "ci95", "p95_resp",
                   "max_resp", "makespan", "fail"});
  for (const CellAggregate& c : agg.cells()) {
    const SweepCell& key = run.plan.cells[c.cell];
    table.Row(key.solver, key.instance_family, static_cast<long long>(c.n),
              c.avg_response.mean(), Ci95HalfWidth(c.avg_response),
              c.p95_response.mean(), c.max_response.mean(),
              c.makespan.mean(), static_cast<long long>(c.failures));
  }
  table.Print(std::cout);
  std::cout << "\nsweep " << spec.name << ": " << run.plan.tasks.size()
            << " tasks over " << run.plan.cells.size() << " cells, jobs="
            << run.jobs << ", " << TextTable::Format(run.wall_seconds * 1e3)
            << " ms wall";
  if (run.failures > 0) std::cout << ", " << run.failures << " FAILED";
  std::cout << "\n";

  std::ofstream json_out(json_path);
  std::ofstream csv_out(csv_path);
  if (!json_out || !csv_out) {
    std::cerr << "error: cannot write " << json_path << " / " << csv_path
              << "\n";
    return 2;
  }
  agg.WriteJson(json_out, spec, run.jobs, run.wall_seconds,
                /*include_timing=*/!no_timing);
  agg.WriteCsv(csv_out, /*include_timing=*/!no_timing);
  std::cout << "reports written to " << json_path << ", " << csv_path
            << ", " << jsonl_path << "\n";
  return run.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace flowsched

int main(int argc, char** argv) { return flowsched::Run(argc, argv); }
