#!/usr/bin/env bash
# Documentation checks, run by CI (and tools/ci.sh) after a Release build:
#   1. docs/solvers.md is generated from the registry — regenerate it with
#      `flowsched_cli --describe-solvers --markdown` and fail when the
#      committed file is stale (a solver changed its contract without
#      regenerating the reference).
#   2. Every relative markdown link in README.md and docs/*.md must
#      resolve to an existing file (http(s) links and pure anchors are
#      skipped — no network in CI).
#
# Usage: tools/check_docs.sh [path/to/flowsched_cli]
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${1:-}"
if [[ -z "${CLI}" ]]; then
  for candidate in build/tools/flowsched_cli \
                   build-ci-release/tools/flowsched_cli; do
    if [[ -x "${candidate}" ]]; then
      CLI="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CLI}" || ! -x "${CLI}" ]]; then
  echo "error: flowsched_cli not found; build first or pass its path" >&2
  echo "usage: tools/check_docs.sh [path/to/flowsched_cli]" >&2
  exit 2
fi

# Regenerate to a temp file and byte-compare: works whether or not the
# file is tracked yet, and never mutates the checked tree.
tmp="$(mktemp)"
trap 'rm -f "${tmp}"' EXIT
"${CLI}" --describe-solvers --markdown > "${tmp}"
if ! cmp -s "${tmp}" docs/solvers.md; then
  diff -u docs/solvers.md "${tmp}" | head -40 >&2 || true
  echo "error: docs/solvers.md is stale — regenerate with" >&2
  echo "  ${CLI} --describe-solvers --markdown > docs/solvers.md" >&2
  echo "and commit the result" >&2
  exit 1
fi

status=0
for file in README.md docs/*.md; do
  dir="$(dirname "${file}")"
  while IFS= read -r target; do
    [[ -z "${target}" ]] && continue
    case "${target}" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "${path}" ]] && continue
    if [[ ! -e "${dir}/${path}" && ! -e "${path}" ]]; then
      echo "${file}: broken link -> ${target}" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "${file}" | sed -E 's/^\]\(//; s/\)$//')
done
if [[ ${status} -ne 0 ]]; then
  echo "error: broken documentation links (see above)" >&2
else
  echo "docs OK: solvers.md fresh, links resolve"
fi
exit ${status}
