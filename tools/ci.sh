#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: the tier-1 verify sequence in
# Debug and Release, a CLI smoke test, the docs checks (generated
# docs/solvers.md freshness + markdown link resolution), and the Debug
# ASan/UBSan leg over the graph + coflow + fabric + workload + model +
# serve + scenario + traffic suites.
set -euo pipefail
cd "$(dirname "$0")/.."

for build_type in Debug Release; do
  build_dir="build-ci-${build_type,,}"
  echo "=== ${build_type} ==="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  cmake --build "${build_dir}" -j "$(nproc)"
  (cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")
  "./${build_dir}/tools/flowsched_cli" \
      --instance=poisson:ports=6,load=1.0,rounds=6 --solver=all
  "./${build_dir}/tools/flowsched_cli" --list-solvers | grep -q '^coflow.sebf$'
  "./${build_dir}/tools/flowsched_cli" --list-solvers | grep -q '^fabric.sebf$'
  if [[ "${build_type}" == "Release" ]]; then
    # Docs job: docs/solvers.md must match the registry, and every relative
    # markdown link in README/docs must resolve.
    tools/check_docs.sh "./${build_dir}/tools/flowsched_cli"
    # Bench smoke: every cell must succeed; JSON is the artifact. The
    # matching-kernel assertions mirror ci.yml: warm-start total == scratch
    # total to the bit, auction rows within the n·eps bound, and the
    # maxweight variant cells agree on response (value checks only — never
    # wall clock).
    "./${build_dir}/tools/flowsched_bench" --suite=smoke --repeat=2 \
        --out="${build_dir}/BENCH_smoke.json"
    python3 - "${build_dir}/BENCH_smoke.json" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
assert not [r for r in bench["results"] if not r["ok"]]
matchers = {m["name"]: m for m in bench["matchers"]}
exact_w = matchers["matcher_scratch"]["total_weight"]
assert matchers["matcher_warmstart"]["total_weight"] == exact_w
assert matchers["matcher_auction_eps0.05"]["total_weight"] >= 0.99 * exact_w
assert matchers["matcher_auction_eps0.5"]["total_weight"] >= 0.9 * exact_w
cells = {(c["instance"], c["solver"]): c for c in bench["results"]}
scratch = next(c for c in bench["results"]
               if c["solver"] == "online.maxweight+scratch")
exact = cells[(scratch["instance"], "online.maxweight")]
assert scratch["total_response"] == exact["total_response"], (scratch, exact)
approx = next(c for c in bench["results"]
              if c["solver"] == "online.maxweight+approx0.5")
assert abs(approx["total_response"] - exact["total_response"]) \
    <= 0.05 * exact["total_response"], (approx, exact)
print("bench smoke ok: warm-start bit-exact, auction within bound")
EOF
    echo "bench smoke written to ${build_dir}/BENCH_smoke.json"
    # Sweep smoke: the parallel campaign driver on the built-in grid, plus
    # the determinism guarantee — reports (timing stripped) must be
    # byte-identical across thread counts.
    "./${build_dir}/tools/flowsched_sweep" --smoke --jobs=2 --quiet \
        --out="${build_dir}/SWEEP_smoke"
    "./${build_dir}/tools/flowsched_sweep" --smoke --jobs=1 --quiet \
        --no-timing --out="${build_dir}/SWEEP_smoke_j1"
    "./${build_dir}/tools/flowsched_sweep" --smoke --jobs=2 --quiet \
        --no-timing --out="${build_dir}/SWEEP_smoke_j2"
    cmp "${build_dir}/SWEEP_smoke_j1.json" "${build_dir}/SWEEP_smoke_j2.json"
    cmp "${build_dir}/SWEEP_smoke_j1.csv" "${build_dir}/SWEEP_smoke_j2.csv"
    # The built-in grid must exercise the realistic-traffic generator.
    grep -q '"instance": "fabric:shards=2,partition=block,cdf:' \
        "${build_dir}/SWEEP_smoke.json" \
      || { echo "error: smoke grid lost its cdf: template" >&2; exit 1; }
    echo "sweep smoke written to ${build_dir}/SWEEP_smoke.json (jobs=1/2 reports identical)"
    # Campaign smoke: run the checked-in smoke campaign twice. The second
    # run resumes from the durable task records and must skip every task
    # yet still regenerate the merged aggregates and the HTML report
    # byte-identically — the interrupted-campaign recovery guarantee.
    rm -rf "${build_dir}/CAMPAIGN_smoke"
    "./${build_dir}/tools/flowsched_campaign" run \
        --spec=campaigns/ci-smoke.json --out="${build_dir}/CAMPAIGN_smoke" \
        --jobs=2 --quiet
    cp "${build_dir}/CAMPAIGN_smoke/report/index.html" \
        "${build_dir}/CAMPAIGN_first.html"
    cp "${build_dir}/CAMPAIGN_smoke/aggregate/flow.json" \
        "${build_dir}/CAMPAIGN_first_flow.json"
    "./${build_dir}/tools/flowsched_campaign" run \
        --spec=campaigns/ci-smoke.json --out="${build_dir}/CAMPAIGN_smoke" \
        --jobs=2 --resume --quiet | tee "${build_dir}/campaign_resume.out"
    grep -q '0 ok, 0 failed, 10 skipped (resume), 0 not run, of 10 tasks' \
        "${build_dir}/campaign_resume.out" \
      || { echo "error: campaign resume reran tasks" >&2; exit 1; }
    cmp "${build_dir}/CAMPAIGN_first.html" \
        "${build_dir}/CAMPAIGN_smoke/report/index.html"
    cmp "${build_dir}/CAMPAIGN_first_flow.json" \
        "${build_dir}/CAMPAIGN_smoke/aggregate/flow.json"
    echo "campaign smoke ok: resume skipped 10/10, report byte-identical"
    # Streaming service: the daemon's self-check replays a ~6k-flow
    # instance through the trace and wire paths and requires schedules and
    # aggregates bit-identical to batch Simulate.
    "./${build_dir}/tools/flowsched_serve" --smoke
    "./${build_dir}/tools/flowsched_serve" --smoke --policy=coflow.sebf
    # And a trace piped through stdin end to end: every output line must be
    # MATCH / stats JSONL / DONE, with a clean final summary.
    { printf 'input_capacities\n1,1,1,1,1,1,1,1\n'
      printf 'output_capacities\n1,1,1,1,1,1,1,1\n'
      printf 'src,dst,demand,release\n'
      awk 'BEGIN{for(i=0;i<5000;i++) printf "%d,%d,1,%d\n", i%8, (i*3)%8, int(i/16)}'
    } | "./${build_dir}/tools/flowsched_serve" --trace=- --stats-every=100 \
        > "${build_dir}/serve_stdin.out"
    if grep -vEq '^(MATCH [0-9]+( [0-9]+)+|\{"round":|DONE \{)' \
        "${build_dir}/serve_stdin.out"; then
      echo "error: malformed flowsched_serve output line:" >&2
      grep -vE '^(MATCH [0-9]+( [0-9]+)+|\{"round":|DONE \{)' \
          "${build_dir}/serve_stdin.out" | head -3 >&2
      exit 1
    fi
    tail -n 1 "${build_dir}/serve_stdin.out" \
      | grep -q '^DONE {"flows":5000,"arrived":5000,' \
      || { echo "error: flowsched_serve stdin summary wrong" >&2; exit 1; }
    echo "serve smoke ok: streaming == batch, stdin trace served cleanly"
    # Realistic-traffic stream: a short cdf: generator run must drain and
    # summarize cleanly (flows arrive segmented; everything completes).
    "./${build_dir}/tools/flowsched_serve" \
        --spec=cdf:dist=websearch,ports=32,load=0.9,rounds=120,seed=1 \
        > "${build_dir}/serve_cdf.out"
    tail -n 1 "${build_dir}/serve_cdf.out" | grep -q '^DONE {"flows":' \
      || { echo "error: cdf stream produced no DONE summary" >&2; exit 1; }
    tail -n 1 "${build_dir}/serve_cdf.out" \
      | grep -q '"migrated_flows":0,"truncated":false' \
      || { echo "error: cdf stream summary wrong" >&2; exit 1; }
    echo "serve cdf smoke ok: realistic stream drained with clean summary"
    # Scenario smoke: a two-event outage script through flowsched_cli must
    # degrade gracefully and report the robustness diagnostics.
    "./${build_dir}/tools/flowsched_cli" \
        --instance=poisson:ports=8,load=0.9,rounds=60,seed=3 \
        --solver=online.srpt --diagnostics \
        --param scenario='inline:PORT_DOWN 20 3;PORT_UP 60 3' \
        > "${build_dir}/scenario_smoke.out"
    grep -Eq 'online\.srpt +ok ' "${build_dir}/scenario_smoke.out" \
      || { echo "error: scenario run did not succeed" >&2; exit 1; }
    grep -Eq 'downtime_rounds = [1-9]' "${build_dir}/scenario_smoke.out" \
      || { echo "error: no downtime_rounds diagnostic" >&2; exit 1; }
    grep -Eq 'recovery_drain_rounds = [1-9]' "${build_dir}/scenario_smoke.out" \
      || { echo "error: no recovery_drain_rounds diagnostic" >&2; exit 1; }
    echo "scenario smoke ok: outage degraded gracefully with diagnostics"
  fi
done

echo "=== Debug ASan/UBSan (graph + coflow + fabric + workload + model + serve + scenario + traffic) ==="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DFLOWSCHED_SANITIZE=address,undefined \
    -DFLOWSCHED_BUILD_BENCHES=OFF -DFLOWSCHED_BUILD_EXAMPLES=OFF
cmake --build build-ci-asan -j "$(nproc)"
(cd build-ci-asan && ctest --output-on-failure -j "$(nproc)" \
    -R 'graph|coflow|fabric|workload|model|serve|scenario|traffic')
echo "CI OK"
