// Datacenter scenario: MapReduce shuffle waves plus incast hotspots on a
// 150x150 switch (the "one big switch" abstraction of the paper's intro).
//
// Compares the three heuristics of §5.2 on a workload that mixes:
//   * periodic all-to-all shuffle waves (mappers -> reducers),
//   * an incast hotspot (many servers answering one aggregator),
//   * background Poisson traffic.
//
// Run: ./build/examples/datacenter_shuffle
#include <iostream>

#include "api/registry.h"
#include "util/table.h"
#include "workload/patterns.h"
#include "workload/poisson.h"

int main() {
  using namespace flowsched;
  const int kPorts = 150;

  // Background load: Poisson(100)/round for 30 rounds.
  PoissonConfig bg;
  bg.num_inputs = bg.num_outputs = kPorts;
  bg.mean_arrivals_per_round = 100.0;
  bg.num_rounds = 30;
  bg.seed = 7;
  Instance instance = GeneratePoisson(bg);

  // Three shuffle waves: 24 mappers x 24 reducers every 10 rounds.
  for (int wave = 0; wave < 3; ++wave) {
    AddShuffle(instance, /*mappers=*/24, /*reducers=*/24, /*release=*/wave * 10);
  }
  // An aggregation incast at round 12: 40 servers -> port 149.
  AddIncast(instance, /*sink=*/149, /*fan_in=*/40, /*release=*/12);

  std::cout << "workload: " << instance.num_flows() << " flows over "
            << kPorts << "x" << kPorts << " switch\n\n";

  const SolverRegistry& registry = SolverRegistry::Global();
  SolveOptions options;
  options.params["record_backlog"] = "1";
  TextTable table({"policy", "avg_response", "p95", "p99", "max_response",
                   "makespan", "rounds_simulated", "max_backlog"});
  for (const std::string& name :
       {"online.maxcard", "online.minrtime", "online.maxweight",
        "online.fifo", "online.srpt", "online.hybrid"}) {
    const SolveReport r = registry.Solve(name, instance, options);
    if (!r.ok) {
      std::cerr << name << " failed: " << r.error << "\n";
      continue;
    }
    table.Row(name, r.metrics.avg_response, r.metrics.p95_response,
              r.metrics.p99_response, r.metrics.max_response,
              r.metrics.makespan, r.diagnostics.at("rounds_simulated"),
              r.diagnostics.at("max_backlog"));
  }
  table.Print(std::cout);

  std::cout <<
      "\nReading guide: the incast pins port 149 for ~40 rounds, so the max\n"
      "response is dominated by how each policy shares that port; MinRTime\n"
      "ages flows fairly (best max response) while MaxCard keeps overall\n"
      "utilization high (best average). MaxWeight is the balanced choice —\n"
      "the same conclusion as the paper's §5.2.3.\n";
  return 0;
}
