// Quickstart: the five-minute tour of the flowsched public API.
//
//   1. Describe the switch and the flow requests (model/).
//   2. Pick schedulers by name from the SolverRegistry (api/).
//   3. Compare an online policy against the offline theorems through the
//      one uniform entry point: Solve(instance, options) -> SolveReport.
//   4. Validate and inspect metrics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "api/registry.h"
#include "util/table.h"

int main() {
  using namespace flowsched;

  // A 4x4 switch with unit port capacities: in each round, the scheduled
  // flows form a bipartite matching between input and output ports.
  Instance instance(SwitchSpec::Uniform(4, 4, /*cap=*/1), {});

  // Flow requests: (input port, output port, demand, release round).
  instance.AddFlow(0, 1, 1, 0);
  instance.AddFlow(0, 2, 1, 0);  // Conflicts with the first at input 0.
  instance.AddFlow(1, 1, 1, 0);  // Conflicts with the first at output 1.
  instance.AddFlow(2, 3, 1, 0);
  instance.AddFlow(3, 0, 1, 1);
  instance.AddFlow(1, 2, 1, 2);
  if (auto err = instance.ValidationError()) {
    std::cerr << "bad instance: " << *err << "\n";
    return 1;
  }

  const SolverRegistry& registry = SolverRegistry::Global();

  // --- Online: the paper's MaxWeight heuristic (§5.2.1). ---------------
  const SolveReport online = registry.Solve("online.maxweight", instance);
  if (!online.ok) {
    std::cerr << "online.maxweight failed: " << online.error << "\n";
    return 1;
  }
  std::cout << "MaxWeight online:  avg response = "
            << online.metrics.avg_response
            << ", max response = " << online.metrics.max_response << "\n";

  // --- Offline: optimal max response with augmented capacity (Theorem 3).
  // The report's lower_bound is rho*: no schedule at base capacities beats
  // it, and the returned schedule achieves it under `allowance`.
  const SolveReport offline = registry.Solve("mrt.theorem3", instance);
  if (!offline.ok) {
    std::cerr << "mrt.theorem3 failed: " << offline.error << "\n";
    return 1;
  }
  std::cout << "Offline Theorem 3: rho* = " << *offline.lower_bound
            << " (augmentation used: +"
            << offline.diagnostics.at("max_violation") << " capacity)\n";

  // --- Lower bound on total response (Lemma 3.1, via Theorem 1's LP(0)).
  const SolveReport art = registry.Solve("art.theorem1", instance);
  if (!art.ok) {
    std::cerr << "art.theorem1 failed: " << art.error << "\n";
    return 1;
  }
  std::cout << "LP lower bound on total response = " << *art.lower_bound
            << " (online achieved " << online.metrics.total_response << ")\n";

  // --- Inspect the offline schedule. ------------------------------------
  TextTable table({"flow", "src->dst", "release", "round", "response"});
  for (const Flow& e : instance.flows()) {
    const Round t = offline.schedule.round_of(e.id);
    table.Row(e.id, std::to_string(e.src) + "->" + std::to_string(e.dst),
              e.release, t, ResponseTime(t, e.release));
  }
  table.Print(std::cout);

  // Solve() already validated the schedule against report.allowance; any
  // schedule can also be re-checked against a different allowance:
  const auto err = offline.schedule.ValidationError(
      instance, CapacityAllowance::Additive(1));
  std::cout << (err ? "schedule INVALID: " + *err : "schedule valid under +1")
            << "\n";
  return 0;
}
