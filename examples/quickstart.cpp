// Quickstart: the five-minute tour of the flowsched public API.
//
//   1. Describe the switch and the flow requests (model/).
//   2. Run an online scheduling policy round by round (core/online/).
//   3. Compute an offline near-optimal schedule and an LP lower bound.
//   4. Validate and inspect metrics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/art_lp.h"
#include "core/mrt_scheduler.h"
#include "core/online/simulator.h"
#include "util/table.h"

int main() {
  using namespace flowsched;

  // A 4x4 switch with unit port capacities: in each round, the scheduled
  // flows form a bipartite matching between input and output ports.
  Instance instance(SwitchSpec::Uniform(4, 4, /*cap=*/1), {});

  // Flow requests: (input port, output port, demand, release round).
  instance.AddFlow(0, 1, 1, 0);
  instance.AddFlow(0, 2, 1, 0);  // Conflicts with the first at input 0.
  instance.AddFlow(1, 1, 1, 0);  // Conflicts with the first at output 1.
  instance.AddFlow(2, 3, 1, 0);
  instance.AddFlow(3, 0, 1, 1);
  instance.AddFlow(1, 2, 1, 2);
  if (auto err = instance.ValidationError()) {
    std::cerr << "bad instance: " << *err << "\n";
    return 1;
  }

  // --- Online: the paper's MaxWeight heuristic (§5.2.1). ---------------
  auto policy = MakePolicy("maxweight");
  const SimulationResult online = Simulate(instance, *policy);
  std::cout << "MaxWeight online:  avg response = "
            << online.metrics.avg_response
            << ", max response = " << online.metrics.max_response << "\n";

  // --- Offline: optimal max response with +1 port capacity (Theorem 3).
  const MrtSchedulerResult offline = MinimizeMaxResponse(instance);
  std::cout << "Offline Theorem 3: rho* = " << offline.rho_lp
            << " (augmentation used: +"
            << offline.rounding_report.max_violation << " capacity)\n";

  // --- Lower bound: LP (1)-(4) on total response (Lemma 3.1). ----------
  const ArtLpResult lp = SolveArtLp(instance);
  std::cout << "LP lower bound on total response = "
            << lp.total_fractional_response
            << " (online achieved " << online.metrics.total_response << ")\n";

  // --- Inspect the offline schedule. ------------------------------------
  TextTable table({"flow", "src->dst", "release", "round", "response"});
  for (const Flow& e : instance.flows()) {
    const Round t = offline.schedule.round_of(e.id);
    table.Row(e.id, std::to_string(e.src) + "->" + std::to_string(e.dst),
              e.release, t, ResponseTime(t, e.release));
  }
  table.Print(std::cout);

  // Every schedule can be validated against any capacity allowance:
  const auto err = offline.schedule.ValidationError(
      instance, CapacityAllowance::Additive(1));
  std::cout << (err ? "schedule INVALID: " + *err : "schedule valid under +1")
            << "\n";
  return 0;
}
