// Online lower bounds live: the Figure 4 adversaries against every policy.
//
// (a) Lemma 5.1 — an adaptive adversary watches which output side your
//     policy falls behind on and floods it; the competitive ratio for
//     average response grows without bound in the stream length.
// (b) Lemma 5.2 — seven ports, six flows, two rounds: every online policy
//     is forced to max response 3 while hindsight achieves 2.
//
// The adaptive adversaries generate flows in *reaction* to the policy, so
// they drive the simulator's ArrivalProcess interface directly — the one
// workload shape outside the instance-based Solver facade. Everything
// downstream of the realized instances (hindsight optima, replaying the
// canonical fixed instances) goes through the registry.
//
// Run: ./build/examples/adversarial_online
#include <iostream>

#include "api/registry.h"
#include "core/online/simulator.h"
#include "util/table.h"
#include "workload/adversarial.h"

int main() {
  using namespace flowsched;
  const SolverRegistry& registry = SolverRegistry::Global();

  std::cout << "--- Lemma 5.1: average response, adaptive flood ---\n";
  TextTable art({"policy", "stream M", "online total", "offline bound",
                 "ratio"});
  for (const std::string& name : {"maxweight", "minrtime", "fifo"}) {
    for (int stream : {30, 120, 480}) {
      ArtLowerBoundAdversary adversary(/*phase_rounds=*/6,
                                       /*total_rounds=*/stream);
      auto policy = MakePolicy(name);
      const SimulationResult r =
          Simulate(ArtLowerBoundAdversary::Switch(), adversary, *policy);
      art.Row(name, stream, r.metrics.total_response,
              adversary.OfflineTotalResponse(),
              r.metrics.total_response / adversary.OfflineTotalResponse());
    }
  }
  art.Print(std::cout);
  std::cout << "No matter the policy, the ratio keeps growing with M: no\n"
               "online algorithm is constant-competitive for average response\n"
               "(Lemma 5.1) — resource augmentation is unavoidable.\n\n";

  std::cout << "--- Lemma 5.2: max response, the 3/2 trap ---\n";
  TextTable mrt({"policy", "online max", "hindsight optimum", "ratio"});
  for (const std::string& name : AllPolicyNames()) {
    MrtLowerBoundAdversary adversary;
    auto policy = MakePolicy(name);
    const SimulationResult r =
        Simulate(MrtLowerBoundAdversary::Switch(), adversary, *policy);
    // Hindsight: the exact optimum on the realized instance, via the facade.
    const SolveReport opt = registry.Solve("mrt.exact", r.realized);
    if (!opt.ok) {
      std::cerr << "mrt.exact failed on " << name
                << "'s realized instance: " << opt.error << "\n";
      continue;
    }
    mrt.Row(name, r.metrics.max_response, opt.objective,
            r.metrics.max_response / opt.objective);
  }
  mrt.Print(std::cout);
  std::cout << "Whatever the policy schedules in round 0, the two round-1\n"
               "flows target exactly the outputs it left uncovered; port 7\n"
               "serializes them. Hindsight schedules differently in round 0\n"
               "and finishes everything with max response 2.\n\n";

  std::cout << "--- The canonical fixed instances, through the registry ---\n";
  // Fig4bInstance bakes in the paper's "wlog" adversary choice; replaying
  // it through every online.* solver shows the same 3-vs-2 gap whenever a
  // policy makes the trapped round-0 choice.
  const Instance fig4b = Fig4bInstance();
  TextTable fixed({"solver", "max_response", "total_response", "wall_ms"});
  for (const std::string& name : registry.Names()) {
    if (name.rfind("online.", 0) != 0 && name != "mrt.exact") continue;
    const SolveReport r = registry.Solve(name, fig4b);
    if (!r.ok) continue;
    fixed.Row(name, r.metrics.max_response, r.metrics.total_response,
              r.wall_seconds * 1e3);
  }
  fixed.Print(std::cout);
  return 0;
}
