// Online lower bounds live: the Figure 4 adversaries against every policy.
//
// (a) Lemma 5.1 — an adaptive adversary watches which output side your
//     policy falls behind on and floods it; the competitive ratio for
//     average response grows without bound in the stream length.
// (b) Lemma 5.2 — seven ports, six flows, two rounds: every online policy
//     is forced to max response 3 while hindsight achieves 2.
//
// Run: ./build/examples/adversarial_online
#include <iostream>

#include "core/exact.h"
#include "core/online/simulator.h"
#include "util/table.h"
#include "workload/adversarial.h"

int main() {
  using namespace flowsched;

  std::cout << "--- Lemma 5.1: average response, adaptive flood ---\n";
  TextTable art({"policy", "stream M", "online total", "offline bound",
                 "ratio"});
  for (const std::string& name : {"maxweight", "minrtime", "fifo"}) {
    for (int stream : {30, 120, 480}) {
      ArtLowerBoundAdversary adversary(/*phase_rounds=*/6,
                                       /*total_rounds=*/stream);
      auto policy = MakePolicy(name);
      const SimulationResult r =
          Simulate(ArtLowerBoundAdversary::Switch(), adversary, *policy);
      art.Row(name, stream, r.metrics.total_response,
              adversary.OfflineTotalResponse(),
              r.metrics.total_response / adversary.OfflineTotalResponse());
    }
  }
  art.Print(std::cout);
  std::cout << "No matter the policy, the ratio keeps growing with M: no\n"
               "online algorithm is constant-competitive for average response\n"
               "(Lemma 5.1) — resource augmentation is unavoidable.\n\n";

  std::cout << "--- Lemma 5.2: max response, the 3/2 trap ---\n";
  TextTable mrt({"policy", "online max", "hindsight optimum", "ratio"});
  for (const std::string& name : AllPolicyNames()) {
    MrtLowerBoundAdversary adversary;
    auto policy = MakePolicy(name);
    const SimulationResult r =
        Simulate(MrtLowerBoundAdversary::Switch(), adversary, *policy);
    const auto opt = ExactMinMaxResponse(r.realized, 4);
    mrt.Row(name, r.metrics.max_response, static_cast<int>(*opt),
            r.metrics.max_response / *opt);
  }
  mrt.Print(std::cout);
  std::cout << "Whatever the policy schedules in round 0, the two round-1\n"
               "flows target exactly the outputs it left uncovered; port 7\n"
               "serializes them. Hindsight schedules differently in round 0\n"
               "and finishes everything with max response 2.\n";
  return 0;
}
