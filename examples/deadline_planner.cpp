// Deadline planner: bulk-transfer scheduling with per-flow deadlines via the
// Time-Constrained Flow Scheduling machinery (paper §4.2, Remark 4.2).
//
// Scenario: a nightly maintenance window. Backup jobs, an index rebuild and
// a latency-critical cache warmup all move data across the cluster switch;
// each transfer has a release time and a hard deadline. The planner either
// proves the plan infeasible or produces a schedule that meets every
// deadline using at most 2*dmax - 1 extra capacity per port (Theorem 3).
//
// Run: ./build/examples/deadline_planner
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "util/table.h"

namespace {

// The "mrt.deadline" solver takes per-flow deadlines as a comma-joined
// parameter string (one entry per flow id).
std::string JoinDeadlines(const std::vector<flowsched::Round>& deadlines) {
  std::string joined;
  for (flowsched::Round d : deadlines) {
    if (!joined.empty()) joined += ",";
    joined += std::to_string(d);
  }
  return joined;
}

}  // namespace

int main() {
  using namespace flowsched;

  // 8 racks each side; port capacity 4 demand-units per round.
  Instance instance(SwitchSpec::Uniform(8, 8, /*cap=*/4), {});
  std::vector<Round> deadline;
  std::vector<std::string> label;
  auto add = [&](std::string name, PortId src, PortId dst, Capacity demand,
                 Round release, Round due) {
    instance.AddFlow(src, dst, demand, release);
    deadline.push_back(due);
    label.push_back(std::move(name));
  };

  // Backups: rack i -> archive rack 7, heavy, generous deadlines.
  for (int i = 0; i < 6; ++i) {
    add("backup_rack" + std::to_string(i), i, 7, 4, 0, 11);
  }
  // Index rebuild: shuffle between racks 0..3, due mid-window.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      add("index_" + std::to_string(i) + "_" + std::to_string(j), i, j, 2, 2,
          8);
    }
  }
  // Cache warmup: small transfers that must land almost immediately.
  add("warmup_a", 6, 0, 1, 4, 5);
  add("warmup_b", 6, 1, 1, 4, 5);
  add("warmup_c", 7, 2, 1, 5, 6);

  const SolverRegistry& registry = SolverRegistry::Global();
  SolveOptions options;
  options.params["deadlines"] = JoinDeadlines(deadline);
  const SolveReport plan = registry.Solve("mrt.deadline", instance, options);
  if (!plan.ok) {
    std::cout << "plan infeasible: " << plan.error << "\n";
    return 1;
  }
  TextTable table({"transfer", "demand", "release", "deadline", "round",
                   "slack"});
  for (const Flow& e : instance.flows()) {
    const Round t = plan.schedule.round_of(e.id);
    table.Row(label[e.id], static_cast<long long>(e.demand), e.release,
              deadline[e.id], t, deadline[e.id] - t);
  }
  table.Print(std::cout);
  std::cout << "\nall " << instance.num_flows()
            << " transfers meet their deadlines; max port overload used: +"
            << plan.diagnostics.at("max_violation") << " (theorem budget +"
            << plan.diagnostics.at("violation_bound") << "), solved in "
            << plan.wall_seconds * 1e3 << " ms\n";

  // Tighten the warmup deadlines until the plan breaks, to show detection.
  std::vector<Round> too_tight = deadline;
  for (int i = 0; i < 6; ++i) too_tight[i] = 1;  // All backups in 2 rounds.
  SolveOptions tight_options;
  tight_options.params["deadlines"] = JoinDeadlines(too_tight);
  if (!registry.Solve("mrt.deadline", instance, tight_options).ok) {
    std::cout << "tightened plan correctly reported infeasible (6 demand-4 "
                 "backups cannot cross a capacity-4 port in 2 rounds)\n";
  }
  return 0;
}
