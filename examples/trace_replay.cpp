// Trace replay: schedule flow traces from CSV files (or inline generator
// specs) and write the resulting schedule back — the integration path for
// using flowsched with external workload data.
//
// Usage:
//   ./build/examples/trace_replay                  (runs a built-in demo)
//   ./build/examples/trace_replay trace.csv        (schedules your trace)
//   ./build/examples/trace_replay trace.csv out.csv
//   ./build/examples/trace_replay poisson:ports=16,load=1.25,rounds=12
//
// Trace format: see model/trace_io.h. Every "online.*" solver in the
// registry competes; the best-by-average schedule is written out.
#include <fstream>
#include <iostream>

#include "api/instance_source.h"
#include "api/registry.h"
#include "model/trace_io.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace flowsched;

  const std::string source =
      argc > 1 ? argv[1] : "poisson:ports=16,load=1.25,rounds=12,seed=4";
  std::string error;
  const auto instance = LoadInstance(source, &error);
  if (!instance.has_value()) {
    std::cerr << "failed to load " << source << ": " << error << "\n";
    return 1;
  }
  std::cout << "loaded " << instance->num_flows() << " flows from " << source
            << "\n";

  // Schedule with every registered online policy; keep the best-by-average.
  const SolverRegistry& registry = SolverRegistry::Global();
  TextTable table({"policy", "avg_response", "max_response", "makespan"});
  std::string best_name;
  double best_avg = 0.0;
  Schedule best_schedule;
  for (const std::string& name : registry.Names()) {
    if (name.rfind("online.", 0) != 0) continue;
    const SolveReport r = registry.Solve(name, *instance);
    if (!r.ok) {
      std::cerr << name << " failed: " << r.error << "\n";
      continue;
    }
    table.Row(name, r.metrics.avg_response, r.metrics.max_response,
              r.metrics.makespan);
    if (best_name.empty() || r.metrics.avg_response < best_avg) {
      best_name = name;
      best_avg = r.metrics.avg_response;
      best_schedule = r.schedule;
    }
  }
  table.Print(std::cout);
  if (best_name.empty()) {
    std::cerr << "no policy produced a schedule\n";
    return 1;
  }

  const std::string out_path = argc > 2 ? argv[2] : "trace_schedule.csv";
  std::ofstream out(out_path);
  WriteScheduleCsv(best_schedule, out);
  std::cout << "\nbest policy: " << best_name << "; schedule written to "
            << out_path << "\n";
  return 0;
}
