// Trace replay: schedule flow traces from CSV files and write the resulting
// schedule back — the integration path for using flowsched with external
// workload data.
//
// Usage:
//   ./build/examples/trace_replay                  (runs a built-in demo)
//   ./build/examples/trace_replay trace.csv        (schedules your trace)
//   ./build/examples/trace_replay trace.csv out.csv
//
// Trace format (see model/trace_io.h):
//   input_capacities / <values> / output_capacities / <values> /
//   src,dst,demand,release / one row per flow.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/online/simulator.h"
#include "model/trace_io.h"
#include "util/table.h"
#include "workload/poisson.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowsched;

  Instance instance;
  if (argc > 1) {
    std::string error;
    const auto parsed = ReadInstanceCsv(ReadFile(argv[1]), &error);
    if (!parsed.has_value()) {
      std::cerr << "failed to parse " << argv[1] << ": " << error << "\n";
      return 1;
    }
    instance = *parsed;
    std::cout << "loaded " << instance.num_flows() << " flows from " << argv[1]
              << "\n";
  } else {
    PoissonConfig cfg;
    cfg.num_inputs = cfg.num_outputs = 16;
    cfg.mean_arrivals_per_round = 20.0;
    cfg.num_rounds = 12;
    cfg.seed = 4;
    instance = GeneratePoisson(cfg);
    std::cout << "no trace given; generated a demo workload ("
              << instance.num_flows() << " flows on 16x16)\n";
  }

  // Schedule with every policy; keep the best-by-average.
  TextTable table({"policy", "avg_response", "max_response", "makespan"});
  std::string best_name;
  double best_avg = 0.0;
  Schedule best_schedule;
  for (const std::string& name : AllPolicyNames()) {
    auto policy = MakePolicy(name);
    const SimulationResult r = Simulate(instance, *policy);
    table.Row(name, r.metrics.avg_response, r.metrics.max_response,
              r.metrics.makespan);
    if (best_name.empty() || r.metrics.avg_response < best_avg) {
      best_name = name;
      best_avg = r.metrics.avg_response;
      best_schedule = r.schedule;
    }
  }
  table.Print(std::cout);

  const std::string out_path = argc > 2 ? argv[2] : "trace_schedule.csv";
  std::ofstream out(out_path);
  WriteScheduleCsv(best_schedule, out);
  std::cout << "\nbest policy: " << best_name << "; schedule written to "
            << out_path << "\n";
  return 0;
}
