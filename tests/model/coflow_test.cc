#include "model/coflow.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(CoflowSetTest, GroupsTaggedFlowsAndAggregates) {
  Instance instance(SwitchSpec::Uniform(4, 4, 2), {});
  instance.AddFlow(0, 1, 2, 3, /*coflow=*/7);
  instance.AddFlow(1, 2, 1, 1, /*coflow=*/7);
  instance.AddFlow(2, 3, 1, 0, /*coflow=*/2);
  const CoflowSet coflows(instance);

  ASSERT_EQ(coflows.num_groups(), 2);
  EXPECT_EQ(coflows.num_tagged(), 2);
  // Tagged groups order by ascending tag: group 0 is tag 2, group 1 tag 7.
  EXPECT_EQ(coflows.tag(0), 2);
  EXPECT_EQ(coflows.tag(1), 7);
  EXPECT_EQ(coflows.group_of(0), 1);
  EXPECT_EQ(coflows.group_of(1), 1);
  EXPECT_EQ(coflows.group_of(2), 0);

  EXPECT_EQ(coflows.width(1), 2);
  EXPECT_EQ(coflows.release(1), 1);  // Earliest member release.
  EXPECT_EQ(coflows.total_demand(1), 3);
  EXPECT_EQ(coflows.width(0), 1);
  EXPECT_EQ(coflows.release(0), 0);
}

TEST(CoflowSetTest, UntaggedFlowsBecomeSingletonsAfterTaggedGroups) {
  Instance instance(SwitchSpec::Uniform(3, 3), {});
  instance.AddFlow(0, 0, 1, 0);                // Untagged.
  instance.AddFlow(1, 1, 1, 2, /*coflow=*/5);
  instance.AddFlow(2, 2, 1, 4);                // Untagged.
  const CoflowSet coflows(instance);

  ASSERT_EQ(coflows.num_groups(), 3);
  EXPECT_EQ(coflows.num_tagged(), 1);
  EXPECT_EQ(coflows.group_of(1), 0);  // The tagged group comes first.
  EXPECT_EQ(coflows.group_of(0), 1);  // Singletons in flow order.
  EXPECT_EQ(coflows.group_of(2), 2);
  EXPECT_EQ(coflows.tag(1), kNoCoflow);
  EXPECT_EQ(coflows.width(1), 1);
  EXPECT_EQ(coflows.release(2), 4);
}

TEST(CoflowSetTest, IsolationRoundsIsTheBottleneckBound) {
  Instance instance(SwitchSpec::Uniform(4, 4), {});
  // A 3-to-1 incast: output 0 carries 3 unit flows => 3 rounds minimum.
  instance.AddFlow(0, 0, 1, 0, /*coflow=*/1);
  instance.AddFlow(1, 0, 1, 0, /*coflow=*/1);
  instance.AddFlow(2, 0, 1, 0, /*coflow=*/1);
  // A 2-flow shuffle over distinct ports: 1 round suffices.
  instance.AddFlow(0, 1, 1, 0, /*coflow=*/2);
  instance.AddFlow(1, 2, 1, 0, /*coflow=*/2);
  const CoflowSet coflows(instance);
  EXPECT_EQ(coflows.IsolationRounds(0, instance.sw()), 3);
  EXPECT_EQ(coflows.IsolationRounds(1, instance.sw()), 1);
}

TEST(CoflowSetTest, IsolationRoundsHonorsPortCapacities) {
  // Capacity 2 halves the bottleneck (ceil(3/2) = 2).
  Instance instance(SwitchSpec::Uniform(4, 4, 2), {});
  for (int i = 0; i < 3; ++i) instance.AddFlow(i, 0, 1, 0, /*coflow=*/0);
  const CoflowSet coflows(instance);
  EXPECT_EQ(coflows.IsolationRounds(0, instance.sw()), 2);
}

TEST(CoflowSetTest, InstanceValidationRejectsNegativeTagsBelowNoCoflow) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 0, 1, 0, /*coflow=*/-3);
  EXPECT_TRUE(instance.ValidationError().has_value());
}

TEST(CoflowSetTest, HasCoflowsReflectsTags) {
  Instance plain(SwitchSpec::Uniform(2, 2), {});
  plain.AddFlow(0, 0);
  EXPECT_FALSE(plain.HasCoflows());
  Instance tagged(SwitchSpec::Uniform(2, 2), {});
  tagged.AddFlow(0, 0, 1, 0, /*coflow=*/0);
  EXPECT_TRUE(tagged.HasCoflows());
}

}  // namespace
}  // namespace flowsched
