#include "model/metrics.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(MetricsTest, ComputesResponseStatistics) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(1, 1, 1, 0);
  instance.AddFlow(0, 1, 1, 2);
  Schedule s(3);
  s.Assign(0, 0);  // rho = 1.
  s.Assign(1, 2);  // rho = 3.
  s.Assign(2, 3);  // rho = 2.
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_EQ(m.response.size(), 3u);
  EXPECT_DOUBLE_EQ(m.total_response, 6.0);
  EXPECT_DOUBLE_EQ(m.avg_response, 2.0);
  EXPECT_DOUBLE_EQ(m.max_response, 3.0);
  EXPECT_EQ(m.makespan, 4);
  EXPECT_DOUBLE_EQ(m.p99_response, 3.0);
}

TEST(MetricsTest, SingleFlow) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  instance.AddFlow(0, 0, 1, 5);
  Schedule s(1);
  s.Assign(0, 5);
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_DOUBLE_EQ(m.avg_response, 1.0);
  EXPECT_DOUBLE_EQ(m.max_response, 1.0);
  EXPECT_EQ(m.makespan, 6);
}

TEST(MetricsDeathTest, RequiresFullAssignment) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  instance.AddFlow(0, 0);
  const Schedule s(1);
  EXPECT_DEATH(ComputeMetrics(instance, s), "CHECK failed");
}

}  // namespace
}  // namespace flowsched
