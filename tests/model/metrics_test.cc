#include "model/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flowsched {
namespace {

TEST(MetricsTest, ComputesResponseStatistics) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(1, 1, 1, 0);
  instance.AddFlow(0, 1, 1, 2);
  Schedule s(3);
  s.Assign(0, 0);  // rho = 1.
  s.Assign(1, 2);  // rho = 3.
  s.Assign(2, 3);  // rho = 2.
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_EQ(m.response.size(), 3u);
  EXPECT_DOUBLE_EQ(m.total_response, 6.0);
  EXPECT_DOUBLE_EQ(m.avg_response, 2.0);
  EXPECT_DOUBLE_EQ(m.max_response, 3.0);
  EXPECT_EQ(m.makespan, 4);
  EXPECT_DOUBLE_EQ(m.p99_response, 3.0);
}

// Twenty flows through a 1x1 switch, one per round: responses are exactly
// 1, 2, ..., 20, so every distribution statistic is hand-computable.
TEST(MetricsTest, PercentilesAndStddevOnKnownDistribution) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  for (int i = 0; i < 20; ++i) instance.AddFlow(0, 0, 1, 0);
  Schedule s(20);
  for (int i = 0; i < 20; ++i) s.Assign(i, i);  // rho_i = i + 1.
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_DOUBLE_EQ(m.total_response, 210.0);  // 20 * 21 / 2.
  EXPECT_DOUBLE_EQ(m.avg_response, 10.5);
  EXPECT_DOUBLE_EQ(m.max_response, 20.0);
  // Nearest-rank: p-th percentile is element ceil(p/100 * 20) of 1..20.
  EXPECT_DOUBLE_EQ(m.p50_response, 10.0);
  EXPECT_DOUBLE_EQ(m.p95_response, 19.0);
  EXPECT_DOUBLE_EQ(m.p99_response, 20.0);
  // Sample variance of 1..n is n(n+1)/12 = 35 for n = 20.
  EXPECT_NEAR(m.stddev_response, std::sqrt(35.0), 1e-12);
  EXPECT_EQ(m.makespan, 20);
}

// One flow: percentiles collapse onto the single response and the sample
// stddev (n-1 denominator) is defined as zero.
TEST(MetricsTest, PercentileFieldsWithOneSample) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  instance.AddFlow(0, 0, 1, 2);
  Schedule s(1);
  s.Assign(0, 6);  // rho = 5.
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_DOUBLE_EQ(m.p50_response, 5.0);
  EXPECT_DOUBLE_EQ(m.p95_response, 5.0);
  EXPECT_DOUBLE_EQ(m.p99_response, 5.0);
  EXPECT_DOUBLE_EQ(m.stddev_response, 0.0);
}

TEST(MetricsTest, SingleFlow) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  instance.AddFlow(0, 0, 1, 5);
  Schedule s(1);
  s.Assign(0, 5);
  const ScheduleMetrics m = ComputeMetrics(instance, s);
  EXPECT_DOUBLE_EQ(m.avg_response, 1.0);
  EXPECT_DOUBLE_EQ(m.max_response, 1.0);
  EXPECT_EQ(m.makespan, 6);
}

TEST(MetricsDeathTest, RequiresFullAssignment) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  instance.AddFlow(0, 0);
  const Schedule s(1);
  EXPECT_DEATH(ComputeMetrics(instance, s), "CHECK failed");
}

}  // namespace
}  // namespace flowsched
