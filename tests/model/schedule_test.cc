#include "model/schedule.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

Instance TwoByTwo() {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(0, 1, 1, 0);
  instance.AddFlow(1, 0, 1, 1);
  return instance;
}

TEST(CapacityAllowanceTest, FactorAndAdditive) {
  EXPECT_EQ(CapacityAllowance::Exact().Allowed(3), 3);
  EXPECT_EQ(CapacityAllowance::Factor(2.0).Allowed(3), 6);
  EXPECT_EQ(CapacityAllowance::Additive(2).Allowed(3), 5);
  EXPECT_EQ((CapacityAllowance{1.5, 1}).Allowed(2), 4);
}

TEST(ScheduleTest, AssignmentLifecycle) {
  Schedule s(3);
  EXPECT_FALSE(s.AllAssigned());
  s.Assign(0, 2);
  EXPECT_TRUE(s.IsAssigned(0));
  EXPECT_EQ(s.round_of(0), 2);
  s.Unassign(0);
  EXPECT_FALSE(s.IsAssigned(0));
  EXPECT_EQ(s.Makespan(), 0);
  s.Assign(0, 0);
  s.Assign(1, 1);
  s.Assign(2, 1);
  EXPECT_TRUE(s.AllAssigned());
  EXPECT_EQ(s.Makespan(), 2);
}

TEST(ScheduleTest, ValidScheduleValidates) {
  const Instance instance = TwoByTwo();
  Schedule s(3);
  s.Assign(0, 0);
  s.Assign(1, 1);
  s.Assign(2, 1);
  EXPECT_FALSE(s.ValidationError(instance).has_value());
}

TEST(ScheduleTest, DetectsUnassignedFlow) {
  const Instance instance = TwoByTwo();
  Schedule s(3);
  s.Assign(0, 0);
  const auto err = s.ValidationError(instance);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unassigned"), std::string::npos);
}

TEST(ScheduleTest, DetectsReleaseViolation) {
  const Instance instance = TwoByTwo();
  Schedule s(3);
  s.Assign(0, 0);
  s.Assign(1, 1);
  s.Assign(2, 0);  // Released at round 1.
  const auto err = s.ValidationError(instance);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("before its release"), std::string::npos);
}

TEST(ScheduleTest, DetectsPortOverload) {
  const Instance instance = TwoByTwo();
  Schedule s(3);
  s.Assign(0, 0);
  s.Assign(1, 0);  // Flows 0 and 1 share input port 0.
  s.Assign(2, 1);
  const auto err = s.ValidationError(instance);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overloaded"), std::string::npos);
  // With +1 augmentation the same schedule is fine.
  EXPECT_FALSE(s.ValidationError(instance, CapacityAllowance::Additive(1)));
}

TEST(ScheduleTest, LoadsAndOverload) {
  const Instance instance = TwoByTwo();
  Schedule s(3);
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  const PortLoads loads = s.ComputeLoads(instance);
  EXPECT_EQ(loads.horizon, 2);
  EXPECT_EQ(loads.input[0][0], 2);
  EXPECT_EQ(loads.input[1][1], 1);
  EXPECT_EQ(loads.output[0][0], 1);
  EXPECT_EQ(loads.MaxOverload(instance.sw()), 1);
}

TEST(ScheduleTest, OutputPortOverloadDetected) {
  Instance instance(SwitchSpec::Uniform(2, 1), {});
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(1, 0, 1, 0);
  Schedule s(2);
  s.Assign(0, 0);
  s.Assign(1, 0);
  const auto err = s.ValidationError(instance);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("output port"), std::string::npos);
}

}  // namespace
}  // namespace flowsched
