#include "model/instance.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(SwitchSpecTest, UniformConstruction) {
  const SwitchSpec sw = SwitchSpec::Uniform(3, 2, 5);
  EXPECT_EQ(sw.num_inputs(), 3);
  EXPECT_EQ(sw.num_outputs(), 2);
  EXPECT_EQ(sw.input_capacity(0), 5);
  EXPECT_EQ(sw.output_capacity(1), 5);
  EXPECT_FALSE(sw.IsUnitCapacity());
  EXPECT_TRUE(SwitchSpec::Uniform(2, 2, 1).IsUnitCapacity());
  EXPECT_EQ(sw.MinCapacity(), 5);
  EXPECT_EQ(sw.MaxCapacity(), 5);
}

TEST(SwitchSpecTest, KappaIsMinOfEndpointCapacities) {
  const SwitchSpec sw({3, 1}, {2, 7});
  EXPECT_EQ(sw.Kappa(Flow{0, 0, 0, 1, 0}), 2);
  EXPECT_EQ(sw.Kappa(Flow{0, 0, 1, 1, 0}), 3);
  EXPECT_EQ(sw.Kappa(Flow{0, 1, 1, 1, 0}), 1);
}

TEST(InstanceTest, AddFlowAssignsSequentialIds) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  EXPECT_EQ(instance.AddFlow(0, 1), 0);
  EXPECT_EQ(instance.AddFlow(1, 0, 1, 3), 1);
  EXPECT_EQ(instance.num_flows(), 2);
  EXPECT_EQ(instance.flow(1).release, 3);
  EXPECT_FALSE(instance.ValidationError().has_value());
}

TEST(InstanceTest, ConstructorRenumbersFlows) {
  std::vector<Flow> flows = {Flow{99, 0, 0, 1, 0}, Flow{-5, 1, 1, 1, 2}};
  Instance instance(SwitchSpec::Uniform(2, 2), std::move(flows));
  EXPECT_EQ(instance.flow(0).id, 0);
  EXPECT_EQ(instance.flow(1).id, 1);
}

TEST(InstanceTest, ValidationCatchesBadPort) {
  Instance instance(SwitchSpec::Uniform(2, 2), {Flow{0, 2, 0, 1, 0}});
  ASSERT_TRUE(instance.ValidationError().has_value());
  EXPECT_NE(instance.ValidationError()->find("out of range"), std::string::npos);
}

TEST(InstanceTest, ValidationCatchesDemandAboveKappa) {
  Instance instance(SwitchSpec::Uniform(2, 2, 3), {Flow{0, 0, 0, 4, 0}});
  ASSERT_TRUE(instance.ValidationError().has_value());
  EXPECT_NE(instance.ValidationError()->find("kappa"), std::string::npos);
}

TEST(InstanceTest, ValidationCatchesZeroDemandAndNegativeRelease) {
  Instance a(SwitchSpec::Uniform(2, 2), {Flow{0, 0, 0, 0, 0}});
  EXPECT_TRUE(a.ValidationError().has_value());
  Instance b(SwitchSpec::Uniform(2, 2), {Flow{0, 0, 0, 1, -1}});
  EXPECT_TRUE(b.ValidationError().has_value());
}

TEST(InstanceTest, SameIndexSrcAndDstIsLegal) {
  // Inputs and outputs are separate index spaces (paper §2): input port p
  // and output port p are distinct physical ports, so src == dst is a
  // normal flow (shuffles emit mapper i -> reducer i), not a self-loop.
  // Regression guard: validation must keep accepting these.
  Instance instance(SwitchSpec::Uniform(3, 3, 2), {});
  for (PortId p = 0; p < 3; ++p) instance.AddFlow(p, p, 2, 0);
  EXPECT_EQ(instance.ValidationError(), std::nullopt);
}

TEST(InstanceTest, AggregateProperties) {
  Instance instance(SwitchSpec::Uniform(3, 3, 4), {});
  instance.AddFlow(0, 1, 2, 5);
  instance.AddFlow(1, 2, 4, 1);
  instance.AddFlow(2, 0, 1, 0);
  EXPECT_EQ(instance.MaxDemand(), 4);
  EXPECT_EQ(instance.MaxRelease(), 5);
  EXPECT_EQ(instance.TotalDemand(), 7);
  EXPECT_EQ(instance.SafeHorizon(), 5 + 3 + 1);
}

TEST(InstanceTest, EmptyInstanceAggregates) {
  Instance instance(SwitchSpec::Uniform(1, 1), {});
  EXPECT_EQ(instance.MaxDemand(), 0);
  EXPECT_EQ(instance.MaxRelease(), 0);
  EXPECT_EQ(instance.TotalDemand(), 0);
  EXPECT_FALSE(instance.ValidationError().has_value());
}

TEST(InstanceTest, FlowsByPort) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 1);
  instance.AddFlow(0, 0);
  instance.AddFlow(1, 1);
  const auto by_in = instance.FlowsByInputPort();
  const auto by_out = instance.FlowsByOutputPort();
  EXPECT_EQ(by_in[0], (std::vector<FlowId>{0, 1}));
  EXPECT_EQ(by_in[1], (std::vector<FlowId>{2}));
  EXPECT_EQ(by_out[1], (std::vector<FlowId>{0, 2}));
}

TEST(FlowTest, ResponseTimeConvention) {
  // A flow scheduled the round it is released has response time 1 (paper:
  // C_e = 1 + t, rho_e = C_e - r_e).
  EXPECT_EQ(ResponseTime(/*round=*/5, /*release=*/5), 1);
  EXPECT_EQ(ResponseTime(/*round=*/7, /*release=*/5), 3);
}

}  // namespace
}  // namespace flowsched
