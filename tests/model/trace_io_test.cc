#include "model/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flowsched {
namespace {

TEST(TraceIoTest, InstanceRoundTrip) {
  Instance instance(SwitchSpec({2, 3}, {1, 1, 4}), {});
  instance.AddFlow(0, 2, 2, 0);
  instance.AddFlow(1, 0, 1, 7);
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  std::string error;
  const auto parsed = ReadInstanceCsv(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->sw(), instance.sw());
  ASSERT_EQ(parsed->num_flows(), 2);
  EXPECT_EQ(parsed->flow(0), instance.flow(0));
  EXPECT_EQ(parsed->flow(1), instance.flow(1));
}

TEST(TraceIoTest, EmptyInstanceRoundTrip) {
  Instance instance(SwitchSpec::Uniform(1, 2), {});
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  const auto parsed = ReadInstanceCsv(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_flows(), 0);
}

TEST(TraceIoTest, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv("not,a,trace\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, RejectsInvalidInstance) {
  // Demand above kappa fails model validation on read.
  const std::string content =
      "input_capacities\n1\noutput_capacities\n1\nsrc,dst,demand,release\n"
      "0,0,5,0\n";
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv(content, &error).has_value());
  EXPECT_NE(error.find("kappa"), std::string::npos);
}

TEST(TraceIoTest, MalformedFlowRowErrorsCarryTheLineNumber) {
  const std::string header =
      "input_capacities\n1,1\noutput_capacities\n1,1\n"
      "src,dst,demand,release\n";
  std::string error;
  // Line 7 (the second flow row) has too few fields.
  EXPECT_FALSE(
      ReadInstanceCsv(header + "0,1,1,0\n0,1\n", &error).has_value());
  EXPECT_NE(error.find("line 7"), std::string::npos) << error;
  // Line 6 (the first flow row) has a non-numeric demand.
  EXPECT_FALSE(
      ReadInstanceCsv(header + "0,1,x,0\n", &error).has_value());
  EXPECT_NE(error.find("line 6"), std::string::npos) << error;
}

TEST(TraceIoTest, MalformedCapacityRowErrorsCarryTheLineNumber) {
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv("input_capacities\n1,zap\noutput_capacities\n"
                               "1\nsrc,dst,demand,release\n",
                               &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TraceIoTest, CoflowTagsRoundTripThroughTheInstanceCsv) {
  Instance instance(SwitchSpec::Uniform(3, 3), {});
  instance.AddFlow(0, 1, 1, 0, /*coflow=*/4);
  instance.AddFlow(1, 2, 1, 1);  // Untagged: writes an empty field.
  instance.AddFlow(2, 0, 1, 1, /*coflow=*/4);
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  EXPECT_NE(out.str().find("src,dst,demand,release,coflow"),
            std::string::npos);
  std::string error;
  const auto parsed = ReadInstanceCsv(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->num_flows(), 3);
  EXPECT_EQ(parsed->flow(0).coflow, 4);
  EXPECT_EQ(parsed->flow(1).coflow, kNoCoflow);
  EXPECT_EQ(parsed->flow(2).coflow, 4);
}

TEST(TraceIoTest, UntaggedInstancesKeepTheFourColumnFormat) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  instance.AddFlow(0, 1);
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  EXPECT_EQ(out.str().find("coflow"), std::string::npos);
}

TEST(TraceIoTest, CoflowTraceExpandsMappersTimesReducers) {
  // Coflow 1: mappers {0, 2}, reducers {1 (6 units), 3 (2 units)}.
  // Per-flow demand = ceil(units / num_mappers): 3 and 1.
  const std::string content =
      "coflow,arrival,mappers,reducers\n"
      "1,0,0;2,1:6;3:2\n"
      "2,5,1,0:1\n";
  std::string error;
  const auto parsed = ReadCoflowTraceCsv(content, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->num_flows(), 5);
  // Ports span 0..3 => square 4x4 switch; capacity = max demand (3).
  EXPECT_EQ(parsed->sw().num_inputs(), 4);
  EXPECT_EQ(parsed->sw().num_outputs(), 4);
  EXPECT_EQ(parsed->sw().input_capacity(0), 3);
  EXPECT_EQ(parsed->flow(0), (Flow{0, 0, 1, 3, 0, 1}));
  EXPECT_EQ(parsed->flow(1), (Flow{1, 2, 1, 3, 0, 1}));
  EXPECT_EQ(parsed->flow(2), (Flow{2, 0, 3, 1, 0, 1}));
  EXPECT_EQ(parsed->flow(3), (Flow{3, 2, 3, 1, 0, 1}));
  EXPECT_EQ(parsed->flow(4), (Flow{4, 1, 0, 1, 5, 2}));
  EXPECT_TRUE(parsed->HasCoflows());
}

TEST(TraceIoTest, CoflowTraceHonorsCapacityPreamble) {
  const std::string content =
      "input_capacities\n2,2\noutput_capacities\n2,2\n"
      "coflow,arrival,mappers,reducers\n"
      "0,0,0;1,0:4\n";
  std::string error;
  const auto parsed = ReadCoflowTraceCsv(content, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->sw().num_inputs(), 2);
  EXPECT_EQ(parsed->sw().input_capacity(0), 2);
  ASSERT_EQ(parsed->num_flows(), 2);
  EXPECT_EQ(parsed->flow(0).demand, 2);  // ceil(4 / 2 mappers).
}

TEST(TraceIoTest, LooksLikeCoflowTraceDetectsBothVariants) {
  EXPECT_TRUE(LooksLikeCoflowTrace("coflow,arrival,mappers,reducers\n"));
  EXPECT_TRUE(LooksLikeCoflowTrace(
      "input_capacities\n1\noutput_capacities\n1\n"
      "coflow,arrival,mappers,reducers\n"));
  EXPECT_FALSE(LooksLikeCoflowTrace(
      "input_capacities\n1\noutput_capacities\n1\n"
      "src,dst,demand,release\n"));
  EXPECT_FALSE(LooksLikeCoflowTrace("src,dst,demand,release\n"));
}

TEST(TraceIoTest, CoflowTraceWithoutRowsOrPreambleIsAnErrorNotAnAbort) {
  std::string error;
  EXPECT_FALSE(ReadCoflowTraceCsv("coflow,arrival,mappers,reducers\n", &error)
                   .has_value());
  EXPECT_NE(error.find("no coflow rows"), std::string::npos) << error;
  // With a preamble the switch is fully specified, so empty is fine.
  const auto parsed = ReadCoflowTraceCsv(
      "input_capacities\n1\noutput_capacities\n1\n"
      "coflow,arrival,mappers,reducers\n",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_flows(), 0);
}

TEST(TraceIoTest, CoflowTraceRejectsOutOfRangePortsInsteadOfAllocating) {
  const std::string header = "coflow,arrival,mappers,reducers\n";
  std::string error;
  // A typo'd giant port must be a parse error, not a gigabyte switch.
  EXPECT_FALSE(
      ReadCoflowTraceCsv(header + "0,0,2000000000,0:1\n", &error).has_value());
  EXPECT_NE(error.find("mapper port"), std::string::npos) << error;
  EXPECT_FALSE(
      ReadCoflowTraceCsv(header + "0,0,0,2000000000:1\n", &error).has_value());
  EXPECT_NE(error.find("reducer spec"), std::string::npos) << error;
  EXPECT_FALSE(ReadCoflowTraceCsv(header + "0,0,-2,0:1\n", &error).has_value());
  EXPECT_NE(error.find("mapper port"), std::string::npos) << error;
}

TEST(TraceIoTest, CoflowTraceErrorsCarryTheLineNumber) {
  const std::string header = "coflow,arrival,mappers,reducers\n";
  std::string error;
  EXPECT_FALSE(
      ReadCoflowTraceCsv(header + "1,0,0,1:bad\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(ReadCoflowTraceCsv(header + "1,0,,1:1\n", &error).has_value());
  EXPECT_NE(error.find("no mappers"), std::string::npos) << error;
  EXPECT_FALSE(ReadCoflowTraceCsv(header + "1,0,0,\n", &error).has_value());
  EXPECT_NE(error.find("no reducers"), std::string::npos) << error;
  EXPECT_FALSE(ReadCoflowTraceCsv("nope\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(TraceIoTest, ScheduleRoundTrip) {
  Schedule s(3);
  s.Assign(0, 4);
  s.Assign(2, 0);
  std::ostringstream out;
  WriteScheduleCsv(s, out);
  std::string error;
  const auto parsed = ReadScheduleCsv(out.str(), 3, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->round_of(0), 4);
  EXPECT_FALSE(parsed->IsAssigned(1));
  EXPECT_EQ(parsed->round_of(2), 0);
}

TEST(TraceIoTest, ScheduleRejectsOutOfRangeId) {
  std::string error;
  EXPECT_FALSE(ReadScheduleCsv("flow_id,round\n9,0\n", 3, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(TraceIoTest, MalformedRowDeepInALargeTraceReportsItsExactLine) {
  // 5000 good rows, then one with a non-numeric demand. The shared
  // line-at-a-time row reader must keep exact physical line numbers at any
  // depth — flows start at line 6 after the two capacity sections and the
  // header, so row i sits on line 6 + i.
  std::ostringstream content;
  content << "input_capacities\n1,1\noutput_capacities\n1,1\n"
             "src,dst,demand,release\n";
  for (int i = 0; i < 5000; ++i) content << (i % 2) << ",1,1," << i << "\n";
  content << "0,1,oops,5000\n";
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv(content.str(), &error).has_value());
  EXPECT_NE(error.find("line 5006"), std::string::npos) << error;
  EXPECT_NE(error.find("unparsable flow row"), std::string::npos) << error;
}

TEST(TraceIoTest, InstanceCsvReaderStreamsFlowsOneAtATime) {
  Instance instance(SwitchSpec({2, 1}, {1, 2}), {});
  instance.AddFlow(0, 1, 2, 0, 3);
  instance.AddFlow(1, 0, 1, 4);
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  std::istringstream in(out.str());
  InstanceCsvReader reader(in);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.sw(), instance.sw());
  EXPECT_TRUE(reader.with_coflow());
  Flow flow;
  ASSERT_TRUE(reader.NextFlow(&flow));
  EXPECT_EQ(flow.src, 0);
  EXPECT_EQ(flow.demand, 2);
  EXPECT_EQ(flow.coflow, 3);
  ASSERT_TRUE(reader.NextFlow(&flow));
  EXPECT_EQ(flow.src, 1);
  EXPECT_EQ(flow.coflow, kNoCoflow);
  EXPECT_FALSE(reader.NextFlow(&flow));  // Clean EOF...
  EXPECT_TRUE(reader.ok());              // ...is not an error.
}

TEST(TraceIoTest, InstanceCsvReaderRejectsBadCapacityWithoutAborting) {
  // A zero capacity must surface as a parse error (SwitchSpec would
  // FS_CHECK-abort on it — fatal for a daemon fed untrusted traces).
  std::istringstream in(
      "input_capacities\n1,0\noutput_capacities\n1,1\n"
      "src,dst,demand,release\n");
  InstanceCsvReader reader(in);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("line 2"), std::string::npos)
      << reader.error();
  EXPECT_NE(reader.error().find("bad capacity"), std::string::npos);
}

}  // namespace
}  // namespace flowsched
