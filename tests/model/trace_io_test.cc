#include "model/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flowsched {
namespace {

TEST(TraceIoTest, InstanceRoundTrip) {
  Instance instance(SwitchSpec({2, 3}, {1, 1, 4}), {});
  instance.AddFlow(0, 2, 2, 0);
  instance.AddFlow(1, 0, 1, 7);
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  std::string error;
  const auto parsed = ReadInstanceCsv(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->sw(), instance.sw());
  ASSERT_EQ(parsed->num_flows(), 2);
  EXPECT_EQ(parsed->flow(0), instance.flow(0));
  EXPECT_EQ(parsed->flow(1), instance.flow(1));
}

TEST(TraceIoTest, EmptyInstanceRoundTrip) {
  Instance instance(SwitchSpec::Uniform(1, 2), {});
  std::ostringstream out;
  WriteInstanceCsv(instance, out);
  const auto parsed = ReadInstanceCsv(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_flows(), 0);
}

TEST(TraceIoTest, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv("not,a,trace\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, RejectsInvalidInstance) {
  // Demand above kappa fails model validation on read.
  const std::string content =
      "input_capacities\n1\noutput_capacities\n1\nsrc,dst,demand,release\n"
      "0,0,5,0\n";
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv(content, &error).has_value());
  EXPECT_NE(error.find("kappa"), std::string::npos);
}

TEST(TraceIoTest, MalformedFlowRowErrorsCarryTheLineNumber) {
  const std::string header =
      "input_capacities\n1,1\noutput_capacities\n1,1\n"
      "src,dst,demand,release\n";
  std::string error;
  // Line 7 (the second flow row) has too few fields.
  EXPECT_FALSE(
      ReadInstanceCsv(header + "0,1,1,0\n0,1\n", &error).has_value());
  EXPECT_NE(error.find("line 7"), std::string::npos) << error;
  // Line 6 (the first flow row) has a non-numeric demand.
  EXPECT_FALSE(
      ReadInstanceCsv(header + "0,1,x,0\n", &error).has_value());
  EXPECT_NE(error.find("line 6"), std::string::npos) << error;
}

TEST(TraceIoTest, MalformedCapacityRowErrorsCarryTheLineNumber) {
  std::string error;
  EXPECT_FALSE(ReadInstanceCsv("input_capacities\n1,zap\noutput_capacities\n"
                               "1\nsrc,dst,demand,release\n",
                               &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TraceIoTest, ScheduleRoundTrip) {
  Schedule s(3);
  s.Assign(0, 4);
  s.Assign(2, 0);
  std::ostringstream out;
  WriteScheduleCsv(s, out);
  std::string error;
  const auto parsed = ReadScheduleCsv(out.str(), 3, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->round_of(0), 4);
  EXPECT_FALSE(parsed->IsAssigned(1));
  EXPECT_EQ(parsed->round_of(2), 0);
}

TEST(TraceIoTest, ScheduleRejectsOutOfRangeId) {
  std::string error;
  EXPECT_FALSE(ReadScheduleCsv("flow_id,round\n9,0\n", 3, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace flowsched
