#include "workload/coflow_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "model/coflow.h"

namespace flowsched {
namespace {

TEST(CoflowGenTest, DeterministicInSeed) {
  CoflowGenConfig cfg;
  cfg.num_rounds = 20;
  cfg.mean_coflows_per_round = 2.0;
  cfg.seed = 42;
  const Instance a = GenerateCoflows(cfg);
  const Instance b = GenerateCoflows(cfg);
  ASSERT_EQ(a.num_flows(), b.num_flows());
  for (FlowId e = 0; e < a.num_flows(); ++e) {
    EXPECT_EQ(a.flow(e), b.flow(e));
  }
  cfg.seed = 43;
  const Instance c = GenerateCoflows(cfg);
  EXPECT_NE(c.num_flows(), 0);
  bool differs = c.num_flows() != a.num_flows();
  for (FlowId e = 0; !differs && e < a.num_flows(); ++e) {
    differs = !(a.flow(e) == c.flow(e));
  }
  EXPECT_TRUE(differs);
}

TEST(CoflowGenTest, FlowsAreClusteredAndReleaseMonotone) {
  CoflowGenConfig cfg;
  cfg.num_rounds = 30;
  cfg.mean_coflows_per_round = 1.5;
  cfg.seed = 7;
  const Instance instance = GenerateCoflows(cfg);
  ASSERT_GT(instance.num_flows(), 0);
  EXPECT_TRUE(instance.HasCoflows());
  Round prev = 0;
  std::map<CoflowId, Round> release_of;
  for (const Flow& e : instance.flows()) {
    EXPECT_GE(e.release, prev);  // Generator emits in release order.
    prev = e.release;
    ASSERT_NE(e.coflow, kNoCoflow);
    // Clustered: every member of a coflow shares its arrival round.
    const auto [it, inserted] = release_of.emplace(e.coflow, e.release);
    if (!inserted) EXPECT_EQ(it->second, e.release);
  }
}

TEST(CoflowGenTest, WidthsStayWithinConfiguredBounds) {
  CoflowGenConfig cfg;
  cfg.num_rounds = 40;
  cfg.mean_coflows_per_round = 2.0;
  cfg.min_width = 2;
  cfg.max_width = 5;
  cfg.width_skew = 0.5;
  cfg.seed = 11;
  const Instance instance = GenerateCoflows(cfg);
  const CoflowSet coflows(instance);
  ASSERT_GT(coflows.num_tagged(), 0);
  for (int g = 0; g < coflows.num_tagged(); ++g) {
    EXPECT_GE(coflows.width(g), 2);
    EXPECT_LE(coflows.width(g), 5);
  }
}

TEST(CoflowGenTest, MeanCoflowWidthMatchesTheDistribution) {
  CoflowGenConfig cfg;
  cfg.min_width = 1;
  cfg.max_width = 3;
  cfg.width_skew = 0.5;
  // Weights 1, 0.5, 0.25 over widths 1, 2, 3 => mean 2.75 / 1.75 = 11/7.
  EXPECT_NEAR(MeanCoflowWidth(cfg), 11.0 / 7.0, 1e-12);
  cfg.width_skew = 1.0;
  EXPECT_DOUBLE_EQ(MeanCoflowWidth(cfg), 2.0);  // Uniform 1..3.
  cfg.min_width = cfg.max_width = 4;
  EXPECT_DOUBLE_EQ(MeanCoflowWidth(cfg), 4.0);
}

TEST(CoflowGenTest, EmpiricalWidthTracksTheConfiguredMean) {
  CoflowGenConfig cfg;
  cfg.num_rounds = 400;
  cfg.mean_coflows_per_round = 2.0;
  cfg.min_width = 1;
  cfg.max_width = 8;
  cfg.width_skew = 0.6;
  cfg.seed = 5;
  const Instance instance = GenerateCoflows(cfg);
  const CoflowSet coflows(instance);
  ASSERT_GT(coflows.num_tagged(), 100);
  const double mean_width =
      static_cast<double>(instance.num_flows()) / coflows.num_tagged();
  EXPECT_NEAR(mean_width, MeanCoflowWidth(cfg), 0.25);
}

TEST(CoflowGenTest, DemandsRespectCapAndDmax) {
  CoflowGenConfig cfg;
  cfg.port_capacity = 4;
  cfg.max_demand = 3;
  cfg.num_rounds = 20;
  cfg.mean_coflows_per_round = 2.0;
  cfg.seed = 9;
  const Instance instance = GenerateCoflows(cfg);
  Capacity dmax = 0;
  for (const Flow& e : instance.flows()) {
    EXPECT_GE(e.demand, 1);
    EXPECT_LE(e.demand, 3);
    dmax = std::max(dmax, e.demand);
  }
  EXPECT_GT(dmax, 1);  // The demand mix actually varies.
  EXPECT_FALSE(instance.ValidationError().has_value());
}

}  // namespace
}  // namespace flowsched
