#include "workload/patterns.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(PatternsTest, IncastStructure) {
  Instance instance(SwitchSpec::Uniform(8, 8), {});
  AddIncast(instance, /*sink=*/3, /*fan_in=*/5, /*release=*/2);
  EXPECT_EQ(instance.num_flows(), 5);
  for (const Flow& e : instance.flows()) {
    EXPECT_EQ(e.dst, 3);
    EXPECT_EQ(e.release, 2);
  }
  EXPECT_FALSE(instance.ValidationError().has_value());
}

TEST(PatternsTest, ShuffleIsAllToAll) {
  Instance instance(SwitchSpec::Uniform(4, 4), {});
  AddShuffle(instance, 3, 2, 0);
  EXPECT_EQ(instance.num_flows(), 6);
  std::vector<std::vector<int>> seen(3, std::vector<int>(2, 0));
  for (const Flow& e : instance.flows()) ++seen[e.src][e.dst];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_EQ(seen[i][j], 1);
  }
}

TEST(PatternsTest, PermutationHasDistinctPorts) {
  Instance instance(SwitchSpec::Uniform(6, 6), {});
  Rng rng(3);
  AddPermutation(instance, 1, rng);
  EXPECT_EQ(instance.num_flows(), 6);
  std::vector<int> out_used(6, 0);
  for (const Flow& e : instance.flows()) {
    EXPECT_EQ(e.release, 1);
    ++out_used[e.dst];
  }
  for (int c : out_used) EXPECT_EQ(c, 1);
}

TEST(PatternsTest, PermutationOnRectangularSwitch) {
  Instance instance(SwitchSpec::Uniform(3, 7), {});
  Rng rng(4);
  AddPermutation(instance, 0, rng);
  EXPECT_EQ(instance.num_flows(), 3);
  std::vector<int> out_used(7, 0);
  for (const Flow& e : instance.flows()) ++out_used[e.dst];
  for (int c : out_used) EXPECT_LE(c, 1);
}

TEST(PatternsTest, ShuffleWaves) {
  const Instance instance = ShuffleWaves(/*num_ports=*/4, /*wave_size=*/2,
                                         /*num_waves=*/3, /*period=*/5);
  EXPECT_EQ(instance.num_flows(), 3 * 4);
  EXPECT_EQ(instance.MaxRelease(), 10);
  EXPECT_FALSE(instance.ValidationError().has_value());
}

// ---- Golden-seed regression locks ----------------------------------------
// The generators below feed benchmark suites and sweep campaigns; a silent
// change in their RNG consumption would shift every downstream golden. The
// exact outputs for fixed seeds are pinned here.

TEST(PatternsGoldenTest, PermutationIsPinnedForSeed3) {
  Instance instance(SwitchSpec::Uniform(6, 6), {});
  Rng rng(3);
  AddPermutation(instance, 0, rng);
  ASSERT_EQ(instance.num_flows(), 6);
  // Captured from the current Fisher-Yates prefix shuffle under Rng(3).
  std::vector<PortId> dsts;
  for (const Flow& e : instance.flows()) dsts.push_back(e.dst);
  Instance again(SwitchSpec::Uniform(6, 6), {});
  Rng rng2(3);
  AddPermutation(again, 0, rng2);
  for (FlowId e = 0; e < 6; ++e) {
    EXPECT_EQ(again.flow(e).dst, dsts[e]);  // Determinism in the seed.
  }
  // And the permutation itself is pinned (regenerate if Rng ever changes).
  EXPECT_EQ(dsts, (std::vector<PortId>{2, 1, 3, 4, 0, 5}));
}

TEST(PatternsGoldenTest, ShuffleWavesFlowCountAndReleaseMonotonicity) {
  const Instance instance = ShuffleWaves(/*num_ports=*/8, /*wave_size=*/3,
                                         /*num_waves=*/4, /*period=*/2);
  ASSERT_EQ(instance.num_flows(), 4 * 3 * 3);
  Round prev = 0;
  for (const Flow& e : instance.flows()) {
    EXPECT_GE(e.release, prev);  // Waves emit in release order.
    prev = e.release;
    EXPECT_EQ(e.release % 2, 0);  // Releases land on the period grid.
  }
  EXPECT_EQ(instance.MaxRelease(), 6);
}

TEST(PatternsGoldenTest, OpenProblemInstanceIsPinnedForSeed11) {
  Rng rng(11);
  const Instance instance =
      OpenProblemInstance(/*num_ports=*/8, /*num_rounds=*/10,
                          /*extra_edges=*/4, rng);
  // One permutation per round plus the scattered extra matching.
  ASSERT_EQ(instance.num_flows(), 8 * 10 + 4);
  // The defining invariant of the construction.
  EXPECT_LE(MaxIntervalDegreeExcess(instance), 1);
  // The per-round permutation prefix is release-monotone; the extra edges
  // at the tail may land on any round.
  Round prev = 0;
  for (FlowId e = 0; e < 8 * 10; ++e) {
    EXPECT_GE(instance.flow(e).release, prev);
    prev = instance.flow(e).release;
  }
  EXPECT_FALSE(instance.ValidationError().has_value());
  // Pinned sample under Rng(11): regenerating with the same seed must
  // reproduce the identical instance.
  Rng rng2(11);
  const Instance again =
      OpenProblemInstance(8, 10, 4, rng2);
  ASSERT_EQ(again.num_flows(), instance.num_flows());
  for (FlowId e = 0; e < instance.num_flows(); ++e) {
    EXPECT_EQ(again.flow(e), instance.flow(e));
  }
}

TEST(PatternsGoldenTest, IncastAndShuffleCountsArePureFunctions) {
  for (const int fan_in : {1, 4, 7}) {
    Instance instance(SwitchSpec::Uniform(8, 8), {});
    AddIncast(instance, /*sink=*/0, fan_in, /*release=*/3);
    EXPECT_EQ(instance.num_flows(), fan_in);
  }
  for (const int mappers : {1, 3}) {
    for (const int reducers : {2, 5}) {
      Instance instance(SwitchSpec::Uniform(8, 8), {});
      AddShuffle(instance, mappers, reducers, 0);
      EXPECT_EQ(instance.num_flows(), mappers * reducers);
    }
  }
}

}  // namespace
}  // namespace flowsched
