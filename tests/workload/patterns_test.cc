#include "workload/patterns.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(PatternsTest, IncastStructure) {
  Instance instance(SwitchSpec::Uniform(8, 8), {});
  AddIncast(instance, /*sink=*/3, /*fan_in=*/5, /*release=*/2);
  EXPECT_EQ(instance.num_flows(), 5);
  for (const Flow& e : instance.flows()) {
    EXPECT_EQ(e.dst, 3);
    EXPECT_EQ(e.release, 2);
  }
  EXPECT_FALSE(instance.ValidationError().has_value());
}

TEST(PatternsTest, ShuffleIsAllToAll) {
  Instance instance(SwitchSpec::Uniform(4, 4), {});
  AddShuffle(instance, 3, 2, 0);
  EXPECT_EQ(instance.num_flows(), 6);
  std::vector<std::vector<int>> seen(3, std::vector<int>(2, 0));
  for (const Flow& e : instance.flows()) ++seen[e.src][e.dst];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_EQ(seen[i][j], 1);
  }
}

TEST(PatternsTest, PermutationHasDistinctPorts) {
  Instance instance(SwitchSpec::Uniform(6, 6), {});
  Rng rng(3);
  AddPermutation(instance, 1, rng);
  EXPECT_EQ(instance.num_flows(), 6);
  std::vector<int> out_used(6, 0);
  for (const Flow& e : instance.flows()) {
    EXPECT_EQ(e.release, 1);
    ++out_used[e.dst];
  }
  for (int c : out_used) EXPECT_EQ(c, 1);
}

TEST(PatternsTest, PermutationOnRectangularSwitch) {
  Instance instance(SwitchSpec::Uniform(3, 7), {});
  Rng rng(4);
  AddPermutation(instance, 0, rng);
  EXPECT_EQ(instance.num_flows(), 3);
  std::vector<int> out_used(7, 0);
  for (const Flow& e : instance.flows()) ++out_used[e.dst];
  for (int c : out_used) EXPECT_LE(c, 1);
}

TEST(PatternsTest, ShuffleWaves) {
  const Instance instance = ShuffleWaves(/*num_ports=*/4, /*wave_size=*/2,
                                         /*num_waves=*/3, /*period=*/5);
  EXPECT_EQ(instance.num_flows(), 3 * 4);
  EXPECT_EQ(instance.MaxRelease(), 10);
  EXPECT_FALSE(instance.ValidationError().has_value());
}

}  // namespace
}  // namespace flowsched
