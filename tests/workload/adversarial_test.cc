#include "workload/adversarial.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(Fig4aTest, FixedInstanceShape) {
  const Instance instance = Fig4aInstance(/*phase_rounds=*/3, /*total_rounds=*/10);
  EXPECT_EQ(instance.num_flows(), 2 * 3 + 7);
  EXPECT_FALSE(instance.ValidationError().has_value());
  // First phase: two flows per round from input 0.
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(instance.flow(2 * t).src, 0);
    EXPECT_EQ(instance.flow(2 * t + 1).src, 0);
    EXPECT_EQ(instance.flow(2 * t).release, t);
  }
  // Stream phase from input 1 to output 1.
  for (int i = 6; i < instance.num_flows(); ++i) {
    EXPECT_EQ(instance.flow(i).src, 1);
    EXPECT_EQ(instance.flow(i).dst, 1);
  }
}

TEST(Fig4bTest, FixedInstanceShape) {
  const Instance instance = Fig4bInstance();
  EXPECT_EQ(instance.num_flows(), 6);
  EXPECT_FALSE(instance.ValidationError().has_value());
  EXPECT_EQ(instance.flow(4).src, 2);
  EXPECT_EQ(instance.flow(4).release, 1);
}

TEST(ArtAdversaryTest, CommitsToHeavierBacklogSide) {
  ArtLowerBoundAdversary adv(/*phase_rounds=*/2, /*total_rounds=*/5);
  // Rounds 0,1: fixed arrivals.
  auto a0 = adv.Arrivals(0, {});
  ASSERT_EQ(a0.size(), 2u);
  auto a1 = adv.Arrivals(1, {});
  ASSERT_EQ(a1.size(), 2u);
  // Pretend the policy left two flows toward output 0 pending.
  std::vector<Flow> pending = {Flow{0, 0, 0, 1, 0}, Flow{1, 0, 0, 1, 1}};
  auto a2 = adv.Arrivals(2, pending);
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_EQ(a2[0].src, 1);
  EXPECT_EQ(a2[0].dst, 0);  // Committed to the backlogged output.
  // Commitment is sticky even if the backlog flips later.
  std::vector<Flow> flipped = {Flow{0, 0, 1, 1, 0}};
  auto a3 = adv.Arrivals(3, flipped);
  ASSERT_EQ(a3.size(), 1u);
  EXPECT_EQ(a3[0].dst, 0);
  EXPECT_FALSE(adv.Exhausted(4));
  EXPECT_TRUE(adv.Exhausted(5));
  EXPECT_TRUE(adv.Arrivals(5, {}).empty());
}

TEST(ArtAdversaryTest, OfflineBoundFormula) {
  ArtLowerBoundAdversary adv(/*phase_rounds=*/10, /*total_rounds=*/100);
  // T*1 + T*(T+1) + (M-T)*1 = 10 + 110 + 90.
  EXPECT_DOUBLE_EQ(adv.OfflineTotalResponse(), 210.0);
  EXPECT_EQ(adv.num_flows(), 2 * 10 + 90);
}

TEST(MrtAdversaryTest, TargetsPendingOutputs) {
  MrtLowerBoundAdversary adv;
  auto a0 = adv.Arrivals(0, {});
  ASSERT_EQ(a0.size(), 4u);
  // Policy scheduled (0,0) and (1,2); pending are (0,1) and (1,3).
  std::vector<Flow> pending = {Flow{1, 0, 1, 1, 0}, Flow{3, 1, 3, 1, 0}};
  auto a1 = adv.Arrivals(1, pending);
  ASSERT_EQ(a1.size(), 2u);
  EXPECT_EQ(a1[0].src, 2);
  EXPECT_EQ(a1[1].src, 2);
  EXPECT_EQ(a1[0].dst, 1);
  EXPECT_EQ(a1[1].dst, 3);
  EXPECT_TRUE(adv.Exhausted(2));
}

}  // namespace
}  // namespace flowsched
