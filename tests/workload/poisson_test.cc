#include "workload/poisson.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(PoissonWorkloadTest, DeterministicForSeed) {
  PoissonConfig cfg;
  cfg.num_inputs = cfg.num_outputs = 10;
  cfg.mean_arrivals_per_round = 5.0;
  cfg.num_rounds = 6;
  cfg.seed = 42;
  const Instance a = GeneratePoisson(cfg);
  const Instance b = GeneratePoisson(cfg);
  ASSERT_EQ(a.num_flows(), b.num_flows());
  for (int i = 0; i < a.num_flows(); ++i) EXPECT_EQ(a.flow(i), b.flow(i));
}

TEST(PoissonWorkloadTest, ArrivalCountNearMeanTimesRounds) {
  PoissonConfig cfg;
  cfg.num_inputs = cfg.num_outputs = 20;
  cfg.mean_arrivals_per_round = 30.0;
  cfg.num_rounds = 100;
  cfg.seed = 7;
  const Instance instance = GeneratePoisson(cfg);
  // Expect ~3000 flows; Poisson sd is ~55, allow 6 sigma.
  EXPECT_NEAR(instance.num_flows(), 3000, 350);
}

TEST(PoissonWorkloadTest, ReleasesWithinRangeAndPortsValid) {
  PoissonConfig cfg;
  cfg.num_inputs = 4;
  cfg.num_outputs = 6;
  cfg.mean_arrivals_per_round = 3.0;
  cfg.num_rounds = 5;
  cfg.seed = 3;
  const Instance instance = GeneratePoisson(cfg);
  EXPECT_FALSE(instance.ValidationError().has_value());
  for (const Flow& e : instance.flows()) {
    EXPECT_GE(e.release, 0);
    EXPECT_LT(e.release, 5);
    EXPECT_LT(e.src, 4);
    EXPECT_LT(e.dst, 6);
    EXPECT_EQ(e.demand, 1);
  }
}

TEST(PoissonWorkloadTest, GeneralDemandsRespectKappa) {
  PoissonConfig cfg;
  cfg.num_inputs = cfg.num_outputs = 5;
  cfg.port_capacity = 4;
  cfg.max_demand = 8;  // Clamped to kappa = 4.
  cfg.mean_arrivals_per_round = 10.0;
  cfg.num_rounds = 4;
  cfg.seed = 11;
  const Instance instance = GeneratePoisson(cfg);
  EXPECT_FALSE(instance.ValidationError().has_value());
  bool saw_above_one = false;
  for (const Flow& e : instance.flows()) {
    EXPECT_LE(e.demand, 4);
    if (e.demand > 1) saw_above_one = true;
  }
  EXPECT_TRUE(saw_above_one);
}

TEST(PoissonWorkloadTest, PortsCoverTheSwitch) {
  PoissonConfig cfg;
  cfg.num_inputs = cfg.num_outputs = 8;
  cfg.mean_arrivals_per_round = 100.0;
  cfg.num_rounds = 10;
  cfg.seed = 13;
  const Instance instance = GeneratePoisson(cfg);
  std::vector<int> in_hits(8, 0);
  std::vector<int> out_hits(8, 0);
  for (const Flow& e : instance.flows()) {
    ++in_hits[e.src];
    ++out_hits[e.dst];
  }
  for (int p = 0; p < 8; ++p) {
    EXPECT_GT(in_hits[p], 0);
    EXPECT_GT(out_hits[p], 0);
  }
}

}  // namespace
}  // namespace flowsched
