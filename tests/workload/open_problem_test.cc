// Tests for the §6 open-problem instance generator.
#include <gtest/gtest.h>

#include "core/exact.h"
#include "workload/patterns.h"

namespace flowsched {
namespace {

TEST(OpenProblemInstanceTest, IntervalDegreeExcessAtMostOne) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Instance instance = OpenProblemInstance(6, 12, 6, rng);
    EXPECT_FALSE(instance.ValidationError().has_value());
    EXPECT_LE(MaxIntervalDegreeExcess(instance), 1);
    // m*T matching flows plus the extras.
    EXPECT_EQ(instance.num_flows(), 6 * 12 + 6);
  }
}

TEST(OpenProblemInstanceTest, NoExtrasMeansPerfectlySchedulable) {
  Rng rng(3);
  const Instance instance = OpenProblemInstance(4, 6, /*extra_edges=*/0, rng);
  EXPECT_EQ(MaxIntervalDegreeExcess(instance), 0);
  // Each round is a matching: everything runs on release (rho = 1).
  const auto rho = ExactMinMaxResponse(instance, 3);
  ASSERT_TRUE(rho.has_value());
  EXPECT_EQ(*rho, 1);
}

TEST(OpenProblemInstanceTest, PlusOneAugmentationGivesResponseOne) {
  // The paper: "all the requests can be satisfied with response time of 1,
  // assuming an absolutely minimal resource augmentation (of plus 1)".
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(100 + seed);
    const Instance base = OpenProblemInstance(4, 5, 4, rng);
    const Instance augmented(
        AugmentSwitch(base.sw(), CapacityAllowance::Additive(1)),
        std::vector<Flow>(base.flows()));
    const auto schedule = ExactMrtFeasible(augmented, 1);
    EXPECT_TRUE(schedule.has_value()) << "seed " << seed;
  }
}

TEST(OpenProblemInstanceTest, WithoutAugmentationNeedsSmallConstant) {
  // The open question is whether a constant suffices; on small instances
  // the exact optimum stays tiny.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(200 + seed);
    const Instance instance = OpenProblemInstance(3, 4, 3, rng);
    const auto rho = ExactMinMaxResponse(instance, instance.SafeHorizon());
    ASSERT_TRUE(rho.has_value());
    EXPECT_LE(*rho, 4) << "seed " << seed;
  }
}

TEST(MaxIntervalDegreeExcessTest, HandComputed) {
  Instance instance(SwitchSpec::Uniform(2, 2), {});
  // Port 0 requested twice in round 0 and twice in round 1: excess over
  // [0,1] = 4 - 2 = 2.
  instance.AddFlow(0, 0, 1, 0);
  instance.AddFlow(0, 1, 1, 0);
  instance.AddFlow(0, 0, 1, 1);
  instance.AddFlow(0, 1, 1, 1);
  EXPECT_EQ(MaxIntervalDegreeExcess(instance), 2);
}

}  // namespace
}  // namespace flowsched
