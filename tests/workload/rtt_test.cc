#include "workload/rtt.h"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

RttInstance FeasibleRtt() {
  // Two teachers, three classes; plainly satisfiable.
  RttInstance rtt;
  rtt.num_teachers = 2;
  rtt.num_classes = 3;
  rtt.available = {{0, 1}, {0, 1, 2}};
  rtt.classes = {{0, 1}, {0, 1, 2}};
  return rtt;
}

TEST(RttTest, ValidityChecks) {
  EXPECT_TRUE(FeasibleRtt().Valid());
  RttInstance bad = FeasibleRtt();
  bad.classes[0] = {0};  // Size mismatch with available.
  EXPECT_FALSE(bad.Valid());
  RttInstance bad2 = FeasibleRtt();
  bad2.available[0] = {0, 4};
  EXPECT_FALSE(bad2.Valid());
  RttInstance bad3 = FeasibleRtt();
  bad3.classes[1] = {0, 0, 1};  // Duplicate class.
  EXPECT_FALSE(bad3.Valid());
}

TEST(RttTest, FeasibleInstanceIsFeasible) {
  // Teacher 0 can take class 0 at hour 0 and class 1 at hour 1; teacher 1
  // then fits (e.g. 1@0, 0@1, 2@2 ... some permutation works).
  EXPECT_TRUE(RttFeasible(FeasibleRtt()));
}

TEST(RttTest, InfeasibleInstanceDetected) {
  // Three teachers all restricted to hours {0,1} and all teaching classes
  // {0,1}: class 0 needs three distinct (hour) slots but only 2 exist.
  RttInstance rtt;
  rtt.num_teachers = 3;
  rtt.num_classes = 3;
  rtt.available = {{0, 1}, {0, 1}, {0, 1}};
  rtt.classes = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_TRUE(rtt.Valid());
  EXPECT_FALSE(RttFeasible(rtt));
}

TEST(RttTest, RandomInstancesAreValid) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Rng r = rng.Fork(i);
    const RttInstance rtt = RandomRtt(3, 4, r);
    EXPECT_TRUE(rtt.Valid());
  }
}

TEST(RttReductionTest, StructureMatchesConstruction) {
  RttInstance rtt;
  rtt.num_teachers = 2;
  rtt.num_classes = 3;
  rtt.available = {{0, 2}, {1, 2}};  // Teacher 0 needs the {0,2} gadget.
  rtt.classes = {{0, 2}, {1, 2}};
  const RttReduction red = ReduceRttToFsMrt(rtt);
  const Instance& instance = red.instance;
  EXPECT_FALSE(instance.ValidationError().has_value());
  // Inputs: 2 teachers + 9 class blockers + 3 gadget blockers.
  EXPECT_EQ(instance.sw().num_inputs(), 2 + 9 + 3);
  // Outputs: 3 classes + 1 gadget.
  EXPECT_EQ(instance.sw().num_outputs(), 3 + 1);
  // Teaching flows released at min(T_i).
  ASSERT_EQ(red.teaching_flow.size(), 2u);
  for (FlowId f : red.teaching_flow[0]) {
    EXPECT_EQ(instance.flow(f).release, 0);
    EXPECT_EQ(instance.flow(f).src, 0);
  }
  for (FlowId f : red.teaching_flow[1]) {
    EXPECT_EQ(instance.flow(f).release, 1);
  }
  // Flow count: teaching (4) + class blockers (9) + gadget (1 pin + 3).
  EXPECT_EQ(instance.num_flows(), 4 + 9 + 4);
}

TEST(RttReductionTest, NoGadgetsWhenHoursAreSuffix) {
  RttInstance rtt;
  rtt.num_teachers = 2;
  rtt.num_classes = 3;
  rtt.available = {{1, 2}, {0, 1, 2}};
  rtt.classes = {{0, 1}, {0, 1, 2}};
  const RttReduction red = ReduceRttToFsMrt(rtt);
  // No {0,1}/{0,2} teachers: inputs = 2 + 9, outputs = 3.
  EXPECT_EQ(red.instance.sw().num_inputs(), 11);
  EXPECT_EQ(red.instance.sw().num_outputs(), 3);
}

}  // namespace
}  // namespace flowsched
