#include "graph/expansion.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/edge_coloring.h"
#include "util/rng.h"

namespace flowsched {
namespace {

TEST(ExpansionTest, UnitCapacityIsIdentityShaped) {
  Instance instance(SwitchSpec::Uniform(2, 2, 1), {});
  instance.AddFlow(0, 1);
  instance.AddFlow(1, 0);
  std::vector<FlowId> ids = {0, 1};
  const ReplicatedGraph rg = Replicate(instance, ids);
  EXPECT_EQ(rg.graph.num_left(), 2);
  EXPECT_EQ(rg.graph.num_right(), 2);
  EXPECT_EQ(rg.graph.num_edges(), 2);
  EXPECT_EQ(rg.left_port[0], 0);
  EXPECT_EQ(rg.edge_to_input_index, (std::vector<int>{0, 1}));
}

TEST(ExpansionTest, ReplicasReduceDegree) {
  // 6 flows into one output port of capacity 3: replicas get degree 2 each.
  Instance instance(SwitchSpec({1, 1, 1, 1, 1, 1}, {3}), {});
  for (int i = 0; i < 6; ++i) instance.AddFlow(i, 0);
  std::vector<FlowId> ids(6);
  std::iota(ids.begin(), ids.end(), 0);
  const ReplicatedGraph rg = Replicate(instance, ids);
  EXPECT_EQ(rg.graph.num_right(), 3);
  for (int v = 0; v < 3; ++v) EXPECT_EQ(rg.graph.RightDegree(v), 2);
  EXPECT_EQ(rg.graph.MaxDegree(), 2);
  // Edge coloring of the replicated graph => 2 capacity-feasible rounds.
  const EdgeColoring ec = ColorBipartiteEdges(rg.graph);
  EXPECT_EQ(ec.num_colors, 2);
}

TEST(ExpansionTest, RoundRobinBalancesWithinOne) {
  Instance instance(SwitchSpec({4}, {2}), {});
  // 7 unit flows out of one input port with capacity 4.
  std::vector<FlowId> ids;
  for (int i = 0; i < 7; ++i) ids.push_back(instance.AddFlow(0, 0));
  const ReplicatedGraph rg = Replicate(instance, ids);
  EXPECT_EQ(rg.graph.num_left(), 4);
  for (int u = 0; u < 4; ++u) {
    EXPECT_GE(rg.graph.LeftDegree(u), 1);
    EXPECT_LE(rg.graph.LeftDegree(u), 2);
  }
}

TEST(ExpansionDeathTest, RejectsNonUnitDemand) {
  Instance instance(SwitchSpec::Uniform(1, 1, 4), {});
  const FlowId f = instance.AddFlow(0, 0, 2, 0);
  std::vector<FlowId> ids = {f};
  EXPECT_DEATH(Replicate(instance, ids), "unit demands");
}

TEST(ExpansionTest, MatchingInReplicatedGraphIsCapacityFeasible) {
  Rng rng(21);
  Instance instance(SwitchSpec::Uniform(4, 4, 2), {});
  std::vector<FlowId> ids;
  for (int i = 0; i < 24; ++i) {
    ids.push_back(
        instance.AddFlow(rng.UniformInt(0, 3), rng.UniformInt(0, 3)));
  }
  const ReplicatedGraph rg = Replicate(instance, ids);
  const EdgeColoring ec = ColorBipartiteEdges(rg.graph);
  ASSERT_TRUE(IsValidEdgeColoring(rg.graph, ec));
  // Each color class, mapped back to ports, loads every port at most its
  // capacity (each replica used once per class).
  for (const auto& cls : ec.ColorClasses()) {
    std::vector<int> in_load(4, 0);
    std::vector<int> out_load(4, 0);
    for (int e : cls) {
      const FlowId f = ids[rg.edge_to_input_index[e]];
      ++in_load[instance.flow(f).src];
      ++out_load[instance.flow(f).dst];
    }
    for (int p = 0; p < 4; ++p) {
      EXPECT_LE(in_load[p], 2);
      EXPECT_LE(out_load[p], 2);
    }
  }
}

}  // namespace
}  // namespace flowsched
