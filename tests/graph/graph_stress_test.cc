// Larger-scale cross-checks for the graph substrate, where brute force is
// out of reach but structural identities still pin down correctness.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/bipartite_graph.h"
#include "graph/edge_coloring.h"
#include "graph/hopcroft_karp.h"
#include "graph/max_weight_matching.h"
#include "util/rng.h"

namespace flowsched {
namespace {

TEST(GraphStressTest, UnitWeightsMakeMaxWeightEqualMaxCardinality) {
  // With weight 1 on every edge, maximum weight == maximum cardinality.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Rng r = rng.Fork(trial);
    BipartiteGraph g(30, 30);
    const int edges = 150;
    for (int i = 0; i < edges; ++i) {
      g.AddEdge(r.UniformInt(0, 29), r.UniformInt(0, 29));
    }
    const std::vector<double> ones(g.num_edges(), 1.0);
    const auto hk = MaxCardinalityMatching(g);
    const auto mw = MaxWeightMatching(g, ones);
    ASSERT_TRUE(IsMatching(g, mw));
    EXPECT_EQ(mw.size(), hk.size()) << "trial " << trial;
  }
}

BipartiteGraph RandomRegularMultigraph(int ports, int degree, Rng& rng) {
  // Union of `degree` random perfect matchings: a degree-regular bipartite
  // multigraph.
  BipartiteGraph g(ports, ports);
  std::vector<int> perm(ports);
  for (int d = 0; d < degree; ++d) {
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = ports - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.UniformInt(0, i)]);
    }
    for (int u = 0; u < ports; ++u) g.AddEdge(u, perm[u]);
  }
  return g;
}

TEST(GraphStressTest, RegularGraphColoringGivesPerfectMatchings) {
  // König on a k-regular bipartite multigraph: exactly k colors and every
  // color class is a PERFECT matching (this is the Birkhoff-von Neumann
  // decomposition used by Theorem 1).
  Rng rng(77);
  for (const int degree : {2, 5, 9}) {
    const int ports = 16;
    BipartiteGraph g = RandomRegularMultigraph(ports, degree, rng);
    const EdgeColoring ec = ColorBipartiteEdges(g);
    ASSERT_TRUE(IsValidEdgeColoring(g, ec));
    EXPECT_EQ(ec.num_colors, degree);
    for (const auto& cls : ec.ColorClasses()) {
      EXPECT_EQ(static_cast<int>(cls.size()), ports);  // Perfect.
    }
  }
}

TEST(GraphStressTest, HopcroftKarpPerfectOnRegular) {
  // Hall's theorem: regular bipartite graphs have perfect matchings.
  Rng rng(78);
  for (int trial = 0; trial < 5; ++trial) {
    Rng r = rng.Fork(trial);
    BipartiteGraph g = RandomRegularMultigraph(50, 3, r);
    EXPECT_EQ(MaxCardinalityMatching(g).size(), 50u);
  }
}

TEST(GraphStressTest, LargeColoringStress) {
  Rng rng(79);
  BipartiteGraph g(150, 150);
  for (int i = 0; i < 12000; ++i) {
    g.AddEdge(rng.UniformInt(0, 149), rng.UniformInt(0, 149));
  }
  const EdgeColoring ec = ColorBipartiteEdges(g);
  EXPECT_TRUE(IsValidEdgeColoring(g, ec));
  EXPECT_EQ(ec.num_colors, g.MaxDegree());
}

TEST(GraphStressTest, MaxWeightMatchesGreedyBoundLargeScale) {
  // Greedy is a 1/2-approximation; max-weight must never lose to it.
  Rng rng(80);
  BipartiteGraph g(40, 40);
  for (int i = 0; i < 300; ++i) {
    g.AddEdge(rng.UniformInt(0, 39), rng.UniformInt(0, 39));
  }
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = static_cast<double>(rng.UniformInt(1, 1000));
  const auto mw = MaxWeightMatching(g, w);
  ASSERT_TRUE(IsMatching(g, mw));
  // Compare to a simple greedy-by-weight (inline to avoid extra deps).
  std::vector<int> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) { return w[a] > w[b]; });
  std::vector<char> lu(40, 0), ru(40, 0);
  double greedy = 0.0;
  for (int e : order) {
    if (!lu[g.edge(e).u] && !ru[g.edge(e).v]) {
      lu[g.edge(e).u] = ru[g.edge(e).v] = 1;
      greedy += w[e];
    }
  }
  EXPECT_GE(MatchingWeight(mw, w) + 1e-9, greedy);
}

}  // namespace
}  // namespace flowsched
